PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-dynamic lint-changed model-check concurrency-verify \
	check bench bench-compare

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.lint src/

lint-dynamic:
	$(PYTHON) -m repro.lint --dynamic src/

# Only the .py files touched since the merge-base with main.
lint-changed:
	$(PYTHON) -m repro.lint --changed-only

# Exhaustive bounded model check of the shm transport (DYN004) plus the
# static pipeline-schedule verifier (DYN005).
model-check:
	$(PYTHON) -m repro.lint --model-check

# Full concurrency verification: model-check the protocol, then record a
# real mp 1f1b 2x2 step and replay its event log through the DYN003
# happens-before race detector.
concurrency-verify: model-check
	rm -rf conc-logs && mkdir -p conc-logs
	$(PYTHON) -m repro.obs mp-trace --out conc-logs/mp-1f1b.trace.json \
		--scheme A2 --tp 2 --pp 2 --schedule 1f1b --microbatches 4 \
		--conc-log conc-logs
	$(PYTHON) -m repro.lint --race-log conc-logs

# The merge gate: tier-1 tests, the full static+dynamic lint, and the
# transport/schedule model checkers.
check: test lint-dynamic model-check

# Full pinned perf suite: BENCH_<sha>.json + merged Chrome trace in bench-out/.
bench:
	$(PYTHON) -m repro.bench run --out bench-out

# CI-style smoke: quick run, then gate against the committed baseline.
bench-compare:
	$(PYTHON) -m repro.bench run --quick --out bench-out --no-trace
	$(PYTHON) -m repro.bench compare --dir bench-out --baseline benchmarks/baseline.json
