PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-dynamic check bench bench-compare

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.lint src/

lint-dynamic:
	$(PYTHON) -m repro.lint --dynamic src/

# The merge gate: tier-1 tests plus the full static+dynamic lint.
check: test lint-dynamic

# Full pinned perf suite: BENCH_<sha>.json + merged Chrome trace in bench-out/.
bench:
	$(PYTHON) -m repro.bench run --out bench-out

# CI-style smoke: quick run, then gate against the committed baseline.
bench-compare:
	$(PYTHON) -m repro.bench run --quick --out bench-out --no-trace
	$(PYTHON) -m repro.bench compare --dir bench-out --baseline benchmarks/baseline.json
