PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-dynamic check

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.lint src/

lint-dynamic:
	$(PYTHON) -m repro.lint --dynamic src/

# The merge gate: tier-1 tests plus the full static+dynamic lint.
check: test lint-dynamic
