"""Fine-tune a model-parallel BERT with different compression schemes.

End-to-end accuracy comparison on one synthetic GLUE task: pre-train an
MLM backbone once, then fine-tune under w/o, AE, Top-K and quantization and
watch sparsification destroy the score while AE/quant preserve it
(the paper's Takeaway 2 in miniature).

Run: ``python examples/finetune_with_compression.py [task]``
(default task: CoLA — the most compression-sensitive analogue)
"""

import sys

from repro.data.tasks import GLUE_TASKS
from repro.experiments.accuracy import DEFAULT_POLICY, pretrain_backbone
from repro.training.finetune import finetune_on_task
from repro.training.trainer import TrainConfig

task = sys.argv[1] if len(sys.argv) > 1 else "CoLA"
if task not in GLUE_TASKS:
    raise SystemExit(f"unknown task {task!r}; choose from {sorted(GLUE_TASKS)}")
spec = GLUE_TASKS[task]

print(f"Pre-training the shared backbone (MLM, no compression)...")
backbone = pretrain_backbone("w/o", steps=400, seed=0)

print(f"\nFine-tuning on {task} (metric: {spec.metric}, ×100):")
for scheme in ["w/o", "A2", "Q2", "T1", "R1"]:
    result = finetune_on_task(
        task,
        scheme=scheme,
        tp=2,
        pp=2,
        policy=DEFAULT_POLICY if scheme != "w/o" else None,
        seed=0,
        backbone_state=backbone,
        train_config=TrainConfig(epochs=spec.finetune_epochs, lr=1e-3, seed=0),
    )
    print(f"  {scheme:4s}: {result.primary:6.2f}   (final train loss {result.final_loss:.3f})")

print("\nExpected shape: w/o ≈ Q2 ≈ A2 well above T1 and R1 — sparsifying "
      "activations loses the information the task needs (Fig. 2's lesson).")
