"""Throughput what-if study: when does activation compression pay off?

Reproduces the paper's central systems question on custom hardware: sweep
the interconnect bandwidth and find the crossover where the AE's encode/
decode overhead is repaid by communication savings — the NVLink-vs-PCIe
story of Tables 2/3 as a continuous curve.

Run: ``python examples/throughput_study.py``
"""

from repro.experiments.report import format_table
from repro.parallel.topology import ClusterTopology, LinkType
from repro.simulator import IterationSimulator, SimSetting
from repro.simulator.hardware import LINKS, LinkSpec

rows = []
for bw in [2, 5, 10, 20, 40, 80, 160]:
    # Install a hypothetical intra-node link of `bw` GB/s (no ring scaling).
    LINKS[LinkType.PCIE] = LinkSpec(f"hypothetical {bw} GB/s", float(bw), 15e-6)
    topo = ClusterTopology.local_pcie()
    wo = IterationSimulator(SimSetting(topo, 4, 1, 32, 512, scheme="w/o")).total_ms()
    a2 = IterationSimulator(SimSetting(topo, 4, 1, 32, 512, scheme="A2")).total_ms()
    t1 = IterationSimulator(SimSetting(topo, 4, 1, 32, 512, scheme="T1")).total_ms()
    rows.append({
        "link_GBps": bw,
        "w/o": wo,
        "A2": a2,
        "T1": t1,
        "A2_speedup": wo / a2,
        "T1_speedup": wo / t1,
    })

# restore the calibrated default
LINKS[LinkType.PCIE] = LinkSpec("PCIe (shared bridge)", 10.0, 15e-6)

print(format_table(rows, title="AE vs Top-K speedup across interconnect bandwidth "
                               "(BERT-Large, TP=4, b=32, s=512)"))

gainful = [r for r in rows if r["A2_speedup"] > 1.02]
if gainful:
    print(f"\nAE pays off below ~{max(r['link_GBps'] for r in gainful)} GB/s — "
          "on faster fabrics the encode/decode overhead wins (Takeaway 1).")
