"""Reproduce Fig. 2 and test the excluded PowerSGD baseline.

Prints the cumulative singular-value curves behind the paper's Figure 2
(gradient vs activation) as ASCII, then quantifies the consequence: a
low-rank compressor (PowerSGD) reconstructs gradients well but fails on
activations — the reason §3.1 excludes the entire family.

Run: ``python examples/lowrank_analysis.py``
"""

import numpy as np

from repro.analysis import collect_gradient_and_activation, singular_value_profile
from repro.compression import PowerSGDCompressor

grad, act = collect_gradient_and_activation(batch=16, seq=16, seed=0)

print("Cumulative singular-value mass (Fig. 2):")
print(f"{'dims kept':>10}  {'gradient':>9}  {'activation':>10}")
gd, gc = singular_value_profile(grad)
ad, ac = singular_value_profile(act)
for frac in (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0):
    gi = min(int(frac * len(gd)), len(gd) - 1)
    ai = min(int(frac * len(ad)), len(ad) - 1)
    bar_g = "#" * int(30 * gc[gi])
    print(f"{frac:>9.0%}  {gc[gi]:>9.2f}  {ac[ai]:>10.2f}   {bar_g}")

print("\nConsequence — PowerSGD (rank 4) relative reconstruction error:")
for name, matrix in [("gradient", grad), ("activation", act)]:
    comp = PowerSGDCompressor(rank=4, warm_start=False, seed=0)
    err = min(
        float(np.linalg.norm(comp.roundtrip(matrix) - matrix) / np.linalg.norm(matrix))
        for _ in range(3)  # a few power iterations
    )
    print(f"  {name:>10}: {err:.3f}")

print("\nGradients live in a few directions; activations do not. Low-rank "
      "compression is a gradient-compression tool, not an activation one.")
