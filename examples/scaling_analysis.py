"""Scaling analysis with the §4.7 analytical model.

Answers the paper's closing question — "what happens when we scale up the
model and the cluster?" — by fitting the analytical cost model and
evaluating (a) the fixed-cluster speedup decay (Eq. 2 / Fig. 5d) and
(b) weak scaling à la Megatron (Eq. 3 / Table 10).

Run: ``python examples/scaling_analysis.py``
"""

from repro.experiments.report import format_table
from repro.parallel.topology import LinkType
from repro.perfmodel import AnalyticalModel, fit_from_simulator, weak_scaling_table

params, _ = fit_from_simulator(link=LinkType.ETHERNET)
model = AnalyticalModel(params, encoder_dim=100)

print(f"Fitted parameters: alpha={params.alpha:.3e} ms/FLOP, "
      f"beta={params.beta:.3e} ms/elem, gamma={params.gamma:.3e} ms/elem,")
print(f"  small-message constant c={params.comm_const_ms:.2f} ms below "
      f"d={params.comm_threshold_elems:.0f} elements (paper: c~0.2, d=409600)")

print("\nFixed cluster (Eq. 2): AE speedup decays as the model grows —")
rows = [{"hidden": h, "speedup": model.speedup(16, 128, h)}
        for h in (1024, 2048, 4096, 8192, 16384, 25600)]
print(format_table(rows))

print("\nWeak scaling (Eq. 3): grow nodes with the model and the benefit holds —")
print(format_table(weak_scaling_table(model)))
print("\nAsymptotically the weak-scaled speedup approaches h/e rather than 1: "
      "compression stays useful only if the cluster grows with the model.")
