"""Quickstart: compress activations, inspect messages, run a parallel model.

Walks the three layers of the library in ~60 lines:
1. compressors as message transformers (what goes on the wire),
2. the model-parallel runtime with compression sites (what training sees),
3. the performance simulator (what it costs on real hardware).

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro.compression import build_compressor
from repro.nn.transformer import TransformerConfig
from repro.parallel import ModelParallelBertClassifier, ModelParallelConfig
from repro.parallel.topology import ClusterTopology
from repro.simulator import IterationSimulator, SimSetting

# ----------------------------------------------------------------------
# 1. Compressors: the paper's notation table, instantiated for h=1024.
# ----------------------------------------------------------------------
activation = np.random.default_rng(0).normal(size=(8, 64, 1024)).astype(np.float32)
print("Scheme  wire bytes  ratio   rel. reconstruction error")
for label in ["w/o", "A1", "A2", "T1", "T4", "R1", "Q1", "Q2"]:
    comp = build_compressor(label, hidden=1024)
    msg = comp.compress(activation)
    err = comp.reconstruction_error(activation)
    print(f"{label:5s}  {msg.wire_bytes:>10,}  {msg.ratio:5.1f}x  {err:.3f}")

# ----------------------------------------------------------------------
# 2. A model-parallel BERT with AE compression on the last half of layers.
# ----------------------------------------------------------------------
cfg = TransformerConfig(vocab_size=128, max_seq_len=32, hidden=64,
                        num_layers=4, num_heads=4, num_classes=2, seed=0)
model = ModelParallelBertClassifier(
    ModelParallelConfig(cfg, tp=2, pp=2, scheme="A2", seed=0)
)
ids = np.random.default_rng(1).integers(0, 128, size=(4, 16))
loss = model.loss(ids, np.array([0, 1, 0, 1]))
loss.backward()
fwd = model.tracker.total_bytes(phase="forward")
bwd = model.tracker.total_bytes(phase="backward")
print(f"\nMP forward put {fwd:,} bytes on the wire; backward {bwd:,} bytes")
print(f"AE parameters training jointly: {len(model.backbone.compressor_parameter_names)}")

# ----------------------------------------------------------------------
# 3. What would this cost on real V100s? Ask the simulator (BERT-Large).
# ----------------------------------------------------------------------
print("\nSimulated BERT-Large fine-tune iteration (ms), PCIe machine, TP=2 PP=2:")
for scheme in ["w/o", "A2", "T1", "Q2"]:
    sim = IterationSimulator(
        SimSetting(ClusterTopology.local_pcie(), 2, 2, 32, 512, scheme=scheme)
    )
    print(f"  {scheme:4s}: {sim.total_ms():8.1f}")
