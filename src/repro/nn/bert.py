"""BERT-style models: encoder backbone plus task heads.

Three entry points mirror the paper's workflow:

- :class:`BertModel` — embeddings + transformer encoder.
- :class:`BertForSequenceClassification` — GLUE fine-tuning head
  (classification or regression, per-task; see §4.3).
- :class:`BertForPreTraining` — masked-language-model head (§4.4).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.transformer import TransformerConfig, TransformerEncoder
from repro.tensor import Tensor, functional as F

__all__ = ["BertModel", "BertForSequenceClassification", "BertForPreTraining"]


class BertModel(Module):
    """Embedding layers + transformer encoder stack."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.hidden, rng, config.init_std)
        self.position_embedding = Embedding(config.max_seq_len, config.hidden, rng, config.init_std)
        self.embed_ln = LayerNorm(config.hidden)
        self.embed_dropout = Dropout(config.dropout, rng)
        self.encoder = TransformerEncoder(config, rng)

    def forward(self, input_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> Tensor:
        """Encode ``input_ids`` of shape ``(batch, seq)`` to hidden states.

        ``attention_mask`` is 1 for real tokens and 0 for padding.
        """
        input_ids = np.asarray(input_ids)
        b, s = input_ids.shape
        if s > self.config.max_seq_len:
            raise ValueError(f"sequence length {s} exceeds max {self.config.max_seq_len}")
        pos = np.arange(s)[None, :].repeat(b, axis=0)
        x = self.token_embedding(input_ids) + self.position_embedding(pos)
        x = self.embed_dropout(self.embed_ln(x))
        mask4d = None
        if attention_mask is not None:
            # True marks masked-out (padding) key positions.
            mask4d = (np.asarray(attention_mask) == 0)[:, None, None, :]
        return self.encoder(x, mask4d)


class BertForSequenceClassification(Module):
    """Backbone + pooled classification/regression head (GLUE)."""

    def __init__(
        self,
        config: TransformerConfig,
        rng: np.random.Generator | None = None,
        regression: bool = False,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.config = config
        self.regression = regression
        self.bert = BertModel(config, rng)
        num_out = 1 if regression else config.num_classes
        self.classifier = Linear(config.hidden, num_out, rng, init_std=config.init_std)

    def forward(self, input_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> Tensor:
        hidden = self.bert(input_ids, attention_mask)
        # Pool the first ([CLS]) token, as in BERT.
        pooled = hidden[:, 0, :]
        return self.classifier(pooled)

    def loss(self, input_ids, labels, attention_mask=None) -> Tensor:
        """Task loss: cross-entropy for classification, MSE for regression."""
        logits = self.forward(input_ids, attention_mask)
        if self.regression:
            return F.mse_loss(logits.reshape(-1), np.asarray(labels, dtype=np.float32))
        return F.cross_entropy(logits, np.asarray(labels))

    def predict(self, input_ids, attention_mask=None) -> np.ndarray:
        """Class predictions (or raw scores for regression)."""
        logits = self.forward(input_ids, attention_mask)
        if self.regression:
            return logits.data.reshape(-1)
        return logits.data.argmax(axis=-1)


class BertForPreTraining(Module):
    """Backbone + masked-language-model head."""

    IGNORE_INDEX = -100

    def __init__(self, config: TransformerConfig, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.config = config
        self.bert = BertModel(config, rng)
        self.mlm_dense = Linear(config.hidden, config.hidden, rng, init_std=config.init_std)
        self.mlm_ln = LayerNorm(config.hidden)
        self.mlm_head = Linear(config.hidden, config.vocab_size, rng, init_std=config.init_std)

    def forward(self, input_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> Tensor:
        hidden = self.bert(input_ids, attention_mask)
        h = self.mlm_ln(F.gelu(self.mlm_dense(hidden)))
        return self.mlm_head(h)

    def loss(self, input_ids, mlm_labels, attention_mask=None) -> Tensor:
        """MLM cross-entropy; positions equal to ``IGNORE_INDEX`` are skipped."""
        logits = self.forward(input_ids, attention_mask)
        return F.cross_entropy(logits, np.asarray(mlm_labels), ignore_index=self.IGNORE_INDEX)
