"""Neural-network module system built on :mod:`repro.tensor`.

Mirrors the subset of ``torch.nn`` needed for BERT-style transformers:
a :class:`Module` base with parameter registration, core layers, and the
transformer/BERT model definitions used throughout the reproduction.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Linear, Embedding, LayerNorm, Dropout
from repro.nn.attention import MultiHeadAttention
from repro.nn.transformer import TransformerLayer, TransformerEncoder, TransformerConfig
from repro.nn.bert import (
    BertModel,
    BertForSequenceClassification,
    BertForPreTraining,
)

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "MultiHeadAttention",
    "TransformerLayer",
    "TransformerEncoder",
    "TransformerConfig",
    "BertModel",
    "BertForSequenceClassification",
    "BertForPreTraining",
]
