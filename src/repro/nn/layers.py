"""Core layers: Linear, Embedding, LayerNorm, Dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F

__all__ = ["Linear", "Embedding", "LayerNorm", "Dropout"]


class Linear(Module):
    """Affine layer with weight shape ``(in_features, out_features)``.

    The non-transposed layout makes Megatron-style column/row parallel
    partitioning a contiguous slice (columns = output features, rows =
    input features).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        init_std: float = 0.02,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            rng.normal(0.0, init_std, size=(in_features, out_features)).astype(np.float32)
        )
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Token embedding table of shape ``(num_embeddings, dim)``."""

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: np.random.Generator,
        init_std: float = 0.02,
    ):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(
            rng.normal(0.0, init_std, size=(num_embeddings, dim)).astype(np.float32)
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        return F.embedding(self.weight, ids)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.dim})"


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32))
        self.bias = Parameter(np.zeros(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.dim})"


class Dropout(Module):
    """Inverted dropout driven by an explicit RNG for reproducibility."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
