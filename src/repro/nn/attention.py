"""Multi-head self-attention."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.tensor import Tensor, functional as F

__all__ = ["MultiHeadAttention", "attention_core"]


def attention_core(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    attention_mask: np.ndarray | None = None,
) -> Tensor:
    """Scaled dot-product attention over per-head tensors.

    Parameters
    ----------
    q, k, v:
        Shape ``(batch, heads, seq, head_dim)``.
    attention_mask:
        Boolean array broadcastable to ``(batch, heads, seq, seq)`` where
        ``True`` marks positions to mask out (padding).
    """
    head_dim = q.shape[-1]
    scores = (q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(head_dim))
    if attention_mask is not None:
        scores = F.masked_fill(scores, attention_mask, -1e9)
    probs = F.softmax(scores, axis=-1)
    return probs @ v


class MultiHeadAttention(Module):
    """Standard multi-head self-attention with output projection.

    This serial version is the reference; the tensor-parallel counterpart
    (:class:`repro.parallel.tensor_parallel.ParallelAttention`) partitions
    the heads across ranks and must compute the same function.
    """

    def __init__(
        self,
        hidden: int,
        num_heads: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
        init_std: float = 0.02,
    ):
        super().__init__()
        if hidden % num_heads != 0:
            raise ValueError(f"hidden={hidden} not divisible by num_heads={num_heads}")
        self.hidden = hidden
        self.num_heads = num_heads
        self.head_dim = hidden // num_heads
        self.qkv = Linear(hidden, 3 * hidden, rng, init_std=init_std)
        self.out = Linear(hidden, hidden, rng, init_std=init_std)
        self.dropout = Dropout(dropout, rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        b, s, _ = x.shape
        return x.reshape(b, s, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        b, s, _ = x.shape
        qkv = self.qkv(x)
        q = self._split_heads(qkv[:, :, : self.hidden])
        k = self._split_heads(qkv[:, :, self.hidden : 2 * self.hidden])
        v = self._split_heads(qkv[:, :, 2 * self.hidden :])
        ctx = attention_core(q, k, v, attention_mask)
        ctx = ctx.transpose(0, 2, 1, 3).reshape(b, s, self.hidden)
        return self.dropout(self.out(ctx))
