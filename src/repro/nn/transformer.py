"""Transformer encoder layer and stack (BERT-style, post-LN)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.module import ModuleList
from repro.tensor import Tensor, functional as F

__all__ = ["TransformerConfig", "TransformerLayer", "TransformerEncoder"]


@dataclass
class TransformerConfig:
    """Architecture hyper-parameters.

    Defaults describe the small model used for (real) accuracy experiments;
    ``bert_large()`` gives the paper's 345M-parameter configuration, which
    is used only inside the performance simulator.
    """

    vocab_size: int = 128
    max_seq_len: int = 64
    hidden: int = 64
    num_layers: int = 4
    num_heads: int = 4
    ffn_hidden: int | None = None
    dropout: float = 0.0
    init_std: float = 0.02
    num_classes: int = 2
    seed: int = 0

    def __post_init__(self):
        if self.ffn_hidden is None:
            self.ffn_hidden = 4 * self.hidden
        if self.hidden % self.num_heads != 0:
            raise ValueError("hidden must be divisible by num_heads")

    @staticmethod
    def bert_large() -> "TransformerConfig":
        """The paper's BERT-Large: 24 layers, hidden 1024, 16 heads."""
        return TransformerConfig(
            vocab_size=30522,
            max_seq_len=512,
            hidden=1024,
            num_layers=24,
            num_heads=16,
        )


class TransformerLayer(Module):
    """Post-LN encoder block: MHA + residual + LN, FFN + residual + LN."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.attn = MultiHeadAttention(
            config.hidden, config.num_heads, rng, dropout=config.dropout, init_std=config.init_std
        )
        self.ln1 = LayerNorm(config.hidden)
        self.fc1 = Linear(config.hidden, config.ffn_hidden, rng, init_std=config.init_std)
        self.fc2 = Linear(config.ffn_hidden, config.hidden, rng, init_std=config.init_std)
        self.ln2 = LayerNorm(config.hidden)
        self.dropout = Dropout(config.dropout, rng)

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        x = self.ln1(x + self.attn(x, attention_mask))
        h = self.fc2(F.gelu(self.fc1(x)))
        return self.ln2(x + self.dropout(h))


class TransformerEncoder(Module):
    """A stack of :class:`TransformerLayer` with optional per-layer hooks.

    ``layer_hooks`` is the integration point for activation compression in
    the *serial* (non-model-parallel) path: hook ``i`` is applied to the
    output of layer ``i``. The model-parallel runtime instead compresses
    inside its communication ops.
    """

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.layers = ModuleList(
            TransformerLayer(config, rng) for _ in range(config.num_layers)
        )
        self.layer_hooks: dict[int, callable] = {}

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x, attention_mask)
            hook = self.layer_hooks.get(i)
            if hook is not None:
                x = hook(x)
        return x
