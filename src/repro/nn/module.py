"""Module/Parameter system with recursive registration.

Follows the torch.nn conventions: attributes that are :class:`Parameter` or
:class:`Module` instances are auto-registered; ``parameters()`` /
``named_parameters()`` walk the tree; ``state_dict`` / ``load_state_dict``
serialize to plain NumPy arrays.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A :class:`Tensor` that is a learnable leaf (``requires_grad=True``)."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network modules.

    Subclasses define parameters and submodules as attributes in
    ``__init__`` and implement ``forward``. Calling the module invokes
    ``forward``.
    """

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, Module] = {}
        self.training = True

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def register_module(self, name: str, module: "Module") -> None:
        """Register a submodule under ``name`` (for list-held children)."""
        self._modules[name] = module

    def add_parameter(self, name: str, param: Parameter) -> None:
        """Register a parameter under ``name`` (for dynamically built ones)."""
        self._parameters[name] = param

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` over the whole subtree."""
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for name, m in self._modules.items():
            yield from m.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """All parameters in the subtree, in registration order."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def modules(self) -> Iterator["Module"]:
        """Yield self and all descendant modules."""
        yield self
        for m in self._modules.values():
            yield from m.modules()

    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear gradients of every parameter in the subtree."""
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy every parameter's array keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load arrays into matching parameters.

        With ``strict=False``, missing keys are skipped (the paper's Table 8
        workflow — dropping AE parameters when fine-tuning a pre-trained
        checkpoint — relies on this).
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, arr in state.items():
            if name not in own:
                continue
            if own[name].data.shape != arr.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {own[name].data.shape} vs {arr.shape}"
                )
            own[name].data = arr.astype(own[name].data.dtype).copy()

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(params={self.num_parameters()})"


class ModuleList(Module):
    """Container holding an ordered list of submodules."""

    def __init__(self, modules=()):
        super().__init__()
        self._list: list[Module] = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> None:
        self.register_module(str(len(self._list)), module)
        self._list.append(module)

    def __iter__(self):
        return iter(self._list)

    def __len__(self):
        return len(self._list)

    def __getitem__(self, idx):
        return self._list[idx]
