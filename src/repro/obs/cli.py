"""``python -m repro.obs`` — report on recorded runs, produce smoke runs.

Usage::

    python -m repro.obs report runs/smoke-T2.jsonl [--trace out.json]
    python -m repro.obs smoke --outdir runs [--schemes T2 R2 Q2 A2]
                              [--task RTE] [--epochs 1] [--batch-size 32]
    python -m repro.obs sim-trace --out sim.json [--scheme A2]
                                  [--tp 2] [--pp 2] [--microbatches 4]
                                  [--schedule 1f1b]
    python -m repro.obs mp-trace --out mp.json [--scheme A2]
                                 [--tp 2] [--pp 2] [--schedule 1f1b]
                                 [--microbatches 4] [--conc-log runs/conc]
    python -m repro.obs top --steps 8 [--scheme A2] [--tp 2] [--pp 2]
                            [--registry runs] [--html dash.html]
    python -m repro.obs diff RUN_A RUN_B [--registry runs]
    python -m repro.obs html RUN --out dash.html [--registry runs]

``report`` prints a per-run summary (gauges, phase timers, per-site
compression fidelity when a sidecar ``*.fidelity.json`` exists) from a
JSONL file written by :meth:`~repro.obs.metrics.RunRecorder.to_jsonl`.

``smoke`` runs one short recorded fine-tune per scheme and writes, per
scheme, ``smoke-<scheme>.jsonl`` / ``.csv`` / ``.trace.json`` /
``.fidelity.json`` — the artifact set CI uploads.

``sim-trace`` exports the simulated GPipe iteration of one Table-4
setting as a Chrome trace (open in Perfetto or ``chrome://tracing``).

``mp-trace`` runs one real training step through the multiprocess
execution backend with per-rank timelines enabled and merges the worker
timelines into one Chrome trace — one track per logical rank, ``mp.wait``
slices showing where ranks block on each other.

``top`` drives a short real training loop through the mp backend with
the live telemetry side channel enabled (``REPRO_TELEMETRY=1``) and
renders a per-rank health dashboard after every optimizer step.  The
final window state is saved into the run registry (``--registry``) and
optionally as a standalone HTML snapshot (``--html``).

``diff`` compares two registry runs metric-by-metric; ``html`` renders a
saved registry run as an HTML dashboard.

``mp-trace`` and ``top`` observe the multiprocess backend's side
channels, so both refuse an inproc run (``--backend`` / the
``REPRO_BACKEND`` environment variable) with a clear error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.experiments.report import format_table
from repro.obs.fidelity import FidelityProbe
from repro.obs.metrics import RunRecorder, load_jsonl
from repro.obs.trace import (
    simulated_iteration_trace,
    trace_from_run,
    worker_timelines_trace,
    write_trace,
)

__all__ = ["main"]

#: One representative scheme per compressor family (topk/randomk/quant/ae).
SMOKE_SCHEMES = ["T2", "R2", "Q2", "A2"]


def _summarize(meta: dict, records: list[dict]) -> str:
    lines = [f"run: {meta.get('run_id', '?')}  steps: {len(records)}"]
    extra = {k: v for k, v in meta.items() if k not in ("type", "run_id")}
    if extra:
        lines.append("meta: " + ", ".join(f"{k}={v}" for k, v in sorted(extra.items())))
    wall = sum(r.get("wall_ms") or 0.0 for r in records)
    lines.append(f"wall: {wall:.1f} ms")

    gauges: dict[str, list[float]] = {}
    timers: dict[str, float] = {}
    for r in records:
        for name, value in r.get("gauges", {}).items():
            gauges.setdefault(name, []).append(value)
        for name, value in r.get("timers_ms", {}).items():
            timers[name] = timers.get(name, 0.0) + value
    if gauges:
        rows = [
            {"gauge": name, "first": vals[0], "last": vals[-1],
             "mean": sum(vals) / len(vals), "min": min(vals), "max": max(vals)}
            for name, vals in sorted(gauges.items())
        ]
        lines.append("")
        lines.append(format_table(rows, title="Gauges"))
    if timers:
        rows = [
            {"phase": name, "total_ms": total,
             "share_%": 100.0 * total / max(wall, 1e-9)}
            for name, total in sorted(timers.items(), key=lambda kv: -kv[1])
        ]
        lines.append("")
        lines.append(format_table(rows, title="Phase timers"))
    return "\n".join(lines)


def _fidelity_table(per_site: dict) -> str:
    rows = [
        {"site": site, **{k: (v if v is not None else "-") for k, v in agg.items()}}
        for site, agg in sorted(per_site.items())
    ]
    return format_table(rows, title="Compression fidelity (per site)")


def cmd_report(args: argparse.Namespace) -> int:
    if not os.path.exists(args.run):
        print(f"error: run file not found: {args.run}", file=sys.stderr)
        return 1
    try:
        meta, records = load_jsonl(args.run)
    except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
        print(f"error: cannot read {args.run} as a RunRecorder JSONL file: {exc}",
              file=sys.stderr)
        return 1
    if not records:
        print(
            f"error: {args.run} contains no step records "
            "(expected RunRecorder JSONL: a meta header plus one JSON object "
            "per step; produce one with `python -m repro.obs smoke`)",
            file=sys.stderr,
        )
        return 1
    print(_summarize(meta, records))
    sidecar = os.path.splitext(args.run)[0] + ".fidelity.json"
    if os.path.exists(sidecar):
        with open(sidecar, "r", encoding="utf-8") as fh:
            fidelity = json.load(fh)
        print()
        print(_fidelity_table(fidelity.get("per_site", {})))
    if args.trace:
        write_trace(trace_from_run(records, meta), args.trace)
        print(f"\ntrace written to {args.trace}")
    return 0


def cmd_smoke(args: argparse.Namespace) -> int:
    # Imported here: training pulls in the full model stack, which `report`
    # (the common path) should not pay for.
    from repro.training.finetune import finetune_on_task
    from repro.training.trainer import TrainConfig

    os.makedirs(args.outdir, exist_ok=True)
    written: list[str] = []
    for scheme in args.schemes:
        recorder = RunRecorder(
            run_id=f"smoke-{scheme}",
            meta={"task": args.task, "scheme": scheme, "tp": 2, "pp": 2},
        )
        probe = FidelityProbe()
        result = finetune_on_task(
            args.task,
            scheme=scheme,
            tp=2,
            pp=2,
            train_config=TrainConfig(epochs=args.epochs, lr=1e-3, seed=0,
                                     batch_size=args.batch_size),
            seed=0,
            recorder=recorder,
            probe=probe,
        )
        stem = os.path.join(args.outdir, f"smoke-{scheme}")
        written.append(recorder.to_jsonl(stem + ".jsonl"))
        written.append(recorder.to_csv(stem + ".csv"))
        written.append(write_trace(
            trace_from_run(recorder.records, {"run_id": recorder.run_id, **recorder.meta}),
            stem + ".trace.json",
        ))
        with open(stem + ".fidelity.json", "w", encoding="utf-8") as fh:
            json.dump(probe.to_json(), fh, indent=2)
        written.append(stem + ".fidelity.json")
        print(f"{scheme}: {len(recorder.records)} steps, "
              f"{len(probe.records)} fidelity records over "
              f"{len(probe.sites())} sites, primary={result.primary:.2f}")
    print("wrote:")
    for path in written:
        print(f"  {path}")
    return 0


def cmd_sim_trace(args: argparse.Namespace) -> int:
    from repro.parallel.topology import ClusterTopology
    from repro.simulator.iteration import SimSetting

    setting = SimSetting(
        ClusterTopology.p3_8xlarge(), args.tp, args.pp, args.batch, args.seq,
        num_microbatches=args.microbatches, scheme=args.scheme,
        schedule=args.schedule,
    )
    write_trace(simulated_iteration_trace(setting), args.out)
    print(f"simulated {args.scheme} TP={args.tp} PP={args.pp} "
          f"{args.schedule} trace -> {args.out}")
    return 0


def _require_mp_backend(args: argparse.Namespace, verb: str) -> str | None:
    """Resolve the execution backend for a telemetry verb; ``None`` = refuse.

    Precedence: ``--backend`` flag, then ``REPRO_BACKEND``, then ``mp``.
    The mp side channels (per-rank timelines, the telemetry queue) do not
    exist for an inproc run, so anything other than ``mp`` is an error —
    printed to stderr so scripts see a clean exit 1, not a traceback.
    """
    backend = args.backend or os.environ.get("REPRO_BACKEND", "").strip() or "mp"
    if backend != "mp":
        print(
            f"error: `repro.obs {verb}` observes the multiprocess backend's "
            f"side channels (per-rank timelines, the telemetry queue); "
            f"backend {backend!r} runs in-process and has none. "
            f"Re-run with --backend mp (or unset REPRO_BACKEND).",
            file=sys.stderr,
        )
        return None
    return backend


def cmd_mp_trace(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.parallel import ModelParallelBertClassifier, ModelParallelConfig
    from repro.parallel.backend import create_backend
    from repro.parallel.backend.conclog import ENV_VAR as CONC_ENV
    from repro.training.finetune import default_accuracy_model

    if _require_mp_backend(args, "mp-trace") is None:
        return 1
    if args.conc_log:
        # Workers are spawned with an inherited environment, so setting
        # the variable here makes every rank write a per-rank event log
        # into the directory — replayable with
        # ``python -m repro.lint --race-log <dir>``.
        os.makedirs(args.conc_log, exist_ok=True)
        os.environ[CONC_ENV] = args.conc_log

    cfg = ModelParallelConfig(
        default_accuracy_model(num_classes=2, seed=0),
        tp=args.tp, pp=args.pp, scheme=args.scheme, seed=0, backend="mp",
        pipeline_schedule=args.schedule, num_microbatches=args.microbatches,
    )
    model = ModelParallelBertClassifier(cfg)
    rng = np.random.default_rng(0)
    input_ids = rng.integers(0, cfg.model.vocab_size, size=(args.batch, args.seq))
    labels = rng.integers(0, 2, size=args.batch)

    backend = create_backend("mp", model, collect_timelines=True)
    try:
        result = backend.train_step(input_ids, labels, None)
    finally:
        backend.close()
    meta = {"run_id": f"mp-step-{args.scheme}-tp{args.tp}pp{args.pp}",
            "scheme": args.scheme, "tp": args.tp, "pp": args.pp,
            "loss": result.loss}
    write_trace(worker_timelines_trace(result.timelines, meta), args.out)
    spans = sum(len(t) for t in result.timelines.values())
    print(f"mp {args.scheme} TP={args.tp} PP={args.pp}: "
          f"{len(result.timelines)} ranks, {spans} spans -> {args.out}")
    if args.conc_log:
        print(f"concurrency event logs -> {args.conc_log} "
              f"(replay: python -m repro.lint --race-log {args.conc_log})")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.obs.telemetry import (
        Collector,
        HealthMonitor,
        build_summary,
        render_top,
        save_run,
        write_html,
    )
    from repro.obs.telemetry.agent import ENV_VAR as TELEM_ENV
    from repro.optim import Adam
    from repro.parallel import ModelParallelBertClassifier, ModelParallelConfig
    from repro.parallel.backend import create_backend
    from repro.training.finetune import default_accuracy_model

    if _require_mp_backend(args, "top") is None:
        return 1
    # Workers inherit the parent environment, so flipping the switch here
    # is what makes every spawned rank stream telemetry.
    os.environ[TELEM_ENV] = "1"

    cfg = ModelParallelConfig(
        default_accuracy_model(num_classes=2, seed=0),
        tp=args.tp, pp=args.pp, scheme=args.scheme, seed=0, backend="mp",
        pipeline_schedule=args.schedule, num_microbatches=args.microbatches,
    )
    model = ModelParallelBertClassifier(cfg)
    rng = np.random.default_rng(0)
    collector = Collector()
    monitor = HealthMonitor(collector)
    run_id = args.run_id or f"top-{args.scheme}-tp{args.tp}pp{args.pp}"
    clear = sys.stdout.isatty()

    backend = create_backend("mp", model)
    try:
        optimizer = Adam(model.parameters(), lr=1e-3)
        for step in range(args.steps):
            input_ids = rng.integers(0, cfg.model.vocab_size,
                                     size=(args.batch, args.seq))
            labels = rng.integers(0, 2, size=args.batch)
            optimizer.zero_grad()
            result = backend.train_step(input_ids, labels, None)
            backend.apply_grads(model, result)
            optimizer.step()
            backend.sync_weights(model)
            collector.drain(backend, grace_s=0.2)
            collector.observe(None, "loss", result.loss)
            monitor.check(step)
            frame = render_top(collector, monitor, step=step)
            print(("\x1b[2J\x1b[H" if clear else "") + frame)
            if not clear:
                print("-" * 72)
    finally:
        backend.close()
    # close() parks any late queue batches in the backlog; one more drain
    # folds them into the final window before the summary is frozen.
    collector.drain(backend)
    monitor.check(args.steps)

    summary = build_summary(
        run_id, collector, monitor,
        meta={"scheme": args.scheme, "tp": args.tp, "pp": args.pp,
              "schedule": args.schedule, "microbatches": args.microbatches,
              "steps": args.steps, "fault_plan": os.environ.get("REPRO_FAULT_PLAN", "")},
    )
    path = save_run(args.registry, summary)
    print(f"run summary -> {path}")
    if args.html:
        print(f"html dashboard -> {write_html(args.html, summary)}")
    alerts = summary["health"]["total"]
    print(f"{args.steps} steps, {alerts} alert(s)")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import RunSchemaError, format_diff, load_run, resolve_run

    try:
        doc_a = load_run(resolve_run(args.registry, args.run_a))
        doc_b = load_run(resolve_run(args.registry, args.run_b))
    except (FileNotFoundError, RunSchemaError, json.JSONDecodeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_diff(doc_a, doc_b))
    return 0


def cmd_html(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import RunSchemaError, load_run, resolve_run, write_html

    try:
        doc = load_run(resolve_run(args.registry, args.run))
    except (FileNotFoundError, RunSchemaError, json.JSONDecodeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"html dashboard -> {write_html(args.out, doc)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.obs",
                                     description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_report = sub.add_parser("report", help="summarize a recorded run")
    p_report.add_argument("run", help="path to a RunRecorder JSONL file")
    p_report.add_argument("--trace", help="also export a Chrome trace to this path")
    p_report.set_defaults(fn=cmd_report)

    p_smoke = sub.add_parser("smoke", help="run short recorded fine-tunes")
    p_smoke.add_argument("--outdir", default="runs")
    p_smoke.add_argument("--task", default="RTE")
    p_smoke.add_argument("--schemes", nargs="+", default=SMOKE_SCHEMES)
    p_smoke.add_argument("--epochs", type=int, default=1)
    p_smoke.add_argument("--batch-size", type=int, default=32)
    p_smoke.set_defaults(fn=cmd_smoke)

    p_sim = sub.add_parser("sim-trace", help="export a simulated GPipe iteration trace")
    p_sim.add_argument("--out", default="sim-trace.json")
    p_sim.add_argument("--scheme", default="A2")
    p_sim.add_argument("--tp", type=int, default=2)
    p_sim.add_argument("--pp", type=int, default=2)
    p_sim.add_argument("--batch", type=int, default=16)
    p_sim.add_argument("--seq", type=int, default=512)
    p_sim.add_argument("--microbatches", type=int, default=4)
    p_sim.add_argument("--schedule", choices=["gpipe", "1f1b"], default="gpipe")
    p_sim.set_defaults(fn=cmd_sim_trace)

    p_mp = sub.add_parser("mp-trace",
                          help="export per-rank timelines of one real mp-backend step")
    p_mp.add_argument("--out", default="mp-trace.json")
    p_mp.add_argument("--scheme", default="A2")
    p_mp.add_argument("--tp", type=int, default=2)
    p_mp.add_argument("--pp", type=int, default=2)
    p_mp.add_argument("--batch", type=int, default=8)
    p_mp.add_argument("--seq", type=int, default=16)
    p_mp.add_argument("--schedule", choices=["gpipe", "1f1b"], default="gpipe")
    p_mp.add_argument("--microbatches", type=int, default=1)
    p_mp.add_argument("--conc-log", metavar="DIR",
                      help="record per-rank concurrency event logs (DYN003 "
                           "race-detector input) into DIR")
    p_mp.add_argument("--backend", default=None,
                      help="execution backend (default: $REPRO_BACKEND or mp; "
                           "anything but mp is refused)")
    p_mp.set_defaults(fn=cmd_mp_trace)

    p_top = sub.add_parser(
        "top", help="live per-rank telemetry dashboard over a short mp run")
    p_top.add_argument("--steps", type=int, default=8)
    p_top.add_argument("--scheme", default="A2")
    p_top.add_argument("--tp", type=int, default=2)
    p_top.add_argument("--pp", type=int, default=2)
    p_top.add_argument("--batch", type=int, default=8)
    p_top.add_argument("--seq", type=int, default=16)
    p_top.add_argument("--schedule", choices=["gpipe", "1f1b"], default="1f1b")
    p_top.add_argument("--microbatches", type=int, default=2)
    p_top.add_argument("--registry", default="runs",
                       help="run-registry directory for the final summary")
    p_top.add_argument("--run-id", default=None,
                       help="registry id (default: top-<scheme>-tp<T>pp<P>)")
    p_top.add_argument("--html", metavar="PATH",
                       help="also write a standalone HTML dashboard")
    p_top.add_argument("--backend", default=None,
                       help="execution backend (default: $REPRO_BACKEND or mp; "
                            "anything but mp is refused)")
    p_top.set_defaults(fn=cmd_top)

    p_diff = sub.add_parser(
        "diff", help="per-metric regression table between two registry runs")
    p_diff.add_argument("run_a", help="registry run id or summary path")
    p_diff.add_argument("run_b", help="registry run id or summary path")
    p_diff.add_argument("--registry", default="runs")
    p_diff.set_defaults(fn=cmd_diff)

    p_html = sub.add_parser(
        "html", help="render a saved registry run as an HTML dashboard")
    p_html.add_argument("run", help="registry run id or summary path")
    p_html.add_argument("--out", default="dashboard.html")
    p_html.add_argument("--registry", default="runs")
    p_html.set_defaults(fn=cmd_html)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream reader (e.g. ``| head``) closed stdout early; not an
        # error. Swap in devnull so interpreter shutdown doesn't re-raise
        # while flushing the dead pipe.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
