"""Op-level deterministic profiler for ``repro.tensor`` graphs.

An :class:`OpProfiler` attaches to the op-hook seam of
:mod:`repro.tensor` (:func:`~repro.tensor.register_op_hook`, the same
side-channel mechanism as the lint sanitizer's ``tensor_guard``) and
observes every op output and every executed backward closure.  Per op it
accumulates

- call counts and wall time (attributed as the gap since the previous
  profiler event — ops execute serially, so the gap is the op's compute
  plus interpreter overhead);
- FLOP and memory-traffic estimates derived from the op name and operand
  shapes (matmul = 2·N·K, elementwise = one FLOP and one traversal per
  element), convertible to predicted ms through the *same*
  :mod:`repro.simulator.kernels` formulas the timing tables use;
- allocation bytes (every op output's ``nbytes``) and an allocation
  high-water mark per logical rank: NumPy exposes no frees, so the mark
  is the largest amount allocated inside any one span tagged with that
  rank — a deterministic upper bound on live bytes per step.

A span stack (:meth:`OpProfiler.span`) tags forward/backward/collective
regions, optionally per SPMD rank; :meth:`OpProfiler.watch` wraps a
:class:`~repro.parallel.collectives.CommTracker` so every
:class:`~repro.parallel.collectives.CommEvent` is cross-linked to the
span that was open when it fired (and to its index in the tracker's
event list).  :func:`repro.obs.trace.profiler_trace` renders all of it as
a Chrome trace whose categories are ``prof.*``-prefixed, so merging with
a simulated-iteration trace never disturbs
:func:`~repro.obs.trace.validate_against_breakdown`.

Everything here is a side channel (DESIGN decision #7): with no profiler
installed the tensor hot path pays one empty-list truthiness check, and
installing one changes no numerics — only observes them.

The *deterministic* half of the profile — call counts, FLOPs, bytes,
allocations, comm cross-links — is identical run to run for a seeded
workload; only the wall-time columns are measurements.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.simulator.calibration import CALIBRATION, Calibration
from repro.simulator.hardware import V100, GPUSpec
from repro.simulator.kernels import gemm_time
from repro.tensor import register_op_hook, unregister_op_hook

__all__ = ["OpStats", "SpanRecord", "CommLink", "OpProfiler", "op_flops", "op_bytes"]

_FP32_BYTES = 4

#: Ops costing one FLOP (and roughly one memory traversal) per output
#: element. Shape/indexing ops (reshape, transpose, __getitem__, ...)
#: move bytes but add no FLOPs.
_ELEMENTWISE_OPS = frozenset({
    "__add__", "__sub__", "__mul__", "__truediv__", "__neg__", "__pow__",
    "exp", "log", "tanh", "sqrt", "abs", "maximum",
})
_REDUCTION_OPS = frozenset({"sum", "mean", "max"})


def op_flops(op: str, out_shape: tuple, parent_shapes: tuple) -> float:
    """Estimated FLOPs of one op call from its name and operand shapes."""
    n = float(np.prod(out_shape)) if out_shape else 1.0
    if op == "__matmul__" and parent_shapes:
        k = parent_shapes[0][-1]
        return 2.0 * n * float(k)
    if op in _ELEMENTWISE_OPS:
        return n
    if op in _REDUCTION_OPS and parent_shapes:
        return float(np.prod(parent_shapes[0]))
    return 0.0


def op_bytes(op: str, out_nbytes: int, parent_shapes: tuple) -> float:
    """Estimated memory traffic (bytes read + written) of one op call."""
    read = sum(float(np.prod(s)) for s in parent_shapes) * _FP32_BYTES
    return read + float(out_nbytes)


@dataclass
class OpStats:
    """Aggregate over all calls of one (phase, op) pair."""

    calls: int = 0
    wall_ms: float = 0.0
    flops: float = 0.0
    bytes_moved: float = 0.0
    alloc_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "wall_ms": self.wall_ms,
            "flops": self.flops,
            "bytes_moved": self.bytes_moved,
            "alloc_bytes": self.alloc_bytes,
        }


@dataclass
class SpanRecord:
    """One closed region from the span stack."""

    name: str
    cat: str  # "phase" | "collective" | caller-chosen
    path: str  # "step0/forward" — joined stack of open span names
    rank: int | None
    t_start_ms: float
    dur_ms: float
    alloc_bytes: int
    op_calls: int


@dataclass(frozen=True)
class CommLink:
    """Cross-link between a CommEvent and the profiler's span stack."""

    event_index: int  # index into the watched tracker's ``events`` list
    op: str
    group: str
    phase: str
    scheme: str
    site: str
    wire_bytes: int
    t_ms: float
    span_path: str
    rank: int | None


class OpProfiler:
    """Deterministic op-level profiler; install via ``with profiler:``.

    Parameters
    ----------
    clock:
        Monotonic clock in seconds; injectable for deterministic tests.
    cal:
        Calibration used when converting FLOP rollups to predicted ms.
    record_events:
        Keep one timeline entry per op call for Chrome-trace export.
        Rollups (counts/FLOPs/bytes) are collected either way; disable for
        long benchmark loops where only aggregates matter.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        cal: Calibration = CALIBRATION,
        gpu: GPUSpec = V100,
        record_events: bool = True,
    ):
        self._clock = clock
        self.cal = cal
        self.gpu = gpu
        self.record_events = record_events
        self._t0 = clock()
        self._last = self._t0
        self._installed = False
        self.ops: dict[tuple[str, str], OpStats] = {}  # (phase, op) -> stats
        self.op_events: list[tuple[str, str, float, float, int, int | None]] = []
        self.spans: list[SpanRecord] = []
        self.comm_links: list[CommLink] = []
        self._stack: list[dict] = []
        self._watched: list[tuple[object, Callable]] = []
        self.alloc_bytes = 0
        self.peak_alloc_by_rank: dict[int, int] = {}
        self.peak_span_alloc = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self) -> "OpProfiler":
        """Register with the tensor op-hook seam."""
        if not self._installed:
            register_op_hook(self._on_op)
            self._installed = True
            self._last = self._clock()
        return self

    def uninstall(self) -> None:
        """Unregister and unwrap any watched trackers."""
        if self._installed:
            unregister_op_hook(self._on_op)
            self._installed = False
        for tracker, original in self._watched:
            if getattr(original, "__self__", None) is tracker:
                # Wrapper was instance-level over the class method: drop it.
                tracker.__dict__.pop("record", None)
            else:
                tracker.record = original
        self._watched.clear()

    def __enter__(self) -> "OpProfiler":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # Hook targets
    # ------------------------------------------------------------------
    def _now_ms(self) -> float:
        return (self._clock() - self._t0) * 1e3

    def _on_op(self, op: str, data: np.ndarray, parent_shapes: tuple, phase: str) -> None:
        now = self._clock()
        dt_ms = (now - self._last) * 1e3
        self._last = now
        stats = self.ops.get((phase, op))
        if stats is None:
            stats = self.ops[(phase, op)] = OpStats()
        nbytes = int(data.nbytes)
        stats.calls += 1
        stats.wall_ms += dt_ms
        stats.flops += op_flops(op, data.shape, parent_shapes)
        stats.bytes_moved += op_bytes(op, nbytes, parent_shapes)
        stats.alloc_bytes += nbytes
        self.alloc_bytes += nbytes
        rank = None
        if self._stack:
            for frame in self._stack:
                frame["alloc"] += nbytes
                frame["op_calls"] += 1
            rank = self._stack[-1]["rank"]
        if self.record_events:
            t_end = (now - self._t0) * 1e3
            self.op_events.append((op, phase, t_end - dt_ms, dt_ms, nbytes, rank))

    def _on_comm(self, tracker, event) -> None:
        frame = self._stack[-1] if self._stack else None
        self.comm_links.append(CommLink(
            event_index=len(tracker.events) - 1,
            op=event.op, group=event.group, phase=event.phase,
            scheme=event.scheme, site=event.site, wire_bytes=event.wire_bytes,
            t_ms=self._now_ms(),
            span_path="/".join(f["name"] for f in self._stack),
            rank=frame["rank"] if frame else None,
        ))

    # ------------------------------------------------------------------
    # Span stack & CommTracker cross-link
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def span(self, name: str, cat: str = "phase", rank: int | None = None) -> Iterator[None]:
        """Tag a region; nested spans inherit the innermost rank by default."""
        if rank is None and self._stack:
            rank = self._stack[-1]["rank"]
        start = self._now_ms()
        frame = {"name": name, "cat": cat, "rank": rank, "start": start,
                 "alloc": 0, "op_calls": 0}
        self._stack.append(frame)
        self._last = self._clock()  # don't attribute pre-span time to the first op
        try:
            yield
        finally:
            self._stack.pop()
            end = self._now_ms()
            self.spans.append(SpanRecord(
                name=name, cat=cat,
                path="/".join([f["name"] for f in self._stack] + [name]),
                rank=rank, t_start_ms=start, dur_ms=end - start,
                alloc_bytes=frame["alloc"], op_calls=frame["op_calls"],
            ))
            if rank is not None:
                prev = self.peak_alloc_by_rank.get(rank, 0)
                self.peak_alloc_by_rank[rank] = max(prev, frame["alloc"])
            self.peak_span_alloc = max(self.peak_span_alloc, frame["alloc"])
            self._last = self._clock()

    def watch(self, tracker) -> None:
        """Cross-link a CommTracker: every recorded event gets a span tag."""
        original = tracker.record

        def record(event, _original=original):
            _original(event)
            if tracker.enabled:
                self._on_comm(tracker, event)

        tracker.record = record
        self._watched.append((tracker, original))

    # ------------------------------------------------------------------
    # Rollups
    # ------------------------------------------------------------------
    def total_flops(self) -> float:
        return sum(s.flops for s in self.ops.values())

    def total_wall_ms(self) -> float:
        return sum(s.wall_ms for s in self.ops.values())

    def predicted_ms(self) -> float:
        """FLOP/byte rollup priced by the simulator's kernel formulas.

        GEMM FLOPs at the calibrated TP=1 effective throughput plus every
        op's memory traffic at HBM bandwidth — the same
        :func:`~repro.simulator.kernels.gemm_time` / bandwidth model the
        timing tables use, so profiled and simulated runs are comparable.
        """
        matmul_flops = sum(
            s.flops for (phase, op), s in self.ops.items() if op == "__matmul__"
        )
        bytes_moved = sum(s.bytes_moved for s in self.ops.values())
        mem_ms = bytes_moved / (self.gpu.mem_bandwidth_gbps * 1e9) * 1e3
        return gemm_time(matmul_flops, self.cal.gemm_tflops(1)) + mem_ms

    def comm_bytes(self) -> dict[str, int]:
        """Cross-linked wire bytes keyed ``group/phase/scheme`` (sorted)."""
        out: dict[str, int] = {}
        for link in self.comm_links:
            key = f"{link.group}/{link.phase}/{link.scheme}"
            out[key] = out.get(key, 0) + link.wire_bytes
        return dict(sorted(out.items()))

    def summary(self) -> dict:
        """Deterministically ordered rollup of everything observed."""
        ops = {
            f"{phase}/{op}": stats.as_dict()
            for (phase, op), stats in sorted(self.ops.items())
        }
        span_totals: dict[str, float] = {}
        for span in self.spans:
            span_totals[span.name] = span_totals.get(span.name, 0.0) + span.dur_ms
        return {
            "op_calls": sum(s.calls for s in self.ops.values()),
            "wall_ms": self.total_wall_ms(),
            "flops": self.total_flops(),
            "bytes_moved": sum(s.bytes_moved for s in self.ops.values()),
            "alloc_bytes": self.alloc_bytes,
            "peak_alloc_bytes": self.peak_span_alloc,
            "peak_alloc_by_rank": {
                str(r): b for r, b in sorted(self.peak_alloc_by_rank.items())
            },
            "predicted_ms": self.predicted_ms(),
            "ops": ops,
            "spans_ms": dict(sorted(span_totals.items())),
            "comm_bytes": self.comm_bytes(),
            "comm_events": len(self.comm_links),
        }
