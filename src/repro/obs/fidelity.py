"""Per-site compression-fidelity metrics.

AQ-SGD (Wang et al., 2022) and Rudakov et al. (2024) show that the
*reconstruction error injected at each compression site* — not the wire
ratio — is the quantity that predicts downstream accuracy loss.  This
module records exactly that: a :class:`FidelityProbe` attached to a
:class:`~repro.parallel.collectives.CommTracker` receives, from inside
``tp_all_reduce`` and ``pipeline_transfer``, the dense activation and its
reconstruction at every compressed site, and logs

- the relative L2 reconstruction error ``||x - x̂|| / ||x||``,
- the realized compression ratio ``dense_bytes / wire_bytes``, and
- the error-feedback residual norm, when the compressor keeps one.

Probes are opt-in: a tracker without one costs a single ``is None`` check
per collective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FidelityRecord", "FidelityProbe"]


@dataclass(frozen=True)
class FidelityRecord:
    """One compression round-trip observed at one site."""

    site: str  # e.g. "layer2.mlp.rank0" or "boundary0"
    scheme: str  # Compressor.name label, e.g. "topk" or "ef(topk)"
    group: str  # "tp" | "pp"
    rel_l2_error: float
    dense_bytes: int
    wire_bytes: int
    residual_norm: float | None = None  # error-feedback residual, if any

    @property
    def ratio(self) -> float:
        """Realized compression ratio (>1 means the wire message is smaller)."""
        return self.dense_bytes / max(self.wire_bytes, 1)


def _rel_l2(original: np.ndarray, reconstructed: np.ndarray) -> float:
    denom = float(np.linalg.norm(original))
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(original - reconstructed)) / denom


class FidelityProbe:
    """Accumulates :class:`FidelityRecord` entries across one or more steps."""

    def __init__(self):
        self.records: list[FidelityRecord] = []

    def observe(
        self,
        *,
        site: str,
        scheme: str,
        group: str,
        original: np.ndarray,
        reconstructed: np.ndarray,
        wire_bytes: int,
        dense_bytes: int,
        residual: np.ndarray | None = None,
    ) -> FidelityRecord:
        """Record one round-trip; called from the collectives."""
        record = FidelityRecord(
            site=site,
            scheme=scheme,
            group=group,
            rel_l2_error=_rel_l2(np.asarray(original), np.asarray(reconstructed)),
            dense_bytes=int(dense_bytes),
            wire_bytes=int(wire_bytes),
            residual_norm=float(np.linalg.norm(residual)) if residual is not None else None,
        )
        self.records.append(record)
        return record

    def reset(self) -> None:
        self.records.clear()

    # ------------------------------------------------------------------
    def sites(self) -> list[str]:
        """Distinct site labels in observation order."""
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.site, None)
        return list(seen)

    def per_site(self) -> dict[str, dict]:
        """Aggregate metrics per site: mean/max error, mean ratio, count."""
        grouped: dict[str, list[FidelityRecord]] = {}
        for r in self.records:
            grouped.setdefault(r.site, []).append(r)
        out: dict[str, dict] = {}
        for site, records in grouped.items():
            errors = [r.rel_l2_error for r in records]
            ratios = [r.ratio for r in records]
            residuals = [r.residual_norm for r in records if r.residual_norm is not None]
            out[site] = {
                "scheme": records[-1].scheme,
                "group": records[-1].group,
                "count": len(records),
                "rel_l2_error_mean": float(np.mean(errors)),
                "rel_l2_error_max": float(np.max(errors)),
                "ratio_mean": float(np.mean(ratios)),
                "residual_norm_last": residuals[-1] if residuals else None,
            }
        return out

    def to_json(self) -> dict:
        """JSON-serializable dump (per-site aggregates + record count)."""
        return {"records": len(self.records), "per_site": self.per_site()}

    def __repr__(self) -> str:
        return f"FidelityProbe(records={len(self.records)}, sites={len(self.sites())})"
