"""Run telemetry: step-scoped timers, counters and gauges with JSONL/CSV sinks.

A :class:`RunRecorder` accumulates one record per training step.  Within a
step the caller sets *gauges* (instantaneous values: loss, grad-norm, lr),
bumps *counters* (monotonic totals: tokens, samples) and wraps code regions
in *timers* (phase wall-time: forward, backward, optimizer).  ``end_step``
stamps the step's total wall time and freezes the record.

Two sinks serialize a finished run: :meth:`RunRecorder.to_jsonl` (one JSON
object per line, a ``meta`` header first) and :meth:`RunRecorder.to_csv`
(flattened columns, one row per step).  :func:`load_jsonl` reads the JSONL
form back; :mod:`repro.obs.trace` turns it into a Chrome trace.

Untouched callers pay nothing: every recording entry point takes an
optional recorder defaulting to :data:`NULL_RECORDER`, whose methods are
no-ops (the timer context manager yields without reading the clock).
"""

from __future__ import annotations

import contextlib
import csv
import json
import os
import time
from typing import Callable, Iterator

__all__ = ["RunRecorder", "NullRecorder", "NULL_RECORDER", "load_jsonl"]


class RunRecorder:
    """Collects per-step metrics for one run.

    Parameters
    ----------
    run_id:
        Label stamped on the meta header (scheme, task, layout...).
    meta:
        Extra key/value context for the meta header.
    clock:
        Monotonic clock in seconds; injectable for deterministic tests.
    stream_path:
        Optional JSONL path written *live*: the meta header is written at
        construction and every completed step is appended — and flushed —
        from :meth:`end_step`, so a run killed mid-flight (chaos plans,
        SIGKILL) retains every completed step with no truncated line.
        :meth:`to_jsonl` still works and rewrites the file atomically
        from the in-memory records.
    """

    enabled: bool = True

    def __init__(
        self,
        run_id: str = "run",
        meta: dict | None = None,
        clock: Callable[[], float] = time.perf_counter,
        stream_path: str | None = None,
    ):
        self.run_id = run_id
        self.meta = dict(meta) if meta else {}
        self._clock = clock
        self._t0 = clock()
        self.records: list[dict] = []
        self._current: dict | None = None
        self._step_start = 0.0
        self._next_step = 0
        self.stream_path = stream_path
        self._stream = None
        if stream_path is not None:
            parent = os.path.dirname(os.path.abspath(stream_path))
            os.makedirs(parent, exist_ok=True)
            self._stream = open(stream_path, "w", encoding="utf-8")
            self._stream.write(json.dumps(self._meta_record()) + "\n")
            self._stream.flush()

    # ------------------------------------------------------------------
    # Step lifecycle
    # ------------------------------------------------------------------
    def start_step(self, step: int | None = None) -> None:
        """Open a new step record (implicitly closing an unfinished one)."""
        if self._current is not None:
            self.end_step()
        now = self._clock()
        index = step if step is not None else self._next_step
        self._next_step = index + 1
        self._step_start = now
        self._current = {
            "step": index,
            "t_start_ms": (now - self._t0) * 1e3,
            "wall_ms": None,
            "gauges": {},
            "counters": {},
            "timers_ms": {},
        }

    def end_step(self) -> dict:
        """Close the open step, stamping its wall time; returns the record."""
        if self._current is None:
            raise RuntimeError("end_step() without a matching start_step()")
        record = self._current
        record["wall_ms"] = (self._clock() - self._step_start) * 1e3
        self.records.append(record)
        self._current = None
        if self._stream is not None:
            # One write + flush per step: a SIGKILL between steps can lose
            # at most the step in progress, never corrupt a written line.
            self._stream.write(json.dumps({"type": "step", **record}) + "\n")
            self._stream.flush()
        return record

    def close(self) -> None:
        """Close the streaming sink (idempotent; no-op without one)."""
        if self._stream is not None:
            stream, self._stream = self._stream, None
            stream.close()

    @contextlib.contextmanager
    def step(self, step: int | None = None) -> Iterator[None]:
        """``with recorder.step():`` — start/end pair as a context."""
        self.start_step(step)
        try:
            yield
        finally:
            self.end_step()

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def _open(self) -> dict:
        if self._current is None:
            self.start_step()
        return self._current

    def gauge(self, name: str, value: float) -> None:
        """Set an instantaneous value for this step (last write wins)."""
        self._open()["gauges"][name] = float(value)

    def count(self, name: str, n: int = 1) -> None:
        """Increment a per-step counter."""
        counters = self._open()["counters"]
        counters[name] = counters.get(name, 0) + n

    @contextlib.contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wrapped region's wall time into ``timers_ms``."""
        start = self._clock()
        try:
            yield
        finally:
            timers = self._open()["timers_ms"]
            timers[name] = timers.get(name, 0.0) + (self._clock() - start) * 1e3

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def _meta_record(self) -> dict:
        return {"type": "meta", "run_id": self.run_id, **self.meta}

    def to_jsonl(self, path: str) -> str:
        """Write the meta header + one JSON line per step; returns ``path``."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self._meta_record()) + "\n")
            for record in self.records:
                fh.write(json.dumps({"type": "step", **record}) + "\n")
        return path

    def to_csv(self, path: str) -> str:
        """Write one flattened row per step; returns ``path``.

        Columns are the union over steps: ``gauge.*``, ``counter.*`` and
        ``timer_ms.*`` prefixes keep the three instrument kinds apart.
        """
        columns = ["step", "t_start_ms", "wall_ms"]
        extras: list[str] = []
        for record in self.records:
            for prefix, group in (("gauge", "gauges"), ("counter", "counters"),
                                  ("timer_ms", "timers_ms")):
                for name in record[group]:
                    col = f"{prefix}.{name}"
                    if col not in extras:
                        extras.append(col)
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=columns + sorted(extras))
            writer.writeheader()
            for record in self.records:
                row = {k: record[k] for k in columns}
                for prefix, group in (("gauge", "gauges"), ("counter", "counters"),
                                      ("timer_ms", "timers_ms")):
                    for name, value in record[group].items():
                        row[f"{prefix}.{name}"] = value
                writer.writerow(row)
        return path

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Aggregates over the run: per-gauge last/mean, per-timer totals."""
        gauges: dict[str, list[float]] = {}
        timers: dict[str, float] = {}
        counters: dict[str, int] = {}
        wall = 0.0
        for record in self.records:
            wall += record["wall_ms"] or 0.0
            for name, value in record["gauges"].items():
                gauges.setdefault(name, []).append(value)
            for name, value in record["timers_ms"].items():
                timers[name] = timers.get(name, 0.0) + value
            for name, value in record["counters"].items():
                counters[name] = counters.get(name, 0) + value
        return {
            "run_id": self.run_id,
            "steps": len(self.records),
            "wall_ms": wall,
            "gauges": {
                name: {"last": vals[-1], "mean": sum(vals) / len(vals),
                       "min": min(vals), "max": max(vals)}
                for name, vals in gauges.items()
            },
            "timers_ms": timers,
            "counters": counters,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(run_id={self.run_id!r}, steps={len(self.records)})"


class NullRecorder(RunRecorder):
    """No-op recorder: the default for every instrumented call site.

    Methods neither read the clock nor allocate records, so threading a
    recorder through a hot loop costs one attribute lookup per call.
    """

    enabled = False

    def __init__(self):
        super().__init__(run_id="null", clock=lambda: 0.0)

    def start_step(self, step: int | None = None) -> None:
        return None

    def end_step(self) -> dict:
        return {}

    def gauge(self, name: str, value: float) -> None:
        return None

    def count(self, name: str, n: int = 1) -> None:
        return None

    @contextlib.contextmanager
    def timer(self, name: str) -> Iterator[None]:
        yield


#: Shared no-op instance used as the default recorder everywhere.
NULL_RECORDER = NullRecorder()


def load_jsonl(path: str) -> tuple[dict, list[dict]]:
    """Read a run written by :meth:`RunRecorder.to_jsonl`.

    Returns ``(meta, step_records)``; files without a meta header (or with
    interleaved non-step lines) are tolerated.
    """
    meta: dict = {}
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("type") == "meta":
                meta = obj
            elif obj.get("type") == "step" or "step" in obj:
                records.append(obj)
    return meta, records
