"""Chrome-trace / Perfetto JSON export of recorded and simulated runs.

Two producers share one event format (the Trace Event Format's complete
``"X"`` slices, timestamps in microseconds, loadable in Perfetto or
``chrome://tracing``):

- :func:`trace_from_run` renders a :class:`~repro.obs.metrics.RunRecorder`
  JSONL run — one slice per step plus the per-phase timers, and a counter
  track per gauge (loss, grad-norm, lr).
- :func:`simulated_iteration_trace` renders the pipeline schedule (GPipe
  or 1F1B) of one :class:`~repro.simulator.SimSetting` — one track per
  pipeline stage with per-microbatch forward/backward boxes at the
  schedule's op start times, TP collective slices, encode/decode kernel
  slices and per-boundary sends, so a Table-4 row becomes a visual
  timeline.

:func:`validate_against_breakdown` closes the loop: it recomputes every
:class:`~repro.simulator.IterationBreakdown` column from the trace's
slices (categories sum; compute phases contribute their makespan) and
returns the per-column absolute differences, which the test suite pins to
1e-6 ms.
"""

from __future__ import annotations

import json
import os

from repro.simulator.calibration import CALIBRATION, Calibration
from repro.simulator.iteration import IterationBreakdown, IterationSimulator, SimSetting

__all__ = [
    "trace_from_run",
    "simulated_iteration_trace",
    "profiler_trace",
    "worker_timelines_trace",
    "merge_traces",
    "validate_against_breakdown",
    "write_trace",
]

_MS_TO_US = 1000.0


class _TraceBuilder:
    """Allocates named tracks and accumulates trace events."""

    def __init__(self, process: str):
        self.events: list[dict] = []
        self._tids: dict[str, int] = {}
        self._async_ids = 0
        self.pid = 1
        self.events.append({
            "ph": "M", "pid": self.pid, "tid": 0, "name": "process_name",
            "args": {"name": process},
        })

    def tid(self, track: str) -> int:
        if track not in self._tids:
            tid = len(self._tids) + 1
            self._tids[track] = tid
            self.events.append({
                "ph": "M", "pid": self.pid, "tid": tid, "name": "thread_name",
                "args": {"name": track},
            })
        return self._tids[track]

    def slice(self, track: str, name: str, cat: str, ts_ms: float, dur_ms: float,
              args: dict | None = None) -> None:
        if dur_ms <= 0.0:
            return
        event = {
            "ph": "X", "pid": self.pid, "tid": self.tid(track), "name": name,
            "cat": cat, "ts": ts_ms * _MS_TO_US, "dur": dur_ms * _MS_TO_US,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def async_span(self, track: str, name: str, cat: str, start_ms: float,
                   end_ms: float, args: dict | None = None) -> None:
        """An async ``b``/``e`` pair: work in flight while the track's
        ``X`` slices keep executing — Perfetto draws it as a floating bar
        above the thread, which is exactly a ``CommHandle``'s issue→wait
        window."""
        if end_ms <= start_ms:
            return
        self._async_ids += 1
        ident = f"0x{self._async_ids:x}"
        tid = self.tid(track)
        begin = {
            "ph": "b", "pid": self.pid, "tid": tid, "name": name,
            "cat": cat, "id": ident, "ts": start_ms * _MS_TO_US,
        }
        if args:
            begin["args"] = args
        self.events.append(begin)
        self.events.append({
            "ph": "e", "pid": self.pid, "tid": tid, "name": name,
            "cat": cat, "id": ident, "ts": end_ms * _MS_TO_US,
        })

    def instant(self, track: str, name: str, cat: str, ts_ms: float,
                args: dict | None = None) -> None:
        event = {
            "ph": "i", "pid": self.pid, "tid": self.tid(track), "name": name,
            "cat": cat, "ts": ts_ms * _MS_TO_US, "s": "t",
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, track: str, name: str, ts_ms: float, value: float) -> None:
        self.events.append({
            "ph": "C", "pid": self.pid, "tid": self.tid(track), "name": name,
            "ts": ts_ms * _MS_TO_US, "args": {name: value},
        })

    def build(self, meta: dict | None = None) -> dict:
        trace = {"traceEvents": self.events, "displayTimeUnit": "ms"}
        if meta:
            trace["otherData"] = meta
        return trace


# ----------------------------------------------------------------------
# Recorded runs
# ----------------------------------------------------------------------
def trace_from_run(records: list[dict], meta: dict | None = None) -> dict:
    """Chrome trace of a recorded run (step slices, phase timers, gauges).

    ``records`` are step dicts as produced by
    :meth:`~repro.obs.metrics.RunRecorder.to_jsonl` /
    :func:`~repro.obs.metrics.load_jsonl`.
    """
    run_id = (meta or {}).get("run_id", "run")
    b = _TraceBuilder(f"repro run: {run_id}")
    for record in records:
        start = record["t_start_ms"]
        wall = record["wall_ms"] or 0.0
        step = record["step"]
        b.slice("steps", f"step {step}", "step", start, wall,
                args={k: v for k, v in record["gauges"].items()})
        cursor = start
        for name, dur in record["timers_ms"].items():
            b.slice("phases", name, name, cursor, dur)
            cursor += dur
        for name, value in record["gauges"].items():
            b.counter(f"gauge:{name}", name, start, value)
    return b.build(meta)


# ----------------------------------------------------------------------
# Simulated pipeline iterations
# ----------------------------------------------------------------------
def simulated_iteration_trace(
    setting: SimSetting | IterationSimulator, cal: Calibration = CALIBRATION
) -> dict:
    """Chrome trace of one simulated pipeline iteration (GPipe or 1F1B).

    One compute track per pipeline stage (F/B boxes at the schedule's op
    start times — contiguous forward-then-backward regions under GPipe,
    warmup/steady/drain interleaving under 1F1B), one collective track
    per stage, one encode/decode track per compressed stage and one track
    per pipeline boundary.  Slice categories mirror the
    :class:`IterationBreakdown` columns so
    :func:`validate_against_breakdown` can re-derive them.
    """
    sim = setting if isinstance(setting, IterationSimulator) else IterationSimulator(setting, cal)
    s = sim.s
    m = s.num_microbatches
    pp = s.pp
    fwd_stage, bwd_stage = sim.stage_compute_ms()
    enc_mult, gpu_mult = sim.encdec_multipliers()
    site = sim.site_cost()
    compressed_scheme = sim.spec.family != "none"

    b = _TraceBuilder(
        f"simulated iteration: {s.scheme} TP={s.tp} PP={pp} "
        f"b={s.micro_batch} s={s.seq} m={m} {s.schedule}"
    )
    fwd_end, _, _ = sim.compute_makespans()  # forward region makespan
    op_starts = [sim.stage_op_starts(st) for st in range(pp)]
    bwd_end = op_starts[0][1][m - 1] + bwd_stage  # stage 0 drains last

    for st in range(pp):
        compute = f"stage {st}"
        f_starts, b_starts = op_starts[st]
        for i in range(m):
            b.slice(compute, f"F{i}", "forward_compute", f_starts[i], fwd_stage)
            b.slice(compute, f"B{i}", "backward_compute", b_starts[i], bwd_stage)

        comm_track = f"stage {st} tp-comm"
        fwd_cursor = f_starts[0]
        bwd_cursor = b_starts[0]
        for layer in s.partition.layers_of(st):
            comm_f = sim.tp_forward_comm_ms(sim.layer_compressed(layer))
            comm_b = sim.tp_backward_comm_ms()
            for i in range(m):
                for tp_site in ("attn", "mlp"):
                    b.slice(comm_track, f"g L{layer} {tp_site} mb{i}", "tensor_comm",
                            fwd_cursor, comm_f)
                    fwd_cursor += comm_f
                    b.slice(comm_track, f"f L{layer} {tp_site} mb{i}", "backward_comm",
                            bwd_cursor, comm_b)
                    bwd_cursor += comm_b

        encdec_track = f"stage {st} enc/dec"
        enc_cursor = f_starts[0]
        for layer in s.partition.layers_of(st):
            if not sim.layer_compressed(layer):
                continue
            for _ in range(2 * enc_mult):
                b.slice(encdec_track, f"enc L{layer}", "encode", enc_cursor, site.encode_ms)
                enc_cursor += site.encode_ms
            for _ in range(2 * gpu_mult):
                b.slice(encdec_track, f"dec L{layer}", "decode", enc_cursor, site.decode_ms)
                enc_cursor += site.decode_ms
            for _ in range(2 * gpu_mult):
                b.slice(encdec_track, f"ae-bwd L{layer}", "ae_backward",
                        enc_cursor, site.backward_ms)
                enc_cursor += site.backward_ms

    if pp > 1:
        bcost = sim.boundary_site_cost()
        for bd, last_layer in enumerate(s.partition.boundaries()):
            track = f"boundary {bd}<->{bd + 1}"
            fwd_send, bwd_send = sim.boundary_send_ms(bd)
            for i in range(m):
                # Forward send departs when the upstream stage finishes
                # F_i; the gradient send when the downstream finishes B_i.
                b.slice(track, f"send mb{i}", "pipeline",
                        op_starts[bd][0][i] + fwd_stage, fwd_send)
                b.slice(track, f"send-grad mb{i}", "pipeline",
                        op_starts[bd + 1][1][i] + bwd_stage, bwd_send)
            b.slice(track, "pipeline overhead", "pipeline", fwd_end,
                    sim.cal.pipeline_overhead_ms)
            if compressed_scheme and s.policy.boundary_compressed(last_layer):
                cursor = op_starts[bd][0][0] + fwd_stage
                for _ in range(enc_mult):
                    b.slice(track, "boundary enc", "encode", cursor, bcost.encode_ms)
                    cursor += bcost.encode_ms
                for _ in range(gpu_mult):
                    b.slice(track, "boundary dec", "decode", cursor, bcost.decode_ms)
                    cursor += bcost.decode_ms

    b.slice("optimizer", "optimizer step", "optimizer", bwd_end, sim.cal.optimizer_ms)
    return b.build({
        "scheme": s.scheme, "tp": s.tp, "pp": pp, "micro_batch": s.micro_batch,
        "seq": s.seq, "num_microbatches": m, "schedule": s.schedule,
    })


def profiler_trace(profiler, meta: dict | None = None) -> dict:
    """Chrome trace of an :class:`~repro.obs.profile.OpProfiler` session.

    Spans render as slices on per-rank tracks, individual op calls (when
    the profiler recorded events) as slices on an ops track, and every
    cross-linked ``CommEvent`` as an instant marker carrying the event's
    tracker index, site, scheme and wire bytes.  All slice categories are
    ``prof.*``-prefixed so a merged real+simulated trace never perturbs
    :func:`validate_against_breakdown`.
    """
    run_id = (meta or {}).get("run_id", "profile")
    b = _TraceBuilder(f"profiled run: {run_id}")

    def track_of(rank) -> str:
        return "main" if rank is None else f"rank{rank}"

    for span in profiler.spans:
        b.slice(
            f"{track_of(span.rank)} spans", span.name, f"prof.{span.cat}",
            span.t_start_ms, span.dur_ms,
            args={"path": span.path, "alloc_bytes": span.alloc_bytes,
                  "op_calls": span.op_calls},
        )
    for op, phase, start, dur, nbytes, rank in profiler.op_events:
        b.slice(f"{track_of(rank)} ops", op, f"prof.op.{phase}", start, dur,
                args={"alloc_bytes": nbytes})
    for link in profiler.comm_links:
        b.instant(
            f"{track_of(link.rank)} comm",
            f"{link.op} {link.site}" if link.site else link.op,
            "prof.comm", link.t_ms,
            args={"event_index": link.event_index, "group": link.group,
                  "phase": link.phase, "scheme": link.scheme,
                  "wire_bytes": link.wire_bytes, "span": link.span_path},
        )
    return b.build(meta)


def worker_timelines_trace(timelines: dict[int, list[dict]],
                           meta: dict | None = None) -> dict:
    """Chrome trace of the mp backend's per-rank worker timelines.

    ``timelines`` is :attr:`~repro.parallel.backend.StepResult.timelines`:
    global rank → span dicts (``name``/``cat``/``ts_ms``/``dur_ms``).  Each
    rank renders as its own track; every worker's clock starts at its own
    step entry, so tracks are aligned at the step barrier rather than on a
    shared wall clock.  Categories are ``mp.*``-prefixed (``mp.phase`` for
    compute phases, ``mp.wait`` for blocking transport waits) so a merged
    real+simulated trace never perturbs :func:`validate_against_breakdown`.

    Spans recorded with category ``mp.async`` — a :class:`CommHandle`'s
    issue→wait window, or a staged ring send still in flight — render as
    Chrome async ``b``/``e`` pairs instead of ``X`` slices: the bar floats
    above the rank's compute slices, making the comm/compute overlap
    visible (and measurable) in Perfetto.
    """
    meta = meta or {}
    run_id = meta.get("run_id", "mp step")
    b = _TraceBuilder(f"mp workers: {run_id}")
    # With the layout in meta each track carries the rank's TP×PP
    # coordinate ("rank 3 · tp1/pp1"), so Perfetto shows the gang
    # topology instead of bare rank numbers; without it (old callers,
    # hand-built metas) tracks degrade to the plain rank label.
    tp = meta.get("tp")
    for rank in sorted(timelines):
        if isinstance(tp, int) and tp > 0:
            track = f"rank {rank} · tp{rank % tp}/pp{rank // tp}"
        else:
            track = f"rank{rank}"
        for span in timelines[rank]:
            if span["cat"] == "mp.async":
                b.async_span(track, span["name"], "mp.async", span["ts_ms"],
                             span["ts_ms"] + span["dur_ms"])
            else:
                b.slice(track, span["name"], span["cat"], span["ts_ms"],
                        span["dur_ms"])
    return b.build(meta)


def merge_traces(*traces: dict, meta: dict | None = None) -> dict:
    """Merge traces into one timeline, one Chrome process per input.

    Each input's events keep their timestamps and thread ids but are
    re-homed to a distinct ``pid``, so e.g. a profiled real run and the
    simulated GPipe schedule of the same setting render side by side in
    Perfetto.  Categories are untouched: because the profiler only emits
    ``prof.*`` categories, a merged trace still satisfies
    :func:`validate_against_breakdown` for the simulated half.
    """
    events: list[dict] = []
    other: dict = {}
    for pid, trace in enumerate(traces, start=1):
        for event in trace["traceEvents"]:
            merged = dict(event)
            merged["pid"] = pid
            events.append(merged)
        other.update(trace.get("otherData", {}))
    if meta:
        other.update(meta)
    out = {"traceEvents": events, "displayTimeUnit": "ms"}
    if other:
        out["otherData"] = other
    return out


def validate_against_breakdown(trace: dict, breakdown: IterationBreakdown) -> dict[str, float]:
    """Absolute per-column difference between trace slices and a breakdown.

    Column conventions follow Table 4's caption (see
    :class:`IterationBreakdown`): the Forward column is forward-compute
    *makespan* plus the forward collectives and enc/dec kernels; Backward
    is backward-compute makespan plus the backward ``f`` all-reduces and
    the AE's extra backward GEMMs; the remaining columns are plain sums of
    their category's slices.  ``overlap_ms`` is re-derived as the
    intersection of the forward- and backward-compute windows — zero for
    a GPipe trace, the steady-state interleave for 1F1B — so the same
    validation covers both schedules.
    """
    sums: dict[str, float] = {}
    spans: dict[str, tuple[float, float]] = {}
    for event in trace["traceEvents"]:
        if event.get("ph") != "X":
            continue
        cat = event.get("cat", "")
        dur = event["dur"] / _MS_TO_US
        sums[cat] = sums.get(cat, 0.0) + dur
        start = event["ts"] / _MS_TO_US
        lo, hi = spans.get(cat, (start, start + dur))
        spans[cat] = (min(lo, start), max(hi, start + dur))

    def total(cat: str) -> float:
        return sums.get(cat, 0.0)

    def makespan(cat: str) -> float:
        if cat not in spans:
            return 0.0
        lo, hi = spans[cat]
        return hi - lo

    overlap = 0.0
    if "forward_compute" in spans and "backward_compute" in spans:
        f_lo, f_hi = spans["forward_compute"]
        b_lo, b_hi = spans["backward_compute"]
        overlap = max(0.0, min(f_hi, b_hi) - max(f_lo, b_lo))

    derived = {
        "forward_ms": makespan("forward_compute") + total("tensor_comm")
        + total("encode") + total("decode"),
        "backward_ms": makespan("backward_compute") + total("backward_comm")
        + total("ae_backward"),
        "optimizer_ms": total("optimizer"),
        "pipeline_ms": total("pipeline"),
        "encode_ms": total("encode"),
        "decode_ms": total("decode"),
        "tensor_comm_ms": total("tensor_comm"),
        "overlap_ms": overlap,
    }
    return {
        field: abs(derived[field] - getattr(breakdown, field)) for field in derived
    }


def write_trace(trace: dict, path: str) -> str:
    """Serialize a trace dict to ``path`` (JSON); returns ``path``."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    return path
