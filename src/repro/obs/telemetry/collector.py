"""Parent-side collector: sliding-window time-series over rank telemetry.

The :class:`Collector` is the receiving half of the telemetry side
channel.  It ingests the event batches published by each rank's
:class:`~repro.obs.telemetry.agent.TelemetryAgent` and maintains bounded
sliding windows — ring buffer of raw samples, EWMA, exact p50/p99 over
the window — per ``(rank, metric)`` series plus pooled cross-rank series
(``rank=None``).  Window statistics deliberately live parent-side
(DESIGN decision #12): the workers stay cheap and stateless, a crashed
rank's history survives in the parent, and cross-rank rules (straggler
z-score) need all ranks' windows in one place anyway.

Consumers: :class:`~repro.obs.telemetry.health.HealthMonitor` evaluates
threshold rules over these windows; the ``repro.obs top`` dashboard and
the run registry snapshot them.
"""

from __future__ import annotations

import math
import queue as queue_mod
import time
from collections import deque

__all__ = ["SlidingWindow", "Collector", "DEFAULT_WINDOW"]

#: Default sliding-window length, in samples (steps for step metrics).
DEFAULT_WINDOW = 64


class SlidingWindow:
    """Ring buffer of the last ``maxlen`` samples with summary stats.

    Percentiles are exact over the window (sorted copy, nearest-rank
    with linear interpolation), not streaming approximations — with
    bounded windows the O(n log n) sort on demand is cheap and the
    numbers are auditable.
    """

    def __init__(self, maxlen: int = DEFAULT_WINDOW, *, ewma_alpha: float = 0.2):
        if maxlen <= 0:
            raise ValueError(f"window maxlen must be positive, got {maxlen}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.maxlen = maxlen
        self.ewma_alpha = ewma_alpha
        self._ring: deque[float] = deque(maxlen=maxlen)
        self._ewma: float | None = None
        self.count = 0  # lifetime samples, not just the window

    def push(self, value: float) -> None:
        value = float(value)
        self._ring.append(value)
        self.count += 1
        if self._ewma is None or math.isnan(self._ewma):
            self._ewma = value
        else:
            a = self.ewma_alpha
            self._ewma = a * value + (1.0 - a) * self._ewma

    def __len__(self) -> int:
        return len(self._ring)

    def values(self) -> list[float]:
        return list(self._ring)

    @property
    def last(self) -> float | None:
        return self._ring[-1] if self._ring else None

    @property
    def ewma(self) -> float | None:
        return self._ewma

    def mean(self) -> float:
        if not self._ring:
            return math.nan
        return sum(self._ring) / len(self._ring)

    def std(self) -> float:
        n = len(self._ring)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self._ring) / n)

    def min(self) -> float:
        return min(self._ring) if self._ring else math.nan

    def max(self) -> float:
        return max(self._ring) if self._ring else math.nan

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (0..100) over the window, interpolated."""
        if not self._ring:
            return math.nan
        ordered = sorted(self._ring)
        if len(ordered) == 1:
            return ordered[0]
        pos = (q / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def p50(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def stats(self) -> dict:
        """JSON-ready summary of the current window."""
        return {
            "count": self.count,
            "window": len(self._ring),
            "last": self.last,
            "mean": self.mean() if self._ring else None,
            "ewma": self._ewma,
            "min": self.min() if self._ring else None,
            "max": self.max() if self._ring else None,
            "p50": self.p50() if self._ring else None,
            "p99": self.p99() if self._ring else None,
        }


#: Numeric fields of a ``step`` event that become per-rank series.
STEP_METRICS = (
    "wall_ms", "comm_wait_ms", "busy_ms", "fault_ms", "ring_occupancy",
    "retries", "drops", "delays", "peak_rss_kb", "loss",
)

#: Per-site fidelity fields pooled across ranks (site-keyed series).
FIDELITY_METRICS = ("rel_l2", "ratio", "residual_norm")


class Collector:
    """Aggregates rank telemetry events into sliding-window series.

    Series are keyed ``(rank, metric)``; pooled cross-rank series use
    ``rank=None`` and fidelity series use ``(None, f"fidelity/{site}/{m}")``.
    """

    def __init__(self, *, window: int = DEFAULT_WINDOW):
        self.window = window
        self._series: dict[tuple[int | None, str], SlidingWindow] = {}
        self._ranks: set[int] = set()
        self._last_step: dict[int, int] = {}
        self.world: int | None = None
        self.events_seen = 0
        self.meta: dict[int, dict] = {}

    # ------------------------------------------------------------------
    def series(self, rank: int | None, metric: str) -> SlidingWindow:
        key = (rank, metric)
        win = self._series.get(key)
        if win is None:
            win = self._series[key] = SlidingWindow(self.window)
        return win

    def observe(self, rank: int | None, metric: str, value: float) -> None:
        self.series(rank, metric).push(value)

    def ranks(self) -> list[int]:
        return sorted(self._ranks)

    def last_step(self, rank: int) -> int | None:
        return self._last_step.get(rank)

    def sites(self) -> list[str]:
        found = set()
        for rank, metric in self._series:
            if rank is None and metric.startswith("fidelity/"):
                found.add(metric.split("/", 2)[1])
        return sorted(found)

    # ------------------------------------------------------------------
    def ingest(self, event: dict) -> None:
        """Route one agent event into the relevant series."""
        self.events_seen += 1
        kind = event.get("type")
        rank = event.get("rank")
        if kind == "meta":
            if isinstance(rank, int):
                self._ranks.add(rank)
                self.meta[rank] = {k: v for k, v in event.items()
                                   if k not in ("type", "rank", "t")}
            if isinstance(event.get("world"), int):
                self.world = event["world"]
            return
        if kind != "step" or not isinstance(rank, int):
            return
        self._ranks.add(rank)
        if isinstance(event.get("step"), int):
            self._last_step[rank] = event["step"]
        for metric in STEP_METRICS:
            value = event.get(metric)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.observe(rank, metric, value)
                # Pooled series feed cross-rank percentiles (serving p99).
                self.observe(None, metric, value)
        for site, fields in (event.get("fidelity") or {}).items():
            for metric in FIDELITY_METRICS:
                value = fields.get(metric)
                if isinstance(value, (int, float)):
                    self.observe(None, f"fidelity/{site}/{metric}", value)

    def ingest_all(self, events) -> int:
        n = 0
        for event in events:
            self.ingest(event)
            n += 1
        return n

    def drain(self, backend, *, grace_s: float = 0.0) -> int:
        """Pull pending event batches from a backend's side channel.

        ``backend`` must expose ``poll_telemetry()`` returning a list of
        events (empty when telemetry is off).  With ``grace_s`` the drain
        keeps polling until the deadline passes with no new events —
        needed at end of run because queue feeder threads lag ``put``.
        """
        total = self.ingest_all(backend.poll_telemetry())
        deadline = time.monotonic() + grace_s
        while grace_s > 0 and time.monotonic() < deadline:
            got = self.ingest_all(backend.poll_telemetry())
            total += got
            if got:
                deadline = time.monotonic() + grace_s
            else:
                time.sleep(0.005)
        return total

    def drain_queue(self, q, *, grace_s: float = 0.0) -> int:
        """Drain a raw queue of event batches (used by MpBackend/tests)."""
        total = 0
        deadline = time.monotonic() + grace_s
        while True:
            try:
                batch = q.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                if grace_s > 0 and time.monotonic() < deadline:
                    time.sleep(0.005)
                    continue
                break
            total += self.ingest_all(batch)
            if grace_s > 0:
                deadline = time.monotonic() + grace_s
        return total

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view of every series' window statistics."""
        per_rank: dict[str, dict[str, dict]] = {}
        pooled: dict[str, dict] = {}
        fidelity: dict[str, dict[str, dict]] = {}
        for (rank, metric), win in sorted(
                self._series.items(),
                key=lambda kv: (kv[0][0] is None, kv[0][0] or 0, kv[0][1])):
            if rank is None and metric.startswith("fidelity/"):
                _, site, field = metric.split("/", 2)
                fidelity.setdefault(site, {})[field] = win.stats()
            elif rank is None:
                pooled[metric] = win.stats()
            else:
                per_rank.setdefault(str(rank), {})[metric] = win.stats()
        return {
            "world": self.world,
            "ranks": self.ranks(),
            "events_seen": self.events_seen,
            "last_step": {str(r): s for r, s in sorted(self._last_step.items())},
            "per_rank": per_rank,
            "pooled": pooled,
            "fidelity": fidelity,
        }
