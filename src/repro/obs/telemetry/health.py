"""Health monitor: declarative threshold rules over collector windows.

Each :class:`Rule` inspects the :class:`~repro.obs.telemetry.collector.Collector`'s
sliding windows and yields typed :class:`Alert`s naming the rank, site,
and window that tripped.  Rules are declarative data (thresholds in the
constructor) so the default battery can be tuned per deployment without
touching evaluation logic.

The straggler rule uses a **leave-one-out** z-score on per-rank *busy*
time (wall − comm-wait): with a 4-rank gang a plain population z-score
is bounded by √3 ≈ 1.73, so a conventional z>2 threshold could never
fire.  Scoring each rank against the statistics of the *other* ranks
removes the self-inflation, and busy time (rather than wall time) is the
right signal because a straggler's peers absorb its delay as barrier
wait inside their own wall time.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

from repro.obs.telemetry.collector import Collector

__all__ = [
    "Alert",
    "Rule",
    "StragglerRule",
    "CommStallRule",
    "RetryStormRule",
    "FidelityDriftRule",
    "LossRule",
    "HealthMonitor",
    "default_rules",
]


@dataclass(frozen=True)
class Alert:
    """One typed finding: which rule fired, where, and on what evidence."""

    rule: str
    severity: str  # "warning" | "critical"
    message: str
    rank: int | None = None
    site: str | None = None
    step: int | None = None
    value: float | None = None
    threshold: float | None = None
    window: int | None = None

    def to_json(self) -> dict:
        return {k: v for k, v in asdict(self).items() if v is not None}


class Rule:
    """Base class: subclasses override :meth:`evaluate`."""

    name = "rule"

    def evaluate(self, collector: Collector, step: int | None) -> list[Alert]:
        raise NotImplementedError


class StragglerRule(Rule):
    """A rank whose busy time stands out from its peers' (leave-one-out z).

    Fires when a rank's windowed mean busy time exceeds the mean of the
    other ranks' means by ``zscore`` leave-one-out standard deviations
    *and* by at least ``min_gap_ms`` absolute — the floor keeps noise on
    microsecond-scale steps from alerting, and ``std_floor_ms`` keeps a
    near-zero peer spread from dividing the z to infinity.
    """

    name = "straggler"

    def __init__(self, *, zscore: float = 3.0, min_gap_ms: float = 10.0,
                 std_floor_ms: float = 1.0, min_samples: int = 2):
        self.zscore = zscore
        self.min_gap_ms = min_gap_ms
        self.std_floor_ms = std_floor_ms
        self.min_samples = min_samples

    def evaluate(self, collector: Collector, step: int | None) -> list[Alert]:
        ranks = collector.ranks()
        if len(ranks) < 3:  # leave-one-out needs >= 2 peers for a spread
            return []
        means: dict[int, float] = {}
        window = 0
        for rank in ranks:
            win = collector.series(rank, "busy_ms")
            if len(win) < self.min_samples:
                return []
            means[rank] = win.mean()
            window = max(window, len(win))
        alerts = []
        for rank in ranks:
            peers = [means[r] for r in ranks if r != rank]
            mu = sum(peers) / len(peers)
            sigma = math.sqrt(sum((v - mu) ** 2 for v in peers) / len(peers))
            sigma = max(sigma, self.std_floor_ms)
            gap = means[rank] - mu
            z = gap / sigma
            if z > self.zscore and gap > self.min_gap_ms:
                alerts.append(Alert(
                    rule=self.name, severity="warning", rank=rank, step=step,
                    value=round(z, 3), threshold=self.zscore, window=window,
                    message=(f"rank {rank} busy time {means[rank]:.1f} ms is "
                             f"{gap:.1f} ms above peers (z={z:.1f}, "
                             f"window={window})"),
                ))
        return alerts


class CommStallRule(Rule):
    """A rank spending most of its step waiting on the transport."""

    name = "comm-stall"

    def __init__(self, *, ratio: float = 3.0, min_wait_ms: float = 5.0,
                 min_samples: int = 2):
        self.ratio = ratio
        self.min_wait_ms = min_wait_ms
        self.min_samples = min_samples

    def evaluate(self, collector: Collector, step: int | None) -> list[Alert]:
        alerts = []
        for rank in collector.ranks():
            wait = collector.series(rank, "comm_wait_ms")
            busy = collector.series(rank, "busy_ms")
            if len(wait) < self.min_samples or len(busy) < self.min_samples:
                continue
            wait_mean = wait.mean()
            busy_mean = max(busy.mean(), 1e-9)
            ratio = wait_mean / busy_mean
            if ratio > self.ratio and wait_mean > self.min_wait_ms:
                alerts.append(Alert(
                    rule=self.name, severity="warning", rank=rank, step=step,
                    value=round(ratio, 3), threshold=self.ratio,
                    window=len(wait),
                    message=(f"rank {rank} comm-wait/busy ratio {ratio:.1f} "
                             f"(wait {wait_mean:.1f} ms vs busy "
                             f"{busy_mean:.1f} ms, window={len(wait)})"),
                ))
        return alerts


class RetryStormRule(Rule):
    """Fault-seam retries/drops accumulating faster than a healthy link."""

    name = "retry-storm"

    def __init__(self, *, max_events: int = 8):
        self.max_events = max_events

    def evaluate(self, collector: Collector, step: int | None) -> list[Alert]:
        alerts = []
        for rank in collector.ranks():
            retries = collector.series(rank, "retries")
            drops = collector.series(rank, "drops")
            total = sum(retries.values()) + sum(drops.values())
            if total > self.max_events:
                alerts.append(Alert(
                    rule=self.name, severity="critical", rank=rank, step=step,
                    value=float(total), threshold=float(self.max_events),
                    window=max(len(retries), len(drops)),
                    message=(f"rank {rank} saw {int(total)} transport "
                             f"retries/drops in the window "
                             f"(limit {self.max_events})"),
                ))
        return alerts


class FidelityDriftRule(Rule):
    """A compression site's reconstruction error drifting upward online.

    Compares the newer half of the window against the older half: drift
    means recent rel-L2 is ``factor``× the established level — the signal
    the activation-quantization-with-guarantees line of work says must be
    watched *during* training, not post-hoc.
    """

    name = "fidelity-drift"

    def __init__(self, *, factor: float = 2.0, min_samples: int = 6,
                 floor: float = 1e-12):
        self.factor = factor
        self.min_samples = min_samples
        self.floor = floor

    def evaluate(self, collector: Collector, step: int | None) -> list[Alert]:
        alerts = []
        for site in collector.sites():
            win = collector.series(None, f"fidelity/{site}/rel_l2")
            values = win.values()
            if len(values) < self.min_samples:
                continue
            half = len(values) // 2
            older = values[:half]
            newer = values[half:]
            old_mean = max(sum(older) / len(older), self.floor)
            new_mean = sum(newer) / len(newer)
            ratio = new_mean / old_mean
            if ratio > self.factor:
                alerts.append(Alert(
                    rule=self.name, severity="warning", site=site, step=step,
                    value=round(ratio, 3), threshold=self.factor,
                    window=len(values),
                    message=(f"site {site} rel-L2 drifted {ratio:.1f}x "
                             f"({old_mean:.2e} -> {new_mean:.2e}, "
                             f"window={len(values)})"),
                ))
        return alerts


class LossRule(Rule):
    """Loss went NaN/Inf (critical) or diverged from its window minimum."""

    name = "loss"

    def __init__(self, *, divergence_factor: float = 2.0, min_samples: int = 4):
        self.divergence_factor = divergence_factor
        self.min_samples = min_samples

    def evaluate(self, collector: Collector, step: int | None) -> list[Alert]:
        win = collector.series(None, "loss")
        last = win.last
        if last is None:
            return []
        if math.isnan(last) or math.isinf(last):
            return [Alert(
                rule=self.name, severity="critical", step=step, value=last,
                window=len(win),
                message=f"loss is non-finite ({last}) at step {step}",
            )]
        if len(win) < self.min_samples:
            return []
        lo = win.min()
        if lo > 0 and last > self.divergence_factor * lo:
            return [Alert(
                rule=self.name, severity="warning", step=step,
                value=round(last, 6),
                threshold=round(self.divergence_factor * lo, 6),
                window=len(win),
                message=(f"loss {last:.4f} is {last / lo:.1f}x the window "
                         f"minimum {lo:.4f} (window={len(win)})"),
            )]
        return []


def default_rules() -> list[Rule]:
    return [StragglerRule(), CommStallRule(), RetryStormRule(),
            FidelityDriftRule(), LossRule()]


class HealthMonitor:
    """Evaluates a rule battery against a collector; deduplicates alerts.

    An alert identity is ``(rule, rank, site)``: a condition that stays
    tripped across consecutive checks produces one alert when it first
    fires and a fresh one only after it clears and re-fires — so a
    50-step straggler is one finding, not 50.
    """

    def __init__(self, collector: Collector, rules: list[Rule] | None = None):
        self.collector = collector
        self.rules = list(rules) if rules is not None else default_rules()
        self.alerts: list[Alert] = []
        self._active: set[tuple[str, int | None, str | None]] = set()

    def check(self, step: int | None = None) -> list[Alert]:
        """Run every rule once; returns only *newly fired* alerts."""
        fired: list[Alert] = []
        now_active: set[tuple[str, int | None, str | None]] = set()
        for rule in self.rules:
            for alert in rule.evaluate(self.collector, step):
                key = (alert.rule, alert.rank, alert.site)
                now_active.add(key)
                if key not in self._active:
                    fired.append(alert)
        self._active = now_active
        self.alerts.extend(fired)
        return fired

    def summary(self) -> dict:
        by_rule: dict[str, int] = {}
        for alert in self.alerts:
            by_rule[alert.rule] = by_rule.get(alert.rule, 0) + 1
        return {
            "total": len(self.alerts),
            "by_rule": by_rule,
            "alerts": [a.to_json() for a in self.alerts],
        }
