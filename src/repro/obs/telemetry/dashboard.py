"""Telemetry consumers: live terminal dashboard and HTML snapshot report.

:func:`render_top` turns the current collector windows + health alerts
into one plain-text frame — the ``repro.obs top`` verb prints a frame per
training step.  :func:`render_html` renders a standalone (no external
assets) HTML snapshot of a registry run summary, suitable for CI artifact
upload.
"""

from __future__ import annotations

import html
import json

__all__ = ["render_top", "render_html", "write_html"]


def _fmt(value, digits: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_top(collector, monitor, *, step: int | None = None) -> str:
    """One dashboard frame: per-rank step table, fidelity, recent alerts."""
    # Lazy for the same reason as registry.validate_run: keep the worker's
    # telemetry import free of the experiments package.
    from repro.experiments.report import format_table

    lines = []
    world = collector.world if collector.world is not None else len(collector.ranks())
    head = f"repro.obs top · world={world}"
    if step is not None:
        head += f" · step {step}"
    pooled_wall = collector.series(None, "wall_ms")
    if len(pooled_wall):
        head += (f" · step wall p50 {_fmt(pooled_wall.p50())} ms"
                 f" / p99 {_fmt(pooled_wall.p99())} ms")
    lines.append(head)

    rows = []
    for rank in collector.ranks():
        wall = collector.series(rank, "wall_ms")
        if not len(wall):
            continue
        rows.append({
            "rank": rank,
            "step": collector.last_step(rank),
            "wall p50 (ms)": wall.p50(),
            "busy (ms)": collector.series(rank, "busy_ms").mean(),
            "wait (ms)": collector.series(rank, "comm_wait_ms").mean(),
            "ring": int(collector.series(rank, "ring_occupancy").max() or 0),
            "retries": int(sum(collector.series(rank, "retries").values())),
            "rss (MB)": (collector.series(rank, "peak_rss_kb").last or 0) / 1024.0,
        })
    if rows:
        lines.append(format_table(rows, title="ranks"))
    else:
        lines.append("(no rank telemetry yet)")

    fid_rows = []
    for site in collector.sites():
        rel = collector.series(None, f"fidelity/{site}/rel_l2")
        if not len(rel):
            continue
        fid_rows.append({
            "site": site,
            "rel-L2 mean": rel.mean(),
            "rel-L2 ewma": rel.ewma,
            "wire ratio": collector.series(None, f"fidelity/{site}/ratio").mean(),
            "residual": collector.series(
                None, f"fidelity/{site}/residual_norm").last,
        })
    if fid_rows:
        lines.append(format_table(fid_rows, title="compression fidelity"))

    if monitor.alerts:
        lines.append(f"alerts ({len(monitor.alerts)}):")
        for alert in monitor.alerts[-8:]:
            lines.append(f"  [{alert.severity}] {alert.rule}: {alert.message}")
    else:
        lines.append("alerts: none")
    return "\n".join(lines)


_HTML_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2rem;
       background: #11151a; color: #d8dee9; }
h1, h2 { color: #88c0d0; font-weight: 600; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #2e3440; padding: 0.35rem 0.7rem; text-align: right; }
th { background: #1b2128; color: #8fbcbb; }
td:first-child, th:first-child { text-align: left; }
.alert-critical { color: #bf616a; font-weight: 700; }
.alert-warning { color: #ebcb8b; }
.ok { color: #a3be8c; }
footer { margin-top: 2rem; color: #4c566a; font-size: 0.85em; }
"""


def _html_table(rows: list[dict], columns: list[str]) -> str:
    head = "".join(f"<th>{html.escape(c)}</th>" for c in columns)
    body = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                value = f"{value:.4g}"
            cells.append(f"<td>{html.escape(str(value))}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")


def render_html(summary: dict) -> str:
    """Standalone HTML snapshot of one registry run summary."""
    telemetry = summary["telemetry"]
    health = summary["health"]
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>telemetry · {html.escape(summary['run_id'])}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>Run {html.escape(summary['run_id'])}</h1>",
    ]
    meta = summary.get("meta") or {}
    if meta:
        parts.append("<p>" + " · ".join(
            f"{html.escape(str(k))}={html.escape(str(v))}"
            for k, v in sorted(meta.items())) + "</p>")

    rank_rows = []
    for rank in sorted(telemetry["per_rank"], key=int):
        metrics = telemetry["per_rank"][rank]
        row = {"rank": rank}
        for metric in ("wall_ms", "busy_ms", "comm_wait_ms", "ring_occupancy",
                       "retries", "peak_rss_kb"):
            stats = metrics.get(metric) or {}
            row[metric] = stats.get("p50" if metric == "wall_ms" else "mean", "")
        rank_rows.append(row)
    if rank_rows:
        parts.append("<h2>Ranks</h2>")
        parts.append(_html_table(rank_rows, list(rank_rows[0].keys())))

    pooled_rows = []
    for metric, stats in sorted(telemetry["pooled"].items()):
        pooled_rows.append({"metric": metric, **{
            k: stats.get(k, "") for k in ("window", "mean", "p50", "p99", "max")}})
    if pooled_rows:
        parts.append("<h2>Pooled windows</h2>")
        parts.append(_html_table(pooled_rows, list(pooled_rows[0].keys())))

    fid_rows = []
    for site, fields in sorted(telemetry["fidelity"].items()):
        for metric, stats in sorted(fields.items()):
            fid_rows.append({"site": site, "metric": metric,
                             "mean": stats.get("mean", ""),
                             "last": stats.get("last", "")})
    if fid_rows:
        parts.append("<h2>Compression fidelity</h2>")
        parts.append(_html_table(fid_rows, list(fid_rows[0].keys())))

    parts.append("<h2>Health</h2>")
    if health["alerts"]:
        items = []
        for alert in health["alerts"]:
            cls = f"alert-{alert.get('severity', 'warning')}"
            items.append(f"<li class='{cls}'>[{html.escape(alert.get('rule', '?'))}] "
                         f"{html.escape(alert.get('message', ''))}</li>")
        parts.append(f"<ul>{''.join(items)}</ul>")
    else:
        parts.append("<p class='ok'>no alerts</p>")

    parts.append(f"<footer><pre>{html.escape(json.dumps(summary.get('meta', {}), sort_keys=True))}"
                 f"</pre></footer></body></html>")
    return "".join(parts)


def write_html(path: str, summary: dict) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_html(summary))
    return path
