"""Per-rank telemetry agent: the worker-side half of the live side channel.

A :class:`TelemetryAgent` is embedded in the mp worker loop
(:mod:`repro.parallel.backend.worker`) and, once per training step, emits
one ``step`` event carrying the signals the ROADMAP's serving and
adaptive-compression items need as controller input:

- step wall time (including any injected straggler delay),
- per-phase comm-wait (summed ``mp.wait`` spans from the transport
  timeline) and the derived *busy* time (wall − wait — the quantity whose
  cross-rank z-score identifies a straggler, because a peer's barrier
  wait absorbs the straggler's delay while its own busy time shows it),
- mailbox ring occupancy (FULL slots per directed mailbox, sampled via
  :meth:`~repro.parallel.backend.transport.RankTransport.ring_occupancy`),
- fault-seam retries/drops/delays (deltas of the installed
  :class:`~repro.parallel.backend.faults.FaultPlan`'s injected counters),
- per-site compression fidelity (rel-L2 reconstruction error, realized
  wire ratio, EF residual norms) from a worker-local
  :class:`~repro.obs.fidelity.FidelityProbe`, and
- the process's peak RSS high-water mark.

Design rules (DESIGN decision #12, same discipline as
:mod:`repro.parallel.backend.conclog`):

- **Bitwise-neutral side channel.**  The agent only observes: it never
  touches the data plane, and the fidelity probe reads activations the
  collectives already materialized.  Telemetry-on and telemetry-off runs
  produce bitwise-identical losses and weights (tested).
- **Off by default.**  Without ``REPRO_TELEMETRY`` in the environment no
  agent is constructed and every instrumentation point costs one ``is
  None`` check.
- **Emit before publish.**  The agent's events for step *N* are put on
  the side channel *before* the worker sends step *N*'s result over the
  control pipe, so the parent never observes a result whose telemetry is
  not already in flight.  (Queue delivery runs through a feeder thread,
  so "in flight" is a happens-before on the sender — collectors should
  drain with a grace period at end of run.)
- **Never block training.**  Events are published with ``put_nowait``; a
  full queue drops the batch (counted in :attr:`dropped`) instead of
  stalling the step.

The sink is anything with ``put_nowait(batch)`` — a spawn-context
``multiprocessing.Queue`` in production, a list-backed stub in tests.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time

from repro.obs.fidelity import FidelityProbe

__all__ = [
    "ENV_VAR",
    "SAMPLE_ENV_VAR",
    "enabled",
    "telemetry_queue",
    "maybe_agent_from_env",
    "ListSink",
    "TelemetryAgent",
]

#: Presence (any non-empty value except ``0``) turns telemetry on.
ENV_VAR = "REPRO_TELEMETRY"

#: Fidelity sampling period: observe the probe every N-th step (default
#: every step).  Raising it trades drift-detection latency for less
#: per-site norm arithmetic on the hot path.
SAMPLE_ENV_VAR = "REPRO_TELEMETRY_SAMPLE"

#: Queue depth of the side channel; a full queue drops batches rather
#: than stalling a step, so depth only matters for bursty consumers.
QUEUE_MAXSIZE = 4096


def enabled() -> bool:
    """Whether ``REPRO_TELEMETRY`` arms the telemetry side channel."""
    value = os.environ.get(ENV_VAR, "")
    return bool(value) and value != "0"


def telemetry_queue(ctx):
    """The parent's side-channel queue for ``ctx`` (a spawn context)."""
    return ctx.Queue(maxsize=QUEUE_MAXSIZE)


def maybe_agent_from_env(rank: int, world: int, sink) -> "TelemetryAgent | None":
    """Build the rank's agent iff telemetry is armed and a sink exists.

    Returns ``None`` (and installs nothing) when ``REPRO_TELEMETRY`` is
    unset or the parent passed no queue — the production default.  The mp
    worker calls this once at startup; the env var is inherited through
    the spawn context, so arming telemetry is purely a parent decision.
    """
    if not enabled() or sink is None:
        return None
    try:
        sample = int(os.environ.get(SAMPLE_ENV_VAR, "1") or 1)
    except ValueError:
        sample = 1
    return TelemetryAgent(rank, world, sink, sample_every=max(1, sample))


class ListSink:
    """In-process sink used by unit tests: batches land in ``batches``."""

    def __init__(self):
        self.batches: list[list[dict]] = []

    def put_nowait(self, batch: list[dict]) -> None:
        self.batches.append(batch)

    def events(self) -> list[dict]:
        return [event for batch in self.batches for event in batch]


class TelemetryAgent:
    """Streams one rank's counters/gauges/events to the parent collector.

    Parameters
    ----------
    rank, world:
        This worker's global rank and the gang size.
    sink:
        Anything with ``put_nowait(list_of_event_dicts)``.
    sample_every:
        Observe the fidelity probe on every N-th step.
    clock:
        Monotonic seconds; injectable for deterministic tests.
    """

    def __init__(self, rank: int, world: int, sink, *, sample_every: int = 1,
                 clock=time.monotonic):
        self.rank = rank
        self.world = world
        self.sink = sink
        self.sample_every = max(1, int(sample_every))
        self.probe = FidelityProbe()
        self.dropped = 0
        self._clock = clock
        self._buffer: list[dict] = []
        self._tracker = None
        self._last_injected: dict[str, int] = {}
        self.emit("meta", world=world, sample_every=self.sample_every)

    # ------------------------------------------------------------------
    def emit(self, type_: str, **fields) -> dict:
        """Append one event to the unpublished buffer (and return it)."""
        event = {"type": type_, "rank": self.rank, "t": self._clock(), **fields}
        self._buffer.append(event)
        return event

    def publish(self) -> int:
        """Push buffered events to the sink; returns how many were sent.

        Called by the worker immediately *before* it publishes the step
        result on the control pipe (emit-before-publish).  A full queue
        drops the batch — telemetry must never stall a training step.
        """
        if not self._buffer:
            return 0
        batch, self._buffer = self._buffer, []
        try:
            self.sink.put_nowait(batch)
        except queue_mod.Full:
            self.dropped += len(batch)
            return 0
        return len(batch)

    # ------------------------------------------------------------------
    def watch(self, tracker) -> None:
        """Adopt ``tracker`` as the fidelity source (probe attach point)."""
        self._tracker = tracker

    def begin_step(self, step: int) -> None:
        """Arm the fidelity probe iff this step is a sampled one."""
        if self._tracker is None:
            return
        if step % self.sample_every == 0:
            self._tracker.probe = self.probe
        elif self._tracker.probe is self.probe:
            self._tracker.probe = None

    # ------------------------------------------------------------------
    def _fault_deltas(self, plan) -> dict[str, int]:
        """Per-kind injected-fault counts since the previous step."""
        if plan is None:
            return {}
        deltas: dict[str, int] = {}
        for kind, count in plan.injected.items():
            before = self._last_injected.get(kind, 0)
            if count > before:
                deltas[kind] = count - before
            self._last_injected[kind] = count
        return deltas

    @staticmethod
    def _peak_rss_kb() -> float:
        try:
            import resource

            return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        except (ImportError, OSError):  # non-POSIX hosts: gauge degrades to 0
            return 0.0

    def record_step(self, step: int, t_start: float, *, loss=None,
                    timeline=None, transport=None, plan=None) -> dict:
        """Summarize one finished step into a single ``step`` event.

        ``t_start`` is the monotonic stamp taken in the worker loop
        *before* fault injection, so an injected straggler delay lands in
        this rank's wall (and busy) time rather than vanishing into the
        gap between commands.
        """
        now = self._clock()
        wall_ms = (now - t_start) * 1e3
        comm_wait_ms = fault_ms = 0.0
        for span in timeline or ():
            if span.get("cat") == "mp.wait":
                comm_wait_ms += span["dur_ms"]
            elif span.get("cat") == "mp.fault":
                fault_ms += span["dur_ms"]
        occupancy = 0
        if transport is not None:
            rings = transport.ring_occupancy()
            occupancy = max(rings.values(), default=0)
        deltas = self._fault_deltas(plan)
        fidelity: dict[str, dict] = {}
        if self.probe.records:
            for site, agg in self.probe.per_site().items():
                fidelity[site] = {
                    "rel_l2": agg["rel_l2_error_mean"],
                    "ratio": agg["ratio_mean"],
                    "residual_norm": agg["residual_norm_last"],
                }
            self.probe.reset()
        event = self.emit(
            "step",
            step=step,
            wall_ms=wall_ms,
            comm_wait_ms=comm_wait_ms,
            busy_ms=max(wall_ms - comm_wait_ms, 0.0),
            fault_ms=fault_ms,
            ring_occupancy=occupancy,
            retries=deltas.get("corrupt", 0) + deltas.get("drop", 0),
            drops=deltas.get("drop", 0),
            delays=deltas.get("delay", 0),
            peak_rss_kb=self._peak_rss_kb(),
        )
        if loss is not None:
            event["loss"] = float(loss)
        if fidelity:
            event["fidelity"] = fidelity
        return event
