"""Run registry: a ``runs/`` directory of schema-validated run summaries.

Every telemetry-enabled run can drop one JSON summary —
collector snapshot + health alerts + run metadata — into a registry
directory.  Summaries are validated against :data:`RUN_SCHEMA` (same
dependency-free validator subset as the bench schema) on both save and
load, so a registry never silently accumulates malformed documents, and
``repro.obs diff RUN_A RUN_B`` renders a per-metric regression table
between any two of them.
"""

from __future__ import annotations

import json
import os
import time

__all__ = [
    "RUN_SCHEMA",
    "RunSchemaError",
    "validate_run",
    "build_summary",
    "save_run",
    "load_run",
    "list_runs",
    "resolve_run",
    "diff_runs",
    "format_diff",
]

RUN_SCHEMA_VERSION = 1

_STATS = {
    "type": "object",
    "required": ["count", "window"],
    "properties": {
        "count": {"type": "integer", "minimum": 0},
        "window": {"type": "integer", "minimum": 0},
    },
    # last/mean/ewma/min/max/p50/p99 — numbers, or null for empty windows.
}

RUN_SCHEMA = {
    "type": "object",
    "required": ["schema_version", "run_id", "created_unix", "meta",
                 "telemetry", "health"],
    "additionalProperties": False,
    "properties": {
        "schema_version": {"type": "integer", "enum": [RUN_SCHEMA_VERSION]},
        "run_id": {"type": "string"},
        "created_unix": {"type": "number"},
        "meta": {"type": "object"},
        "telemetry": {
            "type": "object",
            "required": ["ranks", "per_rank", "pooled", "fidelity"],
            "properties": {
                "ranks": {"type": "array", "items": {"type": "integer"}},
                "events_seen": {"type": "integer", "minimum": 0},
                "per_rank": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "object",
                        "additionalProperties": _STATS,
                    },
                },
                "pooled": {"type": "object",
                           "additionalProperties": _STATS},
                "fidelity": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "object",
                        "additionalProperties": _STATS,
                    },
                },
            },
        },
        "health": {
            "type": "object",
            "required": ["total", "by_rule", "alerts"],
            "properties": {
                "total": {"type": "integer", "minimum": 0},
                "by_rule": {"type": "object",
                            "additionalProperties": {"type": "integer"}},
                "alerts": {"type": "array", "items": {"type": "object"}},
            },
        },
    },
}


class RunSchemaError(ValueError):
    """A run summary violated :data:`RUN_SCHEMA`."""


def validate_run(doc: dict) -> dict:
    # Imported here, not at module top: this module is reachable from the
    # mp worker's telemetry import and must not drag the bench package
    # (which imports the whole model stack) into every worker process.
    from repro.bench.schema import schema_errors

    errors = schema_errors(doc, RUN_SCHEMA)
    if errors:
        raise RunSchemaError(
            "invalid run summary:\n  " + "\n  ".join(errors))
    return doc


def build_summary(run_id: str, collector, monitor, *,
                  meta: dict | None = None) -> dict:
    """Assemble the registry document for one finished run."""
    return validate_run({
        "schema_version": RUN_SCHEMA_VERSION,
        "run_id": run_id,
        "created_unix": time.time(),
        "meta": dict(meta or {}),
        "telemetry": collector.snapshot(),
        "health": monitor.summary(),
    })


def _run_path(registry_dir: str, run_id: str) -> str:
    return os.path.join(registry_dir, f"{run_id}.run.json")


def save_run(registry_dir: str, doc: dict) -> str:
    """Validate and write one summary; returns the path written."""
    validate_run(doc)
    os.makedirs(registry_dir, exist_ok=True)
    path = _run_path(registry_dir, doc["run_id"])
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_run(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return validate_run(json.load(fh))


def list_runs(registry_dir: str) -> list[str]:
    """Registry run ids, oldest first by file mtime."""
    if not os.path.isdir(registry_dir):
        return []
    paths = [os.path.join(registry_dir, name)
             for name in os.listdir(registry_dir)
             if name.endswith(".run.json")]
    paths.sort(key=os.path.getmtime)
    return [os.path.basename(p)[: -len(".run.json")] for p in paths]


def resolve_run(registry_dir: str, ref: str) -> str:
    """Resolve a run reference — an id in the registry or a file path."""
    candidate = _run_path(registry_dir, ref)
    if os.path.exists(candidate):
        return candidate
    if os.path.exists(ref):
        return ref
    raise FileNotFoundError(
        f"run {ref!r} not found in registry {registry_dir!r} "
        f"(known: {', '.join(list_runs(registry_dir)) or 'none'})")


# ----------------------------------------------------------------------
# diff

#: Which window statistic is compared per metric family.
_DIFF_STAT = "p50"


def _metric_rows(doc: dict) -> dict[str, float]:
    """Flatten a summary into comparable ``metric -> value`` pairs."""
    flat: dict[str, float] = {}
    telemetry = doc["telemetry"]
    for metric, stats in telemetry["pooled"].items():
        value = stats.get(_DIFF_STAT)
        if isinstance(value, (int, float)):
            flat[f"pooled/{metric}/{_DIFF_STAT}"] = value
        p99 = stats.get("p99")
        if isinstance(p99, (int, float)):
            flat[f"pooled/{metric}/p99"] = p99
    for rank, metrics in telemetry["per_rank"].items():
        for metric, stats in metrics.items():
            value = stats.get("mean")
            if isinstance(value, (int, float)):
                flat[f"rank{rank}/{metric}/mean"] = value
    for site, fields in telemetry["fidelity"].items():
        for metric, stats in fields.items():
            value = stats.get("mean")
            if isinstance(value, (int, float)):
                flat[f"fidelity/{site}/{metric}/mean"] = value
    flat["health/alerts"] = float(doc["health"]["total"])
    return flat


def diff_runs(doc_a: dict, doc_b: dict) -> list[dict]:
    """Per-metric regression table between two run summaries.

    Rows cover the union of both runs' metrics; a metric present in only
    one run shows an empty cell on the other side rather than being
    dropped, so a disappeared signal is itself visible in the diff.
    """
    a = _metric_rows(doc_a)
    b = _metric_rows(doc_b)
    rows = []
    for metric in sorted(set(a) | set(b)):
        va, vb = a.get(metric), b.get(metric)
        row = {
            "metric": metric,
            doc_a["run_id"]: "" if va is None else va,
            doc_b["run_id"]: "" if vb is None else vb,
            "delta": "",
            "delta_pct": "",
        }
        if va is not None and vb is not None:
            row["delta"] = vb - va
            if va:
                row["delta_pct"] = f"{(vb - va) / abs(va) * 100.0:+.1f}%"
        rows.append(row)
    return rows


def format_diff(doc_a: dict, doc_b: dict) -> str:
    from repro.experiments.report import format_table

    rows = diff_runs(doc_a, doc_b)
    title = f"telemetry diff: {doc_a['run_id']} vs {doc_b['run_id']}"
    return format_table(rows, title=title)
