"""Live cross-rank telemetry: agent, collector, health rules, registry.

The subsystem in one sentence: each mp rank runs a
:class:`~repro.obs.telemetry.agent.TelemetryAgent` that streams step
counters/gauges over a queue side channel (off by default, armed by
``REPRO_TELEMETRY``); the parent's
:class:`~repro.obs.telemetry.collector.Collector` keeps sliding-window
time-series that a :class:`~repro.obs.telemetry.health.HealthMonitor`
evaluates into typed :class:`~repro.obs.telemetry.health.Alert`s; the
``repro.obs top`` dashboard, HTML snapshots, and the run registry
(:mod:`~repro.obs.telemetry.registry`, with ``repro.obs diff``) consume
the result.  Everything is bitwise-neutral to training.
"""

from repro.obs.telemetry.agent import (
    ENV_VAR,
    SAMPLE_ENV_VAR,
    ListSink,
    TelemetryAgent,
    enabled,
    maybe_agent_from_env,
    telemetry_queue,
)
from repro.obs.telemetry.collector import DEFAULT_WINDOW, Collector, SlidingWindow
from repro.obs.telemetry.dashboard import render_html, render_top, write_html
from repro.obs.telemetry.health import (
    Alert,
    CommStallRule,
    FidelityDriftRule,
    HealthMonitor,
    LossRule,
    RetryStormRule,
    Rule,
    StragglerRule,
    default_rules,
)
from repro.obs.telemetry.registry import (
    RUN_SCHEMA,
    RunSchemaError,
    build_summary,
    diff_runs,
    format_diff,
    list_runs,
    load_run,
    resolve_run,
    save_run,
    validate_run,
)

__all__ = [
    "ENV_VAR",
    "SAMPLE_ENV_VAR",
    "enabled",
    "telemetry_queue",
    "maybe_agent_from_env",
    "ListSink",
    "TelemetryAgent",
    "DEFAULT_WINDOW",
    "SlidingWindow",
    "Collector",
    "Alert",
    "Rule",
    "StragglerRule",
    "CommStallRule",
    "RetryStormRule",
    "FidelityDriftRule",
    "LossRule",
    "HealthMonitor",
    "default_rules",
    "RUN_SCHEMA",
    "RunSchemaError",
    "validate_run",
    "build_summary",
    "save_run",
    "load_run",
    "list_runs",
    "resolve_run",
    "diff_runs",
    "format_diff",
    "render_top",
    "render_html",
    "write_html",
]
