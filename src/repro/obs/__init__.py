"""Observability: run telemetry, compression-fidelity metrics, trace export.

- :mod:`repro.obs.metrics` — :class:`RunRecorder` step-scoped telemetry
  with JSONL/CSV sinks (:data:`NULL_RECORDER` is the free default).
- :mod:`repro.obs.fidelity` — :class:`FidelityProbe`, attached to a
  ``CommTracker``, records per-site reconstruction error / realized
  ratio / EF-residual norms from inside the collectives.
- :mod:`repro.obs.profile` — :class:`OpProfiler`, an op-level
  deterministic profiler on the ``repro.tensor`` op-hook seam (wall time,
  call counts, FLOP/byte estimates, allocation high-water marks, span
  stack with ``CommTracker`` cross-links).
- :mod:`repro.obs.trace` — Chrome-trace (Perfetto) export of recorded
  runs, profiled sessions and simulated GPipe iterations, plus
  :func:`merge_traces` to render them side by side.
- ``python -m repro.obs report run.jsonl`` — terminal report of a run.
"""

from repro.obs.fidelity import FidelityProbe, FidelityRecord
from repro.obs.metrics import NULL_RECORDER, NullRecorder, RunRecorder, load_jsonl
from repro.obs.profile import OpProfiler, OpStats
from repro.obs.trace import (
    merge_traces,
    profiler_trace,
    simulated_iteration_trace,
    trace_from_run,
    validate_against_breakdown,
    write_trace,
)

__all__ = [
    "RunRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "load_jsonl",
    "FidelityProbe",
    "FidelityRecord",
    "OpProfiler",
    "OpStats",
    "trace_from_run",
    "simulated_iteration_trace",
    "profiler_trace",
    "merge_traces",
    "validate_against_breakdown",
    "write_trace",
]
