"""Observability: run telemetry, compression-fidelity metrics, trace export.

- :mod:`repro.obs.metrics` — :class:`RunRecorder` step-scoped telemetry
  with JSONL/CSV sinks (:data:`NULL_RECORDER` is the free default).
- :mod:`repro.obs.fidelity` — :class:`FidelityProbe`, attached to a
  ``CommTracker``, records per-site reconstruction error / realized
  ratio / EF-residual norms from inside the collectives.
- :mod:`repro.obs.trace` — Chrome-trace (Perfetto) export of recorded
  runs and of simulated GPipe iterations.
- ``python -m repro.obs report run.jsonl`` — terminal report of a run.
"""

from repro.obs.fidelity import FidelityProbe, FidelityRecord
from repro.obs.metrics import NULL_RECORDER, NullRecorder, RunRecorder, load_jsonl
from repro.obs.trace import (
    simulated_iteration_trace,
    trace_from_run,
    validate_against_breakdown,
    write_trace,
)

__all__ = [
    "RunRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "load_jsonl",
    "FidelityProbe",
    "FidelityRecord",
    "trace_from_run",
    "simulated_iteration_trace",
    "validate_against_breakdown",
    "write_trace",
]
