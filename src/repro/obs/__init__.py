"""Observability: run telemetry, compression-fidelity metrics, trace export.

- :mod:`repro.obs.metrics` — :class:`RunRecorder` step-scoped telemetry
  with JSONL/CSV sinks (:data:`NULL_RECORDER` is the free default).
- :mod:`repro.obs.fidelity` — :class:`FidelityProbe`, attached to a
  ``CommTracker``, records per-site reconstruction error / realized
  ratio / EF-residual norms from inside the collectives.
- :mod:`repro.obs.profile` — :class:`OpProfiler`, an op-level
  deterministic profiler on the ``repro.tensor`` op-hook seam (wall time,
  call counts, FLOP/byte estimates, allocation high-water marks, span
  stack with ``CommTracker`` cross-links).
- :mod:`repro.obs.trace` — Chrome-trace (Perfetto) export of recorded
  runs, profiled sessions and simulated GPipe iterations, plus
  :func:`merge_traces` to render them side by side.
- :mod:`repro.obs.telemetry` — live cross-rank telemetry: per-rank
  :class:`TelemetryAgent` streaming over the mp backend's queue side
  channel, parent-side :class:`Collector` sliding windows,
  :class:`HealthMonitor` alert rules, the run registry and the
  terminal/HTML dashboards (``python -m repro.obs top / diff / html``).
- ``python -m repro.obs report run.jsonl`` — terminal report of a run.
"""

from repro.obs.fidelity import FidelityProbe, FidelityRecord
from repro.obs.metrics import NULL_RECORDER, NullRecorder, RunRecorder, load_jsonl
from repro.obs.profile import OpProfiler, OpStats
from repro.obs.telemetry import (
    Alert,
    Collector,
    HealthMonitor,
    SlidingWindow,
    TelemetryAgent,
    build_summary,
    default_rules,
    diff_runs,
    load_run,
    save_run,
)
from repro.obs.trace import (
    merge_traces,
    profiler_trace,
    simulated_iteration_trace,
    trace_from_run,
    validate_against_breakdown,
    write_trace,
)

__all__ = [
    "RunRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "load_jsonl",
    "FidelityProbe",
    "FidelityRecord",
    "OpProfiler",
    "OpStats",
    "TelemetryAgent",
    "Collector",
    "SlidingWindow",
    "HealthMonitor",
    "Alert",
    "default_rules",
    "build_summary",
    "save_run",
    "load_run",
    "diff_runs",
    "trace_from_run",
    "simulated_iteration_trace",
    "profiler_trace",
    "merge_traces",
    "validate_against_breakdown",
    "write_trace",
]
