"""Reverse-mode autodiff Tensor.

A :class:`Tensor` wraps a ``numpy.ndarray`` and records, for each produced
tensor, a closure that propagates the output gradient to its parents.
``Tensor.backward()`` runs a topological sort and applies the closures.

Broadcasting is supported on elementwise ops; gradients are un-broadcast by
summing over the broadcast axes (:func:`unbroadcast`).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "tensor",
    "unbroadcast",
    "register_tensor_guard",
    "unregister_tensor_guard",
    "tensor_guard",
    "register_op_hook",
    "unregister_op_hook",
    "op_hook",
]

_GRAD_ENABLED = True

#: Optional sanitizer hooks (repro.lint.graph_check). Each guard is called
#: with (array, context) for every op output and every backward gradient.
#: Empty in normal operation so the hot path pays one truthiness check.
_TENSOR_GUARDS: list[Callable[[np.ndarray, str], None]] = []

#: Optional op-observer hooks (repro.obs.profile). Each hook is called as
#: ``fn(op, data, parent_shapes, phase)`` — once per produced op output
#: (phase "forward") and once per executed backward closure (phase
#: "backward"). Like the guards, the list is empty in normal operation so
#: the hot path pays one truthiness check and nothing else.
_OP_HOOKS: list[Callable[[str, np.ndarray, tuple, str], None]] = []

#: Backward-closure code object -> op name, so the hook path resolves the
#: producing op without re-parsing ``__qualname__`` on every call.
_OP_NAME_CACHE: dict[int, str] = {}


def _op_name(backward: Callable) -> str:
    """Name of the op that defined ``backward`` (from its qualname)."""
    key = id(getattr(backward, "__code__", backward))
    name = _OP_NAME_CACHE.get(key)
    if name is None:
        parts = getattr(backward, "__qualname__", "op").split(".")
        # "Tensor.__add__.<locals>.backward" -> "__add__";
        # "concatenate.<locals>.backward" -> "concatenate".
        name = parts[-3] if len(parts) >= 3 else parts[0]
        _OP_NAME_CACHE[key] = name
    return name


def register_op_hook(fn: Callable[[str, np.ndarray, tuple, str], None]) -> Callable:
    """Install ``fn(op, data, parent_shapes, phase)`` on every tensor op."""
    _OP_HOOKS.append(fn)
    return fn


def unregister_op_hook(fn: Callable[[str, np.ndarray, tuple, str], None]) -> None:
    """Remove a hook previously installed with :func:`register_op_hook`."""
    _OP_HOOKS.remove(fn)


@contextlib.contextmanager
def op_hook(fn: Callable[[str, np.ndarray, tuple, str], None]):
    """Context manager installing an op hook for the duration of the block."""
    register_op_hook(fn)
    try:
        yield fn
    finally:
        unregister_op_hook(fn)


def _run_op_hooks(op: str, data: np.ndarray, parent_shapes: tuple, phase: str) -> None:
    for fn in _OP_HOOKS:
        fn(op, data, parent_shapes, phase)


def register_tensor_guard(fn: Callable[[np.ndarray, str], None]) -> Callable:
    """Install ``fn(array, context)`` to run on every op output / gradient."""
    _TENSOR_GUARDS.append(fn)
    return fn


def unregister_tensor_guard(fn: Callable[[np.ndarray, str], None]) -> None:
    """Remove a guard previously installed with :func:`register_tensor_guard`."""
    _TENSOR_GUARDS.remove(fn)


@contextlib.contextmanager
def tensor_guard(fn: Callable[[np.ndarray, str], None]):
    """Context manager installing a guard for the duration of the block."""
    register_tensor_guard(fn)
    try:
        yield fn
    finally:
        unregister_tensor_guard(fn)


def _run_guards(data: np.ndarray, context: str) -> None:
    for fn in _TENSOR_GUARDS:
        fn(data, context)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Inside the context, ops produce plain result tensors with
    ``requires_grad=False`` and record no backward closures.
    """
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def is_grad_enabled() -> bool:
    """Return whether ops currently record backward graphs."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it has ``shape``, undoing NumPy broadcasting.

    Sums over leading axes that were added by broadcasting and over axes
    whose original extent was 1.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the target shape.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=np.float32) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A differentiable multi-dimensional array.

    Parameters
    ----------
    data:
        Array-like payload. Stored as ``float32`` unless an ndarray of a
        different float dtype is given.
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` for this
        tensor during :meth:`backward`.
    name:
        Optional debug label carried through error messages.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output wired into the graph (internal)."""
        if _TENSOR_GUARDS:
            _run_guards(data, "forward")
        if _OP_HOOKS:
            _run_op_hooks(
                _op_name(backward), data, tuple(p.data.shape for p in parents), "forward"
            )
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.name = None
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out.requires_grad = needs
        if needs:
            out._parents = tuple(parents)
            out._backward = backward
        else:
            out._parents = ()
            out._backward = None
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad`` (internal)."""
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor. Defaults to
            1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited and p.requires_grad:
                    stack.append((p, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad
                node._accumulate(g)
                continue
            node._backward_dispatch(g, grads)

    def _backward_dispatch(self, g: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        """Run this node's backward closure, routing parent grads (internal).

        The closure returns one gradient per parent (or ``None`` for parents
        that do not require grad).
        """
        parent_grads = self._backward(g)
        if _OP_HOOKS:
            _run_op_hooks(_op_name(self._backward), g, (), "backward")
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        for p, pg in zip(self._parents, parent_grads):
            if pg is None or not p.requires_grad:
                continue
            if _TENSOR_GUARDS:
                _run_guards(np.asarray(pg), "backward")
            pid = id(p)
            if p._backward is None and not p._parents:
                # Leaf tensor: accumulate directly so grads persist.
                p._accumulate(pg)
            elif pid in grads:
                grads[pid] = grads[pid] + pg
            else:
                grads[pid] = pg

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data + other.data

        def backward(g):
            return (unbroadcast(g, self.data.shape), unbroadcast(g, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data - other.data

        def backward(g):
            return (unbroadcast(g, self.data.shape), unbroadcast(-g, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor._coerce(other) - self

    def __mul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data * other.data

        def backward(g):
            return (
                unbroadcast(g * other.data, self.data.shape),
                unbroadcast(g * self.data, other.data.shape),
            )

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data / other.data

        def backward(g):
            return (
                unbroadcast(g / other.data, self.data.shape),
                unbroadcast(-g * self.data / (other.data**2), other.data.shape),
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor._coerce(other) / self

    def __neg__(self) -> "Tensor":
        def backward(g):
            return (-g,)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent

        def backward(g):
            return (g * exponent * self.data ** (exponent - 1),)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix multiply
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        a, b = self.data, other.data
        if a.ndim < 2 or b.ndim < 2:
            raise ValueError("matmul requires operands with ndim >= 2")
        out_data = a @ b

        def backward(g):
            ga = gb = None
            if self.requires_grad:
                ga = unbroadcast(g @ np.swapaxes(b, -1, -2), a.shape)
            if other.requires_grad:
                gb = unbroadcast(np.swapaxes(a, -1, -2) @ g, b.shape)
            return (ga, gb)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g):
            return (g * out_data,)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g):
            return (g / self.data,)

        return Tensor._make(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g):
            return (g * (1.0 - out_data**2),)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g):
            return (g * 0.5 / out_data,)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        def backward(g):
            return (g * np.sign(self.data),)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def maximum(self, other) -> "Tensor":
        """Elementwise maximum; at ties the gradient goes to ``self``."""
        other = Tensor._coerce(other)
        mask = self.data >= other.data
        out_data = np.where(mask, self.data, other.data)

        def backward(g):
            return (
                unbroadcast(g * mask, self.data.shape),
                unbroadcast(g * ~mask, other.data.shape),
            )

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            if axis is None:
                return (np.broadcast_to(g, self.data.shape).copy(),)
            g2 = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g2 = np.expand_dims(g2, ax)
            return (np.broadcast_to(g2, self.data.shape).copy(),)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            n = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            n = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Max over one axis; gradient flows to the (first) argmax entries."""
        idx = np.argmax(self.data, axis=axis)
        out_data = np.max(self.data, axis=axis, keepdims=keepdims)

        def backward(g):
            grad = np.zeros_like(self.data)
            g2 = g if keepdims else np.expand_dims(g, axis)
            onehot = np.expand_dims(idx, axis) == np.arange(self.data.shape[axis]).reshape(
                [-1 if i == axis % self.data.ndim else 1 for i in range(self.data.ndim)]
            )
            grad += g2 * onehot
            return (grad,)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.data.shape

        def backward(g):
            return (g.reshape(in_shape),)

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inv = np.argsort(axes)

        def backward(g):
            return (g.transpose(inv),)

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        def backward(g):
            return (g.swapaxes(a, b),)

        return Tensor._make(self.data.swapaxes(a, b), (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(g):
            grad = np.zeros_like(self.data)
            np.add.at(grad, key, g)
            return (grad,)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Comparison helpers (no grad)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other


def tensor(data, requires_grad: bool = False, name: str | None = None) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad, name=name)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient splitting."""
    tensors = list(tensors)
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        return tuple(
            np.take(g, np.arange(offsets[i], offsets[i + 1]), axis=axis) for i in range(len(sizes))
        )

    return Tensor._make(out_data, tensors, backward)


def split(t: Tensor, sections: int, axis: int = 0) -> list[Tensor]:
    """Split ``t`` into ``sections`` equal parts along ``axis``."""
    if t.shape[axis] % sections != 0:
        raise ValueError(f"axis {axis} of size {t.shape[axis]} not divisible by {sections}")
    step = t.shape[axis] // sections
    outs = []
    for i in range(sections):
        idx = [slice(None)] * t.ndim
        idx[axis] = slice(i * step, (i + 1) * step)
        outs.append(t[tuple(idx)])
    return outs
