"""Minimal reverse-mode automatic differentiation engine on NumPy.

This package is the substrate that replaces PyTorch in this reproduction.
It provides a :class:`Tensor` wrapping a ``numpy.ndarray`` plus a reverse-mode
graph, the fused numerical ops needed for transformer training (softmax,
layer-norm, GELU, cross-entropy), and a tiny ``no_grad`` mechanism.

The design goal is correctness and readability, not raw speed: every backward
rule is written as straightforward vectorized NumPy so it can be checked
against finite differences (see ``tests/tensor/test_grad_check.py``).
"""

from repro.tensor.tensor import (
    Tensor,
    no_grad,
    is_grad_enabled,
    tensor,
    register_tensor_guard,
    unregister_tensor_guard,
    tensor_guard,
    register_op_hook,
    unregister_op_hook,
    op_hook,
)
from repro.tensor import functional

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "tensor",
    "functional",
    "register_tensor_guard",
    "unregister_tensor_guard",
    "tensor_guard",
    "register_op_hook",
    "unregister_op_hook",
    "op_hook",
]
