"""Fused neural-network ops with hand-written backward rules.

These are the numerically sensitive or performance-critical ops used by the
transformer stack. Each is implemented as a single graph node with a custom
backward closure rather than a composition of primitives, both for numerical
stability (softmax / cross-entropy use the log-sum-exp trick) and to keep the
graphs produced by a 24-layer model small.
"""

from __future__ import annotations

import math

import numpy as np

from repro.tensor.tensor import Tensor, unbroadcast

__all__ = [
    "linear",
    "relu",
    "gelu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "mse_loss",
    "layer_norm",
    "embedding",
    "dropout",
    "masked_fill",
]

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight + bias``.

    ``weight`` has shape ``(in_features, out_features)`` (note: **not**
    transposed like torch) so that tensor-parallel column/row splits are
    simple slices along the second/first axis respectively.
    """
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    mask = x.data > 0
    out_data = x.data * mask

    def backward(g):
        return (g * mask,)

    return Tensor._make(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in BERT/Megatron)."""
    x_data = x.data
    inner = _SQRT_2_OVER_PI * (x_data + 0.044715 * x_data**3)
    t = np.tanh(inner)
    out_data = 0.5 * x_data * (1.0 + t)

    def backward(g):
        dinner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x_data**2)
        dgelu = 0.5 * (1.0 + t) + 0.5 * x_data * (1.0 - t**2) * dinner
        return (g * dgelu,)

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(g):
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        return (out_data * (g - dot),)

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse
    soft = np.exp(out_data)

    def backward(g):
        return (g - soft * g.sum(axis=axis, keepdims=True),)

    return Tensor._make(out_data, (x,), backward)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: int | None = None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer ``targets``.

    Parameters
    ----------
    logits:
        Shape ``(..., num_classes)``.
    targets:
        Integer array of shape ``logits.shape[:-1]``.
    ignore_index:
        Target value whose positions contribute no loss (used for MLM where
        unmasked positions are ignored).
    """
    targets = np.asarray(targets)
    flat_logits = logits.data.reshape(-1, logits.data.shape[-1])
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        valid = flat_targets != ignore_index
    else:
        valid = np.ones(flat_targets.shape, dtype=bool)
    n_valid = max(int(valid.sum()), 1)

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    logp = shifted - lse
    safe_targets = np.where(valid, flat_targets, 0)
    picked = logp[np.arange(flat_targets.shape[0]), safe_targets]
    loss = -(picked * valid).sum() / n_valid
    out_data = np.asarray(loss, dtype=logits.data.dtype)

    def backward(g):
        soft = np.exp(logp)
        grad = soft.copy()
        grad[np.arange(flat_targets.shape[0]), safe_targets] -= 1.0
        grad *= (valid / n_valid)[:, None]
        grad = grad.reshape(logits.data.shape)
        return (grad * g,)

    return Tensor._make(out_data, (logits,), backward)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    target = np.asarray(target, dtype=pred.data.dtype)
    diff = pred.data - target
    out_data = np.asarray((diff**2).mean(), dtype=pred.data.dtype)

    def backward(g):
        return (g * 2.0 * diff / diff.size,)

    return Tensor._make(out_data, (pred,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis with affine parameters."""
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mu) * inv
    out_data = xhat * weight.data + bias.data
    n = x.data.shape[-1]

    def backward(g):
        gx = gw = gb = None
        if weight.requires_grad:
            gw = unbroadcast(g * xhat, weight.data.shape)
        if bias.requires_grad:
            gb = unbroadcast(g, bias.data.shape)
        if x.requires_grad:
            gxhat = g * weight.data
            gx = inv * (
                gxhat
                - gxhat.mean(axis=-1, keepdims=True)
                - xhat * (gxhat * xhat).mean(axis=-1, keepdims=True)
            )
        return (gx, gw, gb)

    # Normalize n usage: nothing else needed; `n` kept for clarity of the rule.
    del n
    return Tensor._make(out_data, (x, weight, bias), backward)


def embedding(table: Tensor, ids: np.ndarray) -> Tensor:
    """Look up rows of ``table`` (shape ``(vocab, dim)``) by integer ``ids``."""
    ids = np.asarray(ids)
    out_data = table.data[ids]

    def backward(g):
        grad = np.zeros_like(table.data)
        np.add.at(grad, ids.reshape(-1), g.reshape(-1, table.data.shape[-1]))
        return (grad,)

    return Tensor._make(out_data, (table,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout. A no-op when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.data.shape) < keep).astype(x.data.dtype) / keep
    out_data = x.data * mask

    def backward(g):
        return (g * mask,)

    return Tensor._make(out_data, (x,), backward)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Set positions where ``mask`` is True to ``value`` (no grad at those)."""
    mask = np.asarray(mask, dtype=bool)
    out_data = np.where(mask, np.asarray(value, dtype=x.data.dtype), x.data)

    def backward(g):
        return (g * ~mask,)

    return Tensor._make(out_data, (x,), backward)
