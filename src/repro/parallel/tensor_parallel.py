"""Megatron-style tensor-parallel transformer layers (Shoeybi et al. 2019).

The attention module's two GEMMs are split column-wise then row-wise, and the
MLP identically: ``fc1``/``qkv`` are column-parallel (each rank owns a slice
of the output features / heads), ``fc2``/``out-proj`` are row-parallel (each
rank owns a slice of the input features and produces a *partial* full-width
output). The partials are combined by the ``g`` all-reduce — the compression
site this paper studies — while the conjugate ``f`` op accounts for the
backward all-reduce at the layer input.

Every class offers ``from_serial`` so tests can verify that the parallel
computation equals the serial reference exactly.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, NoCompressor
from repro.nn.attention import MultiHeadAttention, attention_core
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module, Parameter
from repro.nn.transformer import TransformerConfig, TransformerLayer
from repro.parallel.backend.context import spmd_ranks, spmd_sp_ranks
from repro.parallel.collectives import (
    CommTracker,
    sp_ring_account,
    sp_seq_all_gather,
    sp_slice,
    tp_all_reduce,
    tp_broadcast,
)
from repro.tensor import Tensor, functional as F

__all__ = [
    "ColumnParallelLinear",
    "RowParallelLinear",
    "ParallelAttention",
    "ParallelMLP",
    "ParallelTransformerLayer",
]


def _shard_columns(weight: np.ndarray, tp: int) -> list[np.ndarray]:
    """Split ``(in, out)`` weight into ``tp`` column blocks ``(in, out/tp)``."""
    if weight.shape[1] % tp != 0:
        raise ValueError(f"out dim {weight.shape[1]} not divisible by tp={tp}")
    return np.split(weight, tp, axis=1)


def _shard_rows(weight: np.ndarray, tp: int) -> list[np.ndarray]:
    """Split ``(in, out)`` weight into ``tp`` row blocks ``(in/tp, out)``."""
    if weight.shape[0] % tp != 0:
        raise ValueError(f"in dim {weight.shape[0]} not divisible by tp={tp}")
    return np.split(weight, tp, axis=0)


class ColumnParallelLinear(Module):
    """Linear layer whose output features are sharded across ``tp`` ranks.

    ``forward`` maps a replicated input to the list of per-rank output
    shards (each ``(..., out/tp)``); no communication is required in the
    forward pass.
    """

    def __init__(self, in_features: int, out_features: int, tp: int,
                 rng: np.random.Generator, bias: bool = True, init_std: float = 0.02):
        super().__init__()
        if out_features % tp != 0:
            raise ValueError(f"out_features={out_features} not divisible by tp={tp}")
        self.in_features = in_features
        self.out_features = out_features
        self.tp = tp
        full = rng.normal(0.0, init_std, size=(in_features, out_features)).astype(np.float32)
        self._init_shards(full, np.zeros(out_features, dtype=np.float32) if bias else None)

    def _init_shards(self, weight: np.ndarray, bias: np.ndarray | None) -> None:
        self.weight_shards = []
        self.bias_shards = []
        for r, w in enumerate(_shard_columns(weight, self.tp)):
            p = Parameter(w.copy())
            self.add_parameter(f"weight_rank{r}", p)
            self.weight_shards.append(p)
        if bias is not None:
            for r, b in enumerate(np.split(bias, self.tp)):
                p = Parameter(b.copy())
                self.add_parameter(f"bias_rank{r}", p)
                self.bias_shards.append(p)

    @classmethod
    def from_serial(cls, serial: Linear, tp: int) -> "ColumnParallelLinear":
        obj = cls.__new__(cls)
        Module.__init__(obj)
        obj.in_features = serial.in_features
        obj.out_features = serial.out_features
        obj.tp = tp
        if serial.out_features % tp != 0:
            raise ValueError(f"out_features={serial.out_features} not divisible by tp={tp}")
        obj._init_shards(serial.weight.data, serial.bias.data if serial.bias is not None else None)
        return obj

    def forward(self, x: Tensor) -> list[Tensor]:
        # In-process this materializes every rank's shard; inside an mp
        # worker spmd_ranks() collapses the loop to the worker's own rank.
        outs = []
        for r in spmd_ranks(self.tp):
            o = x @ self.weight_shards[r]
            if self.bias_shards:
                o = o + self.bias_shards[r]
            outs.append(o)
        return outs


class RowParallelLinear(Module):
    """Linear layer whose input features are sharded across ``tp`` ranks.

    ``forward`` maps per-rank input shards (``(..., in/tp)``) to per-rank
    *partial* full-width outputs; the caller must all-reduce them (the
    compressible ``g`` site). The single bias is added after the reduce.
    """

    def __init__(self, in_features: int, out_features: int, tp: int,
                 rng: np.random.Generator, bias: bool = True, init_std: float = 0.02):
        super().__init__()
        if in_features % tp != 0:
            raise ValueError(f"in_features={in_features} not divisible by tp={tp}")
        self.in_features = in_features
        self.out_features = out_features
        self.tp = tp
        full = rng.normal(0.0, init_std, size=(in_features, out_features)).astype(np.float32)
        self._init_shards(full, np.zeros(out_features, dtype=np.float32) if bias else None)

    def _init_shards(self, weight: np.ndarray, bias: np.ndarray | None) -> None:
        self.weight_shards = []
        for r, w in enumerate(_shard_rows(weight, self.tp)):
            p = Parameter(w.copy())
            self.add_parameter(f"weight_rank{r}", p)
            self.weight_shards.append(p)
        self.bias = Parameter(bias.copy()) if bias is not None else None

    @classmethod
    def from_serial(cls, serial: Linear, tp: int) -> "RowParallelLinear":
        obj = cls.__new__(cls)
        Module.__init__(obj)
        obj.in_features = serial.in_features
        obj.out_features = serial.out_features
        obj.tp = tp
        if serial.in_features % tp != 0:
            raise ValueError(f"in_features={serial.in_features} not divisible by tp={tp}")
        obj._init_shards(serial.weight.data, serial.bias.data if serial.bias is not None else None)
        return obj

    def forward(self, x_shards: list[Tensor]) -> list[Tensor]:
        ranks = spmd_ranks(self.tp)
        if len(x_shards) != len(ranks):
            raise ValueError(f"expected {len(ranks)} input shards, got {len(x_shards)}")
        return [x_shards[i] @ self.weight_shards[r] for i, r in enumerate(ranks)]


class ParallelMLP(Module):
    """Tensor-parallel transformer MLP: column-parallel fc1, row-parallel fc2."""

    def __init__(self, hidden: int, ffn_hidden: int, tp: int, rng: np.random.Generator,
                 init_std: float = 0.02):
        super().__init__()
        self.tp = tp
        self.fc1 = ColumnParallelLinear(hidden, ffn_hidden, tp, rng, init_std=init_std)
        self.fc2 = RowParallelLinear(ffn_hidden, hidden, tp, rng, init_std=init_std)

    @classmethod
    def from_serial(cls, fc1: Linear, fc2: Linear, tp: int) -> "ParallelMLP":
        obj = cls.__new__(cls)
        Module.__init__(obj)
        obj.tp = tp
        obj.fc1 = ColumnParallelLinear.from_serial(fc1, tp)
        obj.fc2 = RowParallelLinear.from_serial(fc2, tp)
        return obj

    def forward(
        self,
        x: Tensor,
        compressor: Compressor,
        tracker: CommTracker,
        *,
        layer: int | None = None,
    ) -> Tensor:
        x = tp_broadcast(x, self.tp, tracker, layer=layer, site="mlp")
        hidden_shards = [F.gelu(h) for h in self.fc1(x)]
        partials = self.fc2(hidden_shards)
        out = tp_all_reduce(partials, compressor, tracker, layer=layer, site="mlp")
        if self.fc2.bias is not None:
            out = out + self.fc2.bias
        return out


class ParallelAttention(Module):
    """Tensor-parallel multi-head attention: heads sharded across ranks."""

    def __init__(self, hidden: int, num_heads: int, tp: int, rng: np.random.Generator,
                 dropout: float = 0.0, init_std: float = 0.02, sp: int = 1):
        super().__init__()
        if num_heads % tp != 0:
            raise ValueError(f"num_heads={num_heads} not divisible by tp={tp}")
        if sp > 1 and tp != 1:
            raise ValueError(f"ring sequence parallelism requires tp=1, got tp={tp}")
        self.hidden = hidden
        self.num_heads = num_heads
        self.tp = tp
        self.sp = sp
        self.heads_per_rank = num_heads // tp
        self.head_dim = hidden // num_heads
        self.qkv = self._build_qkv_shards(
            rng.normal(0.0, init_std, size=(hidden, 3 * hidden)).astype(np.float32),
            np.zeros(3 * hidden, dtype=np.float32),
        )
        self.out = RowParallelLinear(hidden, hidden, tp, rng, init_std=init_std)
        self.dropout = Dropout(dropout, rng)

    def _build_qkv_shards(self, qkv_weight: np.ndarray, qkv_bias: np.ndarray):
        """Shard the fused (in, 3h) QKV weight by head groups.

        The serial layout is ``[Q | K | V]`` along the output axis; rank ``r``
        needs its head block from each of the three sections.
        """
        h = self.hidden
        slice_w = h // self.tp
        shards_w, shards_b = [], []
        for r in range(self.tp):
            cols = np.concatenate(
                [np.arange(sec * h + r * slice_w, sec * h + (r + 1) * slice_w) for sec in range(3)]
            )
            w = Parameter(qkv_weight[:, cols].copy())
            b = Parameter(qkv_bias[cols].copy())
            self.add_parameter(f"qkv_weight_rank{r}", w)
            self.add_parameter(f"qkv_bias_rank{r}", b)
            shards_w.append(w)
            shards_b.append(b)
        self._qkv_weights = shards_w
        self._qkv_biases = shards_b
        return shards_w

    @classmethod
    def from_serial(cls, serial: MultiHeadAttention, tp: int) -> "ParallelAttention":
        obj = cls.__new__(cls)
        Module.__init__(obj)
        if serial.num_heads % tp != 0:
            raise ValueError(f"num_heads={serial.num_heads} not divisible by tp={tp}")
        obj.hidden = serial.hidden
        obj.num_heads = serial.num_heads
        obj.tp = tp
        obj.sp = 1
        obj.heads_per_rank = serial.num_heads // tp
        obj.head_dim = serial.head_dim
        obj._build_qkv_shards(serial.qkv.weight.data, serial.qkv.bias.data)
        obj.out = RowParallelLinear.from_serial(serial.out, tp)
        obj.dropout = serial.dropout
        return obj

    def forward(
        self,
        x: Tensor,
        compressor: Compressor,
        tracker: CommTracker,
        attention_mask: np.ndarray | None = None,
        *,
        layer: int | None = None,
    ) -> Tensor:
        if self.sp > 1:
            return self._sp_forward(x, compressor, tracker, attention_mask,
                                    layer=layer)
        x = tp_broadcast(x, self.tp, tracker, layer=layer, site="attn")
        b, s, _ = x.shape
        slice_w = self.hidden // self.tp
        ctx_shards = []
        for r in spmd_ranks(self.tp):
            qkv = x @ self._qkv_weights[r] + self._qkv_biases[r]
            q = self._split_heads(qkv[:, :, :slice_w], b, s)
            k = self._split_heads(qkv[:, :, slice_w : 2 * slice_w], b, s)
            v = self._split_heads(qkv[:, :, 2 * slice_w :], b, s)
            ctx = attention_core(q, k, v, attention_mask)
            ctx_shards.append(ctx.transpose(0, 2, 1, 3).reshape(b, s, slice_w))
        partials = self.out(ctx_shards)
        out = tp_all_reduce(partials, compressor, tracker, layer=layer, site="attn")
        if self.out.bias is not None:
            out = out + self.out.bias
        return self.dropout(out)

    def _sp_forward(
        self,
        x: Tensor,
        compressor: Compressor,
        tracker: CommTracker,
        attention_mask: np.ndarray | None,
        *,
        layer: int | None = None,
    ) -> Tensor:
        """Ring sequence parallelism (sp > 1, tp == 1).

        The replicated layer input is sliced by sequence block; each sp
        rank projects Q/K/V for its block, the K/V blocks are ring-gathered
        to the full sequence, each rank attends its query block against the
        full keys/values, and the context blocks are all-gathered back.
        Everything outside the attention core (out-proj, residual, MLP)
        runs replicated on the full sequence — which is exactly why the
        backward of the context gather needs no wire traffic.
        """
        b, s, h = x.shape
        sp = self.sp
        blk_s = s // sp if s % sp == 0 else None
        if blk_s is None:
            raise ValueError(f"sequence length {s} not divisible by sp={sp}")
        weight, bias = self._qkv_weights[0], self._qkv_biases[0]
        q_blocks, k_blocks, v_blocks = [], [], []
        ranks = spmd_sp_ranks(sp)
        for r in ranks:
            x_r = sp_slice(x, sp, r)
            qkv = x_r @ weight + bias
            q_blocks.append(self._split_heads(qkv[:, :, :h], b, blk_s))
            k_blocks.append(self._split_heads(qkv[:, :, h : 2 * h], b, blk_s))
            v_blocks.append(self._split_heads(qkv[:, :, 2 * h :], b, blk_s))
        k_full = sp_seq_all_gather(k_blocks, sp, reduce_backward=True,
                                   label="sp kv gather")
        v_full = sp_seq_all_gather(v_blocks, sp, reduce_backward=True,
                                   label="sp kv gather")
        ctx_blocks = [
            attention_core(q, k_full, v_full, attention_mask) for q in q_blocks
        ]
        ctx_full = sp_seq_all_gather(ctx_blocks, sp, reduce_backward=False,
                                     label="sp ctx gather")
        merged = ctx_full.transpose(0, 2, 1, 3).reshape(b, s, h)
        merged = sp_ring_account(merged, tracker, sp=sp, shape=(b, s, h),
                                 block_shape=(b, blk_s, h), layer=layer,
                                 site="attn")
        partials = self.out([merged])
        out = tp_all_reduce(partials, compressor, tracker, layer=layer,
                            site="attn")
        if self.out.bias is not None:
            out = out + self.out.bias
        return self.dropout(out)

    def _split_heads(self, x: Tensor, b: int, s: int) -> Tensor:
        return x.reshape(b, s, self.heads_per_rank, self.head_dim).transpose(0, 2, 1, 3)


class ParallelTransformerLayer(Module):
    """Tensor-parallel encoder block with compressible all-reduce sites.

    Each layer has two ``g`` all-reduces (attention output, MLP output);
    when the layer's policy says it is compressed, both sites use the
    layer's compressor instances (separate per site because the AE weights
    are learnable and site-specific).
    """

    def __init__(self, config: TransformerConfig, tp: int, rng: np.random.Generator,
                 sp: int = 1):
        super().__init__()
        self.tp = tp
        self.sp = sp
        self.attn = ParallelAttention(config.hidden, config.num_heads, tp, rng,
                                      dropout=config.dropout, init_std=config.init_std,
                                      sp=sp)
        self.ln1 = LayerNorm(config.hidden)
        self.mlp = ParallelMLP(config.hidden, config.ffn_hidden, tp, rng,
                               init_std=config.init_std)
        self.ln2 = LayerNorm(config.hidden)
        self.dropout = Dropout(config.dropout, rng)

    @classmethod
    def from_serial(cls, serial: TransformerLayer, tp: int) -> "ParallelTransformerLayer":
        obj = cls.__new__(cls)
        Module.__init__(obj)
        obj.tp = tp
        obj.sp = 1
        obj.attn = ParallelAttention.from_serial(serial.attn, tp)
        obj.ln1 = serial.ln1
        obj.mlp = ParallelMLP.from_serial(serial.fc1, serial.fc2, tp)
        obj.ln2 = serial.ln2
        obj.dropout = serial.dropout
        return obj

    def forward(
        self,
        x: Tensor,
        tracker: CommTracker,
        attention_mask: np.ndarray | None = None,
        *,
        attn_compressor: Compressor | None = None,
        mlp_compressor: Compressor | None = None,
        layer: int | None = None,
    ) -> Tensor:
        attn_c = attn_compressor if attn_compressor is not None else NoCompressor()
        mlp_c = mlp_compressor if mlp_compressor is not None else NoCompressor()
        x = self.ln1(x + self.attn(x, attn_c, tracker, attention_mask, layer=layer))
        h = self.mlp(x, mlp_c, tracker, layer=layer)
        return self.ln2(x + self.dropout(h))
