"""Cluster topology and DP×TP×PP(×SP) rank layout.

Mirrors the two testbeds of the paper plus the multi-node pre-training
cluster:

- ``p3_8xlarge()`` — AWS p3.8xlarge: 4×V100 with NVLink, 10 Gbps Ethernet
  between instances.
- ``local_pcie()`` — the paper's local machine: 4×V100 on one PCIe bridge.

Rank placement follows Megatron's convention (Narayanan et al. 2021):
tensor-parallel groups are packed *inside* a node (consecutive ranks) so TP
traffic rides the fast intra-node link, sequence-parallel rings sit just
outside them, pipeline stages span nodes, and the data-parallel axis is
outermost — replicas live as far apart as the cluster forces them to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["LinkType", "ClusterTopology", "ParallelLayout", "TopologyError",
           "validate_grid"]


class LinkType(enum.Enum):
    """Interconnect classes with distinct bandwidth/latency regimes."""

    NVLINK = "nvlink"
    PCIE = "pcie"
    ETHERNET = "ethernet"


class TopologyError(ValueError):
    """A parallelism grid that cannot be placed: carries the offending axis.

    Raised by :func:`validate_grid` (and therefore by
    ``ModelParallelConfig`` / ``create_backend``) *before* any worker is
    spawned, so a bad dp·tp·pp·sp factorization fails with the axis named
    instead of deep inside process setup.
    """

    def __init__(self, message: str, axis: str):
        super().__init__(message)
        self.axis = axis


def validate_grid(dp: int, tp: int, pp: int, sp: int,
                  world_size: int | None = None) -> int:
    """Check a DP×TP×PP×SP grid; returns its world size.

    Each axis must be a positive integer; if ``world_size`` is given the
    product must factor it *exactly*.  Failures raise
    :class:`TopologyError` naming the offending axis.
    """
    for axis, extent in (("dp", dp), ("tp", tp), ("pp", pp), ("sp", sp)):
        if not isinstance(extent, int) or extent <= 0:
            raise TopologyError(
                f"axis {axis}={extent!r} must be a positive integer", axis)
    product = dp * tp * pp * sp
    if world_size is not None and product != world_size:
        # Name the *first* axis that cannot divide what remains after the
        # earlier axes are peeled off — that is the one the user must fix.
        remaining = world_size
        for axis, extent in (("dp", dp), ("pp", pp), ("sp", sp), ("tp", tp)):
            if remaining % extent != 0:
                raise TopologyError(
                    f"axis {axis}={extent} does not divide the remaining "
                    f"world {remaining} (world size {world_size} != "
                    f"dp*tp*pp*sp = {product})", axis)
            remaining //= extent
        axis = "dp" if product > world_size else "tp"
        raise TopologyError(
            f"dp*tp*pp*sp = {product} must equal world size {world_size} "
            f"(offending axis: {axis})", axis)
    return product


@dataclass(frozen=True)
class ClusterTopology:
    """A homogeneous cluster of ``num_nodes`` × ``gpus_per_node`` GPUs."""

    num_nodes: int
    gpus_per_node: int
    intra_node_link: LinkType
    inter_node_link: LinkType = LinkType.ETHERNET

    def __post_init__(self):
        if self.num_nodes <= 0 or self.gpus_per_node <= 0:
            raise ValueError("node and GPU counts must be positive")

    @property
    def world_size(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting global ``rank``."""
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def link_between(self, rank_a: int, rank_b: int) -> LinkType:
        """The link class connecting two ranks."""
        if self.node_of(rank_a) == self.node_of(rank_b):
            return self.intra_node_link
        return self.inter_node_link

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range [0, {self.world_size})")

    # ------------------------------------------------------------------
    @staticmethod
    def p3_8xlarge(num_nodes: int = 1) -> "ClusterTopology":
        """AWS p3.8xlarge instances: 4 V100s with NVLink, 10 Gbps between nodes."""
        return ClusterTopology(num_nodes, 4, LinkType.NVLINK, LinkType.ETHERNET)

    @staticmethod
    def local_pcie() -> "ClusterTopology":
        """The paper's local server: 4 V100s behind one PCIe bridge, no NVLink."""
        return ClusterTopology(1, 4, LinkType.PCIE, LinkType.ETHERNET)


@dataclass(frozen=True)
class ParallelLayout:
    """Assignment of a DP×PP×SP×TP grid onto a cluster.

    Ranks are numbered so that the ``tp`` dimension is innermost
    (consecutive ranks form a TP group), ``sp`` next, then ``pp``, with
    ``dp`` outermost — matching Megatron's dp-major convention.  The
    historical two-axis layouts (``dp == sp == 1``) keep their exact rank
    numbering: ``rank = pp_rank*tp + tp_rank``.
    """

    topology: ClusterTopology
    tp: int
    pp: int
    dp: int = 1
    sp: int = 1

    def __post_init__(self):
        validate_grid(self.dp, self.tp, self.pp, self.sp,
                      self.topology.world_size)

    def rank(self, pp_rank: int, tp_rank: int, sp_rank: int = 0,
             dp_rank: int = 0) -> int:
        """Global rank of (dp replica, pipeline stage, sp slot, tensor rank)."""
        if (not 0 <= pp_rank < self.pp or not 0 <= tp_rank < self.tp
                or not 0 <= sp_rank < self.sp or not 0 <= dp_rank < self.dp):
            raise ValueError(
                f"coords (dp={dp_rank},pp={pp_rank},sp={sp_rank},tp={tp_rank}) "
                f"out of grid (dp={self.dp},pp={self.pp},sp={self.sp},tp={self.tp})")
        return ((dp_rank * self.pp + pp_rank) * self.sp + sp_rank) * self.tp + tp_rank

    def tp_group(self, pp_rank: int, sp_rank: int = 0, dp_rank: int = 0) -> list[int]:
        """Global ranks of one pipeline stage's TP group."""
        return [self.rank(pp_rank, t, sp_rank, dp_rank) for t in range(self.tp)]

    def sp_group(self, pp_rank: int, tp_rank: int = 0, dp_rank: int = 0) -> list[int]:
        """Global ranks of one stage's sequence-parallel ring."""
        return [self.rank(pp_rank, tp_rank, s, dp_rank) for s in range(self.sp)]

    def dp_group(self, pp_rank: int = 0, sp_rank: int = 0, tp_rank: int = 0) -> list[int]:
        """Global ranks holding the same model shard across DP replicas."""
        return [self.rank(pp_rank, tp_rank, sp_rank, d) for d in range(self.dp)]

    def tp_link(self, pp_rank: int = 0) -> LinkType:
        """Link class TP collectives of a stage travel over (worst link)."""
        return self._group_link(self.tp_group(pp_rank))

    def sp_link(self, pp_rank: int = 0) -> LinkType:
        """Link class one stage's SP ring exchange travels over (worst link)."""
        return self._group_link(self.sp_group(pp_rank))

    def dp_link(self) -> LinkType:
        """Link class the DP gradient all-reduce travels over (worst link)."""
        return self._group_link(self.dp_group())

    def _group_link(self, group: list[int]) -> LinkType:
        if len(group) == 1:
            return self.topology.intra_node_link
        links = {
            self.topology.link_between(a, b)
            for a in group
            for b in group
            if a < b
        }
        return _slowest(links)

    def pp_link(self, stage: int) -> LinkType:
        """Link class the boundary after ``stage`` travels over."""
        if not 0 <= stage < self.pp - 1:
            raise ValueError(f"boundary index {stage} out of range [0, {self.pp - 1})")
        a = self.rank(stage, 0)
        b = self.rank(stage + 1, 0)
        return self.topology.link_between(a, b)


_LINK_ORDER = [LinkType.NVLINK, LinkType.PCIE, LinkType.ETHERNET]


def _slowest(links) -> LinkType:
    """Pick the slowest link class of a set (collectives are bottlenecked)."""
    return max(links, key=_LINK_ORDER.index)
