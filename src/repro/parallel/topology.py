"""Cluster topology and TP×PP rank layout.

Mirrors the two testbeds of the paper plus the multi-node pre-training
cluster:

- ``p3_8xlarge()`` — AWS p3.8xlarge: 4×V100 with NVLink, 10 Gbps Ethernet
  between instances.
- ``local_pcie()`` — the paper's local machine: 4×V100 on one PCIe bridge.

Rank placement follows Megatron's convention (Narayanan et al. 2021):
tensor-parallel groups are packed *inside* a node (consecutive ranks) so TP
traffic rides the fast intra-node link, and pipeline stages span nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["LinkType", "ClusterTopology", "ParallelLayout"]


class LinkType(enum.Enum):
    """Interconnect classes with distinct bandwidth/latency regimes."""

    NVLINK = "nvlink"
    PCIE = "pcie"
    ETHERNET = "ethernet"


@dataclass(frozen=True)
class ClusterTopology:
    """A homogeneous cluster of ``num_nodes`` × ``gpus_per_node`` GPUs."""

    num_nodes: int
    gpus_per_node: int
    intra_node_link: LinkType
    inter_node_link: LinkType = LinkType.ETHERNET

    def __post_init__(self):
        if self.num_nodes <= 0 or self.gpus_per_node <= 0:
            raise ValueError("node and GPU counts must be positive")

    @property
    def world_size(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting global ``rank``."""
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def link_between(self, rank_a: int, rank_b: int) -> LinkType:
        """The link class connecting two ranks."""
        if self.node_of(rank_a) == self.node_of(rank_b):
            return self.intra_node_link
        return self.inter_node_link

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range [0, {self.world_size})")

    # ------------------------------------------------------------------
    @staticmethod
    def p3_8xlarge(num_nodes: int = 1) -> "ClusterTopology":
        """AWS p3.8xlarge instances: 4 V100s with NVLink, 10 Gbps between nodes."""
        return ClusterTopology(num_nodes, 4, LinkType.NVLINK, LinkType.ETHERNET)

    @staticmethod
    def local_pcie() -> "ClusterTopology":
        """The paper's local server: 4 V100s behind one PCIe bridge, no NVLink."""
        return ClusterTopology(1, 4, LinkType.PCIE, LinkType.ETHERNET)


@dataclass(frozen=True)
class ParallelLayout:
    """Assignment of a TP×PP grid onto a cluster.

    Ranks are numbered so that the ``tp`` dimension is innermost
    (consecutive ranks form a TP group), matching Megatron.
    """

    topology: ClusterTopology
    tp: int
    pp: int

    def __post_init__(self):
        if self.tp <= 0 or self.pp <= 0:
            raise ValueError("tp and pp must be positive")
        if self.tp * self.pp != self.topology.world_size:
            raise ValueError(
                f"tp*pp = {self.tp * self.pp} must equal world size "
                f"{self.topology.world_size}"
            )

    def rank(self, pp_rank: int, tp_rank: int) -> int:
        """Global rank of (pipeline stage, tensor rank)."""
        if not 0 <= pp_rank < self.pp or not 0 <= tp_rank < self.tp:
            raise ValueError(f"coords ({pp_rank},{tp_rank}) out of grid ({self.pp},{self.tp})")
        return pp_rank * self.tp + tp_rank

    def tp_group(self, pp_rank: int) -> list[int]:
        """Global ranks of one pipeline stage's TP group."""
        return [self.rank(pp_rank, t) for t in range(self.tp)]

    def tp_link(self, pp_rank: int = 0) -> LinkType:
        """Link class TP collectives of a stage travel over (worst link)."""
        group = self.tp_group(pp_rank)
        if len(group) == 1:
            return self.topology.intra_node_link
        links = {
            self.topology.link_between(a, b)
            for a in group
            for b in group
            if a < b
        }
        return _slowest(links)

    def pp_link(self, stage: int) -> LinkType:
        """Link class the boundary after ``stage`` travels over."""
        if not 0 <= stage < self.pp - 1:
            raise ValueError(f"boundary index {stage} out of range [0, {self.pp - 1})")
        a = self.rank(stage, 0)
        b = self.rank(stage + 1, 0)
        return self.topology.link_between(a, b)


_LINK_ORDER = [LinkType.NVLINK, LinkType.PCIE, LinkType.ETHERNET]


def _slowest(links) -> LinkType:
    """Pick the slowest link class of a set (collectives are bottlenecked)."""
    return max(links, key=_LINK_ORDER.index)
