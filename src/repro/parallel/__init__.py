"""In-process model-parallel runtime (the Megatron-LM substitute).

The runtime executes tensor parallelism (TP) and pipeline parallelism (PP)
over *logical ranks* inside one process:

- :mod:`repro.parallel.topology` — cluster description (nodes, GPUs, links)
  and the TP×PP rank layout.
- :mod:`repro.parallel.collectives` — the data-plane collectives
  (compressible all-reduce / all-gather / pipeline send) as autograd ops,
  plus :class:`CommTracker` recording every message's exact wire bytes.
- :mod:`repro.parallel.tensor_parallel` — Megatron-style column/row-parallel
  linear layers, parallel attention/MLP, parallel transformer layer.
- :mod:`repro.parallel.pipeline` — stage partitioning and the GPipe
  microbatch schedule description used by the performance simulator.
- :mod:`repro.parallel.runtime` — full model-parallel BERT assembling the
  above with a compression scheme and placement policy.

Numerics are *faithful*: with no compression, every parallel configuration
computes bit-for-bit (up to float associativity) the same function as the
serial model — tested in ``tests/parallel/test_equivalence.py``. Compression
changes exactly what the paper's implementation changes: the tensors crossing
TP all-reduce sites and PP stage boundaries.
"""

from repro.parallel.topology import ClusterTopology, LinkType, ParallelLayout
from repro.parallel.collectives import CommEvent, CommTracker
from repro.parallel.tensor_parallel import (
    ColumnParallelLinear,
    RowParallelLinear,
    ParallelAttention,
    ParallelMLP,
    ParallelTransformerLayer,
)
from repro.parallel.pipeline import PipelinePartition, pipeline_stages
from repro.parallel.runtime import (
    ModelParallelConfig,
    ModelParallelBertClassifier,
    ModelParallelBertPreTraining,
)

__all__ = [
    "ClusterTopology",
    "LinkType",
    "ParallelLayout",
    "CommEvent",
    "CommTracker",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "ParallelAttention",
    "ParallelMLP",
    "ParallelTransformerLayer",
    "PipelinePartition",
    "pipeline_stages",
    "ModelParallelConfig",
    "ModelParallelBertClassifier",
    "ModelParallelBertPreTraining",
]
