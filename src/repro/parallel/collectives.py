"""Data-plane collectives as autograd ops, with exact byte accounting.

The runtime is single-process, so a "collective" here operates on the list
of per-rank partial tensors directly. What makes it faithful is that

1. the *math* matches the distributed operation (all-reduce = sum of
   partials; the compressed variants combine messages exactly the way the
   paper's Megatron patch does — AE encodes before the all-reduce, the
   sparse/quantized schemes ride an all-gather and are summed after
   decompression, §3.2); and
2. every message is logged to a :class:`CommTracker` with the wire bytes a
   real NCCL implementation would move, including the *backward* messages
   (recorded from inside backward closures as the gradient crosses the
   same cut points).

The performance simulator consumes these events (or their analytic
equivalents) to produce the paper's timing tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.compression.base import BYTES_FP16, Compressor
from repro.compression.autoencoder import AutoencoderCompressor
from repro.parallel.backend import conclog as _conclog
from repro.parallel.backend.context import rank_context
from repro.tensor import Tensor
from repro.tensor.tensor import concatenate as _concatenate

__all__ = [
    "CommEvent",
    "CommHandle",
    "CommTracker",
    "dense_bytes",
    "tp_all_reduce",
    "tp_all_reduce_issue",
    "tp_broadcast",
    "pipeline_transfer",
    "pipeline_transfer_issue",
    "dp_all_reduce",
    "sp_slice",
    "sp_seq_all_gather",
    "sp_ring_account",
]

_VALID_OPS = frozenset({"all_reduce", "all_gather", "send", "ring_exchange"})
_VALID_GROUPS = frozenset({"tp", "pp", "dp", "sp"})
_VALID_PHASES = frozenset({"forward", "backward"})


@dataclass(frozen=True)
class CommEvent:
    """One logged message (or collective round) on the simulated wire."""

    op: str  # "all_reduce" | "all_gather" | "send" | "ring_exchange"
    group: str  # "tp" | "pp" | "dp" | "sp"
    phase: str  # "forward" | "backward"
    scheme: str
    wire_bytes: int  # per-rank message payload in bytes
    world: int  # number of participating ranks
    shape: tuple[int, ...]  # uncompressed activation shape
    layer: int | None = None
    site: str = ""

    def __post_init__(self):
        # Event invariants: a malformed event corrupts the simulator's byte
        # accounting silently, so reject it at construction.
        if self.op not in _VALID_OPS:
            raise ValueError(f"unknown op {self.op!r}; valid: {sorted(_VALID_OPS)}")
        if self.group not in _VALID_GROUPS:
            raise ValueError(f"unknown group {self.group!r}; valid: {sorted(_VALID_GROUPS)}")
        if self.phase not in _VALID_PHASES:
            raise ValueError(f"unknown phase {self.phase!r}; valid: {sorted(_VALID_PHASES)}")
        if self.wire_bytes < 0:
            raise ValueError(f"wire_bytes must be >= 0, got {self.wire_bytes}")
        if self.world < 2:
            raise ValueError(f"a collective needs world >= 2, got {self.world}")
        # Note: wire_bytes may legitimately exceed the dense payload for
        # quantization of tiny tensors (group padding), so no upper bound.

    _FIELDS = frozenset({"op", "group", "phase", "scheme", "wire_bytes",
                         "world", "shape", "layer", "site"})


class CommTracker:
    """Accumulates :class:`CommEvent` records for one or more iterations.

    An optional :class:`~repro.obs.fidelity.FidelityProbe` may be attached
    as ``probe``; the collectives then report each compressed site's dense
    activation and reconstruction to it alongside the wire events.  The
    default (``probe=None``) costs one ``is None`` check per collective.
    """

    def __init__(self, enabled: bool = True, probe=None):
        self.enabled = enabled
        self.probe = probe
        self.events: list[CommEvent] = []

    def record(self, event: CommEvent) -> None:
        if self.enabled:
            self.events.append(event)

    def reset(self) -> None:
        self.events.clear()

    # ------------------------------------------------------------------
    def filtered(self, **criteria) -> list[CommEvent]:
        """Events matching all given attribute=value criteria.

        Unknown attribute names are rejected up front with a ``ValueError``
        (rather than an ``AttributeError`` surfacing mid-comprehension), so
        a typo like ``filtered(phse="forward")`` cannot read as "0 events".
        """
        unknown = set(criteria) - CommEvent._FIELDS
        if unknown:
            raise ValueError(
                f"unknown CommEvent attribute(s) {sorted(unknown)}; "
                f"valid: {sorted(CommEvent._FIELDS)}"
            )
        out = self.events
        for key, value in criteria.items():
            out = [e for e in out if getattr(e, key) == value]
        return out

    def total_bytes(self, **criteria) -> int:
        """Sum of per-rank wire bytes over matching events."""
        return sum(e.wire_bytes for e in self.filtered(**criteria))

    def count(self, **criteria) -> int:
        return len(self.filtered(**criteria))

    def summary(self) -> dict[tuple[str, str, str], int]:
        """Total wire bytes grouped by ``(group, phase, scheme)``.

        The natural shape for eyeballing one iteration: e.g.
        ``{("tp", "forward", "autoencoder"): 1920, ...}``.  Keys are
        sorted, not insertion-ordered, so serialized summaries (bench
        JSON, reports) diff stably across runs and schedule changes.
        """
        out: dict[tuple[str, str, str], int] = {}
        for e in self.events:
            key = (e.group, e.phase, e.scheme)
            out[key] = out.get(key, 0) + e.wire_bytes
        return dict(sorted(out.items()))

    def __repr__(self) -> str:
        return f"CommTracker(events={len(self.events)}, bytes={self.total_bytes()})"


def dense_bytes(shape: tuple[int, ...]) -> int:
    """Wire size of an uncompressed fp16 activation of ``shape``.

    The reference payload every compressed message is judged against; also
    used by :mod:`repro.lint.spmd_check` when validating event streams.
    """
    return int(np.prod(shape)) * BYTES_FP16


class CommHandle:
    """An issued collective; :meth:`wait` completes it and returns a Tensor.

    The issue/wait split is what lets a rank overlap an in-flight transfer
    with compute that does not depend on the result.  In-process (oracle)
    handles complete eagerly — there is no wire, so ``issue`` computes the
    result and ``wait`` just hands it back.  SPMD handles hold an
    in-flight shm exchange: the sends were staged at issue time, peer
    contributions are collected (and the site's :class:`CommEvent`
    recorded) at wait time.

    ``wait`` is idempotent: a second call returns the same Tensor.  A
    handle whose completion *failed* (transport timeout, peer death,
    backend shutdown) stays failed: every subsequent ``wait`` re-raises a
    typed error naming the original failure, rather than silently handing
    back ``None`` as the collective's result — an issued-but-broken
    all-reduce must never read as a zero-gradient success.
    """

    __slots__ = ("_finish", "_result", "_error", "_cid")

    def __init__(self, finish):
        self._finish = finish
        self._result: Tensor | None = None
        self._error: BaseException | None = None
        self._cid: int | None = None
        if finish is not None:
            log = _conclog.active()
            if log is not None:
                self._cid = log.next_handle_id()
                log.emit("handle_issue", hid=self._cid, htype="comm")

    @classmethod
    def ready(cls, value: Tensor) -> "CommHandle":
        """A handle that is already complete (oracle / blocking paths)."""
        handle = cls(None)
        handle._result = value
        return handle

    @property
    def done(self) -> bool:
        return self._finish is None and self._error is None

    def wait(self) -> Tensor:
        if self._error is not None:
            from repro.parallel.backend.base import BackendError

            raise BackendError(
                f"wait() on a handle that already failed: {self._error}"
            ) from self._error
        if self._finish is not None:
            finish = self._finish
            try:
                result = finish()
            except BaseException as exc:
                self._error = exc
                self._finish = None
                raise
            self._finish = None
            self._result = result
            if self._cid is not None:
                log = _conclog.active()
                if log is not None:
                    log.emit("handle_wait", hid=self._cid, htype="comm",
                             dup=False)
        elif self._cid is not None:
            log = _conclog.active()
            if log is not None:
                log.emit("handle_wait", hid=self._cid, htype="comm", dup=True)
        return self._result




def tp_broadcast(x: Tensor, world: int, tracker: CommTracker, *, layer: int | None = None,
                 site: str = "") -> Tensor:
    """Megatron's ``f`` op: identity forward, all-reduce in backward.

    In tensor parallelism the layer input is replicated; each rank's
    backward produces a partial input-gradient that must be all-reduced.
    In-process the summation happens automatically because the same tensor
    feeds every rank's shard — this op only *accounts* for the backward
    collective.
    """
    if world <= 1:
        return x
    shape = tuple(x.shape)
    ctx = rank_context()

    if ctx is not None and ctx.tp > 1:
        # SPMD: each tp peer computes a *partial* input-gradient from its
        # own shard path; the backward all-reduce is a real exchange, and
        # summation runs in rank order so the 2-term float sums match the
        # oracle's autograd accumulation bitwise.
        def backward(g):
            wire = ctx.transport.exchange_issue(
                ctx.tp_peers(), np.ascontiguousarray(g), timeout=ctx.timeout,
                label=_async_label("bwd allreduce", site, layer),
            )
            gathered = wire.wait(ctx.timeout)
            g_sum = _sum_rank_order(gathered, ctx.tp_peers())
            if ctx.records:
                tracker.record(
                    CommEvent("all_reduce", "tp", "backward", "none",
                              dense_bytes(shape), world, shape, layer, site)
                )
            return (g_sum,)

        return Tensor._make(x.data, (x,), backward)

    def backward(g):
        tracker.record(
            CommEvent(
                op="all_reduce",
                group="tp",
                phase="backward",
                scheme="none",
                wire_bytes=dense_bytes(shape),
                world=world,
                shape=shape,
                layer=layer,
                site=site,
            )
        )
        return (g,)

    return Tensor._make(x.data, (x,), backward)


def tp_all_reduce(
    partials: list[Tensor],
    compressor: Compressor,
    tracker: CommTracker,
    *,
    layer: int | None = None,
    site: str = "",
) -> Tensor:
    """Megatron's ``g`` op with optional compression: sum per-rank partials.

    Blocking form of :func:`tp_all_reduce_issue` — issue immediately
    followed by wait.

    - No compression → plain all-reduce of the dense fp16 activation.
    - AE → each rank encodes its partial, the all-reduce runs over the
      (much smaller) code, one decode after. Linearity makes this exactly
      ``dec(enc(Σ xᵢ))``.
    - Top-K / Random-K / quantization → the message is two tensors (or a
      non-float dtype), so the runtime all-gathers the compressed messages
      and sums the decompressed partials, exactly like the paper's
      ``gather-from-tensor-model-parallel-region`` fallback.

    Backward traffic is logged per scheme via ``Compressor.backward_bytes``.
    """
    return tp_all_reduce_issue(partials, compressor, tracker,
                               layer=layer, site=site).wait()


def tp_all_reduce_issue(
    partials: list[Tensor],
    compressor: Compressor,
    tracker: CommTracker,
    *,
    layer: int | None = None,
    site: str = "",
) -> CommHandle:
    """Issue the ``g`` all-reduce and return a :class:`CommHandle`.

    Under SPMD the local contribution is staged on the wire before this
    returns; rank-local codec work that does not need peer data (the AE
    encode of the own partial) also runs at issue time, overlapping the
    in-flight exchange.  Everything that consumes peer data — and the
    site's event recording — happens inside :meth:`CommHandle.wait`.
    In-process the handle is returned already complete.
    """
    if not partials:
        raise ValueError("tp_all_reduce needs at least one partial")
    ctx = rank_context()
    if ctx is not None and ctx.tp > 1:
        if len(partials) != 1:
            raise ValueError(
                f"SPMD tp_all_reduce expects exactly the local partial, "
                f"got {len(partials)}"
            )
        return _tp_all_reduce_spmd_issue(partials[0], compressor, tracker, ctx,
                                         layer=layer, site=site)
    world = len(partials)
    shape = tuple(partials[0].shape)
    for p in partials[1:]:
        if tuple(p.shape) != shape:
            raise ValueError(f"mismatched partial shapes: {shape} vs {tuple(p.shape)}")

    if world == 1:
        # No TP communication exists, so there is nothing to compress
        # (matches the paper's TP=1 rows, where only PP traffic is compressed).
        return CommHandle.ready(partials[0])

    if _is_identity(compressor):
        out = _sum_tensors(partials)
        tracker.record(
            CommEvent("all_reduce", "tp", "forward", "none", dense_bytes(shape),
                      world, shape, layer, site)
        )
        return CommHandle.ready(_with_backward_event(
            out, tracker,
            CommEvent("all_reduce", "tp", "backward", "none", dense_bytes(shape),
                      world, shape, layer, site),
        ))

    if isinstance(compressor, AutoencoderCompressor) or (
        compressor.allreduce_compatible and compressor.learnable
    ):
        codes = [compressor.encode(p) for p in partials]
        code_sum = _sum_tensors(codes)
        code_bytes = int(np.prod(code_sum.shape)) * BYTES_FP16
        tracker.record(
            CommEvent("all_reduce", "tp", "forward", compressor.name, code_bytes,
                      world, shape, layer, site)
        )
        out = compressor.decode(code_sum)
        if tracker.probe is not None:
            # AE compresses the *sum* (dec(Σ enc(xᵢ)) by linearity), so the
            # meaningful error is measured on the reduced activation.
            dense = partials[0].data.copy()
            for p in partials[1:]:
                dense = dense + p.data
            tracker.probe.observe(
                site=_site_label(site, layer),
                scheme=compressor.name, group="tp",
                original=dense, reconstructed=out.data,
                wire_bytes=code_bytes, dense_bytes=dense_bytes(shape),
            )
        return CommHandle.ready(_with_backward_event(
            out, tracker,
            CommEvent("all_reduce", "tp", "backward", compressor.name,
                      compressor.backward_bytes(shape), world, shape, layer, site),
        ))

    # All-gather path: each rank broadcasts its compressed message; every
    # rank reconstructs and sums locally.  Each rank's partial is its own
    # compression site: a stateful wrapper (error feedback) must keep one
    # residual per rank, not clobber a shared "default" slot per call.
    reconstructed = []
    for r, p in enumerate(partials):
        rank_site = _rank_site(site, layer, r)
        rec = compressor.apply(p, site=rank_site)
        reconstructed.append(rec)
        if tracker.probe is not None:
            tracker.probe.observe(
                site=rank_site, scheme=compressor.name, group="tp",
                original=p.data, reconstructed=rec.data,
                wire_bytes=compressor.compressed_bytes(shape),
                dense_bytes=dense_bytes(shape),
                residual=_residual_of(compressor, rank_site),
            )
    out = _sum_tensors(reconstructed)
    msg_bytes = compressor.compressed_bytes(shape)
    tracker.record(
        CommEvent("all_gather", "tp", "forward", compressor.name, msg_bytes,
                  world, shape, layer, site)
    )
    return CommHandle.ready(_with_backward_event(
        out, tracker,
        CommEvent("all_gather", "tp", "backward", compressor.name,
                  compressor.backward_bytes(shape), world, shape, layer, site),
    ))


def _tp_all_reduce_spmd_issue(
    own: Tensor,
    compressor: Compressor,
    tracker: CommTracker,
    ctx,
    *,
    layer: int | None = None,
    site: str = "",
) -> CommHandle:
    """The ``g`` op inside one mp worker: a real exchange over shm.

    Semantics mirror the three in-process paths exactly; only the *where*
    changes.  Stateless codecs run rank-local before anything hits the
    wire; learnable codecs replay the oracle's full graph over exchanged
    raw partials (see inline comment).  Peer contributions are summed in
    rank order 0..tp-1 (bitwise-commutative at tp<=2), and only the
    stage's designated recorder (tp rank 0) logs events so the merged
    multiset matches the oracle event-for-event.

    The local contribution is staged on the wire at issue time
    (:meth:`RankTransport.exchange_issue`); peer data is consumed — and
    the events recorded — inside the returned handle's ``wait``.  With
    ``ctx.overlap`` off the handle completes before this returns, giving
    a strictly blocking reference path; the numbers are bitwise-identical
    either way because the codec work moved across the split is
    deterministic and rank-local.
    """
    world = ctx.tp
    shape = tuple(own.shape)
    peers = ctx.tp_peers()

    if _is_identity(compressor):
        wire = ctx.transport.exchange_issue(
            peers, own.data, timeout=ctx.timeout,
            label=_async_label("allreduce", site, layer))

        def finish() -> Tensor:
            gathered = wire.wait(ctx.timeout)
            out_data = _sum_rank_order(gathered, peers)

            def passthrough(g):
                return (g,)

            out = Tensor._make(out_data, (own,), passthrough)
            if ctx.records:
                tracker.record(
                    CommEvent("all_reduce", "tp", "forward", "none",
                              dense_bytes(shape), world, shape, layer, site)
                )
            return _with_backward_event(
                out, tracker,
                CommEvent("all_reduce", "tp", "backward", "none",
                          dense_bytes(shape), world, shape, layer, site),
                enabled=ctx.records,
            )

        return _spmd_handle(ctx, finish)

    if isinstance(compressor, AutoencoderCompressor) or (
        compressor.allreduce_compatible and compressor.learnable
    ):
        # Learnable codec: every rank replays the oracle's *whole*
        # encode-sum-decode graph over the exchanged raw partials (peer
        # partials enter as constants).  Exchanging codes instead would
        # leave each worker with only its own encoder-gradient
        # contribution, and summing those per-rank *step totals* post hoc
        # reorders the float additions the moment gradients accumulate
        # over microbatches (the oracle interleaves rank contributions per
        # microbatch).  Replaying the full graph keeps codec gradients
        # replicated and bitwise-identical to the oracle for any m; the
        # logged wire bytes are still the code size — what a real fused
        # encode/all-reduce/decode would move.
        wire = ctx.transport.exchange_issue(
            peers, own.data, timeout=ctx.timeout,
            label=_async_label("allreduce", site, layer))
        # The own-partial encode needs no peer data: run it at issue time,
        # overlapping the in-flight exchange.  encode() is deterministic
        # and stateless, so hoisting it across the wait cannot change bits.
        own_code = compressor.encode(own)
        me = ctx.rank

        def finish() -> Tensor:
            gathered = wire.wait(ctx.timeout)
            codes = [
                own_code if r == me else compressor.encode(Tensor(gathered[r]))
                for r in peers
            ]
            code_sum = _sum_tensors(codes)
            code_bytes = int(np.prod(code_sum.shape)) * BYTES_FP16
            if ctx.records:
                tracker.record(
                    CommEvent("all_reduce", "tp", "forward", compressor.name,
                              code_bytes, world, shape, layer, site)
                )
            out = compressor.decode(code_sum)
            if tracker.probe is not None:
                # Same measurement as the oracle path: AE compresses the
                # sum, so fidelity is judged on the reduced activation.
                # Pure reads of already-exchanged data — bitwise-neutral.
                tracker.probe.observe(
                    site=_site_label(site, layer),
                    scheme=compressor.name, group="tp",
                    original=_sum_rank_order(gathered, peers),
                    reconstructed=out.data,
                    wire_bytes=code_bytes, dense_bytes=dense_bytes(shape),
                )
            return _with_backward_event(
                out, tracker,
                CommEvent("all_reduce", "tp", "backward", compressor.name,
                          compressor.backward_bytes(shape), world, shape,
                          layer, site),
                enabled=ctx.records,
            )

        return _spmd_handle(ctx, finish)

    # All-gather path: compress/reconstruct our own partial with the same
    # per-rank site key the oracle uses, then exchange reconstructions.
    rank_site = _rank_site(site, layer, ctx.tp_rank)
    rec = compressor.apply(own, site=rank_site)
    if tracker.probe is not None:
        # Each worker observes exactly the per-rank site it owns — the
        # slice of the oracle's per-rank observations local data covers.
        tracker.probe.observe(
            site=rank_site, scheme=compressor.name, group="tp",
            original=own.data, reconstructed=rec.data,
            wire_bytes=compressor.compressed_bytes(shape),
            dense_bytes=dense_bytes(shape),
            residual=_residual_of(compressor, rank_site),
        )
    wire = ctx.transport.exchange_issue(
        peers, rec.data, timeout=ctx.timeout,
        label=_async_label("allgather", site, layer))

    def finish() -> Tensor:
        gathered = wire.wait(ctx.timeout)
        out_data = _sum_rank_order(gathered, peers)

        def passthrough(g):
            return (g,)

        out = Tensor._make(out_data, (rec,), passthrough)
        msg_bytes = compressor.compressed_bytes(shape)
        if ctx.records:
            tracker.record(
                CommEvent("all_gather", "tp", "forward", compressor.name,
                          msg_bytes, world, shape, layer, site)
            )
        return _with_backward_event(
            out, tracker,
            CommEvent("all_gather", "tp", "backward", compressor.name,
                      compressor.backward_bytes(shape), world, shape, layer, site),
            enabled=ctx.records,
        )

    return _spmd_handle(ctx, finish)


def _spmd_handle(ctx, finish) -> CommHandle:
    """Wrap ``finish`` honoring the context's overlap knob.

    ``ctx.overlap`` off forces completion at issue time — the blocking
    reference path the overlap stress test compares against.
    """
    handle = CommHandle(finish)
    if not getattr(ctx, "overlap", True):
        handle.wait()
    return handle


def pipeline_transfer(
    x: Tensor,
    compressor: Compressor,
    tracker: CommTracker,
    *,
    boundary: int,
    layer: int | None = None,
) -> Tensor:
    """Send an activation across a pipeline-stage boundary.

    Applies the compressor's differentiable round-trip (the receiving stage
    sees the reconstruction) and logs the forward send plus the backward
    gradient message.  Blocking form of :func:`pipeline_transfer_issue`.
    """
    return pipeline_transfer_issue(x, compressor, tracker, boundary=boundary,
                                   layer=layer).wait()


def pipeline_transfer_issue(
    x: Tensor,
    compressor: Compressor,
    tracker: CommTracker,
    *,
    boundary: int,
    layer: int | None = None,
) -> CommHandle:
    """Issue a boundary send and return a :class:`CommHandle`.

    A pipeline send has no receive half on the sender, so the handle is
    always returned complete: under SPMD the payload is staged in the
    next stage's ring mailbox (blocking only when the receiver lags a
    full ring behind) and stays in flight while this stage moves on to
    its next schedule op — that window is recorded as an ``mp.async``
    span on the worker timeline.
    """
    shape = tuple(x.shape)
    scheme = "none" if _is_identity(compressor) else compressor.name
    fwd_bytes = compressor.compressed_bytes(shape)
    bwd_bytes = compressor.backward_bytes(shape)
    ctx = rank_context()

    if ctx is not None:
        # SPMD sender side: the codec runs rank-local (reconstruction and
        # its backward stay in this worker's graph), the reconstruction
        # ships to the next stage's same-tp-rank peer, and only tp rank 0
        # logs the boundary's two events — the oracle records one logical
        # send per boundary, not one per tp replica.  The receiving worker
        # turns the payload into a gradient leaf; its grad is relayed back
        # and enters this graph via ``Tensor.backward(grad)``.
        if ctx.records:
            tracker.record(
                CommEvent("send", "pp", "forward", scheme, fwd_bytes, 2, shape,
                          layer, f"boundary{boundary}")
            )
        if _is_identity(compressor):
            out = x
        else:
            boundary_site = f"boundary{boundary}"
            out = compressor.apply(x, site=boundary_site)
            if tracker.probe is not None:
                tracker.probe.observe(
                    site=boundary_site, scheme=scheme, group="pp",
                    original=x.data, reconstructed=out.data,
                    wire_bytes=fwd_bytes, dense_bytes=dense_bytes(shape),
                    residual=_residual_of(compressor, boundary_site),
                )
        out = _with_backward_event(
            out, tracker,
            CommEvent("send", "pp", "backward", scheme, bwd_bytes, 2, shape,
                      layer, f"boundary{boundary}"),
            enabled=ctx.records,
        )
        issued_at = time.monotonic()
        ctx.transport.send(ctx.peer(ctx.stage + 1), out.data,
                           timeout=ctx.timeout)
        ctx.transport.record_span(
            _async_label("pp send", f"boundary{boundary}", None),
            issued_at, cat="mp.async",
        )
        return CommHandle.ready(out)

    tracker.record(
        CommEvent("send", "pp", "forward", scheme, fwd_bytes, 2, shape,
                  layer, f"boundary{boundary}")
    )
    if _is_identity(compressor):
        out = x
    else:
        boundary_site = f"boundary{boundary}"
        out = compressor.apply(x, site=boundary_site)
        if tracker.probe is not None:
            tracker.probe.observe(
                site=boundary_site, scheme=scheme, group="pp",
                original=x.data, reconstructed=out.data,
                wire_bytes=fwd_bytes, dense_bytes=dense_bytes(shape),
                residual=_residual_of(compressor, boundary_site),
            )
    return CommHandle.ready(_with_backward_event(
        out, tracker,
        CommEvent("send", "pp", "backward", scheme, bwd_bytes, 2, shape,
                  layer, f"boundary{boundary}"),
    ))


# ----------------------------------------------------------------------
# Data-parallel gradient all-reduce
# ----------------------------------------------------------------------
def dp_all_reduce(
    replica_grads: list[dict[str, np.ndarray]],
    compressor: Compressor | None,
    tracker: CommTracker,
    *,
    site: str = "grad",
) -> dict[str, np.ndarray]:
    """Compressible gradient all-reduce across data-parallel replicas.

    Runs at the *backend* layer (the trainer's gradient sync point) in
    both backends: the inproc oracle reduces over its replica models, the
    mp backend over its per-gang merged gradient dicts — the identical
    code path, so the two are bitwise-equivalent by construction.

    Each replica's gradients are flattened in sorted-name order into one
    vector; a stateful codec keeps one ``dp.rank{r}`` site per replica
    (error-feedback residuals and Random-K streams never alias across
    replicas — the same per-site isolation the TP all-gather path uses).
    Reconstructions are summed in rank order (bitwise-commutative at
    dp <= 2) and divided by the replica count: the result is the gradient
    of the mean loss over the full batch.

    Records exactly one :class:`CommEvent` per step — ``all_reduce`` for
    the dense path, ``all_gather`` for the gathered compressed messages,
    mirroring the TP convention.
    """
    dp = len(replica_grads)
    if dp == 1:
        return dict(replica_grads[0])
    names = sorted(replica_grads[0])
    for grads in replica_grads[1:]:
        if sorted(grads) != names:
            raise ValueError("replica gradient sets differ; cannot dp-reduce")
    shapes = [replica_grads[0][n].shape for n in names]
    flats = [
        np.concatenate([np.asarray(grads[n], dtype=np.float32).ravel()
                        for n in names])
        for grads in replica_grads
    ]
    shape = (flats[0].size,)
    if compressor is None or _is_identity(compressor):
        total = flats[0]
        for f in flats[1:]:
            total = total + f
        tracker.record(
            CommEvent("all_reduce", "dp", "backward", "none",
                      dense_bytes(shape), dp, shape, None, site)
        )
    else:
        recs = [
            compressor.apply(Tensor(f), site=f"dp.rank{r}").data
            for r, f in enumerate(flats)
        ]
        total = recs[0]
        for rec in recs[1:]:
            total = total + rec
        tracker.record(
            CommEvent("all_gather", "dp", "backward", compressor.name,
                      compressor.compressed_bytes(shape), dp, shape, None, site)
        )
    mean = total / dp
    merged: dict[str, np.ndarray] = {}
    offset = 0
    for name, pshape in zip(names, shapes):
        n = int(np.prod(pshape)) if pshape else 1
        merged[name] = mean[offset:offset + n].reshape(pshape)
        offset += n
    return merged


# ----------------------------------------------------------------------
# Ring sequence parallelism
# ----------------------------------------------------------------------
def sp_slice(x: Tensor, sp: int, sp_rank: int) -> Tensor:
    """This sp rank's sequence block of a replicated ``(b, s, h)`` activation.

    In-process this is a plain autograd slice: the backward pass scatters
    the block gradient into a zero-padded full array and the sp blocks'
    contributions accumulate into the full input gradient.  Inside an mp
    worker the backward instead *exchanges* the disjoint block gradients
    around the ring and assembles the full ``dx`` locally — the upstream
    (replicated) computation then sees the same full gradient on every
    rank.
    """
    b, s, h = x.shape
    if s % sp != 0:
        raise ValueError(f"sequence length {s} not divisible by sp={sp}")
    blk = s // sp
    lo = sp_rank * blk
    ctx = rank_context()
    if ctx is None or ctx.sp <= 1:
        return x[:, lo:lo + blk, :]

    peers = ctx.sp_peers()

    def backward(g):
        wire = ctx.transport.exchange_issue(
            peers, np.ascontiguousarray(g), timeout=ctx.timeout,
            label="sp dx gather")
        gathered = wire.wait(ctx.timeout)
        return (np.concatenate([gathered[p] for p in peers], axis=1),)

    return Tensor._make(x.data[:, lo:lo + blk, :], (x,), backward)


def sp_seq_all_gather(blocks: list[Tensor], sp: int, *, axis: int = 2,
                      reduce_backward: bool, label: str = "sp gather") -> Tensor:
    """Concatenate per-rank sequence blocks into the full tensor.

    ``reduce_backward=True`` is the K/V gather: every rank's backward
    holds a *partial* gradient of the full tensor (its own query block's
    contribution), so under SPMD the partials are exchanged and summed in
    rank order before slicing the own block — matching the oracle's
    autograd accumulation bitwise at sp <= 2.  ``reduce_backward=False``
    is the context all-gather: the downstream computation is replicated,
    so the incoming full gradient is already identical on every rank and
    the backward is a local slice with no wire traffic.
    """
    ctx = rank_context()
    if ctx is None or ctx.sp <= 1:
        if len(blocks) == 1 and sp == 1:
            return blocks[0]
        if len(blocks) != sp:
            raise ValueError(f"expected {sp} blocks in-process, got {len(blocks)}")
        return _concatenate(blocks, axis=axis)

    if len(blocks) != 1:
        raise ValueError(
            f"SPMD sp_seq_all_gather expects exactly the local block, "
            f"got {len(blocks)}"
        )
    own = blocks[0]
    peers = ctx.sp_peers()
    blk = own.shape[axis]
    lo = ctx.sp_rank * blk
    wire = ctx.transport.exchange_issue(
        peers, np.ascontiguousarray(own.data), timeout=ctx.timeout,
        label=label)
    gathered = wire.wait(ctx.timeout)
    full = np.concatenate([gathered[p] for p in peers], axis=axis)
    take = [slice(None)] * full.ndim
    take[axis] = slice(lo, lo + blk)
    take = tuple(take)

    def backward(g):
        if reduce_backward:
            wire_b = ctx.transport.exchange_issue(
                peers, np.ascontiguousarray(g), timeout=ctx.timeout,
                label=f"{label} bwd reduce")
            g = _sum_rank_order(wire_b.wait(ctx.timeout), peers)
        return (g[take],)

    return Tensor._make(full, (own,), backward)


def sp_ring_account(x: Tensor, tracker: CommTracker, *, sp: int,
                    shape: tuple[int, ...], block_shape: tuple[int, ...],
                    layer: int | None = None, site: str = "attn") -> Tensor:
    """Byte accounting for one attention-boundary ring exchange.

    One forward and one backward :class:`CommEvent` per (layer,
    microbatch), each ``3*(sp-1)*dense_bytes(block)``: the forward moves
    the K and V ring hops plus the context all-gather; the backward moves
    the dK/dV ring reduce plus the dx block gather (the context gather's
    backward is wire-free — see :func:`sp_seq_all_gather`).  Recorded by
    the designated recorder only, wrapped everywhere so backward op order
    stays identical across ranks.
    """
    wire = 3 * (sp - 1) * dense_bytes(block_shape)
    ctx = rank_context()
    recording = ctx is None or ctx.records
    if recording:
        tracker.record(
            CommEvent("ring_exchange", "sp", "forward", "none", wire, sp,
                      shape, layer, site)
        )
    return _with_backward_event(
        x, tracker,
        CommEvent("ring_exchange", "sp", "backward", "none", wire, sp,
                  shape, layer, site),
        enabled=recording,
    )


# ----------------------------------------------------------------------
def _async_label(op: str, site: str, layer: int | None) -> str:
    """Display label of one in-flight exchange in worker timelines."""
    return f"{op} {_site_label(site, layer)}"


def _site_label(site: str, layer: int | None) -> str:
    """Fully-qualified label of one TP compression site."""
    base = site or "default"
    return f"layer{layer}.{base}" if layer is not None else base


def _rank_site(site: str, layer: int | None, rank: int) -> str:
    """Stable per-rank state key for one TP compression site."""
    return f"{_site_label(site, layer)}.rank{rank}"


def _is_identity(compressor: Compressor) -> bool:
    return compressor is None or compressor.name == "none"


def _residual_of(compressor: Compressor, site: str):
    """Error-feedback residual at ``site``, or None for stateless schemes."""
    getter = getattr(compressor, "residual", None)
    return getter(site) if callable(getter) else None


def _sum_tensors(tensors: list[Tensor]) -> Tensor:
    out = tensors[0]
    for t in tensors[1:]:
        out = out + t
    return out


def _sum_rank_order(gathered: dict[int, np.ndarray], peers: list[int]) -> np.ndarray:
    """Sum exchanged arrays in ascending rank order.

    The oracle sums partials in list (= rank) order; reducing the SPMD
    exchange the same way keeps every float addition identical, which at
    tp<=2 means bitwise-identical results regardless of arrival order.
    """
    out = gathered[peers[0]]
    for peer in peers[1:]:
        out = out + gathered[peer]
    return out


def _with_backward_event(x: Tensor, tracker: CommTracker, event: CommEvent,
                         enabled: bool = True) -> Tensor:
    """Wrap ``x`` so that a gradient passing through logs ``event``.

    ``enabled=False`` (a non-recording SPMD replica) still wraps — the
    closure keeps backward op ordering identical across ranks — but skips
    the record call, leaving the event to the designated recorder.
    """

    def backward(g):
        if enabled:
            tracker.record(event)
        return (g,)

    return Tensor._make(x.data, (x,), backward)
