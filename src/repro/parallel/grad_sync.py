"""Gradient synchronization points for the DP and SP topology axes.

Two kinds of parameter gradient need post-backward reconciliation once the
grid grows beyond TP×PP:

- **DP**: every replica holds a full gradient set computed on its batch
  shard; the replicas are averaged by the compressible
  :func:`~repro.parallel.collectives.dp_all_reduce` at the backend layer.
  This module owns the *codec* for that reduce:
  :func:`build_dp_grad_compressor` maps the run's scheme label onto the
  gradient wire — sparse schemes get per-replica error feedback (the
  AGCMPT treatment), quantization applies stateless, and the AE (whose
  encoder is dimension-bound to the activation hidden size) plus "w/o"
  stay dense.

- **SP**: ring sequence parallelism shards only the attention QKV
  projection's *inputs* by sequence block, so each sp rank's QKV
  weight/bias gradients are partial sums over its block.  Everything else
  (out-proj, MLP, norms, embeddings) consumes replicated full-sequence
  activations and already holds full gradients.  :func:`sp_sync_grads`
  exchanges the per-stage QKV gradient vector around the ring after the
  schedule loop and sums in rank order — bitwise-identical to the
  oracle's autograd accumulation at sp <= 2 — while
  :func:`record_sp_grad_sync_events` logs the matching events on the
  in-process oracle, where autograd performs the sum natively.
"""

from __future__ import annotations

import re

import numpy as np

from repro.compression.base import Compressor
from repro.compression.error_feedback import ErrorFeedbackCompressor
from repro.compression.notation import scheme_spec
from repro.parallel.collectives import (
    CommEvent,
    CommTracker,
    dense_bytes,
    _sum_rank_order,
)

__all__ = ["build_dp_grad_compressor", "sp_grad_groups", "sp_sync_grads",
           "record_sp_grad_sync_events"]

#: Seed offset for the DP gradient codec's Random-K stream — disjoint from
#: the activation-site offsets in runtime.py (layer*2+site and 500+b).
_DP_SEED_OFFSET = 900

_SP_PARTIAL = re.compile(r"(?:^|\.)layers\.(\d+)\.attn\.qkv_")


def build_dp_grad_compressor(config) -> Compressor | None:
    """The gradient-wire codec for a run's scheme label, or None for dense.

    Top-/Random-K compress the flat gradient vector under per-replica
    error feedback; quantization applies stateless.  The AE cannot apply
    (its encoder is shaped for the activation hidden dim, not the
    parameter count), so AE runs — like "w/o" — reduce dense gradients.
    """
    spec = scheme_spec(config.scheme)
    if spec.family in ("topk", "randomk"):
        inner = spec.build(config.model.hidden,
                           seed=config.seed * 1000 + _DP_SEED_OFFSET)
        return ErrorFeedbackCompressor(inner)
    if spec.family == "quant":
        return spec.build(config.model.hidden,
                          seed=config.seed * 1000 + _DP_SEED_OFFSET)
    return None


def sp_grad_groups(model) -> dict[int, list[tuple[str, object]]]:
    """Per-stage ``(name, parameter)`` lists needing an SP gradient sync.

    Only parameters whose gradients are partial under ring SP qualify:
    the QKV projections, grouped by the pipeline stage that owns their
    layer, each group in sorted-name order (the flattening order both
    sides of the exchange must agree on).
    """
    partition = model.backbone.partition
    groups: dict[int, list[tuple[str, object]]] = {}
    for name, p in sorted(model.named_parameters()):
        m = _SP_PARTIAL.search(name)
        if m is None or p.grad is None:
            continue
        stage = partition.stage_of(int(m.group(1)))
        groups.setdefault(stage, []).append((name, p))
    return groups


def sp_sync_grads(model, ctx) -> None:
    """All-reduce this stage's partial QKV gradients around the SP ring.

    Runs inside an mp worker after its schedule loop: flattens the
    stage's QKV gradients in sorted-name order, exchanges with the sp
    peers, sums in rank order, and writes the slices back.  Every sp
    rank participates (the exchange is symmetric); only the designated
    recorder logs the stage's ``grad_sync`` event.
    """
    group = sp_grad_groups(model).get(ctx.stage, [])
    if not group:
        return
    flat = np.concatenate(
        [np.ascontiguousarray(p.grad, dtype=np.float32).ravel()
         for _, p in group])
    peers = ctx.sp_peers()
    wire = ctx.transport.exchange_issue(peers, flat, timeout=ctx.timeout,
                                        label="sp grad sync")
    total = _sum_rank_order(wire.wait(ctx.timeout), peers)
    offset = 0
    for _, p in group:
        n = p.grad.size
        p.grad = total[offset:offset + n].reshape(p.grad.shape)
        offset += n
    if ctx.records:
        model.tracker.record(_grad_sync_event(flat.size, ctx.sp))


def record_sp_grad_sync_events(model, sp: int,
                               tracker: CommTracker | None = None) -> None:
    """Oracle-side accounting of the per-stage SP gradient syncs.

    The in-process backward already accumulated the QKV gradients across
    sequence blocks (autograd does the ring's sum for free), so the
    oracle only records the events the workers' syncs would have logged:
    one per stage holding QKV parameters with gradients.
    """
    if sp <= 1:
        return
    tracker = tracker if tracker is not None else model.tracker
    groups = sp_grad_groups(model)
    for stage in sorted(groups):
        size = sum(p.grad.size for _, p in groups[stage])
        tracker.record(_grad_sync_event(size, sp))


def _grad_sync_event(size: int, sp: int) -> CommEvent:
    return CommEvent("all_reduce", "sp", "backward", "none",
                     dense_bytes((size,)), sp, (size,), None, "grad_sync")
