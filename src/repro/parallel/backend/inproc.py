"""In-process execution backend: the serial numerics oracle.

Runs the step exactly as the pre-backend code did — every logical rank's
shard computation in this process, collectives over lists of partials.
The autograd pass leaves gradients directly on the parent model's
parameters, so :class:`StepResult.grads` is empty and ``apply_grads`` /
``sync_weights`` are no-ops.
"""

from __future__ import annotations

from repro.parallel.backend.base import ExecutionBackend, StepResult

__all__ = ["InprocBackend"]


class InprocBackend(ExecutionBackend):
    name = "inproc"

    def __init__(self, model):
        self.model = model

    def train_step(self, input_ids, labels, attention_mask=None) -> StepResult:
        model = self.model
        model.tracker.reset()
        model.zero_grad()
        loss = model.loss(input_ids, labels, attention_mask)
        loss.backward()
        return StepResult(loss=loss.item(), grads={},
                          events=list(model.tracker.events), timelines={})

    def apply_grads(self, model, result: StepResult) -> None:
        pass  # gradients already live on the model's parameters

    def sync_weights(self, model) -> None:
        pass  # there is nobody to sync with
