"""In-process execution backend: the serial numerics oracle.

Runs the step exactly as the pre-backend code did — every logical rank's
shard computation in this process, collectives over lists of partials.
With ``dp == 1`` the autograd pass leaves gradients directly on the parent
model's parameters, so :class:`StepResult.grads` is empty and
``apply_grads`` / ``sync_weights`` are no-ops; the historical behaviour is
bitwise-unchanged.

With ``dp > 1`` the oracle materializes one *replica model* per
data-parallel rank (same config and seed ⇒ identical init, but — crucially
— independent compressor state: each replica's error-feedback residuals
and Random-K streams advance on its own batch shard exactly as the mp
gangs' do).  Each replica runs the serial step on its contiguous batch
shard; the per-replica gradients are then combined by the backend-layer
:func:`~repro.parallel.collectives.dp_all_reduce` — the same code the mp
parent runs, so the two backends stay bitwise-equivalent by construction.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.backend.base import ExecutionBackend, StepResult
from repro.parallel.backend.microbatch import (
    loss_grad_seed,
    mean_loss,
    split_microbatches,
)
from repro.parallel.collectives import CommTracker, dp_all_reduce
from repro.parallel.grad_sync import (
    build_dp_grad_compressor,
    record_sp_grad_sync_events,
)

__all__ = ["InprocBackend"]


class InprocBackend(ExecutionBackend):
    name = "inproc"

    def __init__(self, model):
        self.model = model
        cfg = getattr(model, "config", None)
        self.dp = getattr(cfg, "dp", 1) if cfg is not None else 1
        self.sp = getattr(cfg, "sp", 1) if cfg is not None else 1
        self._replicas = [model]
        self._dp_compressor = None
        if self.dp > 1:
            kwargs = {}
            if hasattr(model, "regression"):
                kwargs["regression"] = model.regression
            self._replicas += [type(model)(cfg, **kwargs)
                               for _ in range(self.dp - 1)]
            self._dp_compressor = build_dp_grad_compressor(cfg)

    # ------------------------------------------------------------------
    def _replica_step(self, model, input_ids, labels, attention_mask) -> float:
        """One replica's serial step on (its shard of) the batch."""
        model.tracker.reset()
        model.zero_grad()
        m = getattr(model.config, "num_microbatches", 1)
        if m == 1:
            loss = model.loss(input_ids, labels, attention_mask)
            loss.backward()
            loss_val = loss.item()
        else:
            # The serial image of a microbatched pipeline iteration: each
            # microbatch runs forward + backward in order, so gradients,
            # compressor RNG streams and error-feedback residuals advance
            # exactly as the schedule-driven workers advance them.
            seed = loss_grad_seed(m)
            vals = []
            for mb_ids, mb_labels, mb_mask in split_microbatches(
                    input_ids, labels, attention_mask, m):
                mb_loss = model.loss(mb_ids, mb_labels, mb_mask)
                vals.append(float(mb_loss.item()))
                mb_loss.backward(seed)
            loss_val = mean_loss(vals)
        # SP: autograd already summed the QKV block gradients; log the
        # per-stage grad-sync events the workers' ring exchange records.
        record_sp_grad_sync_events(model, self.sp)
        return float(loss_val)

    def train_step(self, input_ids, labels, attention_mask=None) -> StepResult:
        if self.dp == 1:
            loss_val = self._replica_step(self.model, input_ids, labels,
                                          attention_mask)
            return StepResult(loss=loss_val, grads={},
                              events=list(self.model.tracker.events),
                              timelines={})

        input_ids = np.asarray(input_ids)
        if input_ids.shape[0] % self.dp != 0:
            raise ValueError(
                f"batch size {input_ids.shape[0]} not divisible by "
                f"dp={self.dp}")
        shard = input_ids.shape[0] // self.dp
        labels = np.asarray(labels)
        mask = None if attention_mask is None else np.asarray(attention_mask)

        events: list = []
        losses: list[float] = []
        replica_grads: list[dict[str, np.ndarray]] = []
        for r, replica in enumerate(self._replicas):
            sl = slice(r * shard, (r + 1) * shard)
            losses.append(self._replica_step(
                replica, input_ids[sl], labels[sl],
                None if mask is None else mask[sl]))
            events.extend(replica.tracker.events)
            replica_grads.append({
                name: p.grad for name, p in replica.named_parameters()
                if p.grad is not None
            })

        # Backend-layer gradient sync point (the same dp_all_reduce the mp
        # parent runs), plus the replica-order loss mean.
        dp_tracker = CommTracker()
        grads = dp_all_reduce(replica_grads, self._dp_compressor, dp_tracker)
        events.extend(dp_tracker.events)
        loss_val = sum(losses[1:], losses[0]) / self.dp

        self.model.tracker.reset()
        self.model.tracker.events.extend(events)
        return StepResult(loss=float(loss_val), grads=grads, events=events,
                          timelines={})

    def apply_grads(self, model, result: StepResult) -> None:
        # dp == 1: gradients already live on the model's parameters.
        if not result.grads:
            return
        named = dict(model.named_parameters())
        for name, g in result.grads.items():
            named[name].grad = np.asarray(g)

    def sync_weights(self, model) -> None:
        # dp == 1: there is nobody to sync with.
        if self.dp == 1:
            return
        state = model.state_dict()
        for replica in self._replicas[1:]:
            replica.load_state_dict(state)

    def runtime_state(self) -> dict:
        if self.dp == 1:
            backbone = getattr(self.model, "backbone", None)
            if backbone is None:
                return {}
            return backbone.runtime_state_dict()
        # dp > 1: namespace per replica — the replicas' compressor states
        # advance independently, so a flat union would collide.
        state: dict = {}
        for r, replica in enumerate(self._replicas):
            backbone = getattr(replica, "backbone", None)
            if backbone is not None:
                state[f"dp{r}"] = backbone.runtime_state_dict()
        if self._dp_compressor is not None:
            grad_state = self._dp_compressor.runtime_state()
            if grad_state:
                state["dp_grad"] = grad_state
        return state

    def load_runtime_state(self, state: dict) -> None:
        if self.dp == 1:
            backbone = getattr(self.model, "backbone", None)
            if backbone is not None:
                backbone.load_runtime_state_dict(state)
            return
        for r, replica in enumerate(self._replicas):
            backbone = getattr(replica, "backbone", None)
            if backbone is not None and f"dp{r}" in state:
                backbone.load_runtime_state_dict(state[f"dp{r}"])
        if self._dp_compressor is not None and "dp_grad" in state:
            self._dp_compressor.load_runtime_state(state["dp_grad"])
