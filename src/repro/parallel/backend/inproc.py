"""In-process execution backend: the serial numerics oracle.

Runs the step exactly as the pre-backend code did — every logical rank's
shard computation in this process, collectives over lists of partials.
The autograd pass leaves gradients directly on the parent model's
parameters, so :class:`StepResult.grads` is empty and ``apply_grads`` /
``sync_weights`` are no-ops.
"""

from __future__ import annotations

from repro.parallel.backend.base import ExecutionBackend, StepResult
from repro.parallel.backend.microbatch import (
    loss_grad_seed,
    mean_loss,
    split_microbatches,
)

__all__ = ["InprocBackend"]


class InprocBackend(ExecutionBackend):
    name = "inproc"

    def __init__(self, model):
        self.model = model

    def train_step(self, input_ids, labels, attention_mask=None) -> StepResult:
        model = self.model
        model.tracker.reset()
        model.zero_grad()
        m = getattr(model.config, "num_microbatches", 1)
        if m == 1:
            loss = model.loss(input_ids, labels, attention_mask)
            loss.backward()
            loss_val = loss.item()
        else:
            # The serial image of a microbatched pipeline iteration: each
            # microbatch runs forward + backward in order, so gradients,
            # compressor RNG streams and error-feedback residuals advance
            # exactly as the schedule-driven workers advance them.
            seed = loss_grad_seed(m)
            vals = []
            for mb_ids, mb_labels, mb_mask in split_microbatches(
                    input_ids, labels, attention_mask, m):
                mb_loss = model.loss(mb_ids, mb_labels, mb_mask)
                vals.append(float(mb_loss.item()))
                mb_loss.backward(seed)
            loss_val = mean_loss(vals)
        return StepResult(loss=loss_val, grads={},
                          events=list(model.tracker.events), timelines={})

    def apply_grads(self, model, result: StepResult) -> None:
        pass  # gradients already live on the model's parameters

    def sync_weights(self, model) -> None:
        pass  # there is nobody to sync with

    def runtime_state(self) -> dict:
        backbone = getattr(self.model, "backbone", None)
        if backbone is None:
            return {}
        return backbone.runtime_state_dict()

    def load_runtime_state(self, state: dict) -> None:
        backbone = getattr(self.model, "backbone", None)
        if backbone is not None:
            backbone.load_runtime_state_dict(state)
