"""Microbatch splitting and loss semantics shared by all backends.

With ``num_microbatches = m > 1`` a step's loss is the *mean of the
per-microbatch losses* and each microbatch's backward is seeded with
``1/m``, so parameter gradients equal the gradient of that mean.  Both
backends (and both pipeline schedules) must route through these helpers:
the bitwise-equivalence contract extends to microbatched steps, so the
split points, the seed constant and the reduction order have to be the
same everywhere.
"""

from __future__ import annotations

import numpy as np

__all__ = ["split_microbatches", "loss_grad_seed", "mean_loss"]


def split_microbatches(input_ids, labels, attention_mask, num_microbatches: int):
    """Split a batch into ``m`` equal microbatches along dim 0.

    Returns a list of ``(input_ids, labels, attention_mask)`` triples.
    Labels split along dim 0 as well (works for per-example class labels
    and per-token MLM labels alike).
    """
    m = num_microbatches
    input_ids = np.asarray(input_ids)
    labels = np.asarray(labels)
    batch = input_ids.shape[0]
    if m == 1:
        return [(input_ids, labels, attention_mask)]
    if batch % m != 0:
        raise ValueError(
            f"batch size {batch} is not divisible by num_microbatches {m}"
        )
    chunk = batch // m
    mask = None if attention_mask is None else np.asarray(attention_mask)
    out = []
    for i in range(m):
        sl = slice(i * chunk, (i + 1) * chunk)
        out.append((input_ids[sl], labels[sl],
                    None if mask is None else mask[sl]))
    return out


def loss_grad_seed(num_microbatches: int) -> float:
    """Backward seed of one microbatch's scalar loss.

    ``d(mean of losses)/d(loss_i) = 1/m``; the cast to the loss dtype
    happens inside ``Tensor.backward`` identically on every rank.
    """
    return 1.0 / num_microbatches


def mean_loss(per_microbatch: list[float]) -> float:
    """The step loss: mean of per-microbatch losses, in listed order."""
    return sum(per_microbatch) / len(per_microbatch)
