"""Shared-memory rank-to-rank transport with a pickle-free header protocol.

One :class:`RankTransport` owns a single ``multiprocessing.shared_memory``
segment laid out as

- a barrier region: ``world`` aligned u32 generation slots, then
- a full mesh of ``world × world`` single-message channel slots (the
  diagonal is unused), each ``HEADER_SIZE + capacity`` bytes.

Each directed channel is a single-producer/single-consumer mailbox: the
sender waits for ``status == EMPTY``, writes payload then header, and
flips ``status`` to ``FULL`` last; the receiver does the reverse.  Because
every ordered rank pair has its own slot and all ranks execute the same
collective sequence, the protocol is deadlock-free — and every blocking
wait carries a deadline so a dead peer surfaces as a typed
:class:`~repro.parallel.backend.base.BackendError` naming the rank it was
waiting on, never a hang.

Arrays cross the wire as raw bytes plus a fixed struct header (magic,
sequence number, dtype code, shape) — no pickle anywhere on the data
plane, so a corrupted message fails loudly on the magic/seq check instead
of deserializing garbage.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory

import numpy as np

from repro.parallel.backend.base import BackendError

__all__ = ["ShmChannel", "ShmBarrier", "RankTransport", "HEADER_SIZE",
           "DEFAULT_CAPACITY", "DEFAULT_TIMEOUT_S"]

#: Per-channel payload capacity (bytes). Activations in the scaled-down
#: models are tens of KB; 1 MiB leaves generous headroom while keeping a
#: 4-rank mesh (16 slots) under ~17 MiB of shared memory.
DEFAULT_CAPACITY = 1 << 20

#: Default deadline for any single blocking wait.
DEFAULT_TIMEOUT_S = 60.0

#: Poll interval while waiting on a status flag. Shared-memory flips are
#: visible immediately; this only bounds busy-wait CPU burn.
_POLL_S = 20e-6

_MAGIC = 0x5250_4F43  # "RPOC"
_EMPTY, _FULL = 0, 1

#: status(u32) seq(u32) magic(u32) dtype(u8) ndim(u8) pad(u16) nbytes(u64)
#: shape(8 × u64)
_HEADER = struct.Struct("<IIIBBHQ8Q")
HEADER_SIZE = _HEADER.size

_DTYPES: tuple[np.dtype, ...] = tuple(
    np.dtype(d) for d in ("float32", "float16", "float64", "int32", "int64", "uint8", "bool")
)
_DTYPE_CODE = {d: i for i, d in enumerate(_DTYPES)}
_MAX_NDIM = 8


def _now() -> float:
    return time.monotonic()


class ShmChannel:
    """One directed single-message channel inside a shared buffer.

    ``buf`` is any writable buffer (a shared-memory slice in production, a
    plain ``bytearray`` in unit tests) of at least ``HEADER_SIZE +
    capacity`` bytes, pre-zeroed so the slot starts EMPTY.
    """

    def __init__(self, buf, capacity: int, *, src: int, dst: int):
        if len(buf) < HEADER_SIZE + capacity:
            raise ValueError(
                f"channel buffer too small: {len(buf)} < {HEADER_SIZE + capacity}"
            )
        self._buf = buf
        self.capacity = capacity
        self.src = src
        self.dst = dst
        self._send_seq = 0
        self._recv_seq = 0

    # -- low-level flag helpers -----------------------------------------
    def _status(self) -> int:
        return struct.unpack_from("<I", self._buf, 0)[0]

    def _set_status(self, value: int) -> None:
        struct.pack_into("<I", self._buf, 0, value)

    def _wait_status(self, want: int, deadline: float, waiting_on: int) -> None:
        while self._status() != want:
            if _now() > deadline:
                verb = "drain" if want == _EMPTY else "send"
                raise BackendError(
                    f"timed out waiting for rank {waiting_on} to {verb} "
                    f"(channel {self.src}->{self.dst})",
                    rank=waiting_on,
                )
            time.sleep(_POLL_S)

    # -- public API ------------------------------------------------------
    def send(self, arr: np.ndarray, timeout: float = DEFAULT_TIMEOUT_S) -> None:
        arr = np.asarray(arr)
        if not arr.flags["C_CONTIGUOUS"]:
            # Not ascontiguousarray unconditionally: that would promote 0-d
            # arrays to 1-d and silently change the shape on the wire.
            arr = np.ascontiguousarray(arr)
        code = _DTYPE_CODE.get(arr.dtype)
        if code is None:
            raise BackendError(
                f"unsupported wire dtype {arr.dtype} (channel {self.src}->{self.dst})",
                rank=self.src,
            )
        if arr.ndim > _MAX_NDIM:
            raise BackendError(f"ndim {arr.ndim} exceeds header limit {_MAX_NDIM}",
                               rank=self.src)
        if arr.nbytes > self.capacity:
            raise BackendError(
                f"payload of {arr.nbytes} bytes exceeds channel capacity "
                f"{self.capacity}; raise capacity_bytes",
                rank=self.src,
            )
        self._wait_status(_EMPTY, _now() + timeout, waiting_on=self.dst)
        if arr.nbytes:
            self._buf[HEADER_SIZE : HEADER_SIZE + arr.nbytes] = arr.tobytes()
        shape = tuple(arr.shape) + (0,) * (_MAX_NDIM - arr.ndim)
        self._send_seq += 1
        _HEADER.pack_into(
            self._buf, 0, _EMPTY, self._send_seq, _MAGIC, code, arr.ndim, 0,
            arr.nbytes, *shape,
        )
        # Status flips to FULL only after payload and header are in place.
        self._set_status(_FULL)

    def recv(self, timeout: float = DEFAULT_TIMEOUT_S) -> np.ndarray:
        self._wait_status(_FULL, _now() + timeout, waiting_on=self.src)
        (_, seq, magic, code, ndim, _, nbytes, *shape) = _HEADER.unpack_from(self._buf, 0)
        if magic != _MAGIC:
            raise BackendError(
                f"bad magic 0x{magic:08x} on channel {self.src}->{self.dst}",
                rank=self.src,
            )
        self._recv_seq += 1
        if seq != self._recv_seq:
            raise BackendError(
                f"out-of-order message on channel {self.src}->{self.dst}: "
                f"seq {seq}, expected {self._recv_seq}",
                rank=self.src,
            )
        dtype = _DTYPES[code]
        payload = bytes(self._buf[HEADER_SIZE : HEADER_SIZE + nbytes])
        arr = np.frombuffer(payload, dtype=dtype).reshape(shape[:ndim]).copy()
        self._set_status(_EMPTY)
        return arr


class ShmBarrier:
    """Generation-counter barrier over ``world`` aligned u32 slots.

    Each arrival bumps the caller's slot to the current generation and
    waits (with a deadline) until every slot has caught up.  Slots start
    at 0, so generation numbering starts at 1.
    """

    def __init__(self, buf, world: int, rank: int):
        if len(buf) < 4 * world:
            raise ValueError(f"barrier buffer too small for world={world}")
        self._buf = buf
        self.world = world
        self.rank = rank
        self._generation = 0

    def wait(self, timeout: float = DEFAULT_TIMEOUT_S) -> int:
        self._generation += 1
        struct.pack_into("<I", self._buf, 4 * self.rank, self._generation)
        deadline = _now() + timeout
        for peer in range(self.world):
            while struct.unpack_from("<I", self._buf, 4 * peer)[0] < self._generation:
                if _now() > deadline:
                    raise BackendError(
                        f"barrier generation {self._generation} timed out waiting "
                        f"for rank {peer}",
                        rank=peer,
                    )
                time.sleep(_POLL_S)
        return self._generation


class RankTransport:
    """All channels and the barrier for one rank, over one shm segment.

    The parent calls :meth:`create` once (allocating and zeroing the
    segment) and passes ``spec`` to each worker, which attaches with
    :meth:`RankTransport(spec, rank=...)``.  Only the creator may
    :meth:`unlink`; everyone must :meth:`close`.
    """

    def __init__(self, spec: dict, rank: int, *, _created: bool = False):
        self.world = int(spec["world"])
        self.capacity = int(spec["capacity"])
        self.rank = rank
        self.spec = dict(spec)
        self._created = _created
        try:
            self._shm = shared_memory.SharedMemory(name=spec["name"], create=_created,
                                                   size=self._segment_size() if _created else 0)
        except FileNotFoundError:
            raise BackendError(
                f"shared-memory segment {spec['name']!r} is gone (creator closed?)",
                rank=rank,
            ) from None
        buf = self._shm.buf
        if _created:
            buf[: self._segment_size()] = b"\x00" * self._segment_size()
        self.barrier = ShmBarrier(buf[: 4 * self.world], self.world, rank)
        self._channels: dict[tuple[int, int], ShmChannel] = {}
        slot = HEADER_SIZE + self.capacity
        base = self._barrier_bytes()
        for src in range(self.world):
            for dst in range(self.world):
                if src == dst:
                    continue
                if rank not in (src, dst):
                    continue
                off = base + (src * self.world + dst) * slot
                self._channels[(src, dst)] = ShmChannel(
                    buf[off : off + slot], self.capacity, src=src, dst=dst
                )
        #: Optional per-step span sink: when a list, blocking waits append
        #: ``{"name", "cat", "ts_ms", "dur_ms"}`` dicts (worker-local clock).
        self.timeline: list[dict] | None = None
        self.timeline_origin = 0.0

    # ------------------------------------------------------------------
    def _barrier_bytes(self) -> int:
        # Round the barrier region up to 64 bytes so channel slots start
        # cache-line aligned.
        return (4 * self.world + 63) // 64 * 64

    def _segment_size(self) -> int:
        slot = HEADER_SIZE + self.capacity
        return self._barrier_bytes() + self.world * self.world * slot

    @classmethod
    def create(cls, world: int, capacity: int = DEFAULT_CAPACITY,
               rank: int = -1) -> "RankTransport":
        """Allocate the segment (parent side). ``rank=-1``: observer only."""
        import secrets

        spec = {"name": f"repro-rt-{secrets.token_hex(6)}", "world": world,
                "capacity": capacity}
        return cls(spec, rank, _created=True)

    # ------------------------------------------------------------------
    def _record_wait(self, name: str, start: float, cat: str = "mp.wait") -> None:
        if self.timeline is not None:
            dur = _now() - start
            self.timeline.append({
                "name": name, "cat": cat,
                "ts_ms": (start - self.timeline_origin) * 1e3,
                "dur_ms": dur * 1e3,
            })

    def send(self, dst: int, arr: np.ndarray, timeout: float = DEFAULT_TIMEOUT_S) -> None:
        start = _now()
        self._channels[(self.rank, dst)].send(arr, timeout)
        self._record_wait(f"send->r{dst}", start)

    def recv(self, src: int, timeout: float = DEFAULT_TIMEOUT_S) -> np.ndarray:
        start = _now()
        out = self._channels[(src, self.rank)].recv(timeout)
        self._record_wait(f"recv<-r{src}", start)
        return out

    def exchange(self, peers: list[int], arr: np.ndarray,
                 timeout: float = DEFAULT_TIMEOUT_S) -> dict[int, np.ndarray]:
        """All-gather ``arr`` with ``peers`` (own rank excluded from sends).

        Returns ``{rank: array}`` including our own contribution — the
        caller reduces in deterministic rank order.
        """
        start = _now()
        for peer in peers:
            if peer != self.rank:
                self._channels[(self.rank, peer)].send(arr, timeout)
        out = {self.rank: arr}
        for peer in peers:
            if peer != self.rank:
                out[peer] = self._channels[(peer, self.rank)].recv(timeout)
        self._record_wait(f"exchange x{len(peers)}", start)
        return out

    def barrier_wait(self, timeout: float = DEFAULT_TIMEOUT_S) -> int:
        start = _now()
        gen = self.barrier.wait(timeout)
        self._record_wait("barrier", start)
        return gen

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the segment; the creator also unlinks it."""
        if self._shm is None:
            return
        # Drop every exported memoryview before closing, or SharedMemory
        # refuses with BufferError.
        self._channels.clear()
        self.barrier = None
        shm, self._shm = self._shm, None
        shm.close()
        if self._created:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
