"""Shared-memory rank-to-rank transport with a pickle-free header protocol.

One :class:`RankTransport` owns a single ``multiprocessing.shared_memory``
segment laid out as

- a barrier region: ``world`` aligned u32 generation slots, then
- a full mesh of ``world × world`` directed ring mailboxes (the diagonal
  is unused), each a ring of ``slots`` message slots of
  ``HEADER_SIZE + capacity`` bytes.

Each directed mailbox is a single-producer/single-consumer ring: message
``seq`` (1-based) lives in slot ``(seq - 1) % slots``.  The sender waits
for its target slot to be ``EMPTY``, writes payload then header, and
flips the slot's ``status`` to ``FULL`` last; the receiver does the
reverse.  A sender therefore only blocks once the receiver lags a full
ring behind — boundary activations and async collective issues complete
as soon as the payload is staged, which is what lets the schedule overlap
communication with compute.  Because every ordered rank pair has its own
ring and all ranks execute the same collective sequence, the protocol is
deadlock-free — and every blocking wait carries a deadline so a dead peer
surfaces as a typed :class:`~repro.parallel.backend.base.BackendError`
naming the peer rank, the mailbox, the slot and the message sequence it
was stuck on, never a hang.

Arrays cross the wire as raw bytes plus a fixed struct header (magic,
sequence number, dtype code, shape) — no pickle anywhere on the data
plane, so a corrupted message fails loudly on the magic/seq check instead
of deserializing garbage.  Payloads are copied exactly once on each side:
directly from the source array into the shm slot, and from the slot into
the freshly allocated result array, through numpy views — no intermediate
``bytes`` staging.

Waits poll with a short spin followed by exponential sleep backoff
(20 µs → 1 ms).  On an oversubscribed host the backoff matters more than
the spin: a rank stuck polling at a fixed 20 µs steals the CPU from the
peer it is waiting on.

Verification seams: the blocking ``send``/``recv``/``wait`` entry points
are thin deadline loops around single-step primitives — ``try_send`` /
``try_recv`` on the channel, ``arrive`` / ``peers_ready`` on the barrier
— so the bounded model checker (:mod:`repro.lint.model_check`) can
execute the *real* protocol code one transition at a time and explore
every interleaving.  Each commit also reports to the concurrency event
log (:mod:`repro.parallel.backend.conclog`) when one is installed; the
default is ``None`` and costs one check per operation.

Chaos seam: the blocking ``send``/``recv`` paths additionally consult the
process-wide fault plan (:mod:`repro.parallel.backend.faults`, armed via
``REPRO_FAULT_PLAN``).  A planned *drop* makes the sender discard its
staged message and resend with exponential backoff; a planned *corrupt*
flips bytes in the slot so the receiver's integrity checks
(magic/seq/CRC) fire, and the receiver re-reads after restoring the
slot.  Both are bounded by the plan's retry budget, after which the
transport raises a typed :class:`BackendError` naming the rank and
mailbox — an injected fault can slow a run down but never hang it.
Whenever a plan is installed, senders also stamp a CRC32 of the payload
into the header (``_FLAG_CRC``) so corruption is detectable end-to-end;
without a plan the flag stays clear and the wire format is byte-for-byte
the healthy-path protocol.  ``try_send``/``try_recv`` remain
plan-oblivious so the model checker explores the real protocol.
"""

from __future__ import annotations

import struct
import time
import zlib
from multiprocessing import shared_memory

import numpy as np

from repro.parallel.backend import conclog, faults
from repro.parallel.backend.base import BackendError

__all__ = ["ShmChannel", "ShmBarrier", "RankTransport", "ExchangeHandle",
           "CorruptMessage", "HEADER_SIZE", "DEFAULT_CAPACITY",
           "DEFAULT_SLOTS", "DEFAULT_TIMEOUT_S"]

#: Per-slot payload capacity (bytes). Activations in the scaled-down
#: models are tens of KB; 1 MiB leaves generous headroom.
DEFAULT_CAPACITY = 1 << 20

#: Ring depth per directed mailbox. Deep enough that a stage can issue a
#: few microbatches of boundary sends ahead of the consumer; shm pages
#: are only materialized when touched, so idle depth costs nothing.
DEFAULT_SLOTS = 4

#: Default deadline for any single blocking wait.
DEFAULT_TIMEOUT_S = 60.0

#: Brief spin before sleeping: covers the common case where the peer is
#: mid-flip on another core without burning CPU the peer may need.
_SPIN = 8

#: Sleep backoff bounds while waiting on a status flag.
_POLL_MIN_S = 20e-6
_POLL_MAX_S = 1e-3

_MAGIC = 0x5250_4F43  # "RPOC"
_EMPTY, _FULL = 0, 1

#: Full slot header: status(u32) seq(u32) magic(u32) dtype(u8) ndim(u8)
#: flags(u16) crc(u32) nbytes(u64) shape(8 × u64)
_HEADER = struct.Struct("<IIIBBHIQ8Q")
HEADER_SIZE = _HEADER.size

#: Everything after the status word. Packed separately so writing the
#: header never touches the status flag the receiver is polling.
_HEADER_BODY = struct.Struct("<IIBBHIQ8Q")

#: Header flag: the crc field holds a CRC32 of the payload bytes. Only
#: set when a fault plan is installed — the healthy path skips both the
#: checksum computation and the verify so bench medians are unaffected.
_FLAG_CRC = 1

_DTYPES: tuple[np.dtype, ...] = tuple(
    np.dtype(d) for d in ("float32", "float16", "float64", "int32", "int64", "uint8", "bool")
)
_DTYPE_CODE = {d: i for i, d in enumerate(_DTYPES)}
_MAX_NDIM = 8


def _now() -> float:
    return time.monotonic()


class CorruptMessage(BackendError):
    """A message failed an integrity check (magic, sequence, or CRC).

    Subclass of :class:`BackendError` so existing typed-error handling is
    unaffected; distinguished so the receiver's bounded re-read loop can
    retry integrity failures without masking genuine protocol errors —
    a ``CorruptMessage`` with no injected corruption pending is re-raised
    immediately.
    """


def _payload_crc32(arr: np.ndarray) -> int:
    return zlib.crc32(arr.reshape(-1).view(np.uint8)) if arr.nbytes else 0


class ShmChannel:
    """One directed single-producer/single-consumer ring mailbox.

    ``buf`` is any writable buffer (a shared-memory slice in production, a
    plain ``bytearray`` in unit tests) of at least ``slots × (HEADER_SIZE
    + capacity)`` bytes, pre-zeroed so every slot starts EMPTY.
    """

    def __init__(self, buf, capacity: int, *, src: int, dst: int,
                 slots: int = DEFAULT_SLOTS):
        if slots <= 0:
            raise ValueError("slots must be positive")
        slot_bytes = HEADER_SIZE + capacity
        if len(buf) < slots * slot_bytes:
            raise ValueError(
                f"channel buffer too small: {len(buf)} < {slots * slot_bytes}"
            )
        self._buf = buf
        self.capacity = capacity
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.src = src
        self.dst = dst
        self._send_seq = 0
        self._recv_seq = 0
        #: Optional span sink for injected-fault windows, wired by
        #: RankTransport to its timeline (cat ``mp.fault``).
        self.fault_hook = None
        self._pending_restore: tuple | None = None
        # Persistent zero-copy views: one u32 status word and one u8
        # payload window per slot.
        self._status = [
            np.frombuffer(buf, dtype=np.uint32, count=1, offset=i * slot_bytes)
            for i in range(slots)
        ]
        self._payload = [
            np.frombuffer(buf, dtype=np.uint8, count=capacity,
                          offset=i * slot_bytes + HEADER_SIZE)
            for i in range(slots)
        ]

    # -- low-level flag helpers -----------------------------------------
    def _wait_status(self, slot: int, want: int, deadline: float,
                     waiting_on: int, seq: int) -> None:
        status = self._status[slot]
        for _ in range(_SPIN):
            if status[0] == want:
                return
        delay = _POLL_MIN_S
        while status[0] != want:
            if _now() > deadline:
                verb = "drain" if want == _EMPTY else "fill"
                raise BackendError(
                    f"timed out waiting for rank {waiting_on} to {verb} "
                    f"mailbox {self.src}->{self.dst} slot {slot} "
                    f"(message seq {seq})",
                    rank=waiting_on,
                )
            time.sleep(delay)
            delay = min(delay * 2, _POLL_MAX_S)

    # -- single-step primitives -----------------------------------------
    def _check_sendable(self, arr) -> tuple[np.ndarray, int]:
        """Validate ``arr`` for the wire; returns (contiguous array, dtype code)."""
        arr = np.asarray(arr)
        if not arr.flags["C_CONTIGUOUS"]:
            # Not ascontiguousarray unconditionally: that would promote 0-d
            # arrays to 1-d and silently change the shape on the wire.
            arr = np.ascontiguousarray(arr)
        code = _DTYPE_CODE.get(arr.dtype)
        if code is None:
            raise BackendError(
                f"unsupported wire dtype {arr.dtype} (mailbox {self.src}->{self.dst})",
                rank=self.src,
            )
        if arr.ndim > _MAX_NDIM:
            raise BackendError(f"ndim {arr.ndim} exceeds header limit {_MAX_NDIM}",
                               rank=self.src)
        if arr.nbytes > self.capacity:
            raise BackendError(
                f"payload of {arr.nbytes} bytes exceeds channel capacity "
                f"{self.capacity}; raise capacity_bytes",
                rank=self.src,
            )
        return arr, code

    def _commit_send(self, arr: np.ndarray, code: int) -> None:
        """Write the next message into its (EMPTY) slot and publish it."""
        seq = self._send_seq + 1
        slot = (seq - 1) % self.slots
        if arr.nbytes:
            self._payload[slot][: arr.nbytes] = arr.reshape(-1).view(np.uint8)
        shape = tuple(arr.shape) + (0,) * (_MAX_NDIM - arr.ndim)
        flags = crc = 0
        if faults.active() is not None:
            flags = _FLAG_CRC
            crc = _payload_crc32(arr)
        _HEADER_BODY.pack_into(
            self._buf, slot * self.slot_bytes + 4, seq, _MAGIC, code,
            arr.ndim, flags, crc, arr.nbytes, *shape,
        )
        self._send_seq = seq
        log = conclog.active()
        if log is not None:
            # Stamped *before* the publishing store: the receiver can only
            # observe (and stamp) the message after the FULL flip, so in a
            # correct run t(send event) < t(recv event) always holds —
            # the wall-order invariant the DYN003 replay checks.
            log.emit("send", src=self.src, dst=self.dst, slot=slot, seq=seq)
        # Status flips to FULL only after payload and header are in place.
        self._status[slot][0] = _FULL

    def _commit_recv(self) -> np.ndarray:
        """Drain the next message from its (FULL) slot and release it."""
        seq = self._recv_seq + 1
        slot = (seq - 1) % self.slots
        (got_seq, magic, code, ndim, flags, crc, nbytes, *shape) = \
            _HEADER_BODY.unpack_from(self._buf, slot * self.slot_bytes + 4)
        if magic != _MAGIC:
            raise CorruptMessage(
                f"bad magic 0x{magic:08x} on mailbox {self.src}->{self.dst} "
                f"slot {slot}",
                rank=self.src,
            )
        if got_seq != seq:
            raise CorruptMessage(
                f"out-of-order message on channel {self.src}->{self.dst} "
                f"slot {slot}: seq {got_seq}, expected {seq}",
                rank=self.src,
            )
        if flags & _FLAG_CRC and nbytes:
            got_crc = zlib.crc32(self._payload[slot][:nbytes])
            if got_crc != crc:
                raise CorruptMessage(
                    f"payload crc mismatch on mailbox {self.src}->{self.dst} "
                    f"slot {slot} (message seq {seq}): expected 0x{crc:08x}, "
                    f"got 0x{got_crc:08x}",
                    rank=self.src,
                )
        out = np.empty(shape[:ndim], dtype=_DTYPES[code])
        if nbytes:
            out.reshape(-1).view(np.uint8)[:] = self._payload[slot][:nbytes]
        self._recv_seq = seq
        log = conclog.active()
        if log is not None:
            # Stamped before the EMPTY release for the same reason the
            # send event precedes the FULL flip: the sender's next write
            # into this slot (the slot-reuse edge) can only be stamped
            # after it observes EMPTY, i.e. after this timestamp.
            log.emit("recv", src=self.src, dst=self.dst, slot=slot, seq=seq,
                     got_seq=got_seq)
        self._status[slot][0] = _EMPTY
        return out

    def occupancy(self) -> int:
        """Number of FULL slots right now (observer-safe, racy by design).

        A pure read of the status words — no protocol state is touched, so
        any attached party (including the telemetry agent mid-step) can
        sample ring backlog without perturbing the sender/receiver.  The
        value is a snapshot: slots may flip concurrently.
        """
        return sum(int(status[0] == _FULL) for status in self._status)

    def try_send(self, arr: np.ndarray) -> bool:
        """Non-blocking send: commit if the target slot is EMPTY, else False.

        One atomic protocol transition — the verification seam the bounded
        model checker single-steps.  Validation errors (dtype, capacity)
        raise exactly like :meth:`send`.
        """
        arr, code = self._check_sendable(arr)
        slot = self._send_seq % self.slots
        if self._status[slot][0] != _EMPTY:
            return False
        self._commit_send(arr, code)
        return True

    def try_recv(self) -> np.ndarray | None:
        """Non-blocking receive: drain if the next slot is FULL, else None."""
        slot = self._recv_seq % self.slots
        if self._status[slot][0] != _FULL:
            return None
        return self._commit_recv()

    # -- fault-injection helpers ----------------------------------------
    def _note_fault(self, kind: str, slot: int, seq: int, attempt: int,
                    start: float) -> None:
        """Record one injected fault on the conclog and the timeline.

        The conclog event (kind ``fault``) lets the DYN003 replay and the
        CI artifact show exactly which faults fired; the hook span (cat
        ``mp.fault``) makes retries visible in the Chrome trace.
        """
        log = conclog.active()
        if log is not None:
            log.emit("fault", fault=kind, src=self.src, dst=self.dst,
                     slot=slot, seq=seq, attempt=attempt)
        if self.fault_hook is not None:
            self.fault_hook(f"fault:{kind} {self.src}->{self.dst} seq {seq}",
                            start)

    def _inject_corruption(self, slot: int, field: str) -> None:
        """Corrupt the slot in place, remembering how to undo it.

        Payload corruption XOR-flips the first bytes of the payload (only
        meaningful when the sender stamped a CRC — without one the damage
        would be undetectable, so we corrupt the header instead); header
        corruption overwrites the magic word.  The saved original bytes
        let the receiver's retry path restore the slot and re-read.
        """
        off = slot * self.slot_bytes
        (_, _, _, _, flags, _, nbytes, *_shape) = _HEADER_BODY.unpack_from(
            self._buf, off + 4)
        if field == "payload" and (flags & _FLAG_CRC) and nbytes:
            window = self._payload[slot][: min(8, nbytes)]
            saved = window.copy()
            window ^= 0xFF
            self._pending_restore = (slot, None, saved)
        else:
            saved_hdr = bytes(self._buf[off + 8 : off + 12])
            self._buf[off + 8 : off + 12] = b"\xde\xad\xbe\xef"
            self._pending_restore = (slot, saved_hdr, None)

    def _restore_corruption(self) -> bool:
        """Undo a pending injected corruption; False if none was pending."""
        if self._pending_restore is None:
            return False
        slot, saved_hdr, saved_payload = self._pending_restore
        self._pending_restore = None
        if saved_hdr is not None:
            off = slot * self.slot_bytes
            self._buf[off + 8 : off + 12] = saved_hdr
        if saved_payload is not None:
            self._payload[slot][: len(saved_payload)] = saved_payload
        return True

    # -- public API ------------------------------------------------------
    def send(self, arr: np.ndarray, timeout: float = DEFAULT_TIMEOUT_S) -> None:
        arr, code = self._check_sendable(arr)
        seq = self._send_seq + 1
        slot = (seq - 1) % self.slots
        deadline = _now() + timeout
        self._wait_status(slot, _EMPTY, deadline, waiting_on=self.dst, seq=seq)
        plan = faults.active()
        if plan is None:
            self._commit_send(arr, code)
            return
        attempt = 0
        while True:
            spec = plan.take_send_fault(self.src, self.dst, seq)
            if spec is None:
                self._commit_send(arr, code)
                return
            start = _now()
            if spec.kind == "delay":
                time.sleep(spec.seconds)
                self._note_fault("delay", slot, seq, attempt, start)
                self._commit_send(arr, code)
                return
            # Dropped slot: the staged message is lost before publication;
            # log the lost attempt (marked, so DYN003 pairs the *last*
            # send with the recv) and resend after a backoff.
            log = conclog.active()
            if log is not None:
                log.emit("send", src=self.src, dst=self.dst, slot=slot,
                         seq=seq, dropped=True, retry=attempt)
            self._note_fault("drop", slot, seq, attempt, start)
            if attempt + 1 >= plan.retry_budget:
                raise BackendError(
                    f"message seq {seq} on mailbox {self.src}->{self.dst} "
                    f"slot {slot} dropped {attempt + 1} times; resend budget "
                    f"({plan.retry_budget}) exhausted",
                    rank=self.src,
                )
            time.sleep(min(plan.backoff_s * 2 ** attempt, 0.05))
            attempt += 1

    def recv(self, timeout: float = DEFAULT_TIMEOUT_S) -> np.ndarray:
        seq = self._recv_seq + 1
        slot = (seq - 1) % self.slots
        deadline = _now() + timeout
        self._wait_status(slot, _FULL, deadline, waiting_on=self.src, seq=seq)
        plan = faults.active()
        attempt = 0
        while True:
            if plan is not None:
                spec = plan.take_recv_fault(self.src, self.dst, seq)
                if spec is not None:
                    self._inject_corruption(slot, spec.field)
            try:
                out = self._commit_recv()
                self._pending_restore = None
                return out
            except CorruptMessage as err:
                start = _now()
                restored = self._restore_corruption()
                # Genuine corruption (nothing was injected) is a protocol
                # violation, not a transient — surface it immediately.
                if plan is None or not restored:
                    raise
                self._note_fault("corrupt", slot, seq, attempt, start)
                if attempt + 1 >= plan.retry_budget:
                    raise BackendError(
                        f"message seq {seq} on mailbox "
                        f"{self.src}->{self.dst} still corrupt after "
                        f"{attempt + 1} re-reads (budget "
                        f"{plan.retry_budget}): {err}",
                        rank=self.src,
                    ) from err
                time.sleep(min(plan.backoff_s * 2 ** attempt, 0.05))
                attempt += 1


class ShmBarrier:
    """Generation-counter barrier over ``world`` aligned u32 slots.

    Each arrival bumps the caller's slot to the current generation and
    waits (with a deadline) until every slot has caught up.  Slots start
    at 0, so generation numbering starts at 1.
    """

    def __init__(self, buf, world: int, rank: int):
        if len(buf) < 4 * world:
            raise ValueError(f"barrier buffer too small for world={world}")
        self._buf = buf
        self.world = world
        self.rank = rank
        self._generation = 0

    # -- single-step primitives -----------------------------------------
    def arrive(self) -> int:
        """Publish this rank's arrival at the next generation."""
        self._generation += 1
        log = conclog.active()
        if log is not None:
            # Before the publishing store (see ShmChannel._commit_send):
            # a peer can only depart — and stamp its departure — after it
            # observes this slot, so arrivals always timestamp first.
            log.emit("barrier_arrive", gen=self._generation)
        struct.pack_into("<I", self._buf, 4 * self.rank, self._generation)
        return self._generation

    def peers_ready(self, generation: int) -> int | None:
        """First peer still behind ``generation``, or None when all caught up.

        Non-blocking: one scan of the generation slots.  The blocking
        :meth:`wait` and the model checker's virtual scheduler both drive
        departure decisions through this single predicate, so a mutation
        here is visible to the exhaustive interleaving search.
        """
        for peer in range(self.world):
            if struct.unpack_from("<I", self._buf, 4 * peer)[0] < generation:
                return peer
        return None

    def wait(self, timeout: float = DEFAULT_TIMEOUT_S) -> int:
        generation = self.arrive()
        deadline = _now() + timeout
        delay = _POLL_MIN_S
        while True:
            straggler = self.peers_ready(generation)
            if straggler is None:
                break
            if _now() > deadline:
                raise BackendError(
                    f"barrier generation {generation} timed out waiting "
                    f"for rank {straggler}",
                    rank=straggler,
                )
            time.sleep(delay)
            delay = min(delay * 2, _POLL_MAX_S)
        log = conclog.active()
        if log is not None:
            log.emit("barrier_depart", gen=generation)
        return generation


class ExchangeHandle:
    """In-flight all-gather: sends are staged, receives happen on wait.

    Returned by :meth:`RankTransport.exchange_issue`.  Between issue and
    :meth:`wait` the caller is free to run independent compute; the
    in-flight window is recorded on the transport timeline as an async
    span (``mp.async``) so it shows up as a ``b``/``e`` pair in the
    Chrome trace.

    ``wait`` is idempotent — a second call returns the cached gather.  An
    *uncompleted* handle whose transport has been closed (backend
    shutdown, gang teardown after a peer failure) raises a typed
    :class:`BackendError` instead of dying on an internal ``KeyError``
    against the torn-down channel map.
    """

    def __init__(self, transport: "RankTransport", peers: list[int],
                 arr: np.ndarray, label: str, issued_at: float,
                 conc_id: int | None = None):
        self._transport = transport
        self._peers = peers
        self._arr = arr
        self._label = label
        self._issued_at = issued_at
        self._conc_id = conc_id
        self._result: dict[int, np.ndarray] | None = None

    @property
    def done(self) -> bool:
        return self._result is not None

    def wait(self, timeout: float = DEFAULT_TIMEOUT_S) -> dict[int, np.ndarray]:
        log = conclog.active()
        if self._result is None:
            t = self._transport
            if t.closed:
                raise BackendError(
                    f"cannot wait on in-flight {self._label!r}: transport is "
                    "closed (backend shut down before the exchange completed)",
                    rank=t.rank,
                )
            start = _now()
            out = {t.rank: self._arr}
            for peer in self._peers:
                if peer != t.rank:
                    out[peer] = t._channels[(peer, t.rank)].recv(timeout=timeout)
            self._result = out
            t._record_wait(f"{self._label} wait", start)
            t._record_wait(self._label, self._issued_at, cat="mp.async")
            if log is not None and self._conc_id is not None:
                log.emit("handle_wait", hid=self._conc_id, htype="exchange",
                         crc=conclog.payload_crc(self._arr), dup=False)
        elif log is not None and self._conc_id is not None:
            log.emit("handle_wait", hid=self._conc_id, htype="exchange",
                     crc=conclog.payload_crc(self._arr), dup=True)
        return self._result


class RankTransport:
    """All mailboxes and the barrier for one rank, over one shm segment.

    The parent calls :meth:`create` once (allocating the segment) and
    passes ``spec`` to each worker, which attaches with
    :meth:`RankTransport(spec, rank=...)`.  Only the creator may
    :meth:`unlink`; everyone must :meth:`close`.
    """

    def __init__(self, spec: dict, rank: int, *, _created: bool = False):
        self.world = int(spec["world"])
        self.capacity = int(spec["capacity"])
        self.slots = int(spec.get("slots", DEFAULT_SLOTS))
        self.rank = rank
        self.spec = dict(spec)
        self._created = _created
        try:
            self._shm = shared_memory.SharedMemory(name=spec["name"], create=_created,
                                                   size=self._segment_size() if _created else 0)
        except FileNotFoundError:
            raise BackendError(
                f"shared-memory segment {spec['name']!r} is gone (creator closed?)",
                rank=rank,
            ) from None
        # A freshly created POSIX shm segment is zero-filled by the OS, so
        # every slot already reads EMPTY — no explicit memset (which would
        # fault in every page of a mostly idle mesh).
        buf = self._shm.buf
        self.barrier = ShmBarrier(buf[: 4 * self.world], self.world, rank)
        self._channels: dict[tuple[int, int], ShmChannel] = {}
        ring = self.slots * (HEADER_SIZE + self.capacity)
        base = self._barrier_bytes()
        for src in range(self.world):
            for dst in range(self.world):
                if src == dst:
                    continue
                if rank not in (src, dst):
                    continue
                off = base + (src * self.world + dst) * ring
                ch = ShmChannel(
                    buf[off : off + ring], self.capacity, src=src, dst=dst,
                    slots=self.slots,
                )
                ch.fault_hook = self._record_fault
                self._channels[(src, dst)] = ch
        #: Optional per-step span sink: when a list, blocking waits append
        #: ``{"name", "cat", "ts_ms", "dur_ms"}`` dicts (worker-local
        #: clock).  ``cat`` is ``mp.wait`` for blocking waits and
        #: ``mp.async`` for issue→wait in-flight windows.
        self.timeline: list[dict] | None = None
        self.timeline_origin = 0.0

    # ------------------------------------------------------------------
    def _barrier_bytes(self) -> int:
        # Round the barrier region up to 64 bytes so channel slots start
        # cache-line aligned.
        return (4 * self.world + 63) // 64 * 64

    def _segment_size(self) -> int:
        ring = self.slots * (HEADER_SIZE + self.capacity)
        return self._barrier_bytes() + self.world * self.world * ring

    @classmethod
    def create(cls, world: int, capacity: int = DEFAULT_CAPACITY,
               rank: int = -1, slots: int = DEFAULT_SLOTS) -> "RankTransport":
        """Allocate the segment (parent side). ``rank=-1``: observer only."""
        import secrets

        spec = {"name": f"repro-rt-{secrets.token_hex(6)}", "world": world,
                "capacity": capacity, "slots": slots}
        return cls(spec, rank, _created=True)

    # ------------------------------------------------------------------
    def _record_wait(self, name: str, start: float, cat: str = "mp.wait") -> None:
        if self.timeline is not None:
            dur = _now() - start
            self.timeline.append({
                "name": name, "cat": cat,
                "ts_ms": (start - self.timeline_origin) * 1e3,
                "dur_ms": dur * 1e3,
            })

    def record_span(self, name: str, start: float, cat: str = "mp.wait") -> None:
        """Public timeline hook for layers above the transport."""
        self._record_wait(name, start, cat)

    def _record_fault(self, name: str, start: float) -> None:
        """Channel fault hook: injected faults show as ``mp.fault`` spans."""
        self._record_wait(name, start, cat="mp.fault")

    def send(self, dst: int, arr: np.ndarray, timeout: float = DEFAULT_TIMEOUT_S) -> None:
        start = _now()
        self._channels[(self.rank, dst)].send(arr, timeout=timeout)
        self._record_wait(f"send->r{dst}", start)

    def recv(self, src: int, timeout: float = DEFAULT_TIMEOUT_S) -> np.ndarray:
        start = _now()
        out = self._channels[(src, self.rank)].recv(timeout=timeout)
        self._record_wait(f"recv<-r{src}", start)
        return out

    def exchange_issue(self, peers: list[int], arr: np.ndarray,
                       timeout: float = DEFAULT_TIMEOUT_S,
                       label: str | None = None) -> ExchangeHandle:
        """Stage the sends of an all-gather and return an in-flight handle.

        The sends complete as soon as the payload lands in each peer's
        ring (they only block when a ring is full), so the caller can run
        independent compute before :meth:`ExchangeHandle.wait` collects
        the peers' contributions.
        """
        issued_at = _now()
        for peer in peers:
            if peer != self.rank:
                self._channels[(self.rank, peer)].send(arr, timeout=timeout)
        log = conclog.active()
        conc_id = None
        if log is not None:
            conc_id = log.next_handle_id()
            log.emit("handle_issue", hid=conc_id, htype="exchange",
                     label=label or f"exchange x{len(peers)}",
                     crc=conclog.payload_crc(arr))
        return ExchangeHandle(self, list(peers), arr,
                              label or f"exchange x{len(peers)}", issued_at,
                              conc_id=conc_id)

    def exchange(self, peers: list[int], arr: np.ndarray,
                 timeout: float = DEFAULT_TIMEOUT_S) -> dict[int, np.ndarray]:
        """Blocking all-gather ``arr`` with ``peers`` (issue + wait).

        Returns ``{rank: array}`` including our own contribution — the
        caller reduces in deterministic rank order.
        """
        return self.exchange_issue(peers, arr, timeout=timeout).wait(timeout)

    def ring_occupancy(self) -> dict[tuple[int, int], int]:
        """FULL-slot count per directed mailbox this rank touches.

        Telemetry gauge: sustained high occupancy on an incoming ring
        means this rank is the consumer lagging its producer.  Snapshot
        semantics (see :meth:`ShmChannel.occupancy`).
        """
        return {key: ch.occupancy() for key, ch in self._channels.items()}

    def barrier_wait(self, timeout: float = DEFAULT_TIMEOUT_S) -> int:
        start = _now()
        gen = self.barrier.wait(timeout=timeout)
        self._record_wait("barrier", start)
        return gen

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has detached this transport from its segment."""
        return self._shm is None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the segment; the creator also unlinks it."""
        if self._shm is None:
            return
        # Drop every exported memoryview before closing, or SharedMemory
        # refuses with BufferError.
        self._channels.clear()
        self.barrier = None
        shm, self._shm = self._shm, None
        shm.close()
        if self._created:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
