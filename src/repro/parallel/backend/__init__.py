"""Pluggable execution backends for the model-parallel runtime.

See :mod:`repro.parallel.backend.base` for the interface and
DESIGN.md ("Execution backends") for the bitwise-equivalence strategy.
"""

from repro.parallel.backend.base import (
    BACKEND_NAMES,
    BackendError,
    ExecutionBackend,
    StepResult,
    create_backend,
)
from repro.parallel.backend.context import (
    RankContext,
    active_context,
    global_rank,
    rank_context,
    set_rank_context,
    spmd_ranks,
)
from repro.parallel.backend.conclog import (
    ConcurrencyLog,
    load_events,
    payload_crc,
)
from repro.parallel.backend.transport import (
    DEFAULT_CAPACITY,
    DEFAULT_SLOTS,
    DEFAULT_TIMEOUT_S,
    HEADER_SIZE,
    CorruptMessage,
    ExchangeHandle,
    RankTransport,
    ShmBarrier,
    ShmChannel,
)

__all__ = [
    "BACKEND_NAMES",
    "BackendError",
    "ExecutionBackend",
    "StepResult",
    "create_backend",
    "RankContext",
    "active_context",
    "global_rank",
    "rank_context",
    "set_rank_context",
    "spmd_ranks",
    "ConcurrencyLog",
    "CorruptMessage",
    "load_events",
    "payload_crc",
    "DEFAULT_CAPACITY",
    "DEFAULT_SLOTS",
    "DEFAULT_TIMEOUT_S",
    "ExchangeHandle",
    "HEADER_SIZE",
    "RankTransport",
    "ShmBarrier",
    "ShmChannel",
]
