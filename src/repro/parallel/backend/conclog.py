"""Concurrency event log: the structured side channel behind DYN003.

A :class:`ConcurrencyLog` records every synchronization-relevant action a
rank takes — ring-mailbox sends/recvs (:class:`ShmChannel`), barrier
arrivals/departures (:class:`ShmBarrier`), and the issue/wait lifecycle of
:class:`~repro.parallel.collectives.CommHandle` /
:class:`~repro.parallel.backend.transport.ExchangeHandle` — as one JSON
object per event.  The offline happens-before checker
(:mod:`repro.lint.race_check`) replays these logs, reconstructs vector
clocks from the protocol edges, and flags slot-reuse races, stale barrier
generations, buffers mutated inside an issue→wait window, and handles
that were issued but never waited.

Design rules (the same ones :class:`~repro.obs.profile.OpProfiler`
follows, DESIGN decision #7):

- **Side channel, bitwise-neutral.**  Nothing on the data plane changes:
  no extra bytes on the wire, no reordered data operations.  Events that
  *publish* state to peers (send, barrier arrival) are stamped
  immediately before the single store that makes them visible, and a
  recv is stamped before its slot release — so in a correct run the
  observer's timestamp is always later than the publisher's, which is
  exactly the wall-order invariant the replay checks.
- **Off by default.**  With no log installed every instrumentation point
  costs one module-global load plus an ``is None`` check.  The mp worker
  installs a log only when ``REPRO_CONC_LOG`` names a directory; tests
  install one explicitly via :func:`install`.
- **Cheap online, smart offline.**  The online side emits only
  ``(rank, local index, monotonic timestamp)`` plus protocol identifiers
  (mailbox, slot, seq, generation, handle id); true vector clocks are
  computed during replay from program order + matched protocol edges, so
  the hot path never pays for clock piggybacking.  ``time.monotonic`` is
  CLOCK_MONOTONIC on Linux — one system-wide clock — so cross-rank
  timestamps are comparable and the replay can check that every claimed
  happens-before edge is consistent with observed wall order.

Event kinds and their fields (all events carry ``rank``/``idx``/``t``):

====================  =====================================================
``meta``              ``world`` — first line of every per-rank log file
``send``              ``src dst slot seq`` — ring-slot commit (status→FULL)
``recv``              ``src dst slot seq got_seq`` — drain (status→EMPTY)
``barrier_arrive``    ``gen`` — own generation slot bumped
``barrier_depart``    ``gen`` — all peers observed at ``gen``
``handle_issue``      ``hid htype label crc`` — collective issued
``handle_wait``       ``hid htype crc dup`` — handle completed (``dup``:
                      result was already cached — an idempotent re-wait)
``step_end``          ``step`` — one training step's frame boundary
====================  =====================================================
"""

from __future__ import annotations

import json
import os
import time
import zlib
from pathlib import Path

__all__ = [
    "ConcurrencyLog",
    "ENV_VAR",
    "active",
    "install",
    "uninstall",
    "maybe_install_from_env",
    "payload_crc",
    "load_events",
]

#: Directory for per-rank log files; presence turns instrumentation on.
ENV_VAR = "REPRO_CONC_LOG"

_ACTIVE: "ConcurrencyLog | None" = None


def active() -> "ConcurrencyLog | None":
    """The installed log, or ``None`` (the common, zero-cost case)."""
    return _ACTIVE


def install(log: "ConcurrencyLog") -> "ConcurrencyLog":
    """Make ``log`` the process-wide event sink and return it."""
    global _ACTIVE
    _ACTIVE = log
    return log


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def maybe_install_from_env(rank: int, world: int) -> "ConcurrencyLog | None":
    """Install a log writing to ``$REPRO_CONC_LOG/conc-rank{rank}.jsonl``.

    Returns ``None`` (and installs nothing) when the variable is unset —
    the production default.  The mp worker calls this once at startup, so
    enabling race detection is purely an environment decision; no code
    path changes.
    """
    outdir = os.environ.get(ENV_VAR)
    if not outdir:
        return None
    path = Path(outdir) / f"conc-rank{rank}.jsonl"
    path.parent.mkdir(parents=True, exist_ok=True)
    return install(ConcurrencyLog(rank=rank, world=world, path=path))


def payload_crc(data) -> int:
    """Stable checksum of an array's bytes (order-sensitive, dtype-blind).

    Used to detect a buffer mutated between a handle's issue and its wait:
    equal content ⇒ equal crc, so a mismatch proves a write landed inside
    the in-flight window.
    """
    import numpy as np

    return zlib.crc32(np.ascontiguousarray(data).tobytes())


class ConcurrencyLog:
    """Per-rank append-only event buffer with optional JSONL persistence.

    ``emit`` stamps each event with this rank, a dense per-rank index
    (the program-order clock) and a monotonic timestamp.  ``flush``
    appends events accumulated since the previous flush to ``path`` —
    the worker flushes after every step so a crashed run still leaves a
    replayable prefix on disk.
    """

    def __init__(self, rank: int, world: int, path: str | Path | None = None):
        self.rank = rank
        self.world = world
        self.path = Path(path) if path is not None else None
        self.events: list[dict] = []
        self._flushed = 0
        self._next_hid = 0
        self.emit("meta", world=world)

    def emit(self, kind: str, **fields) -> dict:
        event = {"kind": kind, "rank": self.rank, "idx": len(self.events),
                 "t": time.monotonic(), **fields}
        self.events.append(event)
        return event

    def next_handle_id(self) -> int:
        """A per-rank-unique handle id (``id()`` recycles after GC)."""
        self._next_hid += 1
        return self._next_hid

    def flush(self) -> None:
        """Append unwritten events to ``path`` (no-op when path is None)."""
        if self.path is None or self._flushed >= len(self.events):
            return
        with open(self.path, "a", encoding="utf-8") as fh:
            for event in self.events[self._flushed:]:
                fh.write(json.dumps(event) + "\n")
        self._flushed = len(self.events)


def load_events(path: str | Path) -> list[dict]:
    """Load a recorded run: one ``conc-rank*.jsonl`` file or a directory.

    Returns the concatenation of every rank's events (per-rank order is
    preserved; cross-rank order is irrelevant — the checker rebuilds it
    from the happens-before graph).  Raises ``FileNotFoundError`` for a
    missing path and ``ValueError`` for a directory with no log files,
    so a CI job pointed at the wrong artifact fails loudly.
    """
    path = Path(path)
    if path.is_dir():
        files = sorted(path.glob("conc-rank*.jsonl"))
        if not files:
            raise ValueError(f"no conc-rank*.jsonl files under {path}")
    elif path.is_file():
        files = [path]
    else:
        raise FileNotFoundError(f"no such concurrency log: {path}")
    events: list[dict] = []
    for f in files:
        with open(f, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    return events
