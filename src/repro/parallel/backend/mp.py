"""Multiprocess execution backend: one spawned worker per logical rank.

The parent keeps the canonical model and optimizer; workers hold replicas
(same seed ⇒ identical init) and compute their rank's slice of each step.
Per step the parent broadcasts the batch, collects per-rank losses, grads
and comm events, merges them into the oracle's view (see
:meth:`MpBackend._merge_grads`), and — after the caller's optimizer step —
pushes the updated weights back out.

Failure model: every wait on a worker carries a deadline and checks the
process is still alive, so a crashed or wedged rank surfaces as a typed
:class:`BackendError` naming the rank — never a hang.  Any failure tears
the whole gang down (``close()``) before the error propagates; a backend
is not reusable after an error.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_mod
import re
import time
from multiprocessing import connection as mp_connection

import numpy as np

from repro.parallel.backend.base import BackendError, ExecutionBackend, StepResult
from repro.parallel.backend.context import global_rank
from repro.parallel.backend.transport import (
    DEFAULT_CAPACITY,
    DEFAULT_TIMEOUT_S,
    RankTransport,
)
from repro.parallel.backend.worker import _worker_main
from repro.parallel.collectives import CommTracker, dp_all_reduce
from repro.parallel.grad_sync import build_dp_grad_compressor

__all__ = ["MpBackend"]

_RANK_SUFFIX = re.compile(r"_rank(\d+)$")
_LAYER_OWNER = re.compile(r"(?:^|\.)layers\.(\d+)\.")
_COMP_LAYER = re.compile(r"(?:^|\.)compressor\.layer(\d+)\.")
_COMP_BOUNDARY = re.compile(r"(?:^|\.)compressor\.boundary(\d+)\.")
_STAGE0_PARAMS = ("token_embedding", "position_embedding", "embed_ln")


class MpBackend(ExecutionBackend):
    """Spawn-context process gang executing the model's DP×PP×SP×TP grid."""

    name = "mp"

    def __init__(self, model, *, capacity_bytes: int = DEFAULT_CAPACITY,
                 timeout: float = DEFAULT_TIMEOUT_S,
                 collect_timelines: bool = False,
                 overlap: bool = True,
                 shutdown_timeout: float = 5.0):
        # Teardown state first: if anything below raises (bad config, spawn
        # failure), __del__ -> close() must find a coherent object instead
        # of masking the root cause with an AttributeError.
        self._closed = False
        self._procs: list = []
        self._conns: list = []
        self.transport = None
        self.shutdown_timeout = shutdown_timeout
        self._telemetry_queue = None
        self._telemetry_backlog: list[dict] = []

        cfg = model.config
        if cfg.model.dropout != 0.0:
            raise BackendError(
                "mp backend requires dropout=0.0: each worker draws from its "
                "own RNG, so dropout masks cannot match the serial oracle"
            )
        self.model = model
        self.tp = cfg.tp
        self.pp = cfg.pp
        self.dp = getattr(cfg, "dp", 1)
        self.sp = getattr(cfg, "sp", 1)
        self.world = self.dp * cfg.pp * self.sp * cfg.tp
        self._dp_compressor = (build_dp_grad_compressor(cfg)
                               if self.dp > 1 else None)
        self.timeout = timeout
        self.collect_timelines = collect_timelines
        self.overlap = overlap
        self._partition = model.backbone.partition

        # The parent attaches as an observer (rank=-1): it owns the segment
        # lifetime but opens no channels.
        self.transport = RankTransport.create(self.world, capacity_bytes)
        try:
            self._spawn_workers(model, timeout)
            self._collect(range(self.world))  # one ("ready", rank) each
            self.sync_weights(model)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    def _spawn_workers(self, model, timeout: float) -> None:
        spawn = multiprocessing.get_context("spawn")
        # Telemetry side channel: one queue shared by all ranks, created
        # only when REPRO_TELEMETRY is armed so the healthy path never
        # pays for a feeder thread.  Workers re-check the env var (it is
        # inherited through the spawn context) before building an agent.
        from repro.obs.telemetry.agent import enabled as telemetry_enabled
        from repro.obs.telemetry.agent import telemetry_queue

        if telemetry_enabled():
            self._telemetry_queue = telemetry_queue(spawn)
        kwargs = {}
        if hasattr(model, "regression"):
            kwargs["regression"] = model.regression
        model_spec = {"cls": type(model), "config": model.config, "kwargs": kwargs}
        # Spawn order is global-rank order (dp-major, tp-minor), so
        # ``self._conns[rank]`` indexes by rank as before.
        for dp_rank in range(self.dp):
            for stage in range(self.pp):
                for sp_rank in range(self.sp):
                    for tp_rank in range(self.tp):
                        parent_conn, child_conn = spawn.Pipe()
                        rank_info = {"tp": self.tp, "pp": self.pp,
                                     "tp_rank": tp_rank, "stage": stage,
                                     "dp": self.dp, "sp": self.sp,
                                     "dp_rank": dp_rank, "sp_rank": sp_rank,
                                     "overlap": self.overlap}
                        rank = global_rank(stage, tp_rank, self.tp,
                                           pp=self.pp, sp=self.sp,
                                           sp_rank=sp_rank, dp_rank=dp_rank)
                        proc = spawn.Process(
                            target=_worker_main,
                            args=(child_conn, self.transport.spec, rank_info,
                                  model_spec, timeout, self._telemetry_queue),
                            daemon=True,
                            name=f"repro-rank{rank}",
                        )
                        proc.start()
                        child_conn.close()
                        self._procs.append(proc)
                        self._conns.append(parent_conn)

    def _collect(self, ranks) -> dict[int, tuple]:
        """One message from each rank, or a BackendError naming the culprit.

        Blocks in :func:`multiprocessing.connection.wait` so a reply (or a
        worker's death — its pipe end hits EOF) wakes the parent
        immediately instead of on the next fixed-interval poll; on a
        single-core host every milliseconds the parent sleeps past a ready
        reply is added straight to the step's critical path.
        """
        pending = set(ranks)
        results: dict[int, tuple] = {}
        deadline = time.monotonic() + self.timeout
        while pending:
            # Re-derive the map each pass: pending shrinks as replies land.
            conn_of = {self._conns[r]: r for r in pending}
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                culprit = sorted(pending)[0]
                self.close()
                raise BackendError(
                    f"ranks {sorted(pending)} sent no reply within "
                    f"{self.timeout:.0f}s",
                    rank=culprit,
                )
            ready = mp_connection.wait(list(conn_of), timeout=remaining)
            for conn in ready:
                rank = conn_of[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # Brief join so the exit code is harvested: EOF on the
                    # pipe usually races the process's actual death.
                    self._procs[rank].join(0.5)
                    exitcode = self._procs[rank].exitcode
                    self.close()
                    detail = (f" (worker died, exit code {exitcode})"
                              if exitcode is not None else "")
                    raise BackendError(f"connection to worker lost{detail}",
                                       rank=rank)
                if msg[0] == "error":
                    tb = msg[2]
                    self.close()
                    raise BackendError(f"worker failed:\n{tb}", rank=rank)
                results[rank] = msg
                pending.discard(rank)
        return results

    def _ensure_open(self) -> None:
        if self._closed:
            raise BackendError("backend is closed")

    def _send_all(self, msg: tuple) -> None:
        # Pickle once, fan the bytes out: the step broadcast and the
        # weights sync are the two largest parent→worker messages, and
        # serializing them per worker put world-1 redundant pickle passes
        # on the step's critical path.  ``send_bytes`` pairs with the
        # workers' ordinary ``recv`` (which unpickles the frame).
        buf = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        for rank, conn in enumerate(self._conns):
            try:
                conn.send_bytes(buf)
            except (BrokenPipeError, OSError):
                self.close()
                raise BackendError("worker pipe is broken (process died?)",
                                   rank=rank)

    # ------------------------------------------------------------------
    def train_step(self, input_ids, labels, attention_mask=None) -> StepResult:
        self._ensure_open()
        if self.dp > 1 and np.asarray(input_ids).shape[0] % self.dp != 0:
            raise ValueError(
                f"batch size {np.asarray(input_ids).shape[0]} not divisible "
                f"by dp={self.dp}")
        self._send_all(("step", input_ids, labels, attention_mask,
                        self.collect_timelines))
        replies = self._collect(range(self.world))

        # replies[rank] = ("result", rank, loss, grads, events, timeline)
        # Each dp gang's last stage reports its shard loss; the step loss
        # is the gang-order mean, matching the oracle's replica loop.
        losses: list[float] = []
        for d in range(self.dp):
            loss_rank = global_rank(self.pp - 1, 0, self.tp, pp=self.pp,
                                    sp=self.sp, dp_rank=d)
            gang_loss = replies[loss_rank][2]
            if gang_loss is None:
                raise BackendError("last pipeline stage reported no loss",
                                   rank=loss_rank)
            losses.append(gang_loss)
        loss = sum(losses[1:], losses[0]) / self.dp

        per_rank = {r: replies[r][3] for r in replies}
        events: list = []
        for rank in range(self.world):
            events.extend(replies[rank][4])
        if self.dp == 1:
            grads = self._merge_grads(per_rank)
        else:
            # Backend-layer gradient sync point: the same dp_all_reduce
            # the inproc oracle runs, over the per-gang merged gradients.
            replica_grads = [self._merge_grads(per_rank, dp_rank=d)
                             for d in range(self.dp)]
            dp_tracker = CommTracker()
            grads = dp_all_reduce(replica_grads, self._dp_compressor,
                                  dp_tracker)
            events.extend(dp_tracker.events)
        timelines = {}
        if self.collect_timelines:
            timelines = {rank: replies[rank][5] for rank in range(self.world)}

        # Mirror the merged events onto the parent model's tracker so
        # `model.tracker.summary()` reads the same whichever backend ran.
        self.model.tracker.reset()
        self.model.tracker.events.extend(events)
        return StepResult(loss=float(loss), grads=grads, events=events,
                          timelines=timelines)

    # ------------------------------------------------------------------
    def _owner_stage(self, name: str) -> int:
        """Pipeline stage whose workers computed this parameter's gradient."""
        m = _LAYER_OWNER.search(name)
        if m:
            return self._partition.stage_of(int(m.group(1)))
        m = _COMP_LAYER.search(name)
        if m:
            return self._partition.stage_of(int(m.group(1)))
        m = _COMP_BOUNDARY.search(name)
        if m:
            return int(m.group(1))  # boundary b's codec runs on sender stage b
        if any(f".{p}." in name or name.startswith(f"backbone.{p}.")
               for p in _STAGE0_PARAMS):
            return 0
        return self.pp - 1  # classifier / MLM heads live after the backbone

    def _merge_grads(self, per_rank: dict[int, dict[str, np.ndarray]],
                     dp_rank: int = 0) -> dict[str, np.ndarray]:
        """Select worker gradients into one gang's oracle gradient set.

        - ``*_rank{r}`` shard parameters: exactly one worker (owner stage,
          tp rank r) touched them — take its gradient.
        - Everything else — including learnable codec parameters, whose
          workers replay the oracle's full encode-sum-decode graph over
          exchanged partials — is replicated: take the owner stage's tp
          rank 0 copy (sp rank 0 plane; the SP grad sync made the sp
          replicas identical).
        """
        merged: dict[str, np.ndarray] = {}
        for name, _ in self.model.named_parameters():
            stage = self._owner_stage(name)
            m = _RANK_SUFFIX.search(name)
            tp_rank = int(m.group(1)) if m else 0
            g = per_rank[global_rank(stage, tp_rank, self.tp, pp=self.pp,
                                     sp=self.sp, dp_rank=dp_rank)].get(name)
            if g is not None:
                merged[name] = g
        return merged

    def apply_grads(self, model, result: StepResult) -> None:
        named = dict(model.named_parameters())
        for name, g in result.grads.items():
            named[name].grad = np.asarray(g)

    def sync_weights(self, model) -> None:
        self._ensure_open()
        self._send_all(("weights", model.state_dict()))

    # ------------------------------------------------------------------
    @staticmethod
    def _merge_nested(dst: dict, src: dict) -> dict:
        """Recursive dict union; leaves overwrite.

        Safe for runtime state because every compressor site is either
        owned by exactly one rank or replicated bitwise across tp ranks
        (the replicas replay the same deterministic codec sequence), so
        colliding leaves are equal by construction.
        """
        for key, value in src.items():
            if (key in dst and isinstance(dst[key], dict)
                    and isinstance(value, dict)):
                MpBackend._merge_nested(dst[key], value)
            else:
                dst[key] = value
        return dst

    def runtime_state(self) -> dict:
        """Union of every worker's compressor runtime state (EF, RNG).

        With ``dp > 1`` the gangs' compressor states diverge (each gang
        advances on its own batch shard), so the union is namespaced per
        gang — ``{"dp0": ..., "dp1": ..., "dp_grad": ...}`` — with the
        parent-side gradient codec's state alongside.
        """
        self._ensure_open()
        self._send_all(("runtime_state",))
        replies = self._collect(range(self.world))
        merged: dict = {}
        gang = self.pp * self.sp * self.tp
        for rank in range(self.world):
            if self.dp == 1:
                self._merge_nested(merged, replies[rank][2])
            else:
                sub = merged.setdefault(f"dp{rank // gang}", {})
                self._merge_nested(sub, replies[rank][2])
        if self._dp_compressor is not None:
            grad_state = self._dp_compressor.runtime_state()
            if grad_state:
                merged["dp_grad"] = grad_state
        return merged

    def load_runtime_state(self, state: dict) -> None:
        """Broadcast checkpointed compressor state to every worker.

        No reply needed: the control pipe is FIFO, so the next ``step``
        command is guaranteed to observe the restored state.  Each worker
        picks its own ``dp{d}`` slice out of a namespaced dict; the
        parent restores the gradient codec's slice here.
        """
        self._ensure_open()
        if self._dp_compressor is not None and "dp_grad" in state:
            self._dp_compressor.load_runtime_state(state["dp_grad"])
        self._send_all(("load_runtime_state", state))

    # ------------------------------------------------------------------
    def poll_telemetry(self) -> list[dict]:
        """Non-blocking drain of the telemetry side channel.

        Returns every event published by the rank agents since the last
        poll, in queue order.  Empty when telemetry is off.  Queue
        delivery runs through per-worker feeder threads, so events for a
        completed step may trail its result by a moment — end-of-run
        consumers should poll with a grace period (see
        :meth:`repro.obs.telemetry.collector.Collector.drain`).
        """
        events = list(self._telemetry_backlog)
        self._telemetry_backlog.clear()
        q = self._telemetry_queue
        while q is not None:
            try:
                events.extend(q.get_nowait())
            except (queue_mod.Empty, OSError, ValueError):
                break
        return events

    def _drain_telemetry_to_backlog(self) -> None:
        """Preserve in-flight telemetry across teardown.

        Called from :meth:`close` after the workers have exited (their
        feeder threads flush at process exit), so anything still in the
        pipe is moved to a parent-side list and remains observable via
        :meth:`poll_telemetry` after the queue itself is gone.
        """
        q = self._telemetry_queue
        if q is None:
            return
        deadline = time.monotonic() + 0.25
        while time.monotonic() < deadline:
            try:
                self._telemetry_backlog.extend(q.get_nowait())
                deadline = time.monotonic() + 0.25
            except (queue_mod.Empty, OSError, ValueError):
                time.sleep(0.005)
        self._telemetry_queue = None
        try:
            q.close()
        except (OSError, ValueError):
            pass

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear the gang down; bounded, idempotent, leak-free.

        Total shutdown time is bounded by ``shutdown_timeout`` plus one
        shared 1s grace for terminated processes: the join deadline is
        *global* (a process past it gets ``join(0.0)``, not a fresh
        per-process grant), and stuck workers are terminated, then killed
        if SIGTERM doesn't take.  The shm segment is closed+unlinked in a
        ``finally`` so even a worker that had to be terminated while
        attached never leaks the segment (the kernel frees it once the
        killed process's mapping goes away).
        """
        if getattr(self, "_closed", True):
            return
        self._closed = True
        try:
            for conn in self._conns:
                try:
                    conn.send(("shutdown",))
                except (OSError, BrokenPipeError):
                    pass
            deadline = time.monotonic() + self.shutdown_timeout
            for proc in self._procs:
                proc.join(max(0.0, deadline - time.monotonic()))
            stuck = [p for p in self._procs if p.is_alive()]
            for proc in stuck:
                proc.terminate()
            kill_deadline = time.monotonic() + 1.0
            for proc in stuck:
                proc.join(max(0.0, kill_deadline - time.monotonic()))
                if proc.is_alive():
                    proc.kill()
                    proc.join(1.0)
            for conn in self._conns:
                try:
                    conn.close()
                except OSError:
                    pass
            self._drain_telemetry_to_backlog()
        finally:
            transport = getattr(self, "transport", None)
            if transport is not None:
                transport.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
