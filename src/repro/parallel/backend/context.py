"""Process-global SPMD rank context consulted by the runtime's hot loops.

The in-process runtime materializes *every* logical rank: shard loops run
``for r in range(tp)`` and collectives receive the full list of partials.
A worker process of the mp backend executes the *same* model code but owns
exactly one (stage, tp_rank) coordinate — it activates a
:class:`RankContext` and the loops collapse to its own rank via
:func:`spmd_ranks`, while the collectives switch from summing lists to
exchanging arrays over the context's transport.

The context is deliberately a plain module global (not a thread-local):
a worker process runs one rank, full stop, and the inproc backend never
sets it — so the oracle path stays literally the pre-backend code.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

__all__ = ["RankContext", "rank_context", "set_rank_context", "active_context",
           "spmd_ranks", "global_rank"]


@dataclass
class RankContext:
    """One worker's coordinates in the TP×PP grid plus its transport."""

    tp: int
    pp: int
    tp_rank: int
    stage: int
    transport: object | None = None  # RankTransport; None in transport-less tests
    rng: np.random.Generator | None = None  # per-rank stream, seeded (seed, rank)
    timeout: float = 60.0
    #: Issue/wait overlap for collectives.  ``False`` forces every
    #: :class:`~repro.parallel.collectives.CommHandle` to complete at issue
    #: time — the blocking reference path; results are bitwise-identical
    #: either way (the overlap stress test asserts exactly that).
    overlap: bool = True

    def __post_init__(self):
        if not (0 <= self.tp_rank < self.tp):
            raise ValueError(f"tp_rank {self.tp_rank} out of range for tp={self.tp}")
        if not (0 <= self.stage < self.pp):
            raise ValueError(f"stage {self.stage} out of range for pp={self.pp}")

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Global rank, pp-major: ``stage * tp + tp_rank``."""
        return global_rank(self.stage, self.tp_rank, self.tp)

    @property
    def records(self) -> bool:
        """Whether this rank is its stage's designated event recorder.

        The inproc oracle logs exactly one :class:`CommEvent` per logical
        collective; under SPMD every tp peer executes the site, so only
        tp rank 0 records — the merged event multiset then matches the
        oracle event-for-event.
        """
        return self.tp_rank == 0

    def tp_peers(self) -> list[int]:
        """Global ranks of this stage's TP group, in tp-rank order."""
        return [global_rank(self.stage, t, self.tp) for t in range(self.tp)]

    def peer(self, stage: int) -> int:
        """Global rank of the same tp_rank at another pipeline stage."""
        return global_rank(stage, self.tp_rank, self.tp)


def global_rank(stage: int, tp_rank: int, tp: int) -> int:
    return stage * tp + tp_rank


_CTX: RankContext | None = None


def rank_context() -> RankContext | None:
    """The active context, or ``None`` in the in-process oracle."""
    return _CTX


def set_rank_context(ctx: RankContext | None) -> None:
    global _CTX
    _CTX = ctx


@contextlib.contextmanager
def active_context(ctx: RankContext):
    """Scope ``ctx`` as the process's rank context (tests, worker steps)."""
    prev = rank_context()
    set_rank_context(ctx)
    try:
        yield ctx
    finally:
        set_rank_context(prev)


def spmd_ranks(tp: int) -> tuple[int, ...]:
    """The tp ranks *this* process materializes: all of them in-process,
    exactly one inside an mp worker."""
    ctx = _CTX
    if ctx is None or tp <= 1:
        return tuple(range(tp))
    return (ctx.tp_rank,)
