"""Process-global SPMD rank context consulted by the runtime's hot loops.

The in-process runtime materializes *every* logical rank: shard loops run
``for r in range(tp)`` and collectives receive the full list of partials.
A worker process of the mp backend executes the *same* model code but owns
exactly one (dp_rank, stage, sp_rank, tp_rank) coordinate — it activates a
:class:`RankContext` and the loops collapse to its own rank via
:func:`spmd_ranks` / :func:`spmd_sp_ranks`, while the collectives switch
from summing lists to exchanging arrays over the context's transport.

The context is deliberately a plain module global (not a thread-local):
a worker process runs one rank, full stop, and the inproc backend never
sets it — so the oracle path stays literally the pre-backend code.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

__all__ = ["RankContext", "rank_context", "set_rank_context", "active_context",
           "spmd_ranks", "spmd_sp_ranks", "global_rank"]


@dataclass
class RankContext:
    """One worker's coordinates in the DP×PP×SP×TP grid plus its transport."""

    tp: int
    pp: int
    tp_rank: int
    stage: int
    transport: object | None = None  # RankTransport; None in transport-less tests
    rng: np.random.Generator | None = None  # per-rank stream, seeded (seed, rank)
    timeout: float = 60.0
    #: Issue/wait overlap for collectives.  ``False`` forces every
    #: :class:`~repro.parallel.collectives.CommHandle` to complete at issue
    #: time — the blocking reference path; results are bitwise-identical
    #: either way (the overlap stress test asserts exactly that).
    overlap: bool = True
    #: Data/sequence axes, both defaulting to the degenerate 1×1 so every
    #: pre-grid construction site keeps its meaning: with ``dp == sp == 1``
    #: the rank formula collapses to the historical ``stage*tp + tp_rank``.
    dp: int = 1
    sp: int = 1
    dp_rank: int = 0
    sp_rank: int = 0

    def __post_init__(self):
        if not (0 <= self.tp_rank < self.tp):
            raise ValueError(f"tp_rank {self.tp_rank} out of range for tp={self.tp}")
        if not (0 <= self.stage < self.pp):
            raise ValueError(f"stage {self.stage} out of range for pp={self.pp}")
        if not (0 <= self.dp_rank < self.dp):
            raise ValueError(f"dp_rank {self.dp_rank} out of range for dp={self.dp}")
        if not (0 <= self.sp_rank < self.sp):
            raise ValueError(f"sp_rank {self.sp_rank} out of range for sp={self.sp}")

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Global rank, dp-major / tp-minor:
        ``((dp_rank*pp + stage)*sp + sp_rank)*tp + tp_rank``."""
        return global_rank(self.stage, self.tp_rank, self.tp, pp=self.pp,
                           sp=self.sp, sp_rank=self.sp_rank,
                           dp_rank=self.dp_rank)

    @property
    def records(self) -> bool:
        """Whether this rank is its stage's designated event recorder.

        The inproc oracle logs exactly one :class:`CommEvent` per logical
        collective; under SPMD every tp/sp peer executes the site, so only
        the (tp_rank 0, sp_rank 0) corner records — the merged event
        multiset then matches the oracle event-for-event.  ``dp_rank`` is
        deliberately *not* gated: each data-parallel gang runs its own
        batch shard, so each gang contributes its own copy of the stream.
        """
        return self.tp_rank == 0 and self.sp_rank == 0

    def tp_peers(self) -> list[int]:
        """Global ranks of this stage's TP group, in tp-rank order."""
        return [global_rank(self.stage, t, self.tp, pp=self.pp, sp=self.sp,
                            sp_rank=self.sp_rank, dp_rank=self.dp_rank)
                for t in range(self.tp)]

    def sp_peers(self) -> list[int]:
        """Global ranks of this stage's SP ring, in sp-rank order."""
        return [global_rank(self.stage, self.tp_rank, self.tp, pp=self.pp,
                            sp=self.sp, sp_rank=s, dp_rank=self.dp_rank)
                for s in range(self.sp)]

    def peer(self, stage: int) -> int:
        """Global rank of the same (dp, sp, tp) coordinate at another stage."""
        return global_rank(stage, self.tp_rank, self.tp, pp=self.pp,
                           sp=self.sp, sp_rank=self.sp_rank,
                           dp_rank=self.dp_rank)


def global_rank(stage: int, tp_rank: int, tp: int, *, pp: int = 1,
                sp: int = 1, sp_rank: int = 0, dp_rank: int = 0) -> int:
    """Rank in the dp-major/tp-minor grid.

    The keyword axes default to the degenerate grid, so two-axis callers
    (``global_rank(stage, tp_rank, tp)``) keep the historical
    ``stage*tp + tp_rank`` numbering bitwise.
    """
    return ((dp_rank * pp + stage) * sp + sp_rank) * tp + tp_rank


_CTX: RankContext | None = None


def rank_context() -> RankContext | None:
    """The active context, or ``None`` in the in-process oracle."""
    return _CTX


def set_rank_context(ctx: RankContext | None) -> None:
    global _CTX
    _CTX = ctx


@contextlib.contextmanager
def active_context(ctx: RankContext):
    """Scope ``ctx`` as the process's rank context (tests, worker steps)."""
    prev = rank_context()
    set_rank_context(ctx)
    try:
        yield ctx
    finally:
        set_rank_context(prev)


def spmd_ranks(tp: int) -> tuple[int, ...]:
    """The tp ranks *this* process materializes: all of them in-process,
    exactly one inside an mp worker."""
    ctx = _CTX
    if ctx is None or tp <= 1:
        return tuple(range(tp))
    return (ctx.tp_rank,)


def spmd_sp_ranks(sp: int) -> tuple[int, ...]:
    """The sp ranks *this* process materializes (mirror of :func:`spmd_ranks`)."""
    ctx = _CTX
    if ctx is None or sp <= 1:
        return tuple(range(sp))
    return (ctx.sp_rank,)
