"""Entry point of one mp-backend worker process (one logical rank).

A worker owns a single (stage, tp_rank) coordinate.  It rebuilds the full
model replica from the parent's config — same seed, therefore identical
initial weights — then activates a :class:`RankContext` so shard loops and
collectives collapse to its own rank.  Per step it executes exactly the
slice of the oracle's computation its rank would own:

- stage 0 embeds the batch; later stages receive the boundary activation
  over shared memory and turn it into a gradient leaf;
- the stage's transformer layers run with the worker's tp shard;
- the last stage computes the loss and starts backward; earlier stages
  receive the relayed boundary gradient and resume their local graph;
- stages > 0 relay their input-leaf gradient back to the previous stage.

Control plane (weights, batches, results) is an ordinary
``multiprocessing.Pipe`` — pickle is fine there; the data plane (activations,
gradients, barrier) is exclusively the shared-memory transport.
"""

from __future__ import annotations

import os
import time
import traceback

import numpy as np

import re

from repro.parallel.backend import conclog, faults
from repro.parallel.backend.context import RankContext, set_rank_context
from repro.parallel.backend.transport import RankTransport
from repro.tensor import Tensor

_RANK_SUFFIX = re.compile(r"_rank(\d+)$")


def _parent_reads(name: str, tp_rank: int, sp_rank: int = 0) -> bool:
    """Whether the parent's gradient merge reads ``name`` from this rank.

    After the SP grad sync every sp rank holds identical gradients, so the
    merge only consults the ``sp_rank == 0`` plane of each gang.
    """
    if sp_rank != 0:
        return False
    m = _RANK_SUFFIX.search(name)
    if m is not None:
        return int(m.group(1)) == tp_rank
    return tp_rank == 0


def _disable_shm_tracking() -> None:
    """Stop this process's resource tracker from adopting shm segments.

    The parent owns (and unlinks) every segment.  Python 3.10–3.12 have no
    ``track=False`` on ``SharedMemory``, and a spawned child's resource
    tracker would otherwise unlink the parent's segment at child exit,
    breaking every sibling still attached.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name, rtype):
        if rtype == "shared_memory":
            return
        original(name, rtype)

    resource_tracker.register = register


def _span(timeline: list[dict] | None, origin: float, name: str,
          start: float) -> None:
    if timeline is not None:
        now = time.monotonic()
        timeline.append({
            "name": name, "cat": "mp.phase",
            "ts_ms": (start - origin) * 1e3,
            "dur_ms": (now - start) * 1e3,
        })


def _spmd_step(model, ctx: RankContext, input_ids, labels, attention_mask,
               collect_timeline: bool):
    """One training step of this rank's slice; returns (loss, grads, events,
    timeline).

    The step executes the pipeline schedule's op list verbatim
    (:func:`repro.parallel.pipeline.schedule_ops`): each ``F`` op carries
    one microbatch from boundary to boundary, each ``B`` op runs its
    backward and relays the input-leaf gradient upstream.  Under 1F1B the
    interleaving lets a stage's backward compute overlap the in-flight
    boundary sends of neighbouring microbatches; gradient accumulation
    stays in ascending microbatch order under both schedules, keeping the
    result bitwise-identical to the serial oracle.
    """
    from repro.parallel.backend.microbatch import (
        loss_grad_seed,
        mean_loss,
        split_microbatches,
    )
    from repro.parallel.collectives import pipeline_transfer
    from repro.parallel.grad_sync import sp_sync_grads
    from repro.parallel.pipeline import schedule_ops

    transport = ctx.transport
    backbone = model.backbone
    partition = backbone.partition
    pp = ctx.pp
    stage = ctx.stage
    cfg = model.config
    m = getattr(cfg, "num_microbatches", 1)
    schedule = getattr(cfg, "pipeline_schedule", "gpipe")

    timeline: list[dict] | None = [] if collect_timeline else None
    origin = time.monotonic()
    transport.timeline = timeline
    transport.timeline_origin = origin

    model.zero_grad()
    model.tracker.reset()
    transport.barrier_wait(timeout=ctx.timeout)

    if ctx.dp > 1:
        # Each dp gang trains on its contiguous batch shard; the parent
        # ships the full batch and every rank slices its own view.
        shard = input_ids.shape[0] // ctx.dp
        sl = slice(ctx.dp_rank * shard, (ctx.dp_rank + 1) * shard)
        input_ids = input_ids[sl]
        labels = labels[sl]
        if attention_mask is not None:
            attention_mask = attention_mask[sl]

    microbatches = split_microbatches(input_ids, labels, attention_mask, m)
    seed = None if m == 1 else loss_grad_seed(m)

    x_in: dict[int, Tensor] = {}  # stages > 0: per-microbatch input leaves
    outs: dict[int, Tensor] = {}  # stages < pp-1: per-microbatch boundary outs
    losses: dict[int, Tensor] = {}  # last stage: per-microbatch losses
    loss_vals: list[float] = []

    for op in schedule_ops(schedule, pp, stage, m):
        i = op.microbatch
        mb_ids, mb_labels, mb_mask = microbatches[i]
        t0 = time.monotonic()
        if op.kind == "F":
            if stage == 0:
                x, mask4d = backbone.embed(mb_ids, mb_mask)
            else:
                x_data = transport.recv(ctx.peer(stage - 1),
                                        timeout=ctx.timeout)
                leaf = Tensor(x_data, requires_grad=True)
                x_in[i] = leaf
                x = leaf
                mask4d = backbone.attention_bias(mb_mask)
            h = backbone.stage_forward(x, stage, mask4d)
            if stage < pp - 1:
                comp = backbone.site_compressor(f"boundary{stage}")
                outs[i] = pipeline_transfer(
                    h, comp, model.tracker, boundary=stage,
                    layer=partition.boundaries()[stage],
                )
            else:
                losses[i] = model.loss_from_hidden(h, mb_labels)
            _span(timeline, origin, "forward" if m == 1 else f"F{i}", t0)
        else:
            if stage < pp - 1:
                g = transport.recv(ctx.peer(stage + 1), timeout=ctx.timeout)
                outs.pop(i).backward(g)
            else:
                loss_t = losses.pop(i)
                loss_vals.append(float(loss_t.item()))
                if seed is None:
                    loss_t.backward()
                else:
                    loss_t.backward(seed)
            if stage > 0:
                leaf = x_in.pop(i)
                if leaf.grad is None:
                    raise RuntimeError(
                        f"stage {stage} produced no input gradient to relay "
                        f"(microbatch {i})"
                    )
                # The relay is staged in the upstream ring and stays in
                # flight while this stage continues with its next op.
                t_send = time.monotonic()
                transport.send(ctx.peer(stage - 1),
                               np.ascontiguousarray(leaf.grad),
                               timeout=ctx.timeout)
                transport.record_span(f"pp grad send mb{i}", t_send,
                                      cat="mp.async")
            _span(timeline, origin, "backward" if m == 1 else f"B{i}", t0)

    # Ring SP leaves each rank's QKV gradients partial over its sequence
    # block; reconcile around the ring before replying to the parent.
    if ctx.sp > 1:
        sp_sync_grads(model, ctx)

    # Reply with exactly the gradients the parent's merge will read: tp
    # rank 0 owns every replicated parameter's copy (plus its own shards);
    # a tp rank > 0 worker is only consulted for its ``_rank{r}`` shards.
    # Everything else would be pickled, shipped and dropped.
    grads = {
        name: p.grad for name, p in model.named_parameters()
        if p.grad is not None and _parent_reads(name, ctx.tp_rank,
                                                ctx.sp_rank)
    }
    events = list(model.tracker.events)
    transport.timeline = None
    loss_val = mean_loss(loss_vals) if loss_vals else None
    return loss_val, grads, events, timeline or []


def _worker_main(conn, spec: dict, rank_info: dict, model_spec: dict,
                 timeout: float, telemetry_q=None) -> None:
    """Process target: attach transport, build the replica, serve commands.

    ``rank_info`` carries tp/pp/tp_rank/stage; ``model_spec`` carries the
    model class, its config and extra constructor kwargs.  Every command is
    answered (``("result", ...)`` or ``("error", rank, tb)``) so the parent
    never waits on a silent failure.
    """
    _disable_shm_tracking()
    from repro.parallel.backend.context import global_rank

    dp = rank_info.get("dp", 1)
    sp = rank_info.get("sp", 1)
    rank = global_rank(rank_info["stage"], rank_info["tp_rank"],
                       rank_info["tp"], pp=rank_info["pp"], sp=sp,
                       sp_rank=rank_info.get("sp_rank", 0),
                       dp_rank=rank_info.get("dp_rank", 0))
    world = dp * rank_info["pp"] * sp * rank_info["tp"]
    transport = None
    # Concurrency event log (DYN003): purely env-gated, off in production.
    conc = conclog.maybe_install_from_env(rank, world=world)
    # Fault plan (chaos injection): also purely env-gated; the env var is
    # inherited from the parent through the spawn context.
    fault_plan = faults.maybe_install_from_env()
    # Live telemetry (REPRO_TELEMETRY): the parent only passes a queue
    # when the env var is set, and the agent import stays off the healthy
    # startup path otherwise.
    telem = None
    if telemetry_q is not None:
        from repro.obs.telemetry.agent import maybe_agent_from_env

        telem = maybe_agent_from_env(rank, world=world, sink=telemetry_q)
    steps_done = 0
    try:
        transport = RankTransport(spec, rank)
        model = model_spec["cls"](model_spec["config"], **model_spec["kwargs"])
        ctx = RankContext(
            tp=rank_info["tp"], pp=rank_info["pp"],
            tp_rank=rank_info["tp_rank"], stage=rank_info["stage"],
            transport=transport,
            rng=np.random.default_rng((model_spec["config"].seed, rank)),
            timeout=timeout,
            overlap=rank_info.get("overlap", True),
            dp=dp, sp=sp,
            dp_rank=rank_info.get("dp_rank", 0),
            sp_rank=rank_info.get("sp_rank", 0),
        )
        set_rank_context(ctx)
        if telem is not None:
            telem.watch(model.tracker)
        conn.send(("ready", rank))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "shutdown":
                break
            if cmd == "weights":
                model.load_state_dict(msg[1])
            elif cmd == "runtime_state":
                state = {}
                backbone = getattr(model, "backbone", None)
                if backbone is not None:
                    state = backbone.runtime_state_dict()
                conn.send(("result", rank, state))
            elif cmd == "load_runtime_state":
                backbone = getattr(model, "backbone", None)
                if backbone is not None:
                    state = msg[1]
                    # dp runs namespace per-replica compressor state; each
                    # gang restores its own slice of the broadcast dict.
                    if f"dp{ctx.dp_rank}" in state:
                        state = state[f"dp{ctx.dp_rank}"]
                    backbone.load_runtime_state_dict(state)
            elif cmd == "step":
                _, input_ids, labels, attention_mask, collect = msg
                # Stamped before fault injection so a planned straggler
                # delay lands in this rank's wall (and busy) time instead
                # of disappearing between commands.
                t_step_start = time.monotonic()
                if telem is not None:
                    telem.begin_step(steps_done)
                if fault_plan is not None:
                    fault_plan.set_step(steps_done)
                    spec = fault_plan.take_step_fault(rank, steps_done)
                    if spec is not None and spec.kind == "kill":
                        # Planned death: flush the event log so the run
                        # stays replayable, then exit hard — the parent
                        # sees EOF on the pipe and raises a typed
                        # BackendError naming this rank.
                        if conc is not None:
                            conc.emit("fault", fault="kill", step=steps_done)
                            conc.flush()
                        if telem is not None:
                            telem.emit("fault", kind="kill", step=steps_done)
                            telem.publish()
                        conn.close()
                        os._exit(faults.KILL_EXIT_CODE)
                    if spec is not None and spec.kind == "delay":
                        if conc is not None:
                            conc.emit("fault", fault="delay", step=steps_done,
                                      seconds=spec.seconds)
                        time.sleep(spec.seconds)
                # Telemetry needs the span timeline (comm-wait decomposes
                # the step) even when the parent didn't ask for traces.
                loss_val, grads, events, timeline = _spmd_step(
                    model, ctx, input_ids, labels, attention_mask,
                    collect or telem is not None)
                if conc is not None:
                    # Flush after every step so a crashed run still leaves
                    # a replayable event-log prefix on disk.
                    conc.emit("step_end", step=steps_done)
                    conc.flush()
                if telem is not None:
                    # Emit-before-publish: the step's telemetry is on the
                    # side channel before the result that makes the step
                    # observable goes over the control pipe.
                    telem.record_step(steps_done, t_step_start, loss=loss_val,
                                      timeline=timeline, transport=transport,
                                      plan=fault_plan)
                    telem.publish()
                steps_done += 1
                # The timeline only travels the control pipe when the
                # parent asked for traces; a telemetry-forced one was
                # summarized above and is stripped here.
                conn.send(("result", rank, loss_val, grads, events,
                           timeline if collect else []))
            else:
                raise RuntimeError(f"unknown command {cmd!r}")
    except EOFError:
        pass  # parent went away; nothing to report to
    except BaseException:
        try:
            conn.send(("error", rank, traceback.format_exc()))
        except OSError:
            pass
    finally:
        set_rank_context(None)
        if conc is not None:
            conc.flush()
            conclog.uninstall()
        if transport is not None:
            transport.close()
        conn.close()
