"""Entry point of one mp-backend worker process (one logical rank).

A worker owns a single (stage, tp_rank) coordinate.  It rebuilds the full
model replica from the parent's config — same seed, therefore identical
initial weights — then activates a :class:`RankContext` so shard loops and
collectives collapse to its own rank.  Per step it executes exactly the
slice of the oracle's computation its rank would own:

- stage 0 embeds the batch; later stages receive the boundary activation
  over shared memory and turn it into a gradient leaf;
- the stage's transformer layers run with the worker's tp shard;
- the last stage computes the loss and starts backward; earlier stages
  receive the relayed boundary gradient and resume their local graph;
- stages > 0 relay their input-leaf gradient back to the previous stage.

Control plane (weights, batches, results) is an ordinary
``multiprocessing.Pipe`` — pickle is fine there; the data plane (activations,
gradients, barrier) is exclusively the shared-memory transport.
"""

from __future__ import annotations

import time
import traceback

import numpy as np

from repro.parallel.backend.context import RankContext, set_rank_context
from repro.parallel.backend.transport import RankTransport
from repro.tensor import Tensor


def _disable_shm_tracking() -> None:
    """Stop this process's resource tracker from adopting shm segments.

    The parent owns (and unlinks) every segment.  Python 3.10–3.12 have no
    ``track=False`` on ``SharedMemory``, and a spawned child's resource
    tracker would otherwise unlink the parent's segment at child exit,
    breaking every sibling still attached.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name, rtype):
        if rtype == "shared_memory":
            return
        original(name, rtype)

    resource_tracker.register = register


def _span(timeline: list[dict] | None, origin: float, name: str,
          start: float) -> None:
    if timeline is not None:
        now = time.monotonic()
        timeline.append({
            "name": name, "cat": "mp.phase",
            "ts_ms": (start - origin) * 1e3,
            "dur_ms": (now - start) * 1e3,
        })


def _spmd_step(model, ctx: RankContext, input_ids, labels, attention_mask,
               collect_timeline: bool):
    """One training step of this rank's slice; returns (loss, grads, events,
    timeline)."""
    transport = ctx.transport
    backbone = model.backbone
    partition = backbone.partition
    pp = ctx.pp
    stage = ctx.stage

    timeline: list[dict] | None = [] if collect_timeline else None
    origin = time.monotonic()
    transport.timeline = timeline
    transport.timeline_origin = origin

    model.zero_grad()
    model.tracker.reset()
    transport.barrier_wait(ctx.timeout)

    # ---- forward ------------------------------------------------------
    t0 = time.monotonic()
    if stage == 0:
        x, mask4d = backbone.embed(input_ids, attention_mask)
        x_in = None
    else:
        x_data = transport.recv(ctx.peer(stage - 1), ctx.timeout)
        x_in = Tensor(x_data, requires_grad=True)
        x = x_in
        mask4d = backbone.attention_bias(attention_mask)
    x = backbone.stage_forward(x, stage, mask4d)

    loss = None
    if stage < pp - 1:
        from repro.parallel.collectives import pipeline_transfer

        comp = backbone.site_compressor(f"boundary{stage}")
        out = pipeline_transfer(
            x, comp, model.tracker, boundary=stage,
            layer=partition.boundaries()[stage],
        )
    else:
        loss = model.loss_from_hidden(x, labels)
    _span(timeline, origin, "forward", t0)

    # ---- backward -----------------------------------------------------
    t0 = time.monotonic()
    if stage < pp - 1:
        g = transport.recv(ctx.peer(stage + 1), ctx.timeout)
        out.backward(g)
    else:
        loss.backward()
    if stage > 0:
        if x_in.grad is None:
            raise RuntimeError(
                f"stage {stage} produced no input gradient to relay"
            )
        transport.send(ctx.peer(stage - 1), np.ascontiguousarray(x_in.grad),
                       ctx.timeout)
    _span(timeline, origin, "backward", t0)

    grads = {
        name: p.grad for name, p in model.named_parameters()
        if p.grad is not None
    }
    events = list(model.tracker.events)
    transport.timeline = None
    loss_val = float(loss.item()) if loss is not None else None
    return loss_val, grads, events, timeline or []


def _worker_main(conn, spec: dict, rank_info: dict, model_spec: dict,
                 timeout: float) -> None:
    """Process target: attach transport, build the replica, serve commands.

    ``rank_info`` carries tp/pp/tp_rank/stage; ``model_spec`` carries the
    model class, its config and extra constructor kwargs.  Every command is
    answered (``("result", ...)`` or ``("error", rank, tb)``) so the parent
    never waits on a silent failure.
    """
    _disable_shm_tracking()
    rank = rank_info["stage"] * rank_info["tp"] + rank_info["tp_rank"]
    transport = None
    try:
        transport = RankTransport(spec, rank)
        model = model_spec["cls"](model_spec["config"], **model_spec["kwargs"])
        ctx = RankContext(
            tp=rank_info["tp"], pp=rank_info["pp"],
            tp_rank=rank_info["tp_rank"], stage=rank_info["stage"],
            transport=transport,
            rng=np.random.default_rng((model_spec["config"].seed, rank)),
            timeout=timeout,
        )
        set_rank_context(ctx)
        conn.send(("ready", rank))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "shutdown":
                break
            if cmd == "weights":
                model.load_state_dict(msg[1])
            elif cmd == "step":
                _, input_ids, labels, attention_mask, collect = msg
                result = _spmd_step(model, ctx, input_ids, labels,
                                    attention_mask, collect)
                conn.send(("result", rank, *result))
            else:
                raise RuntimeError(f"unknown command {cmd!r}")
    except EOFError:
        pass  # parent went away; nothing to report to
    except BaseException:
        try:
            conn.send(("error", rank, traceback.format_exc()))
        except OSError:
            pass
    finally:
        set_rank_context(None)
        if transport is not None:
            transport.close()
        conn.close()
