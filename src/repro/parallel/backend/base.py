"""Execution-backend interface: how one training step actually runs.

The runtime's *semantics* (which tensors cross which cut points, what the
collectives compute, what bytes the tracker logs) are defined by
:mod:`repro.parallel.collectives`; a backend decides *where* the logical
ranks execute:

- ``inproc`` — today's serial semantics: every rank's shard computation
  runs in this process, collectives operate on lists of partials.  It is
  the numerics oracle.
- ``mp`` — one OS process per logical rank (spawn context), collectives
  over shared memory.  Bitwise-equivalent to ``inproc`` by construction
  (see DESIGN.md): rank sums run in rank order, the TP grid is capped so
  float accumulation stays commutative, and codecs run rank-local.

Both backends expose the same step protocol so the trainer and the bench
harness drive them identically::

    backend = create_backend(cfg.backend, model)
    result = backend.train_step(input_ids, labels, mask)
    backend.apply_grads(model, result)   # p.grad <- merged gradients
    optimizer.step()
    backend.sync_weights(model)          # push updated weights to ranks
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BackendError", "StepResult", "ExecutionBackend", "create_backend",
           "BACKEND_NAMES"]

BACKEND_NAMES = ("inproc", "mp")


class BackendError(RuntimeError):
    """A backend failed: worker crash, transport timeout, protocol violation.

    Carries the failing logical ``rank`` (or ``None`` when the failure is
    not attributable to one rank) so a hung 2×2 run names its culprit
    instead of leaving four silent processes.
    """

    def __init__(self, message: str, rank: int | None = None):
        if rank is not None:
            message = f"[rank {rank}] {message}"
        super().__init__(message)
        self.rank = rank


@dataclass
class StepResult:
    """Outcome of one training (or eval) step, backend-agnostic.

    ``grads`` maps dotted parameter names to merged gradient arrays; it is
    empty for the inproc backend, whose autograd pass already left the
    gradients on the parent model's parameters.  ``timelines`` maps global
    rank to a list of span dicts (``name``/``cat``/``ts_ms``/``dur_ms``)
    for Chrome-trace export; the inproc backend reports none.
    """

    loss: float
    grads: dict[str, np.ndarray] = field(default_factory=dict)
    events: list = field(default_factory=list)
    timelines: dict[int, list[dict]] = field(default_factory=dict)


class ExecutionBackend:
    """Protocol shared by all backends (subclass, don't instantiate)."""

    name = "abstract"

    def train_step(self, input_ids, labels, attention_mask=None) -> StepResult:
        raise NotImplementedError

    def apply_grads(self, model, result: StepResult) -> None:
        """Install ``result.grads`` onto the parent model's parameters."""
        raise NotImplementedError

    def sync_weights(self, model) -> None:
        """Propagate the parent model's (updated) weights to the ranks."""
        raise NotImplementedError

    def runtime_state(self) -> dict:
        """Compressor runtime state (EF residuals, RNG streams) for
        checkpointing; ``{}`` for backends/models with none."""
        return {}

    def load_runtime_state(self, state: dict) -> None:
        """Restore compressor runtime state captured by :meth:`runtime_state`."""

    def poll_telemetry(self) -> list[dict]:
        """Drain pending live-telemetry events from the rank side channel.

        Returns ``[]`` for backends without one (inproc ranks run in the
        caller's process — there is nothing to stream) and whenever
        ``REPRO_TELEMETRY`` is off.  The mp backend overrides this with a
        non-blocking drain of its telemetry queue.
        """
        return []

    def close(self) -> None:
        """Release processes/shared memory. Idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def create_backend(name: str, model, **kwargs) -> ExecutionBackend:
    """Build the backend ``name`` around a parent model.

    ``model`` is a :class:`~repro.parallel.ModelParallelBertClassifier`
    (or any model following its config/tracker protocol); the mp backend
    reads its :class:`ModelParallelConfig` to spawn one worker per rank.

    The topology grid is re-validated here (configs are plain dataclasses
    — an axis mutated after construction would otherwise surface as a
    worker-spawn failure deep inside the mp backend): a bad axis raises a
    typed :class:`~repro.parallel.topology.TopologyError` naming it.
    """
    cfg = getattr(model, "config", None)
    if cfg is not None and hasattr(cfg, "dp"):
        from repro.parallel.topology import validate_grid

        validate_grid(cfg.dp, cfg.tp, cfg.pp, cfg.sp)
    if name == "inproc":
        from repro.parallel.backend.inproc import InprocBackend

        return InprocBackend(model, **kwargs)
    if name == "mp":
        from repro.parallel.backend.mp import MpBackend

        return MpBackend(model, **kwargs)
    raise ValueError(f"unknown backend {name!r}; valid: {list(BACKEND_NAMES)}")
