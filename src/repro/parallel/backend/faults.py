"""Deterministic fault injection for the mp backend (chaos seam).

A :class:`FaultPlan` describes, ahead of time, exactly which transport
messages and worker steps to sabotage: delays (stragglers), dropped ring
slots, corrupted headers/payloads, and whole-rank kills.  The plan is
installed per process from the ``REPRO_FAULT_PLAN`` environment variable
(inherited by spawn children, so the parent's setting reaches every
worker) and is **off by default** — with no plan installed every
instrumentation point costs one module-global load plus an ``is None``
check, the same budget as :mod:`repro.parallel.backend.conclog`.

Design rules (DESIGN decision #11):

- **Deterministic.**  Faults are matched on protocol coordinates (channel
  ``src``/``dst`` + message ``seq``, or ``rank`` + training ``step``),
  never on wall time or randomness, so a chaos run is exactly
  reproducible and its conclog replay is meaningful.
- **Typed errors, never hangs.**  Every fault either recovers within the
  plan's retry budget (CRC mismatch → re-read, dropped slot → bounded
  resend, both with exponential backoff) or surfaces as the existing
  typed :class:`~repro.parallel.backend.base.BackendError` naming the
  rank and mailbox.  Unrecoverable faults (a killed rank, a delay longer
  than the peer's timeout) escalate through the transport's existing
  deadline machinery.
- **Model-check seam untouched.**  Only the *blocking* ``send``/``recv``
  paths consult the plan; the single-step ``try_send``/``try_recv``
  seams that the DYN004 model checker drives stay plan-oblivious.

``REPRO_FAULT_PLAN`` accepts three forms:

- inline JSON (value starts with ``{``)::

      {"retry_budget": 3, "faults": [
        {"kind": "delay", "rank": 1, "step": 0, "seconds": 0.02},
        {"kind": "drop", "src": 0, "dst": 2, "seq": 1, "times": 2},
        {"kind": "corrupt", "src": 2, "dst": 0, "seq": 1,
         "field": "payload"},
        {"kind": "kill", "rank": 3, "step": 2}]}

- the name of a builtin plan (``mixed``, ``straggler``);
- a path to a JSON file with the same document shape.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field as _dc_field

__all__ = [
    "ENV_VAR",
    "KILL_EXIT_CODE",
    "DEFAULT_RETRY_BUDGET",
    "DEFAULT_BACKOFF_S",
    "BUILTIN_PLANS",
    "FaultSpec",
    "FaultPlan",
    "active",
    "install",
    "uninstall",
    "maybe_install_from_env",
]

#: Fault-plan source; presence turns injection on in every rank.
ENV_VAR = "REPRO_FAULT_PLAN"

#: Exit code a worker uses for an injected kill, so tests and the parent
#: can tell a planned death from a genuine crash.
KILL_EXIT_CODE = 117

#: How many times a recoverable fault (drop, corrupt) is retried before
#: the transport gives up with a typed error.
DEFAULT_RETRY_BUDGET = 3

#: Base of the exponential retry backoff (200 µs, doubling per attempt).
DEFAULT_BACKOFF_S = 200e-6

_CHANNEL_KINDS = ("delay", "drop", "corrupt")
_STEP_KINDS = ("delay", "kill")
_KINDS = ("delay", "drop", "corrupt", "kill")
_FIELDS = ("payload", "header")


@dataclass
class FaultSpec:
    """One planned fault.

    Channel faults (``drop``/``corrupt``/channel ``delay``) name a
    mailbox by ``src``/``dst`` global rank and a 1-based message ``seq``;
    step faults (``kill``/step ``delay``) name a global ``rank`` and a
    0-based training ``step``.  ``times`` makes the same fault fire on
    the first N matching attempts — a drop with ``times: 2`` forces two
    resends before the slot goes through.
    """

    kind: str
    src: int | None = None
    dst: int | None = None
    seq: int | None = None
    rank: int | None = None
    step: int | None = None
    seconds: float = 0.0
    field: str = "payload"
    times: int = 1
    remaining: int = _dc_field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; valid: {_KINDS}")
        if self.field not in _FIELDS:
            raise ValueError(
                f"unknown corrupt field {self.field!r}; valid: {_FIELDS}")
        is_channel = self.src is not None or self.dst is not None
        if self.kind in ("drop", "corrupt") and not is_channel:
            raise ValueError(f"{self.kind!r} fault needs src/dst/seq")
        if self.kind == "kill" and self.rank is None:
            raise ValueError("'kill' fault needs rank/step")
        if self.kind == "delay" and not is_channel and self.rank is None:
            raise ValueError("'delay' fault needs either src/dst or rank")
        self.remaining = int(self.times)

    @property
    def is_channel(self) -> bool:
        return self.src is not None or self.dst is not None


class FaultPlan:
    """A parsed plan plus the mutable per-process injection state.

    ``step`` tracks the worker's current training step (set by the
    worker loop before executing each command) so channel faults can
    optionally be scoped to a step.  ``injected`` counts fired faults by
    kind — tests assert on it to prove the plan actually bit.
    """

    def __init__(self, doc: dict):
        self.retry_budget = int(doc.get("retry_budget", DEFAULT_RETRY_BUDGET))
        self.backoff_s = float(doc.get("backoff_s", DEFAULT_BACKOFF_S))
        if self.retry_budget < 1:
            raise ValueError("retry_budget must be >= 1")
        self.faults = [FaultSpec(**spec) for spec in doc.get("faults", ())]
        self.step: int | None = None
        self.injected: Counter[str] = Counter()

    def set_step(self, step: int) -> None:
        self.step = step

    def _take(self, spec: FaultSpec) -> FaultSpec:
        spec.remaining -= 1
        self.injected[spec.kind] += 1
        return spec

    def _step_matches(self, spec: FaultSpec) -> bool:
        return spec.step is None or spec.step == self.step

    def take_send_fault(self, src: int, dst: int, seq: int) -> FaultSpec | None:
        """A pending ``drop``/``delay`` for this channel message, if any."""
        for spec in self.faults:
            if (spec.kind in ("drop", "delay") and spec.is_channel
                    and spec.remaining > 0
                    and spec.src == src and spec.dst == dst
                    and (spec.seq is None or spec.seq == seq)
                    and self._step_matches(spec)):
                return self._take(spec)
        return None

    def take_recv_fault(self, src: int, dst: int, seq: int) -> FaultSpec | None:
        """A pending ``corrupt`` for this channel message, if any."""
        for spec in self.faults:
            if (spec.kind == "corrupt" and spec.remaining > 0
                    and spec.src == src and spec.dst == dst
                    and (spec.seq is None or spec.seq == seq)
                    and self._step_matches(spec)):
                return self._take(spec)
        return None

    def take_step_fault(self, rank: int, step: int) -> FaultSpec | None:
        """A pending ``kill``/step-``delay`` for this rank at this step."""
        for spec in self.faults:
            if (spec.kind in _STEP_KINDS and not spec.is_channel
                    and spec.remaining > 0
                    and spec.rank == rank and spec.step == step):
                return self._take(spec)
        return None


#: Named plans for CI and the bench degraded suite. ``mixed`` exercises
#: every recoverable fault class on a tp=2, pp>=2 layout (ranks 0/1 are
#: stage 0, rank 2 starts stage 1); ``straggler`` just slows one rank.
BUILTIN_PLANS: dict[str, dict] = {
    "mixed": {
        "retry_budget": 3,
        "faults": [
            {"kind": "delay", "rank": 1, "step": 0, "seconds": 0.02},
            {"kind": "drop", "src": 0, "dst": 2, "seq": 1, "times": 2},
            {"kind": "corrupt", "src": 2, "dst": 0, "seq": 1,
             "field": "payload", "times": 1},
        ],
    },
    "straggler": {
        "faults": [
            {"kind": "delay", "rank": 1, "step": 0, "seconds": 0.05},
        ],
    },
}

_ACTIVE: FaultPlan | None = None


def active() -> FaultPlan | None:
    """The installed plan, or ``None`` (the common, zero-cost case)."""
    return _ACTIVE


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide fault source and return it."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def parse_plan(value: str) -> FaultPlan:
    """Parse a plan from inline JSON, a builtin name, or a file path."""
    value = value.strip()
    if value.startswith("{"):
        return FaultPlan(json.loads(value))
    if value in BUILTIN_PLANS:
        return FaultPlan(BUILTIN_PLANS[value])
    if os.path.isfile(value):
        with open(value, "r", encoding="utf-8") as fh:
            return FaultPlan(json.load(fh))
    raise ValueError(
        f"bad {ENV_VAR}: {value!r} is neither inline JSON, a builtin plan "
        f"({sorted(BUILTIN_PLANS)}), nor a readable file")


def maybe_install_from_env() -> FaultPlan | None:
    """Install the plan named by ``$REPRO_FAULT_PLAN``, if set.

    Returns ``None`` (and installs nothing) when the variable is unset —
    the production default.  Each mp worker calls this once at startup;
    the env var is inherited through the spawn context, so setting it in
    the parent before backend construction arms every rank.
    """
    value = os.environ.get(ENV_VAR)
    if not value:
        return None
    return install(parse_plan(value))
