"""Full model-parallel BERT: TP × PP with compression sites.

This is the in-process analogue of the paper's patched Megatron-LM. A model
is configured with a parallel layout (tp, pp), a compression scheme label
from the notation table, and a placement policy. During the forward pass:

- each transformer layer whose index is in the policy routes its two
  tensor-parallel all-reduces through the layer's compressor instances;
- each pipeline-stage boundary whose *receiving* layer is in the policy
  compresses the activation (and its backward gradient) crossing the cut.

All message sizes are logged to the model's :class:`CommTracker`, and AE
compressor weights are registered as ordinary parameters so they train
jointly with the model — and can be *dropped* when loading a pre-trained
checkpoint for fine-tuning (the Table 8 workflow).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.compression import CompressionPolicy, build_compressor
from repro.compression.base import Compressor, NoCompressor
from repro.nn.bert import BertForPreTraining
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.transformer import TransformerConfig
from repro.parallel.collectives import CommTracker, pipeline_transfer
from repro.parallel.pipeline import PipelinePartition
from repro.parallel.tensor_parallel import ParallelTransformerLayer
from repro.tensor import Tensor, functional as F

__all__ = [
    "ModelParallelConfig",
    "ModelParallelBertClassifier",
    "ModelParallelBertPreTraining",
]


def _default_backend() -> str:
    """Execution backend, overridable via ``REPRO_BACKEND`` (CI matrix)."""
    return os.environ.get("REPRO_BACKEND", "inproc")


def _default_schedule() -> str:
    """Pipeline schedule, overridable via ``REPRO_SCHEDULE`` (CI matrix)."""
    return os.environ.get("REPRO_SCHEDULE", "gpipe")


def _default_dp() -> int:
    """Data-parallel degree, overridable via ``REPRO_DP`` (CI matrix)."""
    return int(os.environ.get("REPRO_DP", "1"))


def _default_sp() -> int:
    """Sequence-parallel degree, overridable via ``REPRO_SP`` (CI matrix)."""
    return int(os.environ.get("REPRO_SP", "1"))


@dataclass
class ModelParallelConfig:
    """One experimental setting: model × layout × compression scheme.

    ``backend`` selects *where* the logical ranks execute (see
    :mod:`repro.parallel.backend`): ``"inproc"`` is the serial in-process
    oracle, ``"mp"`` spawns one worker process per rank.  The default is
    read from the ``REPRO_BACKEND`` environment variable so a test run can
    be flipped wholesale without touching call sites.

    ``pipeline_schedule`` picks the per-stage op order (``"gpipe"`` or
    ``"1f1b"``, see :mod:`repro.parallel.pipeline`); the default comes
    from ``REPRO_SCHEDULE`` so the CI matrix can flip it globally.  Both
    schedules produce bitwise-identical losses and gradients — the choice
    only moves peak activation memory and comm/compute overlap.
    ``num_microbatches`` splits the batch along dim 0; with the default 1
    the schedules coincide and existing baselines stay comparable.
    """

    model: TransformerConfig
    tp: int = 1
    pp: int = 1
    scheme: str = "w/o"
    policy: CompressionPolicy | None = None
    seed: int = 0
    backend: str = field(default_factory=_default_backend)
    pipeline_schedule: str = field(default_factory=_default_schedule)
    num_microbatches: int = 1
    dp: int = field(default_factory=_default_dp)
    sp: int = field(default_factory=_default_sp)

    @property
    def world_size(self) -> int:
        """Ranks the layout occupies: dp·pp·sp·tp."""
        return self.dp * self.pp * self.sp * self.tp

    def __post_init__(self):
        from repro.parallel.backend.base import BACKEND_NAMES
        from repro.parallel.pipeline import SCHEDULES
        from repro.parallel.topology import TopologyError, validate_grid

        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; valid: {list(BACKEND_NAMES)}"
            )
        if self.pipeline_schedule not in SCHEDULES:
            raise ValueError(
                f"unknown pipeline_schedule {self.pipeline_schedule!r}; "
                f"valid: {list(SCHEDULES)}"
            )
        if self.num_microbatches < 1:
            raise ValueError("num_microbatches must be >= 1")
        # Typed grid validation up front: a bad axis must fail here, with
        # the axis named, not deep inside worker spawn.
        validate_grid(self.dp, self.tp, self.pp, self.sp)
        if self.sp > 1 and self.tp != 1:
            raise TopologyError(
                f"ring sequence parallelism (sp={self.sp}) composes with "
                f"pp/dp but not tp (got tp={self.tp}): both axes would "
                f"shard the same attention heads", axis="sp")
        if self.sp > 1 and self.model.max_seq_len % self.sp != 0:
            raise TopologyError(
                f"sp={self.sp} must divide max_seq_len={self.model.max_seq_len}",
                axis="sp")
        if self.policy is None:
            if self.scheme == "w/o":
                self.policy = CompressionPolicy.none(self.model.num_layers)
            else:
                self.policy = CompressionPolicy.default(self.model.num_layers)
        if self.policy.num_layers != self.model.num_layers:
            raise ValueError("policy num_layers must match the model")
        if self.pp > self.model.num_layers:
            raise ValueError("pp cannot exceed the number of layers")
        if self.model.num_heads % self.tp != 0:
            raise TopologyError(
                f"num_heads={self.model.num_heads} must be divisible by "
                f"tp={self.tp}", axis="tp")


class _ModelParallelBackbone(Module):
    """Shared embedding + parallel encoder with compression plumbing."""

    def __init__(self, config: ModelParallelConfig, rng: np.random.Generator):
        super().__init__()
        mc = config.model
        self.config = config
        self.tracker = CommTracker()
        self.partition = PipelinePartition.balanced(mc.num_layers, config.pp)

        self.token_embedding = Embedding(mc.vocab_size, mc.hidden, rng, mc.init_std)
        self.position_embedding = Embedding(mc.max_seq_len, mc.hidden, rng, mc.init_std)
        self.embed_ln = LayerNorm(mc.hidden)
        self.embed_dropout = Dropout(mc.dropout, rng)
        self.layers = ModuleList(
            ParallelTransformerLayer(mc, config.tp, rng, sp=config.sp)
            for _ in range(mc.num_layers)
        )

        # Per-site compressor instances. Sparsification/quantization are
        # stateless but AE holds learnable weights per site, so each site
        # gets its own object (seeded distinctly for Random-K).
        self._site_compressors: dict[str, Compressor] = {}
        scheme = config.scheme
        if scheme != "w/o":
            for layer_idx in sorted(config.policy.layers):
                if config.tp > 1:
                    for site in ("attn", "mlp"):
                        key = f"layer{layer_idx}.{site}"
                        self._site_compressors[key] = build_compressor(
                            scheme, mc.hidden, seed=config.seed * 1000 + layer_idx * 2 + (site == "mlp")
                        )
            for b, last_layer in enumerate(self.partition.boundaries()):
                if config.policy.boundary_compressed(last_layer):
                    key = f"boundary{b}"
                    self._site_compressors[key] = build_compressor(
                        scheme, mc.hidden, seed=config.seed * 1000 + 500 + b
                    )
        self._register_compressor_params()
        self._identity = NoCompressor()

    def _register_compressor_params(self) -> None:
        # Enumerate with stable indices: an `is`-check against comp.encoder
        # names every non-encoder parameter "decoder", so a compressor with
        # a third parameter (or without an `encoder` attribute) registers
        # colliding names and silently drops weights from state_dict().
        for key, comp in sorted(self._site_compressors.items()):
            for i, p in enumerate(comp.parameters()):
                if p is getattr(comp, "encoder", None):
                    suffix = "encoder"
                elif p is getattr(comp, "decoder", None):
                    suffix = "decoder"
                else:
                    suffix = f"param{i}"
                name = f"compressor.{key}.{suffix}"
                if name in self._parameters:
                    raise ValueError(
                        f"duplicate compressor parameter name {name!r} "
                        f"(site {key!r}, parameter index {i})"
                    )
                self.add_parameter(name, p)

    # ------------------------------------------------------------------
    def site_compressor(self, key: str) -> Compressor:
        return self._site_compressors.get(key, self._identity)

    def runtime_state_dict(self) -> dict:
        """Mutable compressor state (EF residuals, RNG streams) by site.

        Complements :meth:`state_dict` (which holds learnable parameters)
        for mid-run checkpointing: restoring both makes a resumed run
        bitwise-identical to an uninterrupted one.  Sites with no state
        are omitted, so stateless schemes checkpoint nothing extra.
        """
        state = {}
        for key in sorted(self._site_compressors):
            site_state = self._site_compressors[key].runtime_state()
            if site_state:
                state[key] = site_state
        return state

    def load_runtime_state_dict(self, state: dict) -> None:
        """Restore per-site compressor state from :meth:`runtime_state_dict`.

        Unknown site keys are ignored, so a checkpoint written under one
        placement policy can restore into a model that materializes only
        a subset of its sites.
        """
        for key, site_state in state.items():
            comp = self._site_compressors.get(key)
            if comp is not None:
                comp.load_runtime_state(site_state)

    @property
    def compressor_parameter_names(self) -> list[str]:
        return [n for n, _ in self.named_parameters() if n.startswith("compressor.")]

    def model_state_dict(self) -> dict[str, np.ndarray]:
        """State dict *without* compressor parameters (Table 8: the AE can be
        dropped after pre-training)."""
        return {
            n: a for n, a in self.state_dict().items() if not n.startswith("compressor.")
        }

    # ------------------------------------------------------------------
    @staticmethod
    def attention_bias(attention_mask: np.ndarray | None) -> np.ndarray | None:
        """Broadcastable additive-mask selector from a (b, s) 0/1 mask.

        Pure function of the (replicated) input, so every pipeline stage
        can recompute it locally instead of shipping it across boundaries.
        """
        if attention_mask is None:
            return None
        return (np.asarray(attention_mask) == 0)[:, None, None, :]

    def embed(
        self, input_ids: np.ndarray, attention_mask: np.ndarray | None = None
    ) -> tuple[Tensor, np.ndarray | None]:
        """Token+position embedding (stage 0's preamble)."""
        input_ids = np.asarray(input_ids)
        b, s = input_ids.shape
        mc = self.config.model
        if s > mc.max_seq_len:
            raise ValueError(f"sequence length {s} exceeds max {mc.max_seq_len}")
        pos = np.arange(s)[None, :].repeat(b, axis=0)
        x = self.token_embedding(input_ids) + self.position_embedding(pos)
        x = self.embed_dropout(self.embed_ln(x))
        return x, self.attention_bias(attention_mask)

    def stage_forward(
        self, x: Tensor, stage: int, mask4d: np.ndarray | None = None
    ) -> Tensor:
        """Run one pipeline stage's transformer layers (no boundary send)."""
        for layer_idx in self.partition.layers_of(stage):
            layer = self.layers[layer_idx]
            attn_c = self.site_compressor(f"layer{layer_idx}.attn")
            mlp_c = self.site_compressor(f"layer{layer_idx}.mlp")
            x = layer(
                x,
                self.tracker,
                mask4d,
                attn_compressor=attn_c,
                mlp_compressor=mlp_c,
                layer=layer_idx,
            )
        return x

    def forward(self, input_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> Tensor:
        x, mask4d = self.embed(input_ids, attention_mask)
        boundaries = self.partition.boundaries()
        for stage in range(self.partition.pp):
            x = self.stage_forward(x, stage, mask4d)
            if stage < self.partition.pp - 1:
                comp = self.site_compressor(f"boundary{stage}")
                x = pipeline_transfer(
                    x, comp, self.tracker, boundary=stage, layer=boundaries[stage]
                )
        return x


class ModelParallelBertClassifier(Module):
    """Model-parallel BERT with a classification/regression head (GLUE)."""

    def __init__(self, config: ModelParallelConfig, regression: bool = False):
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.regression = regression
        self.backbone = _ModelParallelBackbone(config, rng)
        num_out = 1 if regression else config.model.num_classes
        self.classifier = Linear(config.model.hidden, num_out, rng,
                                 init_std=config.model.init_std)

    @property
    def tracker(self) -> CommTracker:
        return self.backbone.tracker

    def forward(self, input_ids, attention_mask=None) -> Tensor:
        hidden = self.backbone(input_ids, attention_mask)
        return self.classifier(hidden[:, 0, :])

    def loss_from_hidden(self, hidden: Tensor, labels) -> Tensor:
        """Head + loss on an already-computed backbone output.

        The mp backend's last pipeline stage enters here directly: the
        hidden states it assembled locally are the same tensor the serial
        forward would have produced.
        """
        logits = self.classifier(hidden[:, 0, :])
        if self.regression:
            return F.mse_loss(logits.reshape(-1), np.asarray(labels, dtype=np.float32))
        return F.cross_entropy(logits, np.asarray(labels))

    def loss(self, input_ids, labels, attention_mask=None) -> Tensor:
        hidden = self.backbone(input_ids, attention_mask)
        return self.loss_from_hidden(hidden, labels)

    def predict(self, input_ids, attention_mask=None) -> np.ndarray:
        logits = self.forward(input_ids, attention_mask)
        if self.regression:
            return logits.data.reshape(-1)
        return logits.data.argmax(axis=-1)

    def load_backbone(self, state: dict[str, np.ndarray]) -> None:
        """Load a pre-trained backbone state dict, ignoring AE/head params.

        Mirrors the paper's Table 8 observation: "we only need to load the
        parameters of the BERT model to do fine-tuning, and the parameters
        of the AE can be ignored."
        """
        backbone_state = {
            k: v for k, v in state.items() if not k.startswith("compressor.")
        }
        self.backbone.load_state_dict(backbone_state, strict=False)


class ModelParallelBertPreTraining(Module):
    """Model-parallel BERT with the masked-language-model head."""

    IGNORE_INDEX = BertForPreTraining.IGNORE_INDEX

    def __init__(self, config: ModelParallelConfig):
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.backbone = _ModelParallelBackbone(config, rng)
        mc = config.model
        self.mlm_dense = Linear(mc.hidden, mc.hidden, rng, init_std=mc.init_std)
        self.mlm_ln = LayerNorm(mc.hidden)
        self.mlm_head = Linear(mc.hidden, mc.vocab_size, rng, init_std=mc.init_std)

    @property
    def tracker(self) -> CommTracker:
        return self.backbone.tracker

    def forward(self, input_ids, attention_mask=None) -> Tensor:
        hidden = self.backbone(input_ids, attention_mask)
        h = self.mlm_ln(F.gelu(self.mlm_dense(hidden)))
        return self.mlm_head(h)

    def loss_from_hidden(self, hidden: Tensor, mlm_labels) -> Tensor:
        """MLM head + loss on an already-computed backbone output."""
        h = self.mlm_ln(F.gelu(self.mlm_dense(hidden)))
        logits = self.mlm_head(h)
        return F.cross_entropy(logits, np.asarray(mlm_labels), ignore_index=self.IGNORE_INDEX)

    def loss(self, input_ids, mlm_labels, attention_mask=None) -> Tensor:
        hidden = self.backbone(input_ids, attention_mask)
        return self.loss_from_hidden(hidden, mlm_labels)

    def backbone_state_dict(self) -> dict[str, np.ndarray]:
        """Backbone weights without AE parameters, for fine-tuning handoff."""
        return self.backbone.model_state_dict()
