"""Full model-parallel BERT: TP × PP with compression sites.

This is the in-process analogue of the paper's patched Megatron-LM. A model
is configured with a parallel layout (tp, pp), a compression scheme label
from the notation table, and a placement policy. During the forward pass:

- each transformer layer whose index is in the policy routes its two
  tensor-parallel all-reduces through the layer's compressor instances;
- each pipeline-stage boundary whose *receiving* layer is in the policy
  compresses the activation (and its backward gradient) crossing the cut.

All message sizes are logged to the model's :class:`CommTracker`, and AE
compressor weights are registered as ordinary parameters so they train
jointly with the model — and can be *dropped* when loading a pre-trained
checkpoint for fine-tuning (the Table 8 workflow).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression import CompressionPolicy, build_compressor
from repro.compression.base import Compressor, NoCompressor
from repro.nn.bert import BertForPreTraining
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.transformer import TransformerConfig
from repro.parallel.collectives import CommTracker, pipeline_transfer
from repro.parallel.pipeline import PipelinePartition
from repro.parallel.tensor_parallel import ParallelTransformerLayer
from repro.tensor import Tensor, functional as F

__all__ = [
    "ModelParallelConfig",
    "ModelParallelBertClassifier",
    "ModelParallelBertPreTraining",
]


@dataclass
class ModelParallelConfig:
    """One experimental setting: model × layout × compression scheme."""

    model: TransformerConfig
    tp: int = 1
    pp: int = 1
    scheme: str = "w/o"
    policy: CompressionPolicy | None = None
    seed: int = 0

    def __post_init__(self):
        if self.policy is None:
            if self.scheme == "w/o":
                self.policy = CompressionPolicy.none(self.model.num_layers)
            else:
                self.policy = CompressionPolicy.default(self.model.num_layers)
        if self.policy.num_layers != self.model.num_layers:
            raise ValueError("policy num_layers must match the model")
        if self.pp > self.model.num_layers:
            raise ValueError("pp cannot exceed the number of layers")
        if self.model.num_heads % self.tp != 0:
            raise ValueError("num_heads must be divisible by tp")


class _ModelParallelBackbone(Module):
    """Shared embedding + parallel encoder with compression plumbing."""

    def __init__(self, config: ModelParallelConfig, rng: np.random.Generator):
        super().__init__()
        mc = config.model
        self.config = config
        self.tracker = CommTracker()
        self.partition = PipelinePartition.balanced(mc.num_layers, config.pp)

        self.token_embedding = Embedding(mc.vocab_size, mc.hidden, rng, mc.init_std)
        self.position_embedding = Embedding(mc.max_seq_len, mc.hidden, rng, mc.init_std)
        self.embed_ln = LayerNorm(mc.hidden)
        self.embed_dropout = Dropout(mc.dropout, rng)
        self.layers = ModuleList(
            ParallelTransformerLayer(mc, config.tp, rng) for _ in range(mc.num_layers)
        )

        # Per-site compressor instances. Sparsification/quantization are
        # stateless but AE holds learnable weights per site, so each site
        # gets its own object (seeded distinctly for Random-K).
        self._site_compressors: dict[str, Compressor] = {}
        scheme = config.scheme
        if scheme != "w/o":
            for layer_idx in sorted(config.policy.layers):
                if config.tp > 1:
                    for site in ("attn", "mlp"):
                        key = f"layer{layer_idx}.{site}"
                        self._site_compressors[key] = build_compressor(
                            scheme, mc.hidden, seed=config.seed * 1000 + layer_idx * 2 + (site == "mlp")
                        )
            for b, last_layer in enumerate(self.partition.boundaries()):
                if config.policy.boundary_compressed(last_layer):
                    key = f"boundary{b}"
                    self._site_compressors[key] = build_compressor(
                        scheme, mc.hidden, seed=config.seed * 1000 + 500 + b
                    )
        self._register_compressor_params()
        self._identity = NoCompressor()

    def _register_compressor_params(self) -> None:
        # Enumerate with stable indices: an `is`-check against comp.encoder
        # names every non-encoder parameter "decoder", so a compressor with
        # a third parameter (or without an `encoder` attribute) registers
        # colliding names and silently drops weights from state_dict().
        for key, comp in sorted(self._site_compressors.items()):
            for i, p in enumerate(comp.parameters()):
                if p is getattr(comp, "encoder", None):
                    suffix = "encoder"
                elif p is getattr(comp, "decoder", None):
                    suffix = "decoder"
                else:
                    suffix = f"param{i}"
                name = f"compressor.{key}.{suffix}"
                if name in self._parameters:
                    raise ValueError(
                        f"duplicate compressor parameter name {name!r} "
                        f"(site {key!r}, parameter index {i})"
                    )
                self.add_parameter(name, p)

    # ------------------------------------------------------------------
    def site_compressor(self, key: str) -> Compressor:
        return self._site_compressors.get(key, self._identity)

    @property
    def compressor_parameter_names(self) -> list[str]:
        return [n for n, _ in self.named_parameters() if n.startswith("compressor.")]

    def model_state_dict(self) -> dict[str, np.ndarray]:
        """State dict *without* compressor parameters (Table 8: the AE can be
        dropped after pre-training)."""
        return {
            n: a for n, a in self.state_dict().items() if not n.startswith("compressor.")
        }

    # ------------------------------------------------------------------
    def forward(self, input_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> Tensor:
        input_ids = np.asarray(input_ids)
        b, s = input_ids.shape
        mc = self.config.model
        if s > mc.max_seq_len:
            raise ValueError(f"sequence length {s} exceeds max {mc.max_seq_len}")
        pos = np.arange(s)[None, :].repeat(b, axis=0)
        x = self.token_embedding(input_ids) + self.position_embedding(pos)
        x = self.embed_dropout(self.embed_ln(x))
        mask4d = None
        if attention_mask is not None:
            mask4d = (np.asarray(attention_mask) == 0)[:, None, None, :]

        boundaries = set(self.partition.boundaries())
        boundary_idx = 0
        for layer_idx, layer in enumerate(self.layers):
            attn_c = self.site_compressor(f"layer{layer_idx}.attn")
            mlp_c = self.site_compressor(f"layer{layer_idx}.mlp")
            x = layer(
                x,
                self.tracker,
                mask4d,
                attn_compressor=attn_c,
                mlp_compressor=mlp_c,
                layer=layer_idx,
            )
            if layer_idx in boundaries:
                comp = self.site_compressor(f"boundary{boundary_idx}")
                x = pipeline_transfer(
                    x, comp, self.tracker, boundary=boundary_idx, layer=layer_idx
                )
                boundary_idx += 1
        return x


class ModelParallelBertClassifier(Module):
    """Model-parallel BERT with a classification/regression head (GLUE)."""

    def __init__(self, config: ModelParallelConfig, regression: bool = False):
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.regression = regression
        self.backbone = _ModelParallelBackbone(config, rng)
        num_out = 1 if regression else config.model.num_classes
        self.classifier = Linear(config.model.hidden, num_out, rng,
                                 init_std=config.model.init_std)

    @property
    def tracker(self) -> CommTracker:
        return self.backbone.tracker

    def forward(self, input_ids, attention_mask=None) -> Tensor:
        hidden = self.backbone(input_ids, attention_mask)
        return self.classifier(hidden[:, 0, :])

    def loss(self, input_ids, labels, attention_mask=None) -> Tensor:
        logits = self.forward(input_ids, attention_mask)
        if self.regression:
            return F.mse_loss(logits.reshape(-1), np.asarray(labels, dtype=np.float32))
        return F.cross_entropy(logits, np.asarray(labels))

    def predict(self, input_ids, attention_mask=None) -> np.ndarray:
        logits = self.forward(input_ids, attention_mask)
        if self.regression:
            return logits.data.reshape(-1)
        return logits.data.argmax(axis=-1)

    def load_backbone(self, state: dict[str, np.ndarray]) -> None:
        """Load a pre-trained backbone state dict, ignoring AE/head params.

        Mirrors the paper's Table 8 observation: "we only need to load the
        parameters of the BERT model to do fine-tuning, and the parameters
        of the AE can be ignored."
        """
        backbone_state = {
            k: v for k, v in state.items() if not k.startswith("compressor.")
        }
        self.backbone.load_state_dict(backbone_state, strict=False)


class ModelParallelBertPreTraining(Module):
    """Model-parallel BERT with the masked-language-model head."""

    IGNORE_INDEX = BertForPreTraining.IGNORE_INDEX

    def __init__(self, config: ModelParallelConfig):
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.backbone = _ModelParallelBackbone(config, rng)
        mc = config.model
        self.mlm_dense = Linear(mc.hidden, mc.hidden, rng, init_std=mc.init_std)
        self.mlm_ln = LayerNorm(mc.hidden)
        self.mlm_head = Linear(mc.hidden, mc.vocab_size, rng, init_std=mc.init_std)

    @property
    def tracker(self) -> CommTracker:
        return self.backbone.tracker

    def forward(self, input_ids, attention_mask=None) -> Tensor:
        hidden = self.backbone(input_ids, attention_mask)
        h = self.mlm_ln(F.gelu(self.mlm_dense(hidden)))
        return self.mlm_head(h)

    def loss(self, input_ids, mlm_labels, attention_mask=None) -> Tensor:
        logits = self.forward(input_ids, attention_mask)
        return F.cross_entropy(logits, np.asarray(mlm_labels), ignore_index=self.IGNORE_INDEX)

    def backbone_state_dict(self) -> dict[str, np.ndarray]:
        """Backbone weights without AE parameters, for fine-tuning handoff."""
        return self.backbone.model_state_dict()
