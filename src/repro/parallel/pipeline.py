"""Pipeline-parallel stage partitioning and schedule descriptions.

Megatron's default layer assignment balances transformer layers across
stages (§4.7: "every stage takes the same time in our scenario"); this
module provides that partition plus the schedule bookkeeping shared by
the real runtime (backend workers execute :func:`schedule_ops` verbatim)
and the performance simulator.

Two schedules are described:

- ``"gpipe"`` — all forwards, then all backwards (``F0..Fm-1 B0..Bm-1``
  on every stage). Peak in-flight activations: ``m`` microbatch graphs.
- ``"1f1b"`` — the non-interleaved one-forward-one-backward schedule
  (PipeDream-flush): stage ``s`` warms up with ``min(pp-1-s, m)``
  forwards, then alternates F/B, then drains the remaining backwards.
  Same makespan as GPipe, ``(m + pp - 1)(tf + tb)``, but the peak
  in-flight activation count drops to ``min(pp - s, m)`` and every
  steady-state boundary send overlaps a backward on the other side.

Both schedules run backwards in ascending microbatch order, so weight
gradients accumulate in the same order and the two schedules (and the
serial oracle) stay bitwise-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PipelinePartition",
    "ScheduleOp",
    "SCHEDULES",
    "pipeline_stages",
    "gpipe_iteration_slots",
    "iteration_slots",
    "schedule_ops",
    "peak_inflight_microbatches",
]

#: Valid values of ``ModelParallelConfig.pipeline_schedule``.
SCHEDULES = ("gpipe", "1f1b")


@dataclass(frozen=True)
class PipelinePartition:
    """Contiguous assignment of ``num_layers`` layers to ``pp`` stages."""

    num_layers: int
    pp: int
    stages: tuple[tuple[int, ...], ...]

    @staticmethod
    def balanced(num_layers: int, pp: int) -> "PipelinePartition":
        """Balance layer counts; earlier stages get the remainder layers."""
        if pp <= 0 or num_layers <= 0:
            raise ValueError("num_layers and pp must be positive")
        if pp > num_layers:
            raise ValueError(f"cannot split {num_layers} layers into {pp} stages")
        base, rem = divmod(num_layers, pp)
        stages, start = [], 0
        for s in range(pp):
            count = base + (1 if s < rem else 0)
            stages.append(tuple(range(start, start + count)))
            start += count
        return PipelinePartition(num_layers, pp, tuple(stages))

    def stage_of(self, layer: int) -> int:
        """Stage index hosting ``layer``."""
        for s, layers in enumerate(self.stages):
            if layer in layers:
                return s
        raise ValueError(f"layer {layer} not in partition of {self.num_layers}")

    def boundaries(self) -> list[int]:
        """Last layer index of each non-final stage (the PP cut points)."""
        return [stage[-1] for stage in self.stages[:-1]]

    def layers_of(self, stage: int) -> tuple[int, ...]:
        return self.stages[stage]

    @property
    def num_boundaries(self) -> int:
        return self.pp - 1


def pipeline_stages(num_layers: int, pp: int) -> PipelinePartition:
    """Convenience alias for :meth:`PipelinePartition.balanced`."""
    return PipelinePartition.balanced(num_layers, pp)


def gpipe_iteration_slots(num_microbatches: int, pp: int) -> int:
    """Number of sequential stage-slots in one GPipe iteration.

    A stage processes ``m`` microbatches; the pipeline drains after
    ``m + p - 1`` slots (per direction). This is the (m-1)/n + 1 factor in
    the paper's Eq. (3) when expressed per-microbatch.
    """
    if num_microbatches <= 0 or pp <= 0:
        raise ValueError("num_microbatches and pp must be positive")
    return num_microbatches + pp - 1


@dataclass(frozen=True)
class ScheduleOp:
    """One unit of per-stage pipeline work: a forward or backward pass.

    Workers execute these verbatim, so a malformed op is a distributed
    bug waiting on a peer that will never answer — validated at
    construction (and re-verified wholesale by the DYN005 schedule
    checker in :mod:`repro.lint.schedule_check`).
    """

    kind: str  # "F" | "B"
    microbatch: int

    def __post_init__(self) -> None:
        if self.kind not in ("F", "B"):
            raise ValueError(f"ScheduleOp kind must be 'F' or 'B', got {self.kind!r}")
        if self.microbatch < 0:
            raise ValueError(f"ScheduleOp microbatch must be >= 0, got {self.microbatch}")


def _check_schedule(schedule: str) -> None:
    if schedule not in SCHEDULES:
        raise ValueError(
            f"unknown pipeline schedule {schedule!r}; valid: {list(SCHEDULES)}"
        )


def iteration_slots(schedule: str, num_microbatches: int, pp: int) -> int:
    """Sequential stage-slots per direction of one iteration.

    GPipe and non-interleaved 1F1B share the same makespan — 1F1B's win
    is peak in-flight memory and comm/compute overlap, not raw bubble
    slots (the bubble only shrinks with interleaved virtual stages).
    """
    _check_schedule(schedule)
    return gpipe_iteration_slots(num_microbatches, pp)


def warmup_depth(schedule: str, pp: int, stage: int, num_microbatches: int) -> int:
    """Forwards stage ``stage`` runs before its first backward."""
    _check_schedule(schedule)
    if schedule == "gpipe":
        return num_microbatches
    return min(pp - 1 - stage, num_microbatches)


def schedule_ops(schedule: str, pp: int, stage: int,
                 num_microbatches: int) -> list[ScheduleOp]:
    """The exact F/B op sequence stage ``stage`` executes in one iteration.

    Backend workers run this list verbatim; forwards and backwards are
    each issued in ascending microbatch order under both schedules, which
    is what keeps gradient accumulation (and stateful compressors' RNG /
    residual streams) bitwise-identical across schedules and backends.
    """
    m = num_microbatches
    if m <= 0 or pp <= 0:
        raise ValueError("num_microbatches and pp must be positive")
    if not 0 <= stage < pp:
        raise ValueError(f"stage {stage} out of range for pp={pp}")
    _check_schedule(schedule)
    if schedule == "gpipe":
        return [ScheduleOp("F", i) for i in range(m)] + \
               [ScheduleOp("B", i) for i in range(m)]
    w = warmup_depth(schedule, pp, stage, m)
    ops = [ScheduleOp("F", i) for i in range(w)]
    bwd = 0
    for fwd in range(w, m):  # steady state: one forward, one backward
        ops.append(ScheduleOp("F", fwd))
        ops.append(ScheduleOp("B", bwd))
        bwd += 1
    ops.extend(ScheduleOp("B", i) for i in range(bwd, m))  # drain
    return ops


def peak_inflight_microbatches(schedule: str, pp: int, stage: int,
                               num_microbatches: int) -> int:
    """Most microbatch graphs stage ``stage`` holds live at once.

    The memory headline of 1F1B: a stage never holds more than
    ``min(pp - stage, m)`` activation graphs, versus GPipe's ``m``.
    """
    _check_schedule(schedule)
    m = num_microbatches
    if schedule == "gpipe":
        return m
    return min(pp - stage, m)
