"""Pipeline-parallel stage partitioning and the GPipe schedule description.

Megatron's default layer assignment balances transformer layers across
stages (§4.7: "every stage takes the same time in our scenario"); this
module provides that partition plus the schedule bookkeeping the
performance simulator uses to compute per-iteration time and bubble
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PipelinePartition", "pipeline_stages", "gpipe_iteration_slots"]


@dataclass(frozen=True)
class PipelinePartition:
    """Contiguous assignment of ``num_layers`` layers to ``pp`` stages."""

    num_layers: int
    pp: int
    stages: tuple[tuple[int, ...], ...]

    @staticmethod
    def balanced(num_layers: int, pp: int) -> "PipelinePartition":
        """Balance layer counts; earlier stages get the remainder layers."""
        if pp <= 0 or num_layers <= 0:
            raise ValueError("num_layers and pp must be positive")
        if pp > num_layers:
            raise ValueError(f"cannot split {num_layers} layers into {pp} stages")
        base, rem = divmod(num_layers, pp)
        stages, start = [], 0
        for s in range(pp):
            count = base + (1 if s < rem else 0)
            stages.append(tuple(range(start, start + count)))
            start += count
        return PipelinePartition(num_layers, pp, tuple(stages))

    def stage_of(self, layer: int) -> int:
        """Stage index hosting ``layer``."""
        for s, layers in enumerate(self.stages):
            if layer in layers:
                return s
        raise ValueError(f"layer {layer} not in partition of {self.num_layers}")

    def boundaries(self) -> list[int]:
        """Last layer index of each non-final stage (the PP cut points)."""
        return [stage[-1] for stage in self.stages[:-1]]

    def layers_of(self, stage: int) -> tuple[int, ...]:
        return self.stages[stage]

    @property
    def num_boundaries(self) -> int:
        return self.pp - 1


def pipeline_stages(num_layers: int, pp: int) -> PipelinePartition:
    """Convenience alias for :meth:`PipelinePartition.balanced`."""
    return PipelinePartition.balanced(num_layers, pp)


def gpipe_iteration_slots(num_microbatches: int, pp: int) -> int:
    """Number of sequential stage-slots in one GPipe iteration.

    A stage processes ``m`` microbatches; the pipeline drains after
    ``m + p - 1`` slots (per direction). This is the (m-1)/n + 1 factor in
    the paper's Eq. (3) when expressed per-microbatch.
    """
    if num_microbatches <= 0 or pp <= 0:
        raise ValueError("num_microbatches and pp must be positive")
    return num_microbatches + pp - 1
