"""repro — reproduction of *Does Compressing Activations Help Model Parallel
Training?* (Bian, Li, Wang, Xing, Venkataraman; MLSys 2024).

Subpackages
-----------
``repro.tensor``       NumPy reverse-mode autodiff engine.
``repro.nn``           Transformer / BERT model zoo.
``repro.optim``        SGD / Adam / AdamW, LR schedules.
``repro.compression``  The paper's compression algorithms + notation table.
``repro.parallel``     In-process tensor/pipeline model-parallel runtime.
``repro.simulator``    Calibrated hardware performance simulator.
``repro.perfmodel``    §4.7 analytical cost model.
``repro.data``         Synthetic GLUE suite and MLM corpus.
``repro.training``     Fine-tune / pre-train loops and checkpointing.
``repro.analysis``     Low-rank (SVD) analysis (Fig. 2).
``repro.experiments``  Table/figure regeneration harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
