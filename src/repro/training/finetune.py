"""High-level fine-tune-and-evaluate entry point used by the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression import CompressionPolicy
from repro.data.tasks import GLUE_TASKS, make_task
from repro.data.topics import TopicModel
from repro.nn.transformer import TransformerConfig
from repro.obs.fidelity import FidelityProbe
from repro.obs.metrics import NULL_RECORDER, RunRecorder
from repro.parallel import ModelParallelBertClassifier, ModelParallelConfig
from repro.training.trainer import FineTuneTrainer, TrainConfig, evaluate_task

__all__ = ["FinetuneResult", "finetune_on_task", "default_accuracy_model"]


@dataclass
class FinetuneResult:
    """Scores of one (task × scheme) fine-tuning run."""

    task: str
    scheme: str
    scores: dict[str, float]  # split name -> metric ×100
    final_loss: float

    @property
    def primary(self) -> float:
        """Single headline number (mean over eval splits, e.g. MNLI m/mm)."""
        return float(np.mean(list(self.scores.values())))


def default_accuracy_model(
    num_classes: int = 2,
    seed: int = 0,
    num_layers: int = 4,
) -> TransformerConfig:
    """The scaled-down BERT used for (real) accuracy experiments.

    DESIGN.md §2: accuracy phenomena are layer-relative and qualitative, so
    a 4-layer / hidden-64 model stands in for BERT-Large; the performance
    simulator (not this model) uses the true BERT-Large dimensions.
    """
    return TransformerConfig(
        vocab_size=128,
        max_seq_len=32,
        hidden=64,
        num_layers=num_layers,
        num_heads=4,
        dropout=0.0,
        num_classes=num_classes,
        seed=seed,
        # Larger-than-BERT init: the scaled-down model needs stronger
        # attention logits at init to learn the relational (XOR) tasks
        # within a CPU-scale step budget.
        init_std=0.08,
    )


def finetune_on_task(
    task_name: str,
    scheme: str = "w/o",
    tp: int = 2,
    pp: int = 2,
    policy: CompressionPolicy | None = None,
    topics: TopicModel | None = None,
    train_config: TrainConfig | None = None,
    seed: int = 0,
    num_layers: int = 4,
    backbone_state: dict[str, np.ndarray] | None = None,
    recorder: RunRecorder = NULL_RECORDER,
    probe: FidelityProbe | None = None,
    collector=None,
    monitor=None,
) -> FinetuneResult:
    """Fine-tune a fresh (or pre-trained) MP model on one synthetic GLUE task.

    Parameters
    ----------
    backbone_state:
        Optional pre-trained backbone weights (AE params are ignored on
        load — the Table 8 workflow).
    recorder:
        Optional :class:`~repro.obs.metrics.RunRecorder` capturing per-step
        loss / lr / grad-norm and phase timings (no-op by default).
    probe:
        Optional :class:`~repro.obs.fidelity.FidelityProbe`; when given it
        is attached to the model's :class:`CommTracker` and receives every
        compressed round-trip at every TP site and PP boundary.
    collector / monitor:
        Optional live-telemetry pair (:class:`~repro.obs.telemetry.Collector`,
        :class:`~repro.obs.telemetry.HealthMonitor`) serviced once per
        training step; see :class:`FineTuneTrainer`.
    """
    spec = GLUE_TASKS[task_name]
    model_cfg = default_accuracy_model(
        num_classes=max(spec.num_classes, 2), seed=seed, num_layers=num_layers
    )
    mp_cfg = ModelParallelConfig(
        model_cfg, tp=tp, pp=pp, scheme=scheme, policy=policy, seed=seed
    )
    model = ModelParallelBertClassifier(mp_cfg, regression=spec.regression)
    if backbone_state is not None:
        model.load_backbone(backbone_state)
    if probe is not None:
        model.tracker.probe = probe

    train, evals = make_task(task_name, topics=topics, seq_len=model_cfg.max_seq_len // 2,
                             seed=seed)
    if train_config is None:
        train_config = TrainConfig(epochs=spec.epochs, lr=1e-3, seed=seed)

    # `backend="inproc"` stays on the historical in-process path; anything
    # else (e.g. REPRO_BACKEND=mp) trains through the execution backend.
    # Evaluation always runs on the parent model, whose weights the backend
    # keeps current after every optimizer step.
    backend = None
    if mp_cfg.backend != "inproc":
        from repro.parallel.backend import create_backend

        backend = create_backend(mp_cfg.backend, model)
    try:
        trainer = FineTuneTrainer(model, train_config, recorder=recorder,
                                  backend=backend, collector=collector,
                                  monitor=monitor)
        history = trainer.train(train)
    finally:
        if backend is not None:
            backend.close()

    scores = {
        split: evaluate_task(model, ds) for split, ds in evals.items()
    }
    return FinetuneResult(task_name, scheme, scores, history[-1] if history else float("nan"))
