"""Fine-tuning trainer and task evaluation.

Works with any model exposing the ``loss(input_ids, labels, attention_mask)``
/ ``predict(input_ids, attention_mask)`` protocol — both the serial
:class:`~repro.nn.BertForSequenceClassification` and the model-parallel
:class:`~repro.parallel.ModelParallelBertClassifier` qualify, so the same
trainer drives baseline and compressed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.loaders import batch_iter
from repro.data.metrics import METRICS
from repro.data.tasks import GlueDataset
from repro.obs.metrics import NULL_RECORDER, RunRecorder
from repro.optim import Adam, WarmupLinearLR
from repro.tensor import no_grad

__all__ = ["TrainConfig", "FineTuneTrainer", "evaluate_task"]


@dataclass
class TrainConfig:
    """Hyper-parameters for one fine-tuning run."""

    lr: float = 1e-3
    epochs: int = 4
    batch_size: int = 32
    warmup_frac: float = 0.1
    max_grad_norm: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if not 0.0 <= self.warmup_frac <= 1.0:
            raise ValueError(f"warmup_frac must be in [0, 1], got {self.warmup_frac}")
        if self.max_grad_norm <= 0:
            raise ValueError(f"max_grad_norm must be positive, got {self.max_grad_norm}")


class FineTuneTrainer:
    """Adam + linear-warmup trainer over a materialized dataset.

    An optional :class:`~repro.parallel.backend.ExecutionBackend` routes the
    forward/backward through worker processes (the mp backend); the default
    (``backend=None``) keeps the historical in-process path, loss/grads
    bitwise-identical by design.
    """

    def __init__(self, model, config: TrainConfig, recorder: RunRecorder = NULL_RECORDER,
                 backend=None):
        self.model = model
        self.config = config
        self.optimizer = Adam(model.parameters(), lr=config.lr)
        self.history: list[float] = []
        self.recorder = recorder
        self.backend = backend

    def _backend_step(self, batch) -> float:
        """One step through the execution backend's step protocol."""
        rec = self.recorder
        cfg = self.config
        self.optimizer.zero_grad()
        with rec.timer("forward"):
            result = self.backend.train_step(batch.input_ids, batch.labels,
                                             batch.attention_mask)
        with rec.timer("backward"):
            self.backend.apply_grads(self.model, result)
        with rec.timer("optimizer"):
            if cfg.max_grad_norm:
                grad_norm = self.optimizer.clip_grad_norm(cfg.max_grad_norm)
                rec.gauge("grad_norm", grad_norm)
            self.optimizer.step()
            self.backend.sync_weights(self.model)
        return result.loss

    def _inproc_step(self, batch) -> float:
        rec = self.recorder
        cfg = self.config
        self.optimizer.zero_grad()
        with rec.timer("forward"):
            loss = self.model.loss(batch.input_ids, batch.labels,
                                   batch.attention_mask)
        with rec.timer("backward"):
            loss.backward()
        with rec.timer("optimizer"):
            if cfg.max_grad_norm:
                grad_norm = self.optimizer.clip_grad_norm(cfg.max_grad_norm)
                rec.gauge("grad_norm", grad_norm)
            self.optimizer.step()
        return loss.item()

    def train(self, dataset: GlueDataset) -> list[float]:
        """Run the configured number of epochs; returns per-step losses."""
        cfg = self.config
        rec = self.recorder
        steps_per_epoch = max(1, int(np.ceil(len(dataset) / cfg.batch_size)))
        total_steps = steps_per_epoch * cfg.epochs
        schedule = WarmupLinearLR(
            self.optimizer,
            warmup_steps=max(1, int(cfg.warmup_frac * total_steps)),
            total_steps=total_steps,
        )
        rng = np.random.default_rng(cfg.seed)
        self.model.train()
        for _ in range(cfg.epochs):
            for batch in batch_iter(dataset, cfg.batch_size, rng=rng):
                with rec.step():
                    if self.backend is not None:
                        loss_val = self._backend_step(batch)
                    else:
                        loss_val = self._inproc_step(batch)
                    rec.gauge("lr", schedule.step())
                    rec.gauge("loss", loss_val)
                    rec.count("samples", len(batch.labels))
                    self.history.append(loss_val)
        return self.history


def evaluate_task(model, dataset: GlueDataset, batch_size: int = 64) -> float:
    """Compute the dataset's task metric (×100, GLUE convention)."""
    metric_fn = METRICS[dataset.spec.metric]
    preds, labels = [], []
    model.eval()
    with no_grad():
        for batch in batch_iter(dataset, batch_size):
            preds.append(model.predict(batch.input_ids, batch.attention_mask))
            labels.append(batch.labels)
    model.train()
    score = metric_fn(np.concatenate(preds), np.concatenate(labels))
    return 100.0 * score
