"""Fine-tuning trainer and task evaluation.

Works with any model exposing the ``loss(input_ids, labels, attention_mask)``
/ ``predict(input_ids, attention_mask)`` protocol — both the serial
:class:`~repro.nn.BertForSequenceClassification` and the model-parallel
:class:`~repro.parallel.ModelParallelBertClassifier` qualify, so the same
trainer drives baseline and compressed runs.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.data.loaders import batch_iter
from repro.data.metrics import METRICS
from repro.data.tasks import GlueDataset
from repro.obs.metrics import NULL_RECORDER, RunRecorder
from repro.optim import Adam, WarmupLinearLR
from repro.tensor import no_grad
from repro.training.checkpoint import load_trainer_state, save_trainer_state

__all__ = ["TrainConfig", "FineTuneTrainer", "evaluate_task"]


@dataclass
class TrainConfig:
    """Hyper-parameters for one fine-tuning run."""

    lr: float = 1e-3
    epochs: int = 4
    batch_size: int = 32
    warmup_frac: float = 0.1
    max_grad_norm: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if not 0.0 <= self.warmup_frac <= 1.0:
            raise ValueError(f"warmup_frac must be in [0, 1], got {self.warmup_frac}")
        if self.max_grad_norm <= 0:
            raise ValueError(f"max_grad_norm must be positive, got {self.max_grad_norm}")


class FineTuneTrainer:
    """Adam + linear-warmup trainer over a materialized dataset.

    An optional :class:`~repro.parallel.backend.ExecutionBackend` routes the
    forward/backward through worker processes (the mp backend); the default
    (``backend=None``) keeps the historical in-process path, loss/grads
    bitwise-identical by design.

    An optional live-telemetry pair — a
    :class:`~repro.obs.telemetry.Collector` and a
    :class:`~repro.obs.telemetry.HealthMonitor` — is serviced once per
    step: the backend's side channel is drained into the collector
    (inproc backends yield nothing), the step loss is observed on the
    pooled series, and the monitor's rules are checked.  Both default to
    ``None`` and cost nothing when absent.
    """

    def __init__(self, model, config: TrainConfig, recorder: RunRecorder = NULL_RECORDER,
                 backend=None, collector=None, monitor=None):
        self.model = model
        self.config = config
        self.optimizer = Adam(model.parameters(), lr=config.lr)
        self.history: list[float] = []
        self.recorder = recorder
        self.backend = backend
        self.collector = collector
        self.monitor = monitor
        self.schedule = None
        self.rng = None
        self.global_step = 0
        self._epoch = 0
        self._step_in_epoch = 0
        self._epoch_rng_state: dict | None = None

    def _observe_telemetry(self, loss_val: float) -> None:
        """Per-step collector/monitor service (no-op when not configured)."""
        coll = self.collector
        if coll is None:
            return
        if self.backend is not None:
            coll.drain(self.backend)
        # The pooled loss series exists for both backends: inproc runs get
        # loss health rules (NaN/divergence) even without a side channel.
        coll.observe(None, "loss", loss_val)
        if self.monitor is not None:
            self.monitor.check(self.global_step)

    def _backend_step(self, batch) -> float:
        """One step through the execution backend's step protocol."""
        rec = self.recorder
        cfg = self.config
        self.optimizer.zero_grad()
        with rec.timer("forward"):
            result = self.backend.train_step(batch.input_ids, batch.labels,
                                             batch.attention_mask)
        with rec.timer("backward"):
            self.backend.apply_grads(self.model, result)
        with rec.timer("optimizer"):
            if cfg.max_grad_norm:
                grad_norm = self.optimizer.clip_grad_norm(cfg.max_grad_norm)
                rec.gauge("grad_norm", grad_norm)
            self.optimizer.step()
            self.backend.sync_weights(self.model)
        return result.loss

    def _inproc_step(self, batch) -> float:
        rec = self.recorder
        cfg = self.config
        self.optimizer.zero_grad()
        with rec.timer("forward"):
            loss = self.model.loss(batch.input_ids, batch.labels,
                                   batch.attention_mask)
        with rec.timer("backward"):
            loss.backward()
        with rec.timer("optimizer"):
            if cfg.max_grad_norm:
                grad_norm = self.optimizer.clip_grad_norm(cfg.max_grad_norm)
                rec.gauge("grad_norm", grad_norm)
            self.optimizer.step()
        return loss.item()

    def _collect_runtime_state(self) -> dict:
        """Compressor runtime state from wherever it actually lives.

        With an mp backend the advancing state (EF residuals, Random-K
        streams) lives in the worker replicas, so it must be pulled over
        the control plane; inproc (or no backend) reads the local model.
        """
        if self.backend is not None:
            return self.backend.runtime_state()
        backbone = getattr(self.model, "backbone", None)
        return backbone.runtime_state_dict() if backbone is not None else {}

    def save_state(self, path: str) -> None:
        """Write a full mid-run snapshot (resume with ``resume_from``)."""
        if self.schedule is None or self._epoch_rng_state is None:
            raise RuntimeError("save_state called before any training step")
        save_trainer_state(
            path,
            model_state=self.model.state_dict(),
            optimizer_state=self.optimizer.state_dict(),
            schedule_state=self.schedule.state_dict(),
            data_rng_state=self._epoch_rng_state,
            runtime_state=self._collect_runtime_state(),
            global_step=self.global_step,
            epoch=self._epoch,
            step_in_epoch=self._step_in_epoch,
        )

    def _restore(self, path: str) -> tuple[int, int]:
        """Load a snapshot; returns (start_epoch, steps to skip in it)."""
        state = load_trainer_state(path)
        self.model.load_state_dict(state.model_state)
        self.optimizer.load_state_dict(state.optimizer_state)
        self.schedule.load_state_dict(state.schedule_state)
        # The snapshot's RNG state was captured at the interrupted epoch's
        # start, so replaying batch_iter from it re-draws the identical
        # shuffle; the already-consumed batches are skipped by count.
        self.rng.bit_generator.state = copy.deepcopy(state.data_rng_state)
        self.global_step = state.global_step
        backbone = getattr(self.model, "backbone", None)
        if backbone is not None:
            backbone.load_runtime_state_dict(state.runtime_state)
        if self.backend is not None:
            self.backend.load_runtime_state(state.runtime_state)
            self.backend.sync_weights(self.model)
        return state.epoch, state.step_in_epoch

    def train(self, dataset: GlueDataset, *, checkpoint_path: str | None = None,
              checkpoint_every: int | None = None,
              resume_from: str | None = None,
              max_steps: int | None = None) -> list[float]:
        """Run the configured number of epochs; returns per-step losses.

        ``checkpoint_path``/``checkpoint_every`` write a full trainer
        snapshot every N global steps; ``resume_from`` restores one and
        continues — bitwise-identical to the uninterrupted run
        (tests/training/test_chaos_recovery.py).  ``max_steps`` stops
        after that many global steps (used by tests to emulate a kill).
        """
        cfg = self.config
        rec = self.recorder
        steps_per_epoch = max(1, int(np.ceil(len(dataset) / cfg.batch_size)))
        total_steps = steps_per_epoch * cfg.epochs
        self.schedule = WarmupLinearLR(
            self.optimizer,
            warmup_steps=max(1, int(cfg.warmup_frac * total_steps)),
            total_steps=total_steps,
        )
        self.rng = np.random.default_rng(cfg.seed)
        self.global_step = 0
        start_epoch = skip_steps = 0
        if resume_from is not None:
            start_epoch, skip_steps = self._restore(resume_from)
        self.model.train()
        for epoch in range(start_epoch, cfg.epochs):
            # Captured *before* batch_iter draws this epoch's shuffle: a
            # resume from mid-epoch restores this state and replays the
            # identical batch order.
            epoch_rng_state = copy.deepcopy(self.rng.bit_generator.state)
            skip = skip_steps if epoch == start_epoch else 0
            for step_in_epoch, batch in enumerate(
                    batch_iter(dataset, cfg.batch_size, rng=self.rng)):
                if step_in_epoch < skip:
                    continue
                with rec.step():
                    if self.backend is not None:
                        loss_val = self._backend_step(batch)
                    else:
                        loss_val = self._inproc_step(batch)
                    rec.gauge("lr", self.schedule.step())
                    rec.gauge("loss", loss_val)
                    rec.count("samples", len(batch.labels))
                    self.history.append(loss_val)
                self._observe_telemetry(loss_val)
                self.global_step += 1
                self._epoch = epoch
                self._step_in_epoch = step_in_epoch + 1
                self._epoch_rng_state = epoch_rng_state
                if (checkpoint_path is not None and checkpoint_every
                        and self.global_step % checkpoint_every == 0):
                    self.save_state(checkpoint_path)
                if max_steps is not None and self.global_step >= max_steps:
                    return self.history
        return self.history


def evaluate_task(model, dataset: GlueDataset, batch_size: int = 64) -> float:
    """Compute the dataset's task metric (×100, GLUE convention)."""
    metric_fn = METRICS[dataset.spec.metric]
    preds, labels = [], []
    model.eval()
    with no_grad():
        for batch in batch_iter(dataset, batch_size):
            preds.append(model.predict(batch.input_ids, batch.attention_mask))
            labels.append(batch.labels)
    model.train()
    score = metric_fn(np.concatenate(preds), np.concatenate(labels))
    return 100.0 * score
