"""Masked-language-model pre-training loop (§4.4's workload)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.pretraining import MLMCorpus
from repro.obs.metrics import NULL_RECORDER, RunRecorder
from repro.optim import Adam, WarmupLinearLR

__all__ = ["PretrainConfig", "run_pretraining"]


@dataclass
class PretrainConfig:
    """Hyper-parameters for one MLM pre-training run."""

    steps: int = 300
    batch_size: int = 32
    lr: float = 1e-3
    warmup_frac: float = 0.1
    max_grad_norm: float = 1.0
    micro_batches: int = 1  # gradient accumulation (global batch = bs × mb)

    def __post_init__(self):
        if self.steps <= 0 or self.batch_size <= 0 or self.micro_batches <= 0:
            raise ValueError("steps, batch_size and micro_batches must be positive")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if not 0.0 <= self.warmup_frac <= 1.0:
            raise ValueError(f"warmup_frac must be in [0, 1], got {self.warmup_frac}")


def run_pretraining(
    model,
    corpus: MLMCorpus,
    config: PretrainConfig,
    recorder: RunRecorder = NULL_RECORDER,
) -> list[float]:
    """Pre-train ``model`` (an MLM-headed BERT) on ``corpus``.

    ``micro_batches > 1`` performs gradient accumulation, the numerics of
    the paper's micro-batch-128 / global-batch-1024 pipeline setting.
    Returns the per-step loss history.
    """
    optimizer = Adam(model.parameters(), lr=config.lr)
    schedule = WarmupLinearLR(
        optimizer,
        warmup_steps=max(1, int(config.warmup_frac * config.steps)),
        total_steps=config.steps,
    )
    history: list[float] = []
    model.train()
    for _ in range(config.steps):
        with recorder.step():
            optimizer.zero_grad()
            step_loss = 0.0
            for _ in range(config.micro_batches):
                batch = corpus.batch(config.batch_size)
                with recorder.timer("forward"):
                    loss = model.loss(batch.input_ids, batch.labels, batch.attention_mask)
                if config.micro_batches > 1:
                    loss = loss * (1.0 / config.micro_batches)
                with recorder.timer("backward"):
                    loss.backward()
                step_loss += loss.item()
                recorder.count("samples", config.batch_size)
            with recorder.timer("optimizer"):
                if config.max_grad_norm:
                    recorder.gauge("grad_norm", optimizer.clip_grad_norm(config.max_grad_norm))
                optimizer.step()
            recorder.gauge("lr", schedule.step())
            recorder.gauge("loss", step_loss)
            history.append(step_loss)
    return history
