"""Checkpoint serialization to .npz."""

from __future__ import annotations

import os

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(state: dict[str, np.ndarray], path: str) -> None:
    """Write a state dict to ``path`` (npz). Dotted names are preserved."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path, **state)


def load_checkpoint(path: str) -> dict[str, np.ndarray]:
    """Load a state dict written by :func:`save_checkpoint`."""
    with np.load(path) as data:
        return {k: data[k].copy() for k in data.files}
