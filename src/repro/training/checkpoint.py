"""Checkpoint serialization to .npz.

Two layers:

- :func:`save_checkpoint` / :func:`load_checkpoint` — a flat
  ``{name: array}`` state dict, unchanged since v0.
- :func:`save_trainer_state` / :func:`load_trainer_state` — the *full*
  mid-run trainer snapshot: model weights, optimizer slot buffers, LR
  scheduler step, the data-order RNG stream, training progress counters,
  and per-site compressor runtime state (error-feedback residuals,
  Random-K RNG streams).  Restoring all of it makes a run killed at step
  k and resumed from the step-k checkpoint finish bitwise-identical to
  an unkilled run (tests/training/test_chaos_recovery.py).

The trainer snapshot stays a plain ``allow_pickle=False`` npz: every
array travels as a real npz entry, and the nested structure (optimizer
slots, RNG states, runtime state) is carried by a single JSON document in
the ``meta`` entry, with arrays swapped for ``{"__array__": i}``
placeholders pointing at ``aux::{i}`` entries.  RNG bit-generator states
are dicts of (big) ints — JSON-safe without pickle.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint", "TrainerState",
           "save_trainer_state", "load_trainer_state"]

_ARRAY_KEY = "__array__"


def _npz_path(path: str) -> str:
    """The on-disk path ``np.savez`` actually writes for ``path``.

    ``np.savez`` appends ``.npz`` when the suffix is missing, so both save
    and load must normalize the same way or a round-trip through a bare
    ``"ckpt"`` path raises ``FileNotFoundError``.
    """
    return path if path.endswith(".npz") else path + ".npz"


def save_checkpoint(state: dict[str, np.ndarray], path: str) -> None:
    """Write a state dict to ``path`` (npz). Dotted names are preserved."""
    path = _npz_path(path)
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    np.savez(path, **state)


def load_checkpoint(path: str) -> dict[str, np.ndarray]:
    """Load a state dict written by :func:`save_checkpoint`.

    Accepts the same ``path`` that was passed to :func:`save_checkpoint`,
    with or without the ``.npz`` suffix.  The bare path is only taken as-is
    when it names a *file* — ``isfile``, not ``exists`` — so a directory
    that happens to share the checkpoint's name (``ckpt/`` next to
    ``ckpt.npz``) can't shadow it and send ``np.load`` into a confusing
    IsADirectoryError.
    """
    if not os.path.isfile(path):
        path = _npz_path(path)
    with np.load(path) as data:
        return {k: data[k].copy() for k in data.files}


# ---------------------------------------------------------------------------
# Full trainer snapshots


@dataclass
class TrainerState:
    """Everything a bitwise mid-run resume needs, as loaded from disk."""

    model_state: dict[str, np.ndarray]
    optimizer_state: dict
    schedule_state: dict
    data_rng_state: dict
    runtime_state: dict = field(default_factory=dict)
    global_step: int = 0
    epoch: int = 0
    step_in_epoch: int = 0


def _pack(node, arrays: list[np.ndarray]):
    """Replace every ndarray in a nested structure with a placeholder.

    Appends extracted arrays to ``arrays``; returns the JSON-able mirror.
    Scalars (including numpy scalars) pass through as native types.
    """
    if isinstance(node, np.ndarray):
        arrays.append(node)
        return {_ARRAY_KEY: len(arrays) - 1}
    if isinstance(node, dict):
        return {str(k): _pack(v, arrays) for k, v in node.items()}
    if isinstance(node, (list, tuple)):
        return [_pack(v, arrays) for v in node]
    if isinstance(node, (np.integer, np.floating, np.bool_)):
        return node.item()
    return node


def _unpack(node, arrays: dict[int, np.ndarray]):
    if isinstance(node, dict):
        if set(node) == {_ARRAY_KEY}:
            return arrays[int(node[_ARRAY_KEY])]
        return {k: _unpack(v, arrays) for k, v in node.items()}
    if isinstance(node, list):
        return [_unpack(v, arrays) for v in node]
    return node


def save_trainer_state(path: str, *, model_state: dict[str, np.ndarray],
                       optimizer_state: dict, schedule_state: dict,
                       data_rng_state: dict, runtime_state: dict | None = None,
                       global_step: int = 0, epoch: int = 0,
                       step_in_epoch: int = 0) -> None:
    """Write a full trainer snapshot (one pickle-free npz file)."""
    arrays: list[np.ndarray] = []
    meta = {
        "version": 1,
        "global_step": int(global_step),
        "epoch": int(epoch),
        "step_in_epoch": int(step_in_epoch),
        "optimizer": _pack(optimizer_state, arrays),
        "schedule": _pack(schedule_state, arrays),
        "data_rng": _pack(data_rng_state, arrays),
        "runtime": _pack(runtime_state or {}, arrays),
    }
    entries: dict[str, np.ndarray] = {
        f"model::{name}": arr for name, arr in model_state.items()
    }
    for i, arr in enumerate(arrays):
        entries[f"aux::{i}"] = arr
    entries["meta"] = np.asarray(json.dumps(meta))
    save_checkpoint(entries, path)


def load_trainer_state(path: str) -> TrainerState:
    """Load a snapshot written by :func:`save_trainer_state`."""
    entries = load_checkpoint(path)
    if "meta" not in entries:
        raise ValueError(
            f"{path!r} is not a trainer snapshot (no 'meta' entry); "
            "was it written by save_checkpoint instead of save_trainer_state?")
    meta = json.loads(str(entries["meta"][()]))
    arrays = {int(k.split("::", 1)[1]): v
              for k, v in entries.items() if k.startswith("aux::")}
    model_state = {k.split("::", 1)[1]: v
                   for k, v in entries.items() if k.startswith("model::")}
    return TrainerState(
        model_state=model_state,
        optimizer_state=_unpack(meta["optimizer"], arrays),
        schedule_state=_unpack(meta["schedule"], arrays),
        data_rng_state=_unpack(meta["data_rng"], arrays),
        runtime_state=_unpack(meta["runtime"], arrays),
        global_step=int(meta["global_step"]),
        epoch=int(meta["epoch"]),
        step_in_epoch=int(meta["step_in_epoch"]),
    )
