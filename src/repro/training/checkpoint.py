"""Checkpoint serialization to .npz."""

from __future__ import annotations

import os

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint"]


def _npz_path(path: str) -> str:
    """The on-disk path ``np.savez`` actually writes for ``path``.

    ``np.savez`` appends ``.npz`` when the suffix is missing, so both save
    and load must normalize the same way or a round-trip through a bare
    ``"ckpt"`` path raises ``FileNotFoundError``.
    """
    return path if path.endswith(".npz") else path + ".npz"


def save_checkpoint(state: dict[str, np.ndarray], path: str) -> None:
    """Write a state dict to ``path`` (npz). Dotted names are preserved."""
    path = _npz_path(path)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path, **state)


def load_checkpoint(path: str) -> dict[str, np.ndarray]:
    """Load a state dict written by :func:`save_checkpoint`.

    Accepts the same ``path`` that was passed to :func:`save_checkpoint`,
    with or without the ``.npz`` suffix.
    """
    if not os.path.exists(path):
        path = _npz_path(path)
    with np.load(path) as data:
        return {k: data[k].copy() for k in data.files}
