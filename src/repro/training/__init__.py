"""Training loops: GLUE fine-tuning and MLM pre-training."""

from repro.training.trainer import TrainConfig, FineTuneTrainer, evaluate_task
from repro.training.pretrain import PretrainConfig, run_pretraining
from repro.training.finetune import FinetuneResult, finetune_on_task
from repro.training.checkpoint import save_checkpoint, load_checkpoint

__all__ = [
    "TrainConfig",
    "FineTuneTrainer",
    "evaluate_task",
    "PretrainConfig",
    "run_pretraining",
    "FinetuneResult",
    "finetune_on_task",
    "save_checkpoint",
    "load_checkpoint",
]
