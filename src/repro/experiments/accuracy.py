"""Training-backed accuracy experiments (Tables 5, 8, 15–16; Fig. 4).

All runs use the scaled-down BERT (4 layers, hidden 64 — DESIGN.md §2)
under the real model-parallel runtime with TP=2, PP=2 (the paper's Table 5
setting) and the default "compress the last half of the layers" policy.
Like the paper, fine-tuning starts from a *pre-trained* backbone: the
backbone is MLM-pre-trained once without compression (Table 5) or per
scheme (Table 8), then fine-tuned per (task × scheme).

``REPRO_PROFILE=quick`` restricts tasks/schemes for smoke runs.
"""

from __future__ import annotations

import os

import numpy as np

from repro.compression import CompressionPolicy
from repro.data.pretraining import MLMCorpus
from repro.data.tasks import GLUE_TASKS, glue_score
from repro.obs.metrics import NULL_RECORDER, RunRecorder
from repro.parallel import ModelParallelBertPreTraining, ModelParallelConfig
from repro.training.finetune import default_accuracy_model, finetune_on_task
from repro.training.pretrain import PretrainConfig, run_pretraining
from repro.training.trainer import TrainConfig

__all__ = [
    "ACCURACY_SCHEMES",
    "profile",
    "pretrain_backbone",
    "table5_glue_accuracy",
    "table8_pretrain_accuracy",
    "fig4a_num_layers",
    "fig4b_location",
    "tables15_16_accuracy",
]

#: Table 5's scheme rows (the paper omits Random-K from the accuracy
#: table body except implicitly; we include R1 to document the collapse).
ACCURACY_SCHEMES = ["w/o", "A1", "A2", "T1", "T2", "T3", "T4", "Q1", "Q2"]
ALL_TASKS = list(GLUE_TASKS)

_QUICK_TASKS = ["QQP", "SST-2", "CoLA", "RTE"]
_QUICK_SCHEMES = ["w/o", "A2", "T1", "Q2"]

#: Number of layers and default accuracy-model shape (kept in one place so
#: policies in this module agree with the model).
NUM_LAYERS = 4
DEFAULT_POLICY = CompressionPolicy.last_k(NUM_LAYERS, NUM_LAYERS // 2)

_BACKBONE_CACHE: dict[tuple, dict[str, np.ndarray]] = {}


def profile() -> str:
    """The active experiment profile: "full" or "quick" (default).

    Set ``REPRO_PROFILE=full`` to regenerate every row/column of the
    accuracy tables (minutes per table); the quick profile covers a
    representative (task × scheme) subset so the benchmark suite stays
    runnable end-to-end.
    """
    return os.environ.get("REPRO_PROFILE", "quick")


def _tasks_schemes(tasks, schemes):
    if tasks is None:
        tasks = ALL_TASKS if profile() == "full" else _QUICK_TASKS
    if schemes is None:
        schemes = ACCURACY_SCHEMES if profile() == "full" else _QUICK_SCHEMES
    return tasks, schemes


def pretrain_backbone(
    scheme: str = "w/o",
    steps: int = 400,
    seed: int = 0,
    tp: int = 2,
    pp: int = 2,
    recorder: RunRecorder = NULL_RECORDER,
) -> dict[str, np.ndarray]:
    """MLM-pre-train a backbone (cached per configuration).

    Compression (when ``scheme != 'w/o'``) is applied during pre-training
    exactly as during fine-tuning; the returned state dict excludes AE
    parameters, matching the paper's Table 8 workflow of discarding the
    AE when handing the checkpoint to fine-tuning.

    Passing an enabled ``recorder`` bypasses the backbone cache so the run
    actually executes (and gets recorded).
    """
    key = (scheme, steps, seed, tp, pp)
    if key in _BACKBONE_CACHE and not recorder.enabled:
        return _BACKBONE_CACHE[key]
    cfg = default_accuracy_model(seed=seed, num_layers=NUM_LAYERS)
    model = ModelParallelBertPreTraining(
        ModelParallelConfig(cfg, tp=tp, pp=pp, scheme=scheme,
                            policy=None if scheme == "w/o" else DEFAULT_POLICY,
                            seed=seed)
    )
    corpus = MLMCorpus(seq_len=cfg.max_seq_len // 2, seed=seed)
    run_pretraining(model, corpus, PretrainConfig(steps=steps, batch_size=32, lr=1e-3),
                    recorder=recorder)
    state = model.backbone_state_dict()
    _BACKBONE_CACHE[key] = state
    return state


def _finetune_row(
    scheme: str,
    tasks,
    backbone_state,
    finetune_scheme: str | None = None,
    seed: int = 0,
    policy: CompressionPolicy | None = None,
    epochs_scale: float = 1.0,
    batch_size: int = 32,
) -> dict:
    """One table row: fine-tune every task, return the paper's columns."""
    ft_scheme = finetune_scheme if finetune_scheme is not None else scheme
    row: dict = {"scheme": scheme}
    scores: dict[str, float] = {}
    for task in tasks:
        spec = GLUE_TASKS[task]
        epochs = max(1, round(spec.finetune_epochs * epochs_scale))
        res = finetune_on_task(
            task,
            scheme=ft_scheme,
            tp=2,
            pp=2,
            policy=(policy or DEFAULT_POLICY) if ft_scheme != "w/o" else None,
            seed=seed,
            num_layers=NUM_LAYERS,
            backbone_state=backbone_state,
            train_config=TrainConfig(epochs=epochs, lr=1e-3, seed=seed,
                                     batch_size=batch_size),
        )
        if task == "MNLI":
            scores["MNLI-m"] = res.scores["m"]
            scores["MNLI-mm"] = res.scores["mm"]
        else:
            scores[task] = res.primary
    row.update(scores)
    row["Avg."] = glue_score(scores)
    return row


def table5_glue_accuracy(tasks=None, schemes=None, seed: int = 0,
                         pretrain_steps: int = 400) -> list[dict]:
    """Table 5: fine-tuning accuracy per scheme at TP=2, PP=2."""
    tasks, schemes = _tasks_schemes(tasks, schemes)
    backbone = pretrain_backbone("w/o", steps=pretrain_steps, seed=seed)
    return [
        _finetune_row(scheme, tasks, backbone, seed=seed) for scheme in schemes
    ]


def table8_pretrain_accuracy(tasks=None, schemes=None, seed: int = 0,
                             pretrain_steps: int = 400) -> list[dict]:
    """Table 8: pre-train *with* compression, fine-tune *without*.

    Each row pre-trains its own backbone under the scheme, drops any AE
    parameters, and fine-tunes plain — the paper's takeaway 5 workflow.
    """
    if schemes is None:
        schemes = ["w/o", "A2", "T2", "Q2"] if profile() == "full" else ["w/o", "A2", "T2"]
    tasks, _ = _tasks_schemes(tasks, ["-"])
    rows = []
    for scheme in schemes:
        backbone = pretrain_backbone(scheme, steps=pretrain_steps, seed=seed)
        rows.append(
            _finetune_row(scheme, tasks, backbone, finetune_scheme="w/o", seed=seed)
        )
    return rows


def _sensitive_task_scores(policy: CompressionPolicy, seed: int) -> dict[str, float]:
    backbone = pretrain_backbone("w/o", seed=seed)
    out = {}
    for task in ["CoLA", "RTE"]:
        spec = GLUE_TASKS[task]
        res = finetune_on_task(
            task, scheme="A2", tp=2, pp=2, policy=policy, seed=seed,
            num_layers=NUM_LAYERS, backbone_state=backbone,
            train_config=TrainConfig(epochs=spec.finetune_epochs, lr=1e-3, seed=seed),
        )
        out[task] = res.primary
    return out


def fig4a_num_layers(seed: int = 0) -> list[dict]:
    """Fig. 4a: accuracy vs number of (final) layers compressed, A2 scheme."""
    rows = []
    points = (range(0, NUM_LAYERS + 1) if profile() == "full"
              else (0, NUM_LAYERS // 2, NUM_LAYERS))
    for k in points:
        policy = CompressionPolicy.last_k(NUM_LAYERS, k)
        scores = (
            _sensitive_task_scores(policy, seed) if k > 0
            else _sensitive_task_scores(CompressionPolicy.none(NUM_LAYERS), seed)
        )
        rows.append({"layers_compressed": k, **scores})
    return rows


def fig4b_location(seed: int = 0, window: int = 2) -> list[dict]:
    """Fig. 4b: accuracy vs location of a fixed-size compressed window."""
    rows = []
    for start in range(0, NUM_LAYERS - window + 1):
        policy = CompressionPolicy.window(NUM_LAYERS, start, window)
        scores = _sensitive_task_scores(policy, seed)
        rows.append({"first_layer": start, **scores})
    return rows


def tables15_16_accuracy(tasks=None, schemes=None, seed: int = 0) -> dict[str, list[dict]]:
    """Tables 15–16: accuracy at (b=32, s=128) and (b=8, s=128) analogues.

    The scaled-down analogue varies the fine-tuning batch size (32 vs 8)
    at the short sequence length; the paper's observation is that the
    scheme ordering is unchanged while absolute scores dip slightly.
    """
    if tasks is None or schemes is None:
        # CoLA is excluded from the quick sweep: its training "click" is
        # high-variance and the sweep's assertions compare averages.
        dft_tasks = ["QQP", "SST-2", "RTE"] if profile() != "full" else \
            ["MNLI", "QQP", "SST-2", "CoLA", "RTE", "STS-B"]
        dft_schemes = ["w/o", "T1", "Q2"] if profile() != "full" else \
            ["w/o", "A1", "A2", "T1", "T4", "Q1", "Q2"]
        tasks = tasks or dft_tasks
        schemes = schemes or dft_schemes
    backbone = pretrain_backbone("w/o", seed=seed)
    out = {}
    for key, batch in [("table15_b32", 32), ("table16_b8", 8)]:
        out[key] = [
            _finetune_row(scheme, tasks, backbone, seed=seed, batch_size=batch)
            for scheme in schemes
        ]
    return out
