"""Simulator-backed timing experiments (Tables 2–4, 6–7, 9, 11–14, Fig. 1)."""

from __future__ import annotations

from repro.compression import CompressionPolicy
from repro.parallel.topology import ClusterTopology
from repro.simulator import IterationSimulator, SimSetting
from repro.simulator.pipeline_sim import stage_boundary_times

__all__ = [
    "FINETUNE_SCHEMES",
    "PRETRAIN_SCHEMES",
    "figure1_comm_overhead",
    "table2_finetune_nvlink",
    "table3_nvlink_ablation",
    "table4_breakdown_finetune",
    "table6_pretrain",
    "table7_breakdown_pretrain",
    "table9_stage_comm",
    "tables11_14_hparam_sweep",
]

#: Scheme columns of Tables 2/6 (main text).
FINETUNE_SCHEMES = ["w/o", "A1", "A2", "T1", "T2", "T3", "T4",
                    "R1", "R2", "R3", "R4", "Q1", "Q2"]
PRETRAIN_SCHEMES = FINETUNE_SCHEMES
#: Appendix tables add the 8-bit Q3.
APPENDIX_SCHEMES = FINETUNE_SCHEMES + ["Q3"]

_FINETUNE_GRID = [(1, 4), (2, 2), (4, 1)]
_PRETRAIN_GRID = [(2, 8), (4, 4), (8, 2)]


def _finetune_setting(topology, tp, pp, scheme, batch=32, seq=512):
    return SimSetting(topology, tp, pp, batch, seq, num_microbatches=1, scheme=scheme)


def _pretrain_setting(tp, pp, scheme):
    return SimSetting(
        ClusterTopology.p3_8xlarge(4), tp, pp, 128, 128,
        num_microbatches=8, scheme=scheme,
    )


def figure1_comm_overhead(tp: int = 4) -> list[dict]:
    """Fig. 1: fraction of iteration time spent on MP communication.

    Sweeps (batch, seq) on BERT-Large with TP=tp over NVLink, as in the
    figure's x-axis of (batch size, sequence length) pairs.
    """
    grid = [(8, 128), (8, 512), (32, 128), (32, 512), (64, 512)]
    topo = ClusterTopology.local_pcie()
    rows = []
    for batch, seq in grid:
        sim = IterationSimulator(_finetune_setting(topo, tp, 1, "w/o", batch, seq))
        b = sim.breakdown()
        comm = b.tensor_comm_ms + b.pipeline_ms
        # Backward f all-reduces live in the backward column; count them too.
        bwd_comm = b.tensor_comm_ms  # symmetric f collectives
        comm_total = comm + bwd_comm
        rows.append({
            "batch": batch,
            "seq": seq,
            "total_ms": b.total_ms,
            "comm_ms": comm_total,
            "comm_fraction": comm_total / b.total_ms,
        })
    return rows


def _scheme_sweep(grid, schemes, setting_fn) -> list[dict]:
    rows = []
    for tp, pp in grid:
        row: dict = {"setting": f"TP={tp}, PP={pp}"}
        for scheme in schemes:
            row[scheme] = IterationSimulator(setting_fn(tp, pp, scheme)).total_ms()
        rows.append(row)
    return rows


def table2_finetune_nvlink(schemes=None) -> list[dict]:
    """Table 2: fine-tune iteration time (ms), NVLink machine, b=32 s=512."""
    schemes = schemes or FINETUNE_SCHEMES
    topo = ClusterTopology.p3_8xlarge()
    return _scheme_sweep(
        _FINETUNE_GRID, schemes, lambda tp, pp, s: _finetune_setting(topo, tp, pp, s)
    )


def table3_nvlink_ablation() -> list[dict]:
    """Table 3: w/o vs A1/A2 with and without NVLink."""
    rows = []
    for name, topo in [("With NVLink", ClusterTopology.p3_8xlarge()),
                       ("Without NVLink", ClusterTopology.local_pcie())]:
        for tp, pp in _FINETUNE_GRID:
            row = {"machine": name, "setting": f"TP={tp}, PP={pp}"}
            for scheme in ["w/o", "A1", "A2"]:
                row[scheme] = IterationSimulator(
                    _finetune_setting(topo, tp, pp, scheme)
                ).total_ms()
            rows.append(row)
    return rows


def _breakdown_rows(schemes, setting_fn) -> list[dict]:
    rows = []
    for scheme in schemes:
        b = IterationSimulator(setting_fn(scheme)).breakdown()
        rows.append({
            "scheme": scheme,
            "forward": b.forward_ms,
            "backward": b.backward_ms,
            "optimizer": b.optimizer_ms,
            "wait_pipeline": b.pipeline_ms,
            "total": b.total_ms,
            "tensor_enc": b.encode_ms,
            "tensor_dec": b.decode_ms,
            "tensor_comm": b.tensor_comm_ms,
        })
    return rows


def table4_breakdown_finetune(schemes=None) -> list[dict]:
    """Table 4: per-phase breakdown, local PCIe machine, TP=2 PP=2."""
    schemes = schemes or FINETUNE_SCHEMES
    topo = ClusterTopology.local_pcie()
    return _breakdown_rows(
        schemes, lambda s: _finetune_setting(topo, 2, 2, s)
    )


def table6_pretrain(schemes=None) -> list[dict]:
    """Table 6: pre-train iteration time, 4×p3.8xlarge, micro=128 global=1024."""
    schemes = schemes or PRETRAIN_SCHEMES
    return _scheme_sweep(_PRETRAIN_GRID, schemes, _pretrain_setting)


def table7_breakdown_pretrain(schemes=None) -> list[dict]:
    """Table 7: pre-train breakdown at TP=4 PP=4."""
    schemes = schemes or PRETRAIN_SCHEMES
    return _breakdown_rows(schemes, lambda s: _pretrain_setting(4, 4, s))


def table9_stage_comm() -> list[dict]:
    """Table 9: per-boundary comm time, w/o vs A2, PP=4 with last-12 policy."""
    wo = stage_boundary_times(_pretrain_setting(4, 4, "w/o"))
    a2 = stage_boundary_times(_pretrain_setting(4, 4, "A2"))
    return [
        {"stages": k, "comm_wo": wo[k], "comm_A2": a2[k]} for k in wo
    ]


def tables11_14_hparam_sweep(schemes=None) -> dict[str, list[dict]]:
    """Tables 11–14: fine-tune sweep over (machine, batch, seq=128).

    Table 11: NVLink b=32; 12: NVLink b=8; 13: PCIe b=32; 14: PCIe b=8 —
    all at sequence length 128, where compression stops paying (§4.6).
    """
    schemes = schemes or APPENDIX_SCHEMES
    machines = {
        "table11_nvlink_b32": (ClusterTopology.p3_8xlarge(), 32),
        "table12_nvlink_b8": (ClusterTopology.p3_8xlarge(), 8),
        "table13_pcie_b32": (ClusterTopology.local_pcie(), 32),
        "table14_pcie_b8": (ClusterTopology.local_pcie(), 8),
    }
    out = {}
    for key, (topo, batch) in machines.items():
        out[key] = _scheme_sweep(
            _FINETUNE_GRID, schemes,
            lambda tp, pp, s, _t=topo, _b=batch: _finetune_setting(_t, tp, pp, s, _b, 128),
        )
    return out
