"""Fig. 5 and Table 10: analytical model fit and weak scaling."""

from __future__ import annotations

from repro.parallel.topology import LinkType
from repro.perfmodel import (
    AnalyticalModel,
    fit_from_simulator,
    weak_scaling_table,
)

__all__ = ["figure5_fit", "table10_weak_scaling"]


def figure5_fit(link: LinkType = LinkType.ETHERNET) -> dict:
    """Fig. 5: fit α/β/γ and report prediction-vs-"ground truth" curves.

    Panels: (a) compute time vs hidden, (b) comm time vs hidden, (c) AE
    overhead vs hidden, (d) predicted AE speedup vs hidden. Ground truth
    here is the calibrated simulator (standing in for the paper's V100).
    """
    params, curves = fit_from_simulator(link=link)
    model = AnalyticalModel(params, encoder_dim=100)
    hiddens = curves["hiddens"]
    batch, seq = 16, 128
    predictions = {
        "comp_pred_ms": [
            params.alpha * (96 * batch * seq * h**2 + 16 * batch * seq**2 * h)
            for h in hiddens
        ],
        "comm_pred_ms": [model.t_comm(batch * seq * h) for h in hiddens],
        "overhead_pred_ms": [model.t_overhead(batch, seq, h) for h in hiddens],
        "speedup": [model.speedup(batch, seq, h) for h in hiddens],
    }
    return {"params": params, "measured": curves, "predicted": predictions}


def table10_weak_scaling(link: LinkType = LinkType.ETHERNET) -> list[dict]:
    """Table 10: AE speedup under Megatron's weak-scaling configurations.

    The paper sustains ~1.5× up to h=25600 by growing the node count with
    the model; Eq. (3)'s pipeline terms keep the speedup from collapsing.
    """
    params, _ = fit_from_simulator(link=link)
    model = AnalyticalModel(params, encoder_dim=100)
    return weak_scaling_table(model)
