"""Experiment harness: one entry point per paper table/figure.

Timing experiments (Tables 2–4, 6–7, 9, 11–14, Fig. 1) run on the
calibrated simulator and are fast; accuracy experiments (Tables 5, 8,
15–16, Fig. 4) really train the scaled-down model-parallel BERT and take
seconds-to-minutes per cell. ``REPRO_PROFILE=quick`` (the default for the
expensive accuracy benches is ``full`` for Tables 5/8 and ``quick`` for the
appendix sweeps) trims tasks/schemes for smoke runs.
"""

from repro.experiments.report import format_table
from repro.experiments.timing import (
    figure1_comm_overhead,
    table2_finetune_nvlink,
    table3_nvlink_ablation,
    table4_breakdown_finetune,
    table6_pretrain,
    table7_breakdown_pretrain,
    table9_stage_comm,
    tables11_14_hparam_sweep,
)
from repro.experiments.accuracy import (
    pretrain_backbone,
    table5_glue_accuracy,
    table8_pretrain_accuracy,
    fig4a_num_layers,
    fig4b_location,
    tables15_16_accuracy,
)
from repro.experiments.perfscale import figure5_fit, table10_weak_scaling
from repro.experiments.lowrank import figure2_lowrank

__all__ = [
    "format_table",
    "figure1_comm_overhead",
    "table2_finetune_nvlink",
    "table3_nvlink_ablation",
    "table4_breakdown_finetune",
    "table6_pretrain",
    "table7_breakdown_pretrain",
    "table9_stage_comm",
    "tables11_14_hparam_sweep",
    "pretrain_backbone",
    "table5_glue_accuracy",
    "table8_pretrain_accuracy",
    "fig4a_num_layers",
    "fig4b_location",
    "tables15_16_accuracy",
    "figure5_fit",
    "table10_weak_scaling",
    "figure2_lowrank",
]
