"""Plain-text table rendering for experiment results."""

from __future__ import annotations

__all__ = ["format_table", "format_value"]


def format_value(v) -> str:
    """Human-friendly cell formatting (comma-grouped ms, 2 decimals)."""
    if isinstance(v, float):
        if abs(v) >= 1000:
            return f"{v:,.2f}"
        return f"{v:.2f}"
    return str(v)


def format_table(
    rows: list[dict],
    columns: list[str] | None = None,
    title: str | None = None,
) -> str:
    """Render ``rows`` (list of dicts) as an aligned text table."""
    if not rows:
        return f"{title or ''}\n(empty)"
    columns = columns or list(rows[0].keys())
    cells = [[format_value(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    sep = "-" * len(header)
    body = "\n".join(
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in cells
    )
    parts = [title, header, sep, body] if title else [header, sep, body]
    return "\n".join(p for p in parts if p)
