"""Command-line table/figure regeneration.

Usage::

    python -m repro.experiments list
    python -m repro.experiments table2 table9 fig2
    python -m repro.experiments all-timing
    REPRO_PROFILE=full python -m repro.experiments table5

Each target prints the regenerated table in the paper's layout.
"""

from __future__ import annotations

import sys

from repro.experiments import (
    fig4a_num_layers,
    fig4b_location,
    figure1_comm_overhead,
    figure2_lowrank,
    figure5_fit,
    format_table,
    table2_finetune_nvlink,
    table3_nvlink_ablation,
    table4_breakdown_finetune,
    table5_glue_accuracy,
    table6_pretrain,
    table7_breakdown_pretrain,
    table8_pretrain_accuracy,
    table9_stage_comm,
    table10_weak_scaling,
    tables11_14_hparam_sweep,
    tables15_16_accuracy,
)


def _print_rows(name):
    def runner(fn, title):
        print(format_table(fn(), title=title))
        print()

    return runner


def _fig2():
    r = figure2_lowrank()
    print("Figure 2 — spectrum AUC: gradient "
          f"{r['gradient']['auc']:.3f}, activation {r['activation']['auc']:.3f} "
          f"(low-rank claim holds: {r['gradient_is_lower_rank']})\n")


def _fig5():
    r = figure5_fit()
    p = r["params"]
    rows = [
        {"hidden": h, "speedup": s}
        for h, s in zip(r["measured"]["hiddens"], r["predicted"]["speedup"])
    ]
    print(f"Figure 5 — fitted alpha={p.alpha:.3e}, beta={p.beta:.3e}, "
          f"gamma={p.gamma:.3e}, c={p.comm_const_ms:.2f} ms, "
          f"d={p.comm_threshold_elems:.0f} elems")
    print(format_table(rows, title="Predicted AE speedup vs hidden size"))
    print()


def _multi(fn, prefix):
    def run():
        for key, rows in fn().items():
            print(format_table(rows, title=key))
            print()

    return run


TARGETS = {
    "fig1": lambda: print(format_table(figure1_comm_overhead(), title="Figure 1") + "\n"),
    "fig2": _fig2,
    "fig4a": lambda: print(format_table(fig4a_num_layers(), title="Figure 4a") + "\n"),
    "fig4b": lambda: print(format_table(fig4b_location(), title="Figure 4b") + "\n"),
    "fig5": _fig5,
    "table2": lambda: print(format_table(table2_finetune_nvlink(), title="Table 2") + "\n"),
    "table3": lambda: print(format_table(table3_nvlink_ablation(), title="Table 3") + "\n"),
    "table4": lambda: print(format_table(table4_breakdown_finetune(), title="Table 4") + "\n"),
    "table5": lambda: print(format_table(table5_glue_accuracy(), title="Table 5") + "\n"),
    "table6": lambda: print(format_table(table6_pretrain(), title="Table 6") + "\n"),
    "table7": lambda: print(format_table(table7_breakdown_pretrain(), title="Table 7") + "\n"),
    "table8": lambda: print(format_table(table8_pretrain_accuracy(), title="Table 8") + "\n"),
    "table9": lambda: print(format_table(table9_stage_comm(), title="Table 9") + "\n"),
    "table10": lambda: print(format_table(table10_weak_scaling(), title="Table 10") + "\n"),
    "tables11-14": _multi(tables11_14_hparam_sweep, "Tables 11-14"),
    "tables15-16": _multi(tables15_16_accuracy, "Tables 15-16"),
}

GROUPS = {
    "all-timing": ["fig1", "table2", "table3", "table4", "table6", "table7",
                   "table9", "tables11-14"],
    "all-model": ["fig5", "table10", "fig2"],
    "all-accuracy": ["table5", "table8", "fig4a", "fig4b", "tables15-16"],
}


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("Targets:", " ".join(sorted(TARGETS)))
        print("Groups:", " ".join(sorted(GROUPS)))
        return 0
    targets: list[str] = []
    for arg in argv:
        if arg in GROUPS:
            targets.extend(GROUPS[arg])
        elif arg in TARGETS:
            targets.append(arg)
        else:
            print(f"unknown target {arg!r}; run `list` for options", file=sys.stderr)
            return 2
    for t in targets:
        TARGETS[t]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
