"""Fig. 2: low-rank analysis of gradients vs activations."""

from __future__ import annotations

from repro.analysis import lowrank_report

__all__ = ["figure2_lowrank"]


def figure2_lowrank(seed: int = 0) -> dict:
    """Fig. 2 as data plus the pass/fail shape summary.

    Returns both cumulative-spectrum curves and their AUC; the paper's
    claim holds when the gradient's AUC is well above the activation's
    (gradient mass concentrates in few directions, activation's does not).
    """
    report = lowrank_report(seed=seed)
    report["gradient_is_lower_rank"] = (
        report["gradient"]["auc"] > report["activation"]["auc"] + 0.05
    )
    return report
