"""Project-specific static analysis and dynamic consistency checks.

Three layers, each usable on its own:

1. :mod:`repro.lint.engine` + :mod:`repro.lint.ast_rules` — an AST rule
   engine enforcing the reproduction's structural invariants (tracked
   collectives, seeded randomness, validated configs, recorded backward
   closures, ...).  Rules are registered in a global registry and can be
   suppressed per line with ``# lint: disable=<rule>``.
2. :mod:`repro.lint.graph_check` + :mod:`repro.lint.spmd_check` — dynamic
   checkers that run a tiny model-parallel BERT and cross-validate the
   recorded :class:`~repro.parallel.collectives.CommEvent` stream against
   an independent closed-form oracle, plus a NaN/Inf + dtype sanitizer
   installable on :class:`repro.tensor.Tensor` ops.
3. :mod:`repro.lint.cli` — ``python -m repro.lint [options] paths...``.

The dynamic modules import the full model stack, so they are *not*
imported here; the CLI loads them lazily when ``--dynamic`` is given.
"""

from repro.lint.engine import (
    Finding,
    LintError,
    SourceFile,
    available_rules,
    lint_paths,
    lint_source,
    register_rule,
)
from repro.lint import ast_rules as _ast_rules  # noqa: F401  (registers rules)
from repro.lint import async_rules as _async_rules  # noqa: F401  (REPRO008-010)

__all__ = [
    "Finding",
    "LintError",
    "SourceFile",
    "available_rules",
    "lint_paths",
    "lint_source",
    "register_rule",
]
