"""Project-specific AST rules.

Each rule encodes an invariant the test suite cannot see directly:
untracked collectives or unrecorded backward closures silently corrupt
the byte accounting the simulator consumes; unseeded (or hash-salted)
randomness silently breaks Random-K / dropout reproducibility across
schemes.  Rules REPRO001–REPRO007 are registered on import.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.engine import Finding, SourceFile, register_rule

__all__ = [
    "TrackedCollectiveRule",
    "SeededRngRule",
    "ConfigValidationRule",
    "BackwardRecordsRule",
    "MutableDefaultRule",
    "UnstableHashSeedRule",
    "NoEvalExecRule",
]


def _call_name(node: ast.Call) -> str:
    """Terminal name of a call target: ``foo(...)`` and ``a.b.foo(...)`` → ``foo``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _attr_chain(node: ast.expr) -> list[str]:
    """``np.random.rand`` → ["np", "random", "rand"]; [] when not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


@register_rule
class TrackedCollectiveRule:
    """Every TP/PP cut-point collective must thread a ``CommTracker``.

    A call that omits the tracker produces correct *values* (the math is
    in-process) but drops its :class:`CommEvent`, so the simulator's byte
    accounting silently undercounts — the exact failure mode §3.2's wire
    formulas guard against.
    """

    id = "REPRO001"
    name = "tracked-collective"
    summary = "tp_all_reduce/tp_broadcast/pipeline_transfer must be passed a CommTracker"

    #: collective → index of the tracker parameter (all take it third).
    COLLECTIVES = {"tp_all_reduce": 2, "tp_broadcast": 2, "pipeline_transfer": 2}

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = _call_name(node)
            if fn not in self.COLLECTIVES:
                continue
            has_kw = any(kw.arg == "tracker" for kw in node.keywords)
            has_pos = len(node.args) > self.COLLECTIVES[fn]
            if not (has_kw or has_pos):
                yield Finding(self.id, self.name,
                              f"{fn}() called without a tracker argument",
                              source.path, node.lineno, node.col_offset)


@register_rule
class SeededRngRule:
    """All randomness must flow through explicitly seeded Generators.

    Legacy ``np.random.<fn>`` calls draw from hidden global state and
    ``np.random.default_rng()`` without a seed is fresh entropy per call —
    either one makes Random-K masks and dropout irreproducible across
    schemes, so accuracy comparisons stop being paired.  Test files are
    exempt (they may legitimately exercise unseeded paths).
    """

    id = "REPRO002"
    name = "seeded-rng"
    summary = "no legacy np.random.* calls; np.random.default_rng() must be seeded"

    LEGACY = {
        "rand", "randn", "randint", "random", "seed", "normal", "uniform",
        "choice", "shuffle", "permutation", "standard_normal", "random_sample",
        "binomial", "poisson", "beta", "gamma", "exponential",
    }

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.is_test:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) != 3 or chain[0] not in ("np", "numpy") or chain[1] != "random":
                continue
            if chain[2] in self.LEGACY:
                yield Finding(self.id, self.name,
                              f"legacy global-state RNG call np.random.{chain[2]}(); "
                              "use a seeded np.random.Generator",
                              source.path, node.lineno, node.col_offset)
            elif chain[2] == "default_rng" and not node.args and not node.keywords:
                yield Finding(self.id, self.name,
                              "np.random.default_rng() without a seed is fresh entropy "
                              "per call; pass an explicit seed",
                              source.path, node.lineno, node.col_offset)


@register_rule
class ConfigValidationRule:
    """Every ``@dataclass`` whose name ends in ``Config`` must validate itself.

    Config dataclasses are the experiment surface; a bad field (negative
    step count, tp that does not divide the heads) should fail at
    construction, not as a wrong number three tables later.
    """

    id = "REPRO003"
    name = "config-validated"
    summary = "@dataclass *Config classes must define __post_init__ validation"

    @staticmethod
    def _is_dataclass_decorator(dec: ast.expr) -> bool:
        target = dec.func if isinstance(dec, ast.Call) else dec
        chain = _attr_chain(target)
        return bool(chain) and chain[-1] == "dataclass"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef) or not node.name.endswith("Config"):
                continue
            if not any(self._is_dataclass_decorator(d) for d in node.decorator_list):
                continue
            has_post_init = any(
                isinstance(item, ast.FunctionDef) and item.name == "__post_init__"
                for item in node.body
            )
            if not has_post_init:
                yield Finding(self.id, self.name,
                              f"dataclass {node.name} has no __post_init__ validation",
                              source.path, node.lineno, node.col_offset)


@register_rule
class BackwardRecordsRule:
    """Backward closures at communication sites must record their event.

    A function that receives a ``tracker`` and defines a nested
    ``backward`` closure is (by this codebase's convention) wrapping a cut
    point; forgetting ``tracker.record(...)`` inside the closure drops the
    backward message from the byte accounting while the forward one is
    still logged — an asymmetry no test that sums totals will notice.
    """

    id = "REPRO004"
    name = "backward-records"
    summary = "nested `backward` closures in tracker-taking functions must call tracker.record"

    @staticmethod
    def _records(closure: ast.FunctionDef) -> bool:
        for node in ast.walk(closure):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "record":
                    chain = _attr_chain(node.func)
                    if chain and chain[0] == "tracker":
                        return True
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = {a.arg for a in node.args.args + node.args.kwonlyargs}
            if "tracker" not in params:
                continue
            for item in ast.walk(node):
                if (isinstance(item, ast.FunctionDef) and item.name == "backward"
                        and not self._records(item)):
                    yield Finding(self.id, self.name,
                                  f"backward closure in {node.name}() does not call "
                                  "tracker.record(...)",
                                  source.path, item.lineno, item.col_offset)


@register_rule
class MutableDefaultRule:
    """No mutable default argument values.

    A shared default list/dict aliases state across calls — in a codebase
    where per-site compressors and trackers are identity-sensitive, that
    is a silent cross-contamination channel.
    """

    id = "REPRO005"
    name = "mutable-default"
    summary = "no mutable default arguments (list/dict/set literals or constructors)"

    MUTABLE_CTORS = {"list", "dict", "set", "bytearray", "defaultdict", "Counter"}

    def _is_mutable(self, default: ast.expr) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                ast.DictComp, ast.SetComp)):
            return True
        return isinstance(default, ast.Call) and _call_name(default) in self.MUTABLE_CTORS

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [d for d in node.args.kw_defaults if d]
            for default in defaults:
                if self._is_mutable(default):
                    fn = getattr(node, "name", "<lambda>")
                    yield Finding(self.id, self.name,
                                  f"mutable default argument in {fn}()",
                                  source.path, default.lineno, default.col_offset)


@register_rule
class UnstableHashSeedRule:
    """Seeds must not be derived from the builtin ``hash()``.

    CPython salts string hashing per process (PYTHONHASHSEED), so
    ``default_rng(seed + hash(name))`` produces a *different* stream every
    run — reproducibility silently evaporates outside single-process test
    runs.  Derive stable seeds with ``zlib.crc32`` or an explicit table.
    """

    id = "REPRO006"
    name = "stable-seed"
    summary = "RNG seeds must not use the process-salted builtin hash()"

    @staticmethod
    def _contains_builtin_hash(nodes: Iterable[ast.expr]) -> ast.Call | None:
        for root in nodes:
            for node in ast.walk(root):
                if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                        and node.func.id == "hash"):
                    return node
        return None

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = _call_name(node)
            seed_exprs: list[ast.expr] = []
            if fn == "default_rng":
                seed_exprs.extend(node.args)
            seed_exprs.extend(kw.value for kw in node.keywords if kw.arg == "seed")
            hit = self._contains_builtin_hash(seed_exprs)
            if hit is not None:
                yield Finding(self.id, self.name,
                              f"seed for {fn}() derived from builtin hash(), which is "
                              "salted per process; use zlib.crc32 for stable seeds",
                              source.path, hit.lineno, hit.col_offset)


@register_rule
class NoEvalExecRule:
    """No ``eval``/``exec`` — config strings must go through declared parsers."""

    id = "REPRO007"
    name = "no-eval-exec"
    summary = "builtin eval()/exec() are banned"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id in ("eval", "exec")):
                yield Finding(self.id, self.name,
                              f"call to builtin {node.func.id}()",
                              source.path, node.lineno, node.col_offset)
