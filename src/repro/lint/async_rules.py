"""Async-handle AST rules: the static third of the concurrency layer.

The issue/wait split (:func:`tp_all_reduce_issue`,
:meth:`RankTransport.exchange_issue`) is what lets communication overlap
compute — and it opens three bug classes no runtime test reliably
catches, because a leaked or mis-sequenced handle usually still produces
the right numbers on the happy path:

- a handle that never reaches ``.wait()`` silently drops its result, its
  ``CommEvent`` accounting and (under SPMD) leaves the peer's ring slot
  occupied until a later collective mysteriously stalls (**REPRO008**);
- a *blocking* collective issued inside another handle's in-flight
  window serializes the overlap the split exists to create, and against
  the same peer set can deadlock outright (**REPRO009**);
- a blocking transport wait without an explicit deadline turns a dead
  peer into an infinite hang instead of a typed
  :class:`~repro.parallel.backend.base.BackendError` naming the culprit
  rank (**REPRO010**).

Rules REPRO008–REPRO010 are registered on import.  Test trees are
exempt (tests legitimately exercise leak/shutdown paths); targeted
``# lint: disable=`` comments remain available elsewhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.ast_rules import _call_name
from repro.lint.engine import Finding, SourceFile, register_rule

__all__ = [
    "HandleWaitedRule",
    "NoBlockingInFlightRule",
    "DeadlineOnWaitRule",
]

#: Calls returning an async handle: the issue half of an issue/wait pair.
_ISSUE_SUFFIX = "_issue"

#: Blocking collectives/waits that must not run inside an in-flight window.
_BLOCKING = {"tp_all_reduce", "tp_broadcast", "pipeline_transfer",
             "exchange", "barrier_wait"}

#: Receiver-name tokens that mark a call target as the shm transport.
_TRANSPORT_TOKENS = {"transport", "_transport", "channel", "channels",
                     "_channels", "chan", "barrier", "_barrier"}

_DISCHARGED, _LEAKS, _FALLS = "discharged", "leaks", "falls"


def _issue_call(node: ast.expr) -> ast.Call | None:
    """``node`` itself, when it is a ``*_issue(...)`` call."""
    if isinstance(node, ast.Call) and _call_name(node).endswith(_ISSUE_SUFFIX):
        return node
    return None


def _name_used(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name for n in ast.walk(node)
    )


def _is_wait_call(node: ast.AST, name: str) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "wait"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name)


def _expr_discharges(node: ast.AST, name: str) -> bool:
    """Whether evaluating ``node`` waits ``name`` or lets it escape.

    Escapes — passing the handle to a call, storing it into an attribute
    / container, returning or yielding it, capturing it in a nested
    function — hand responsibility elsewhere, so the rule stops tracking
    (liberal on purpose: false silence beats false alarms in a linter).
    """
    for n in ast.walk(node):
        if _is_wait_call(n, name):
            return True
        if isinstance(n, ast.Call):
            pieces = list(n.args) + [kw.value for kw in n.keywords]
            if any(_name_used(p, name) for p in pieces):
                return True
        if isinstance(n, (ast.Yield, ast.YieldFrom)) and n.value is not None \
                and _name_used(n.value, name):
            return True
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)) \
                and _name_used(n, name):
            return True  # closure capture (the finish/backward pattern)
    return False


def _stmt_discharges_simple(stmt: ast.stmt, name: str) -> bool:
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        value = stmt.value
        if value is not None and _name_used(value, name):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            if any(not isinstance(t, ast.Name) for t in targets):
                return True  # stored into an attribute/subscript/tuple
            # plain aliasing: the alias now carries the obligation; stop
            # tracking rather than double-report.
            return True
        return value is not None and _expr_discharges(value, name)
    return _expr_discharges(stmt, name)


def _block_outcome(stmts: list[ast.stmt], name: str) -> str:
    for stmt in stmts:
        outcome = _stmt_outcome(stmt, name)
        if outcome != _FALLS:
            return outcome
    return _FALLS


def _stmt_outcome(stmt: ast.stmt, name: str) -> str:
    """How executing ``stmt`` affects the pending handle ``name``.

    ``discharged``: every path through the statement waits/escapes it;
    ``leaks``: some path exits the function with the handle pending;
    ``falls``: control may continue past with the handle still pending.
    """
    if isinstance(stmt, ast.Return):
        if stmt.value is not None and (
                _name_used(stmt.value, name) or _expr_discharges(stmt.value, name)):
            return _DISCHARGED
        return _LEAKS
    if isinstance(stmt, ast.Raise):
        return _DISCHARGED  # error path; the gang is tearing down anyway
    if isinstance(stmt, ast.If):
        if _expr_discharges(stmt.test, name):
            return _DISCHARGED
        then = _block_outcome(stmt.body, name)
        alt = _block_outcome(stmt.orelse, name)
        if _LEAKS in (then, alt):
            return _LEAKS
        if then == alt == _DISCHARGED:
            return _DISCHARGED
        return _FALLS
    if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
        head = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
        if _expr_discharges(head, name):
            return _DISCHARGED
        if _block_outcome(stmt.body + stmt.orelse, name) == _LEAKS:
            return _LEAKS
        return _FALLS  # the body may run zero times
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        if any(_expr_discharges(item.context_expr, name) for item in stmt.items):
            return _DISCHARGED
        return _block_outcome(stmt.body, name)
    if isinstance(stmt, ast.Try):
        for handler in stmt.handlers:
            if _block_outcome(handler.body, name) == _LEAKS:
                return _LEAKS
        return _block_outcome(stmt.body + stmt.orelse + stmt.finalbody, name)
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return _DISCHARGED if _name_used(stmt, name) else _FALLS
    return _DISCHARGED if _stmt_discharges_simple(stmt, name) else _FALLS


def _iter_blocks(tree: ast.AST) -> Iterator[list[ast.stmt]]:
    """Every statement list in the file (module, bodies, branches, ...)."""
    for node in ast.walk(tree):
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if isinstance(block, list) and block \
                    and isinstance(block[0], ast.stmt):
                yield block


@register_rule
class HandleWaitedRule:
    """Every issued handle must reach ``.wait()`` on all control-flow paths."""

    id = "REPRO008"
    name = "handle-waited"
    summary = "every *_issue() handle must reach .wait() (or escape) on all paths"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.is_test:
            return
        # conts: statement lists that execute after the current block,
        # innermost first — the continuation the handle lives through.
        def scan(block: list[ast.stmt], conts: list[list[ast.stmt]]):
            for i, stmt in enumerate(block):
                rest = block[i + 1:]
                yield from check_stmt(stmt, rest, conts)
                for inner in self._inner_blocks(stmt):
                    yield from scan(inner, [rest] + conts)

        def check_stmt(stmt, rest, conts):
            if isinstance(stmt, ast.Expr):
                call = _issue_call(stmt.value)
                if call is not None:
                    yield Finding(
                        self.id, self.name,
                        f"result of {_call_name(call)}() is discarded; the "
                        "handle can never be waited",
                        source.path, call.lineno, call.col_offset)
                return
            if not (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                return
            call = _issue_call(stmt.value)
            if call is None:
                return
            name = stmt.targets[0].id
            outcome = _FALLS
            for continuation in [rest] + conts:
                outcome = _block_outcome(continuation, name)
                if outcome != _FALLS:
                    break
            if outcome != _DISCHARGED:
                how = ("a control-flow path exits without waiting it"
                       if outcome == _LEAKS else "it is never waited")
                yield Finding(
                    self.id, self.name,
                    f"handle {name!r} from {_call_name(call)}() — {how}",
                    source.path, call.lineno, call.col_offset)

        yield from scan(source.tree.body, [])  # type: ignore[attr-defined]

    @staticmethod
    def _inner_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
        blocks = []
        for field in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field, None)
            if isinstance(block, list) and block \
                    and isinstance(block[0], ast.stmt):
                blocks.append(block)
        for handler in getattr(stmt, "handlers", []):
            blocks.append(handler.body)
        return blocks


@register_rule
class NoBlockingInFlightRule:
    """No blocking collective inside another handle's issue→wait window."""

    id = "REPRO009"
    name = "no-blocking-in-flight"
    summary = "no blocking collective between a handle's issue and its wait"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.is_test:
            return
        for block in _iter_blocks(source.tree):
            yield from self._check_block(block, source)

    def _check_block(self, block, source) -> Iterator[Finding]:
        for i, stmt in enumerate(block):
            if not (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and _issue_call(stmt.value) is not None):
                continue
            name = stmt.targets[0].id
            wait_at = None
            for j in range(i + 1, len(block)):
                if any(_is_wait_call(n, name) for n in ast.walk(block[j])):
                    wait_at = j
                    break
            if wait_at is None:
                continue  # cross-block wait: REPRO008 territory
            for k in range(i + 1, wait_at):
                for node in ast.walk(block[k]):
                    if isinstance(node, ast.Call) \
                            and _call_name(node) in _BLOCKING:
                        yield Finding(
                            self.id, self.name,
                            f"blocking {_call_name(node)}() inside the "
                            f"in-flight window of {name!r} (issued line "
                            f"{stmt.lineno}, waited line "
                            f"{block[wait_at].lineno}) serializes the "
                            "overlap and can deadlock against the same peers",
                            source.path, node.lineno, node.col_offset)


@register_rule
class DeadlineOnWaitRule:
    """Every blocking transport wait must carry an explicit deadline."""

    id = "REPRO010"
    name = "deadline-on-wait"
    summary = "blocking transport calls must pass an explicit timeout="

    #: Always transport-owned, regardless of receiver spelling.
    UNIQUE = {"exchange_issue", "barrier_wait"}
    #: Transport-owned only when the receiver names the transport.
    GATED = {"send", "recv", "exchange", "wait"}

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.is_test:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = _call_name(node)
            if fn in self.UNIQUE:
                pass
            elif fn in self.GATED:
                if not isinstance(node.func, ast.Attribute):
                    continue
                if not self._transport_receiver(node.func.value):
                    continue
            else:
                continue
            if any(kw.arg == "timeout" for kw in node.keywords):
                continue
            yield Finding(
                self.id, self.name,
                f"blocking transport call {fn}() without an explicit "
                "timeout= deadline; a dead peer would hang forever instead "
                "of raising a typed BackendError naming the rank",
                source.path, node.lineno, node.col_offset)

    @staticmethod
    def _transport_receiver(node: ast.expr) -> bool:
        """Whether the receiver expression names the shm transport."""
        for n in ast.walk(node):
            if isinstance(n, ast.Name) and n.id in _TRANSPORT_TOKENS:
                return True
            if isinstance(n, ast.Attribute) and n.attr in _TRANSPORT_TOKENS:
                return True
        return False
