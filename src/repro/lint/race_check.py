"""DYN003: offline happens-before race detection over concurrency logs.

Input is the structured event log emitted by
:mod:`repro.parallel.backend.conclog` while a real run executes — one
``send``/``recv`` per ring-slot commit, ``barrier_arrive``/``depart`` per
generation, ``handle_issue``/``handle_wait`` per collective.  The checker
replays the log and verifies the transport's claimed synchronization
actually ordered the run:

1. **Happens-before graph.**  Nodes are events; edges are (a) per-rank
   program order, (b) message delivery ``send(c, seq) → recv(c, seq)``,
   (c) slot reuse ``recv(c, seq) → send(c, seq')`` for the next send into
   the same ring slot (the sender may only overwrite a slot its receiver
   drained), and (d) barrier ordering — every ``arrive(g)`` precedes
   every ``depart(g)``.  A cycle means the claimed ordering is
   self-contradictory.
2. **Vector clocks.**  Each event's clock is the pointwise max of its
   predecessors', bumped in its own rank's component.  Conflicting
   accesses to the same ring slot (a write and the read that frees it,
   or two writes) that the clocks leave *concurrent* are races.
3. **Wall-order consistency.**  ``time.monotonic`` is one system-wide
   clock on Linux, so for every cross-rank edge ``u → v`` the checker
   also demands ``t(u) ≤ t(v)``: a send committed *after* the recv that
   supposedly observed it, or a barrier departure *before* a peer's
   arrival, is a real interleaving the synchronization failed to
   prevent — exactly the bug class a dropped seq check or a broken
   barrier comparison produces.
4. **Protocol accounting.**  Sequence numbers per channel must be dense
   and in order (``got_seq`` ≠ expected ⇒ a stale message was accepted);
   every sent message must be received by the end of the log — with one
   carve-out for fault injection: a seq may carry several send events as
   long as all but the last are marked ``dropped`` (the transport's
   bounded resend), otherwise it is a double publish; barrier
   generations advance by exactly one per rank with all ranks present;
   every issued handle reaches exactly one completing wait, and an
   exchange payload's checksum must not change between issue and wait
   (a mutation inside the in-flight window corrupts what peers read).

All findings are strings naming the rank / mailbox / slot / seq (or
generation / handle) involved; the CLI surfaces them as ``DYN003``.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["run_race_check", "run_race_check_on_path"]

#: Tolerance for cross-rank monotonic-clock comparisons.  The clock is
#: shared, but events are stamped *after* their commit, so a zero
#: tolerance is correct; kept as a named constant for exotic platforms.
_CLOCK_EPS_S = 0.0


def _key(event: dict) -> tuple[int, int]:
    return (event["rank"], event["idx"])


class _Replay:
    """One replay: events, happens-before edges, and accumulated findings."""

    def __init__(self, events: list[dict]):
        self.findings: list[str] = []
        self.by_rank: dict[int, list[dict]] = defaultdict(list)
        for e in events:
            self.by_rank[e["rank"]].append(e)
        self.events: dict[tuple[int, int], dict] = {}
        self.edges: dict[tuple[int, int], list[tuple[int, int]]] = defaultdict(list)
        self.world: int | None = None

    # -- construction ---------------------------------------------------
    def check_frames(self) -> None:
        worlds = set()
        for rank, seq in sorted(self.by_rank.items()):
            seq.sort(key=lambda e: e["idx"])
            for pos, e in enumerate(seq):
                if e["idx"] != pos:
                    self.findings.append(
                        f"rank {rank}: event index gap at idx {e['idx']} "
                        f"(expected {pos}) — truncated or interleaved log"
                    )
                    break
            if not seq or seq[0]["kind"] != "meta":
                self.findings.append(f"rank {rank}: log has no meta header")
            else:
                worlds.add(seq[0]["world"])
            for e in seq:
                self.events[_key(e)] = e
        if len(worlds) > 1:
            self.findings.append(f"ranks disagree on world size: {sorted(worlds)}")
        self.world = max(worlds) if worlds else len(self.by_rank)
        missing = set(range(self.world)) - set(self.by_rank)
        if missing:
            self.findings.append(
                f"no events from rank(s) {sorted(missing)} (world {self.world}) "
                "— worker died before flushing, or log directory is incomplete"
            )

    def add_edge(self, u: dict, v: dict, why: str) -> None:
        self.edges[_key(u)].append(_key(v))
        # Wall-order consistency: the sync that justifies this edge must
        # have actually run in this order (cross-rank only; same-rank
        # program order is trivially consistent).
        if u["rank"] != v["rank"] and u["t"] > v["t"] + _CLOCK_EPS_S:
            self.findings.append(
                f"happens-before violation ({why}): rank {u['rank']} "
                f"{u['kind']} idx {u['idx']} is required to precede rank "
                f"{v['rank']} {v['kind']} idx {v['idx']} but committed "
                f"{(u['t'] - v['t']) * 1e6:.1f} us after it"
            )

    def program_order(self) -> None:
        for seq in self.by_rank.values():
            for u, v in zip(seq, seq[1:]):
                self.edges[_key(u)].append(_key(v))

    def channel_edges(self) -> None:
        # Fault injection legitimately re-sends a dropped seq, so a seq can
        # have several send events.  Every attempt but the last must carry
        # the transport's ``dropped``/``retry`` marker (it never flipped the
        # slot to FULL); only the final attempt publishes, so only it takes
        # part in delivery, unreceived-message and slot-reuse accounting.
        attempts: dict[tuple[int, int], dict[int, list[dict]]] = defaultdict(
            lambda: defaultdict(list))
        recvs: dict[tuple[int, int], dict[int, dict]] = defaultdict(dict)
        for e in self.events.values():
            if e["kind"] == "send":
                attempts[(e["src"], e["dst"])][e["seq"]].append(e)
            elif e["kind"] == "recv":
                recvs[(e["src"], e["dst"])][e["seq"]] = e

        sends: dict[tuple[int, int], dict[int, dict]] = defaultdict(dict)
        for chan, by_seq in attempts.items():
            src, dst = chan
            for seq, tries in by_seq.items():
                tries.sort(key=_key)
                for extra in tries[:-1]:
                    if not (extra.get("dropped") or extra.get("retry") is not None):
                        self.findings.append(
                            f"double publish on mailbox {src}->{dst} seq {seq}: "
                            f"rank {extra['rank']} committed it at idx "
                            f"{extra['idx']} and again at idx "
                            f"{tries[-1]['idx']} with no dropped/retry marker"
                        )
                if tries[-1].get("dropped"):
                    # The final attempt was itself dropped: the budget ran
                    # out and the send raised, so nothing was published.
                    continue
                sends[chan][seq] = tries[-1]

        for chan in sorted(set(sends) | set(recvs)):
            src, dst = chan
            tx, rx = sends[chan], recvs[chan]
            for seq, r in sorted(rx.items()):
                if r.get("got_seq", seq) != seq:
                    self.findings.append(
                        f"rank {r['rank']} accepted a stale message on mailbox "
                        f"{src}->{dst} slot {r['slot']}: seq {r['got_seq']} "
                        f"where {seq} was expected"
                    )
                if seq not in tx:
                    self.findings.append(
                        f"rank {r['rank']} received seq {seq} on mailbox "
                        f"{src}->{dst} slot {r['slot']} that no send committed"
                    )
                else:
                    self.add_edge(tx[seq], r, f"delivery {src}->{dst} seq {seq}")
            unreceived = sorted(set(tx) - set(rx))
            if unreceived:
                self.findings.append(
                    f"message(s) seq {unreceived} on mailbox {src}->{dst} were "
                    f"sent but never received (lost in flight at shutdown)"
                )
            # Slot reuse: the sender may only rewrite a slot after the
            # receiver drained the previous occupant.
            by_slot: dict[int, list[dict]] = defaultdict(list)
            for seq, s in tx.items():
                by_slot[s["slot"]].append(s)
            for slot, slot_sends in by_slot.items():
                slot_sends.sort(key=lambda e: e["seq"])
                for prev, nxt in zip(slot_sends, slot_sends[1:]):
                    freeing = rx.get(prev["seq"])
                    if freeing is None:
                        self.findings.append(
                            f"slot overwrite on mailbox {src}->{dst} slot "
                            f"{slot}: rank {nxt['rank']} sent seq {nxt['seq']} "
                            f"but seq {prev['seq']} was never drained"
                        )
                    else:
                        self.add_edge(
                            freeing, nxt,
                            f"slot reuse {src}->{dst} slot {slot} "
                            f"seq {prev['seq']}->{nxt['seq']}",
                        )

    def barrier_edges(self) -> None:
        arrives: dict[int, dict[int, dict]] = defaultdict(dict)  # gen -> rank -> e
        departs: dict[int, dict[int, dict]] = defaultdict(dict)
        for rank, seq in sorted(self.by_rank.items()):
            gen = 0
            for e in seq:
                if e["kind"] == "barrier_arrive":
                    if e["gen"] != gen + 1:
                        self.findings.append(
                            f"rank {rank} arrived at barrier generation "
                            f"{e['gen']} after generation {gen} (must advance "
                            "by exactly one)"
                        )
                    gen = e["gen"]
                    arrives[e["gen"]][rank] = e
                elif e["kind"] == "barrier_depart":
                    departs[e["gen"]][rank] = e
        for gen, ranks in sorted(departs.items()):
            for rank, d in sorted(ranks.items()):
                for peer in range(self.world or 0):
                    a = arrives[gen].get(peer)
                    if a is None:
                        self.findings.append(
                            f"rank {rank} departed barrier generation {gen} "
                            f"but rank {peer} never arrived — stale generation "
                            "observed"
                        )
                    else:
                        self.add_edge(a, d, f"barrier generation {gen}")

    def handle_checks(self) -> None:
        issues: dict[tuple[int, int], dict] = {}
        completions: dict[tuple[int, int], list[dict]] = defaultdict(list)
        for rank, seq in sorted(self.by_rank.items()):
            for e in seq:
                if e["kind"] == "handle_issue":
                    issues[(rank, e["hid"])] = e
                elif e["kind"] == "handle_wait" and not e.get("dup", False):
                    completions[(rank, e["hid"])].append(e)
        for (rank, hid), issue in sorted(issues.items()):
            done = completions.get((rank, hid), [])
            label = issue.get("label", issue.get("htype", "handle"))
            if not done:
                self.findings.append(
                    f"rank {rank} issued {label!r} (handle {hid}) but never "
                    "waited on it — its result (and its CommEvent) are lost "
                    "and the ring slot stays occupied"
                )
                continue
            if len(done) > 1:
                self.findings.append(
                    f"rank {rank} completed handle {hid} ({label!r}) "
                    f"{len(done)} times — wait() must cache, not re-receive"
                )
            w = done[0]
            if "crc" in issue and "crc" in w and issue["crc"] != w["crc"]:
                self.findings.append(
                    f"rank {rank}: buffer of in-flight {label!r} (handle "
                    f"{hid}) was mutated between issue and wait "
                    f"(crc {issue['crc']:#x} -> {w['crc']:#x}) — peers may "
                    "have read torn data"
                )
        for (rank, hid), done in sorted(completions.items()):
            if (rank, hid) not in issues:
                self.findings.append(
                    f"rank {rank} completed handle {hid} that was never issued"
                )

    # -- vector clocks ---------------------------------------------------
    def vector_clocks(self) -> dict[tuple[int, int], dict[int, int]] | None:
        """Kahn topological pass computing one clock per event.

        Returns None (with a finding) when the happens-before graph has a
        cycle — mutually contradictory ordering claims.
        """
        indeg: dict[tuple[int, int], int] = {k: 0 for k in self.events}
        for u, vs in self.edges.items():
            for v in vs:
                if v in indeg:
                    indeg[v] += 1
        ready = sorted(k for k, d in indeg.items() if d == 0)
        clocks: dict[tuple[int, int], dict[int, int]] = {}
        order: list[tuple[int, int]] = []
        preds: dict[tuple[int, int], list[tuple[int, int]]] = defaultdict(list)
        for u, vs in self.edges.items():
            for v in vs:
                preds[v].append(u)
        while ready:
            k = ready.pop()
            order.append(k)
            vc: dict[int, int] = {}
            for p in preds[k]:
                for r, c in clocks[p].items():
                    if c > vc.get(r, -1):
                        vc[r] = c
            vc[k[0]] = k[1]
            clocks[k] = vc
            for v in self.edges.get(k, ()):
                if v in indeg:
                    indeg[v] -= 1
                    if indeg[v] == 0:
                        ready.append(v)
        if len(order) != len(self.events):
            stuck = sorted(set(self.events) - set(order))[:4]
            names = ", ".join(
                f"rank {r} idx {i} ({self.events[(r, i)]['kind']})"
                for r, i in stuck
            )
            self.findings.append(
                f"happens-before graph has a cycle through {names} — the "
                "log's ordering claims are self-contradictory"
            )
            return None
        return clocks

    @staticmethod
    def _ordered(clocks, u: dict, v: dict) -> bool:
        """Whether ``u`` happens-before ``v`` under the computed clocks."""
        cu, cv = clocks[_key(u)], clocks[_key(v)]
        return cv.get(u["rank"], -1) >= cu[u["rank"]]

    def slot_race_scan(self, clocks) -> None:
        """Conflicting same-slot accesses must be totally HB-ordered."""
        by_slot: dict[tuple[int, int, int], list[dict]] = defaultdict(list)
        for e in self.events.values():
            # Dropped send attempts never wrote the slot — the fault was
            # taken before the commit — so they are not slot accesses.
            if e["kind"] in ("send", "recv") and not e.get("dropped"):
                by_slot[(e["src"], e["dst"], e["slot"])].append(e)
        for (src, dst, slot), accesses in sorted(by_slot.items()):
            accesses.sort(key=lambda e: (e["seq"], e["kind"] == "recv"))
            for u, v in zip(accesses, accesses[1:]):
                if not self._ordered(clocks, u, v):
                    self.findings.append(
                        f"data race on mailbox {src}->{dst} slot {slot}: "
                        f"rank {u['rank']} {u['kind']} seq {u['seq']} and "
                        f"rank {v['rank']} {v['kind']} seq {v['seq']} are "
                        "concurrent (no happens-before path orders them)"
                    )


def run_race_check(events: list[dict]) -> list[str]:
    """Replay a concurrency log; returns one message per finding.

    An empty list means the recorded run was race-free: every conflicting
    slot access, barrier generation and handle lifecycle was ordered by
    the protocol's own happens-before edges, and those edges are
    consistent with observed wall order.
    """
    if not events:
        return ["concurrency log is empty — nothing was recorded "
                "(was REPRO_CONC_LOG set for the run?)"]
    replay = _Replay(events)
    replay.check_frames()
    replay.program_order()
    replay.channel_edges()
    replay.barrier_edges()
    replay.handle_checks()
    clocks = replay.vector_clocks()
    if clocks is not None:
        replay.slot_race_scan(clocks)
    return replay.findings


def run_race_check_on_path(path) -> list[str]:
    """Load a recorded log (file or directory of per-rank files) and check it."""
    from repro.parallel.backend.conclog import load_events

    try:
        events = load_events(path)
    except (OSError, ValueError) as exc:
        return [f"cannot load concurrency log {path}: {exc}"]
    return run_race_check(events)
