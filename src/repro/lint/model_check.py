"""DYN004: bounded model checking of the ring-mailbox transport.

Unlike DYN003 (which replays one *recorded* schedule), the model checker
executes the **real** :class:`~repro.parallel.backend.transport.ShmChannel`
and :class:`~repro.parallel.backend.transport.ShmBarrier` implementations
over plain ``bytearray`` buffers and explores **every** interleaving of a
bounded workload with a deterministic virtual scheduler.  The transport's
single-step seams make this possible: ``try_send`` / ``try_recv`` are one
atomic ring transition each, and ``arrive`` / ``peers_ready`` split the
barrier into its publish and its readiness predicate — the exact code the
blocking paths loop over, not a re-implementation.

Explored configurations stay small on purpose (≤ 3 ranks × slots ∈
{1, 2, 4} × enough messages for ≥ 2 full ring wraparounds and ≥ 2 barrier
generations) so the search is exhaustive in well under a second; the
state space is memoized on the per-rank program counters, which is sound
because every buffer byte and counter is a deterministic function of how
far each fixed program has run.

Checked properties, each cross-checked against an independent
reference model maintained by the harness:

- **No deadlock**: from every reachable state some rank can make
  progress until all programs finish.
- **No lost or reordered message**: every ``try_recv`` must return
  exactly the payload the reference FIFO says is next.
- **No slot overwrite**: a ``try_send`` may only succeed while the
  reference ring has free depth, and may only refuse while it is full.
- **No early barrier departure**: ``peers_ready(g) is None`` may only
  hold once the reference says every rank arrived at generation ``g``.

A second battery of *adversarial* scenarios injects faults a correct run
never produces — a tampered sequence number, a corrupted magic word, a
send into a full ring, a barrier queried before a peer arrives — and
demands the protocol **detect** each one with a typed error naming the
rank / slot / seq involved.  This is what makes mutations observable:
delete the seq check in ``_commit_recv`` and the tampered-seq scenario
reports an undetected stale message; break the ``peers_ready``
comparison and both the stale-barrier scenario and the early-departure
cross-check fire.

All findings are strings; the CLI surfaces them as ``DYN004``.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.parallel.backend.base import BackendError
from repro.parallel.backend.transport import HEADER_SIZE, ShmBarrier, ShmChannel

__all__ = ["run_model_check"]

#: Payload capacity for model-checked channels: one int32 plus headroom.
_CAPACITY = 64


def _payload(value: int) -> np.ndarray:
    return np.array([value], dtype=np.int32)


class _World:
    """Real transport objects over bytearrays plus a reference model.

    ``channels`` maps ``(src, dst)`` to a live :class:`ShmChannel`;
    ``queues`` is the reference FIFO of in-flight payload values per
    channel; ``arrived`` counts reference barrier arrivals per
    generation.  ``snapshot``/``restore`` copy the *entire* state —
    buffer bytes, protocol counters and reference model — so sibling
    branches of the interleaving search start from identical worlds.
    """

    def __init__(self, world: int, channel_slots: dict[tuple[int, int], int]):
        self.world = world
        self.chan_bufs: dict[tuple[int, int], bytearray] = {}
        self.channels: dict[tuple[int, int], ShmChannel] = {}
        for (src, dst), slots in channel_slots.items():
            buf = bytearray(slots * (HEADER_SIZE + _CAPACITY))
            self.chan_bufs[(src, dst)] = buf
            self.channels[(src, dst)] = ShmChannel(
                buf, _CAPACITY, src=src, dst=dst, slots=slots)
        self.bar_buf = bytearray(4 * world)
        self.barriers = [ShmBarrier(self.bar_buf, world, r) for r in range(world)]
        self.queues: dict[tuple[int, int], list[int]] = {
            k: [] for k in channel_slots
        }
        self.arrived: dict[int, set[int]] = {}

    def snapshot(self):
        return (
            {k: bytes(b) for k, b in self.chan_bufs.items()},
            {k: (c._send_seq, c._recv_seq) for k, c in self.channels.items()},
            bytes(self.bar_buf),
            [b._generation for b in self.barriers],
            {k: list(q) for k, q in self.queues.items()},
            {g: set(rs) for g, rs in self.arrived.items()},
        )

    def restore(self, snap) -> None:
        bufs, seqs, bar, gens, queues, arrived = snap
        for k, data in bufs.items():
            self.chan_bufs[k][:] = data
            self.channels[k]._send_seq, self.channels[k]._recv_seq = seqs[k]
        self.bar_buf[:] = bar
        for b, g in zip(self.barriers, gens):
            b._generation = g
        self.queues = {k: list(q) for k, q in queues.items()}
        self.arrived = {g: set(rs) for g, rs in arrived.items()}


class _Scenario:
    """A bounded workload: one fixed op sequence per virtual rank.

    Ops (executed via the transport's single-step seams):

    - ``("send", (src, dst), value)`` — ``try_send``; enabled iff the
      target ring slot is free.
    - ``("recv", (src, dst))`` — ``try_recv``; enabled iff a message is
      pending; the payload is checked against the reference FIFO.
    - ``("arrive",)`` — barrier arrival; always enabled.
    - ``("depart",)`` — enabled iff ``peers_ready`` reports no
      straggler; cross-checked against reference arrivals.
    """

    def __init__(self, name: str, world: int,
                 channel_slots: dict[tuple[int, int], int],
                 programs: dict[int, list[tuple]]):
        self.name = name
        self.world = world
        self.channel_slots = channel_slots
        self.programs = programs

    def explore(self, findings: list[str], stats: dict) -> None:
        w = _World(self.world, self.channel_slots)
        visited: set[tuple[int, ...]] = set()
        seen_msgs: set[str] = set()
        ranks = sorted(self.programs)

        def report(msg: str) -> None:
            full = f"[{self.name}] {msg}"
            if full not in seen_msgs:
                seen_msgs.add(full)
                findings.append(full)

        def execute(rank: int, op: tuple) -> bool:
            """Run one op through the real transport; True iff it fired."""
            kind = op[0]
            if kind == "send":
                _, chan, value = op
                model_full = len(w.queues[chan]) >= w.channels[chan].slots
                ok = w.channels[chan].try_send(_payload(value))
                if ok and model_full:
                    seq = w.channels[chan]._send_seq
                    report(
                        f"slot overwrite: rank {chan[0]} committed seq {seq} "
                        f"into mailbox {chan[0]}->{chan[1]} slot "
                        f"{(seq - 1) % w.channels[chan].slots} while the ring "
                        "was full — an undrained message was destroyed"
                    )
                if not ok and not model_full:
                    report(
                        f"liveness: rank {chan[0]} refused to send into "
                        f"mailbox {chan[0]}->{chan[1]} although "
                        f"{w.channels[chan].slots - len(w.queues[chan])} "
                        "slot(s) are free"
                    )
                if ok:
                    w.queues[chan].append(value)
                return ok
            if kind == "recv":
                _, chan = op
                try:
                    out = w.channels[chan].try_recv()
                except BackendError as exc:
                    report(
                        f"rank {chan[1]} recv on mailbox "
                        f"{chan[0]}->{chan[1]} raised in a fault-free run: "
                        f"{exc}"
                    )
                    return True  # op consumed; keep exploring siblings
                if out is None:
                    if w.queues[chan]:
                        report(
                            f"lost message: mailbox {chan[0]}->{chan[1]} has "
                            f"{len(w.queues[chan])} message(s) in flight but "
                            f"rank {chan[1]} sees an empty slot "
                            f"(next seq {w.channels[chan]._recv_seq + 1})"
                        )
                    return False
                if not w.queues[chan]:
                    report(
                        f"phantom message: rank {chan[1]} received "
                        f"{int(out[0])} on mailbox {chan[0]}->{chan[1]} but "
                        "nothing was in flight"
                    )
                    return True
                expect = w.queues[chan].pop(0)
                if int(out[0]) != expect:
                    report(
                        f"reordered message on mailbox {chan[0]}->{chan[1]} "
                        f"slot {(w.channels[chan]._recv_seq - 1) % w.channels[chan].slots}: "
                        f"got payload {int(out[0])}, FIFO order requires {expect}"
                    )
                return True
            if kind == "arrive":
                gen = w.barriers[rank].arrive()
                w.arrived.setdefault(gen, set()).add(rank)
                return True
            if kind == "depart":
                gen = w.barriers[rank]._generation
                straggler = w.barriers[rank].peers_ready(gen)
                all_arrived = w.arrived.get(gen, set()) >= set(range(self.world))
                if straggler is None and not all_arrived:
                    missing = sorted(set(range(self.world)) - w.arrived.get(gen, set()))
                    report(
                        f"early barrier departure: rank {rank} observed "
                        f"generation {gen} complete although rank(s) "
                        f"{missing} never arrived"
                    )
                if straggler is not None and all_arrived:
                    report(
                        f"barrier livelock: every rank arrived at generation "
                        f"{gen} but rank {rank} still waits on rank {straggler}"
                    )
                return straggler is None
            raise AssertionError(f"unknown model-check op {op!r}")

        def step(pcs: tuple[int, ...]) -> None:
            if pcs in visited:
                return
            visited.add(pcs)
            stats["states"] += 1
            if all(pcs[i] >= len(self.programs[r]) for i, r in enumerate(ranks)):
                leftovers = {k: q for k, q in w.queues.items() if q}
                if leftovers:
                    desc = ", ".join(
                        f"{s}->{d}: {q}" for (s, d), q in sorted(leftovers.items()))
                    report(f"terminated with undelivered message(s): {desc}")
                return
            progressed = False
            for i, rank in enumerate(ranks):
                if pcs[i] >= len(self.programs[rank]):
                    continue
                snap = w.snapshot()
                fired = execute(rank, self.programs[rank][pcs[i]])
                stats["transitions"] += 1
                if fired:
                    progressed = True
                    step(pcs[:i] + (pcs[i] + 1,) + pcs[i + 1:])
                w.restore(snap)
            if not progressed:
                stuck = ", ".join(
                    f"rank {r} at {self.programs[r][pcs[i]]}"
                    for i, r in enumerate(ranks)
                    if pcs[i] < len(self.programs[r])
                )
                report(f"deadlock: no rank can make progress ({stuck})")

        step(tuple(0 for _ in ranks))


def _interleaving_scenarios() -> list[_Scenario]:
    scenarios: list[_Scenario] = []

    # One-way soak across every ring depth: ≥ 2 full wraparounds, so the
    # slot-reuse ordering (receiver must drain seq before the sender may
    # rewrite its slot with seq + slots) is exercised at every depth.
    for slots in (1, 2, 4):
        n = 2 * slots + 1
        scenarios.append(_Scenario(
            f"one-way soak slots={slots}", 2, {(0, 1): slots},
            {0: [("send", (0, 1), v) for v in range(n)],
             1: [("recv", (0, 1))] * n},
        ))

    # Bidirectional ping-pong: both directions in flight at once.
    scenarios.append(_Scenario(
        "ping-pong slots=2", 2, {(0, 1): 2, (1, 0): 2},
        {0: [op for v in range(3) for op in
             (("send", (0, 1), v), ("recv", (1, 0)))],
         1: [op for v in range(3) for op in
             (("recv", (0, 1)), ("send", (1, 0), 10 + v))]},
    ))

    # Three-rank ring (the pipeline's neighbour pattern): 0→1→2→0.
    ring = {(0, 1): 2, (1, 2): 2, (2, 0): 2}
    scenarios.append(_Scenario(
        "3-rank ring slots=2", 3, ring,
        {0: [("send", (0, 1), 1), ("recv", (2, 0)), ("send", (0, 1), 2),
             ("recv", (2, 0))],
         1: [("recv", (0, 1)), ("send", (1, 2), 3), ("recv", (0, 1)),
             ("send", (1, 2), 4)],
         2: [("recv", (1, 2)), ("send", (2, 0), 5), ("recv", (1, 2)),
             ("send", (2, 0), 6)]},
    ))

    # Barrier generations: 3 ranks × 2 generations of arrive/depart.
    scenarios.append(_Scenario(
        "barrier 3x2 generations", 3, {},
        {r: [("arrive",), ("depart",), ("arrive",), ("depart",)]
         for r in range(3)},
    ))

    # Mixed: data exchange fenced by a barrier, as every training step is.
    scenarios.append(_Scenario(
        "barrier-fenced exchange", 2, {(0, 1): 1, (1, 0): 1},
        {0: [("arrive",), ("depart",), ("send", (0, 1), 7), ("recv", (1, 0)),
             ("arrive",), ("depart",)],
         1: [("arrive",), ("depart",), ("send", (1, 0), 8), ("recv", (0, 1)),
             ("arrive",), ("depart",)]},
    ))
    return scenarios


def _adversarial_checks(findings: list[str]) -> None:
    """Inject faults a correct run never produces; the protocol must
    detect every one with a typed error naming rank / slot / seq."""

    def fresh(slots: int = 2) -> ShmChannel:
        buf = bytearray(slots * (HEADER_SIZE + _CAPACITY))
        return ShmChannel(buf, _CAPACITY, src=0, dst=1, slots=slots)

    # Tampered sequence number: a stale or replayed message must be
    # rejected by the receiver's seq check, never silently accepted.
    ch = fresh()
    assert ch.try_send(_payload(11))
    struct.pack_into("<I", ch._buf, 4, 99)  # slot 0 seq field
    try:
        out = ch.try_recv()
    except BackendError as exc:
        msg = str(exc)
        if "99" not in msg or "slot 0" not in msg:
            findings.append(
                "[tampered-seq] rejection does not name the offending "
                f"slot/seq (rank 1, slot 0, seq 99): {msg!r}"
            )
    else:
        findings.append(
            "[tampered-seq] rank 1 accepted a stale message on mailbox "
            f"0->1 slot 0 (header seq 99 where 1 was expected, payload "
            f"{None if out is None else int(out[0])}) — the sequence check "
            "is not enforced"
        )

    # Corrupted magic: garbage in the header must fail loudly, not
    # deserialize into a tensor.
    ch = fresh()
    assert ch.try_send(_payload(12))
    struct.pack_into("<I", ch._buf, 8, 0xDEADBEEF)  # slot 0 magic field
    try:
        ch.try_recv()
    except BackendError:
        pass
    else:
        findings.append(
            "[corrupt-magic] rank 1 deserialized a message whose magic "
            "word was clobbered (mailbox 0->1 slot 0) — header validation "
            "is not enforced"
        )

    # Full ring: the (slots+1)-th unacknowledged send must be refused;
    # succeeding would overwrite slot 0's undrained message.
    for slots in (1, 2, 4):
        ch = fresh(slots)
        for v in range(slots):
            if not ch.try_send(_payload(v)):
                findings.append(
                    f"[full-ring slots={slots}] send {v + 1}/{slots} refused "
                    "although the ring had free depth"
                )
                break
        else:
            if ch.try_send(_payload(slots)):
                findings.append(
                    f"[full-ring slots={slots}] rank 0 overwrote mailbox "
                    f"0->1 slot 0 (seq {slots + 1} committed while seq 1 "
                    "was undrained)"
                )

    # Stale barrier generation: with rank 1 absent, rank 0 must see a
    # straggler, not an all-clear from last generation's slot values.
    bar_buf = bytearray(4 * 2)
    b0 = ShmBarrier(bar_buf, 2, 0)
    b1 = ShmBarrier(bar_buf, 2, 1)
    g = b0.arrive()
    if b0.peers_ready(g) is None:
        findings.append(
            "[stale-barrier] rank 0 observed generation 1 complete before "
            "rank 1 arrived — departure can act on a stale generation"
        )
    b1.arrive()
    if b0.peers_ready(g) is not None:
        findings.append(
            "[stale-barrier] generation 1 complete (both ranks arrived) "
            f"but rank 0 still reports straggler {b0.peers_ready(g)}"
        )
    # Second generation must not be satisfied by first-generation slots.
    g2 = b0.arrive()
    if b0.peers_ready(g2) != 1:
        findings.append(
            "[stale-barrier] rank 0 at generation 2 does not wait for "
            "rank 1 (still at generation 1) — generation reuse is unsafe"
        )


def run_model_check(stats: dict | None = None) -> list[str]:
    """Exhaustively check the bounded scenarios; one message per finding.

    ``stats`` (optional dict) receives ``states`` / ``transitions`` /
    ``scenarios`` counts so callers can report the search was exhaustive
    and bounded.  An empty return means every interleaving of every
    scenario satisfied every property and every injected fault was
    detected.
    """
    findings: list[str] = []
    counters = {"states": 0, "transitions": 0, "scenarios": 0}
    for scenario in _interleaving_scenarios():
        scenario.explore(findings, counters)
        counters["scenarios"] += 1
    _adversarial_checks(findings)
    counters["scenarios"] += 1
    if stats is not None:
        stats.update(counters)
    return findings
