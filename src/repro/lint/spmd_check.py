"""SPMD consistency check: recorded CommEvents vs a closed-form oracle.

For each (scheme, tp, pp) cell, a tiny :class:`ModelParallelBertClassifier`
runs one forward/backward and the full recorded event stream is compared —
as an exact multiset over ``(op, group, phase, scheme, wire_bytes, world,
layer, site)`` — against expectations derived here from first principles:

- every transformer layer has two ``g`` all-reduces (attention out, MLP
  out) whose forward *and* backward messages cross the TP group, plus two
  conjugate ``f`` backward all-reduces (§3.2);
- every pipeline boundary carries one forward send and one backward send;
- wire bytes follow the paper's fp16/int32 packing rules (§3.2/§3.3),
  re-derived below *independently* of ``Compressor.compressed_bytes`` so a
  regression in either the analytic formulas or the runtime routing
  (wrong collective, double-logged event, dropped backward) shows up as a
  multiset mismatch.

The default matrix is schemes {w/o, T2, R2, Q2, A2} — the baseline plus
one member of each compressed family — × layouts {tp=2 pp=1, tp=1 pp=2,
tp=2 pp=2}.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

__all__ = [
    "EventKey",
    "expected_events",
    "observed_events",
    "compare_event_streams",
    "check_layout",
    "run_spmd_check",
    "DEFAULT_SCHEMES",
    "DEFAULT_LAYOUTS",
]

DEFAULT_SCHEMES = ("w/o", "T2", "R2", "Q2", "A2")
DEFAULT_LAYOUTS = ((2, 1), (1, 2), (2, 2))

#: QuantizationCompressor's default grouping (elements per scale/zero pair).
_QUANT_GROUP = 256
_BYTES_FP16 = 2
_BYTES_INT32 = 4

#: family → the Compressor.name label the runtime stamps on events.
_FAMILY_EVENT_SCHEME = {
    "none": "none",
    "ae": "autoencoder",
    "topk": "topk",
    "randomk": "randomk",
    "quant": "quantization",
}


@dataclass(frozen=True)
class EventKey:
    """The comparable identity of one CommEvent."""

    op: str
    group: str
    phase: str
    scheme: str
    wire_bytes: int
    world: int
    layer: int | None
    site: str


# ----------------------------------------------------------------------
# Independent wire-byte oracle (intentionally duplicates the packing
# arithmetic rather than calling Compressor.compressed_bytes).
# ----------------------------------------------------------------------
def _dense(n: int) -> int:
    return n * _BYTES_FP16


def _fwd_bytes(spec, shape: tuple[int, ...]) -> int:
    n = int(np.prod(shape))
    h = shape[-1]
    if spec.family == "none":
        return _dense(n)
    if spec.family == "ae":
        code_dim = max(2, round(spec.fraction * h))
        return (n // h) * code_dim * _BYTES_FP16
    if spec.family in ("topk", "randomk"):
        k = max(1, int(round(spec.fraction * n)))
        return k * (_BYTES_FP16 + _BYTES_INT32)
    if spec.family == "quant":
        groups = math.ceil(n / _QUANT_GROUP)
        packed = groups * _QUANT_GROUP * spec.bits // 8
        return packed + 2 * groups * _BYTES_FP16
    raise ValueError(f"unknown family {spec.family!r}")


def _bwd_bytes(spec, shape: tuple[int, ...]) -> int:
    # §3.3: quantized backward stays dense fp16 (the backward engine only
    # supports float gradients); every other scheme's backward message
    # shrinks exactly like its forward one.
    if spec.family == "quant":
        return _dense(int(np.prod(shape)))
    return _fwd_bytes(spec, shape)


def _g_op(spec) -> str:
    # AE messages are single float tensors → summable by all-reduce; the
    # sparse/quantized messages ride the all-gather fallback (§3.2).
    return "all_reduce" if spec.family in ("none", "ae") else "all_gather"


# ----------------------------------------------------------------------
def expected_events(config, batch: int, seq: int) -> Counter:
    """Closed-form expected event multiset for one training iteration.

    With ``config.num_microbatches = m > 1`` every site fires once per
    microbatch on the per-microbatch slice of the batch: event counts
    scale by ``m`` and wire bytes shrink to ``batch/m`` rows.  The
    multiset is *schedule-independent* — GPipe and 1F1B reorder the same
    per-microbatch work, so any count difference between schedules is a
    routing bug this oracle must flag.
    """
    from repro.compression.notation import SCHEME_LABELS, scheme_spec
    from repro.parallel.pipeline import PipelinePartition

    m = getattr(config, "num_microbatches", 1)
    if batch % m:
        raise ValueError(
            f"batch size {batch} is not divisible by num_microbatches {m}"
        )
    spec = scheme_spec(config.scheme)
    none_spec = SCHEME_LABELS["w/o"]
    shape = (batch // m, seq, config.model.hidden)
    n = int(np.prod(shape))
    expected: Counter = Counter()

    if config.tp > 1:
        for layer in range(config.model.num_layers):
            active = spec if (spec.family != "none"
                              and config.policy.applies(layer)) else none_spec
            name = _FAMILY_EVENT_SCHEME[active.family]
            for site in ("attn", "mlp"):
                # g op: forward collective + its tracked backward message.
                expected[EventKey(_g_op(active), "tp", "forward", name,
                                  _fwd_bytes(active, shape), config.tp, layer, site)] += m
                expected[EventKey(_g_op(active), "tp", "backward", name,
                                  _bwd_bytes(active, shape), config.tp, layer, site)] += m
                # f op: identity forward, dense all-reduce in backward.
                expected[EventKey("all_reduce", "tp", "backward", "none",
                                  _dense(n), config.tp, layer, site)] += m

    partition = PipelinePartition.balanced(config.model.num_layers, config.pp)
    for b_idx, last_layer in enumerate(partition.boundaries()):
        active = spec if (spec.family != "none"
                          and config.policy.boundary_compressed(last_layer)) else none_spec
        name = _FAMILY_EVENT_SCHEME[active.family]
        site = f"boundary{b_idx}"
        expected[EventKey("send", "pp", "forward", name,
                          _fwd_bytes(active, shape), 2, last_layer, site)] += m
        expected[EventKey("send", "pp", "backward", name,
                          _bwd_bytes(active, shape), 2, last_layer, site)] += m
    return expected


def observed_events(tracker) -> Counter:
    """Recorded tracker events as a comparable multiset."""
    return Counter(
        EventKey(e.op, e.group, e.phase, e.scheme, e.wire_bytes, e.world, e.layer, e.site)
        for e in tracker.events
    )


def compare_event_streams(expected: Counter, actual: Counter) -> list[str]:
    """Human-readable multiset differences (empty when streams match)."""
    problems = []
    for key in sorted(set(expected) | set(actual),
                      key=lambda k: (k.group, k.phase, k.layer if k.layer is not None else -1,
                                     k.site, k.op)):
        want, got = expected.get(key, 0), actual.get(key, 0)
        if want != got:
            problems.append(f"{key}: expected {want} event(s), observed {got}")
    return problems


def check_layout(scheme: str, tp: int, pp: int, *, batch: int = 2, seq: int = 8,
                 seed: int = 0, schedule: str = "gpipe",
                 num_microbatches: int = 1) -> list[str]:
    """Run one (scheme, tp, pp, schedule, m) cell and diff its event stream."""
    from repro.nn.transformer import TransformerConfig
    from repro.parallel.backend import create_backend
    from repro.parallel.runtime import ModelParallelBertClassifier, ModelParallelConfig

    model_cfg = TransformerConfig(vocab_size=60, max_seq_len=16, hidden=32,
                                  num_layers=4, num_heads=4, dropout=0.0)
    config = ModelParallelConfig(model_cfg, tp=tp, pp=pp, scheme=scheme,
                                 seed=seed, pipeline_schedule=schedule,
                                 num_microbatches=num_microbatches)
    model = ModelParallelBertClassifier(config)
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, model_cfg.vocab_size, size=(batch, seq))
    labels = np.zeros(batch, dtype=np.int64)
    if num_microbatches == 1:
        model.loss(ids, labels).backward()
    else:
        # The microbatched iteration routes through the backend's split
        # loop, so the per-microbatch event stream is what gets diffed.
        create_backend("inproc", model).train_step(ids, labels, None)
    problems = compare_event_streams(
        expected_events(config, batch, seq), observed_events(model.tracker)
    )
    cell = f"scheme {scheme!r} tp={tp} pp={pp}"
    if num_microbatches > 1 or schedule != "gpipe":
        cell += f" schedule={schedule} m={num_microbatches}"
    return [f"{cell}: {p}" for p in problems]


def run_spmd_check(
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    layouts: tuple[tuple[int, int], ...] = DEFAULT_LAYOUTS,
) -> list[str]:
    """Full matrix check; returns all mismatches (empty means consistent)."""
    problems: list[str] = []
    for scheme in schemes:
        for tp, pp in layouts:
            problems.extend(check_layout(scheme, tp, pp))
            if pp > 1:
                # Microbatched 1F1B cell: counts must scale by m and the
                # schedule must not add, drop or resize any message.
                problems.extend(check_layout(
                    scheme, tp, pp, batch=4, schedule="1f1b",
                    num_microbatches=2,
                ))
    return problems
