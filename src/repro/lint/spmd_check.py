"""SPMD consistency check: recorded CommEvents vs a closed-form oracle.

For each (scheme, tp, pp) cell, a tiny :class:`ModelParallelBertClassifier`
runs one forward/backward and the full recorded event stream is compared —
as an exact multiset over ``(op, group, phase, scheme, wire_bytes, world,
layer, site)`` — against expectations derived here from first principles:

- every transformer layer has two ``g`` all-reduces (attention out, MLP
  out) whose forward *and* backward messages cross the TP group, plus two
  conjugate ``f`` backward all-reduces (§3.2);
- every pipeline boundary carries one forward send and one backward send;
- wire bytes follow the paper's fp16/int32 packing rules (§3.2/§3.3),
  re-derived below *independently* of ``Compressor.compressed_bytes`` so a
  regression in either the analytic formulas or the runtime routing
  (wrong collective, double-logged event, dropped backward) shows up as a
  multiset mismatch.

The default matrix is schemes {w/o, T2, R2, Q2, A2} — the baseline plus
one member of each compressed family — × layouts {tp=2 pp=1, tp=1 pp=2,
tp=2 pp=2}, plus the DP/SP grid cells {dp=2, dp=2 tp=2, sp=2 pp=2}:

- ``dp > 1`` replicates the per-gang stream (at the gang's batch shard)
  ``dp`` times and adds exactly one gradient event on the ``dp`` group —
  ``all_reduce`` dense or ``all_gather`` of the compressed flat vector;
- ``sp > 1`` adds one forward and one backward ``ring_exchange`` per
  (layer, microbatch) — ``3·(sp−1)`` sequence blocks each way — plus one
  per-stage ``grad_sync`` all-reduce over the stage's QKV parameters.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

__all__ = [
    "EventKey",
    "expected_events",
    "observed_events",
    "compare_event_streams",
    "check_layout",
    "run_spmd_check",
    "DEFAULT_SCHEMES",
    "DEFAULT_LAYOUTS",
    "DEFAULT_GRID_CELLS",
]

DEFAULT_SCHEMES = ("w/o", "T2", "R2", "Q2", "A2")
DEFAULT_LAYOUTS = ((2, 1), (1, 2), (2, 2))
#: (dp, tp, pp, sp) cells exercising the new topology axes.
DEFAULT_GRID_CELLS = ((2, 1, 1, 1), (2, 2, 1, 1), (1, 1, 2, 2))

#: QuantizationCompressor's default grouping (elements per scale/zero pair).
_QUANT_GROUP = 256
_BYTES_FP16 = 2
_BYTES_INT32 = 4

#: family → the Compressor.name label the runtime stamps on events.
_FAMILY_EVENT_SCHEME = {
    "none": "none",
    "ae": "autoencoder",
    "topk": "topk",
    "randomk": "randomk",
    "quant": "quantization",
}


@dataclass(frozen=True)
class EventKey:
    """The comparable identity of one CommEvent."""

    op: str
    group: str
    phase: str
    scheme: str
    wire_bytes: int
    world: int
    layer: int | None
    site: str


# ----------------------------------------------------------------------
# Independent wire-byte oracle (intentionally duplicates the packing
# arithmetic rather than calling Compressor.compressed_bytes).
# ----------------------------------------------------------------------
def _dense(n: int) -> int:
    return n * _BYTES_FP16


def _fwd_bytes(spec, shape: tuple[int, ...]) -> int:
    n = int(np.prod(shape))
    h = shape[-1]
    if spec.family == "none":
        return _dense(n)
    if spec.family == "ae":
        code_dim = max(2, round(spec.fraction * h))
        return (n // h) * code_dim * _BYTES_FP16
    if spec.family in ("topk", "randomk"):
        k = max(1, int(round(spec.fraction * n)))
        return k * (_BYTES_FP16 + _BYTES_INT32)
    if spec.family == "quant":
        groups = math.ceil(n / _QUANT_GROUP)
        packed = groups * _QUANT_GROUP * spec.bits // 8
        return packed + 2 * groups * _BYTES_FP16
    raise ValueError(f"unknown family {spec.family!r}")


def _bwd_bytes(spec, shape: tuple[int, ...]) -> int:
    # §3.3: quantized backward stays dense fp16 (the backward engine only
    # supports float gradients); every other scheme's backward message
    # shrinks exactly like its forward one.
    if spec.family == "quant":
        return _dense(int(np.prod(shape)))
    return _fwd_bytes(spec, shape)


def _g_op(spec) -> str:
    # AE messages are single float tensors → summable by all-reduce; the
    # sparse/quantized messages ride the all-gather fallback (§3.2).
    return "all_reduce" if spec.family in ("none", "ae") else "all_gather"


# ----------------------------------------------------------------------
def expected_events(config, batch: int, seq: int, *,
                    dp_grad_numel: int | None = None) -> Counter:
    """Closed-form expected event multiset for one training iteration.

    With ``config.num_microbatches = m > 1`` every site fires once per
    microbatch on the per-microbatch slice of the batch: event counts
    scale by ``m`` and wire bytes shrink to ``batch/m`` rows.  The
    multiset is *schedule-independent* — GPipe and 1F1B reorder the same
    per-microbatch work, so any count difference between schedules is a
    routing bug this oracle must flag.

    With ``config.dp > 1`` each gang replays the per-gang stream on its
    ``batch/dp`` shard, and the backend adds one gradient event on the
    ``dp`` group whose wire covers the flat gradient vector —
    ``dp_grad_numel`` elements, measured from the model (the oracle owns
    the packing rules, not the parameter inventory).  With
    ``config.sp > 1`` every layer adds a forward and a backward
    ``ring_exchange`` per microbatch, plus a per-stage ``grad_sync``
    all-reduce over the stage's QKV parameters.
    """
    from repro.compression.notation import SCHEME_LABELS, scheme_spec
    from repro.parallel.pipeline import PipelinePartition

    m = getattr(config, "num_microbatches", 1)
    dp = getattr(config, "dp", 1)
    sp = getattr(config, "sp", 1)
    if batch % (dp * m):
        raise ValueError(
            f"batch size {batch} is not divisible by dp*m = {dp * m}"
        )
    batch //= dp  # per-gang shard; the gang stream repeats dp times
    spec = scheme_spec(config.scheme)
    none_spec = SCHEME_LABELS["w/o"]
    shape = (batch // m, seq, config.model.hidden)
    n = int(np.prod(shape))
    expected: Counter = Counter()

    if config.tp > 1:
        for layer in range(config.model.num_layers):
            active = spec if (spec.family != "none"
                              and config.policy.applies(layer)) else none_spec
            name = _FAMILY_EVENT_SCHEME[active.family]
            for site in ("attn", "mlp"):
                # g op: forward collective + its tracked backward message.
                expected[EventKey(_g_op(active), "tp", "forward", name,
                                  _fwd_bytes(active, shape), config.tp, layer, site)] += m
                expected[EventKey(_g_op(active), "tp", "backward", name,
                                  _bwd_bytes(active, shape), config.tp, layer, site)] += m
                # f op: identity forward, dense all-reduce in backward.
                expected[EventKey("all_reduce", "tp", "backward", "none",
                                  _dense(n), config.tp, layer, site)] += m

    partition = PipelinePartition.balanced(config.model.num_layers, config.pp)
    for b_idx, last_layer in enumerate(partition.boundaries()):
        active = spec if (spec.family != "none"
                          and config.policy.boundary_compressed(last_layer)) else none_spec
        name = _FAMILY_EVENT_SCHEME[active.family]
        site = f"boundary{b_idx}"
        expected[EventKey("send", "pp", "forward", name,
                          _fwd_bytes(active, shape), 2, last_layer, site)] += m
        expected[EventKey("send", "pp", "backward", name,
                          _bwd_bytes(active, shape), 2, last_layer, site)] += m

    if sp > 1:
        h = config.model.hidden
        ring_wire = 3 * (sp - 1) * _dense((batch // m) * (seq // sp) * h)
        for layer in range(config.model.num_layers):
            for phase in ("forward", "backward"):
                expected[EventKey("ring_exchange", "sp", phase, "none",
                                  ring_wire, sp, layer, "attn")] += m
        # Post-backward QKV grad sync, one per stage (tp == 1 under ring
        # SP, so each layer contributes its full h×3h weight + 3h bias).
        qkv_numel = 3 * h * h + 3 * h
        for stage in range(config.pp):
            stage_layers = sum(
                1 for lyr in range(config.model.num_layers)
                if partition.stage_of(lyr) == stage)
            expected[EventKey("all_reduce", "sp", "backward", "none",
                              _dense(stage_layers * qkv_numel), sp,
                              None, "grad_sync")] += 1

    if dp > 1:
        for key in list(expected):
            expected[key] *= dp
        if dp_grad_numel is None:
            raise ValueError("dp > 1 requires dp_grad_numel")
        if spec.family in ("topk", "randomk"):
            expected[EventKey(
                "all_gather", "dp", "backward",
                f"ef({_FAMILY_EVENT_SCHEME[spec.family]})",
                _fwd_bytes(spec, (dp_grad_numel,)), dp, None, "grad")] += 1
        elif spec.family == "quant":
            expected[EventKey(
                "all_gather", "dp", "backward", "quantization",
                _fwd_bytes(spec, (dp_grad_numel,)), dp, None, "grad")] += 1
        else:
            # "w/o" and AE: dense reduce (the AE codec is dimension-bound
            # to the activation hidden size — it cannot eat a flat
            # parameter vector).
            expected[EventKey("all_reduce", "dp", "backward", "none",
                              _dense(dp_grad_numel), dp, None, "grad")] += 1
    return expected


def observed_events(tracker) -> Counter:
    """Recorded tracker events as a comparable multiset."""
    return Counter(
        EventKey(e.op, e.group, e.phase, e.scheme, e.wire_bytes, e.world, e.layer, e.site)
        for e in tracker.events
    )


def compare_event_streams(expected: Counter, actual: Counter) -> list[str]:
    """Human-readable multiset differences (empty when streams match)."""
    problems = []
    for key in sorted(set(expected) | set(actual),
                      key=lambda k: (k.group, k.phase, k.layer if k.layer is not None else -1,
                                     k.site, k.op)):
        want, got = expected.get(key, 0), actual.get(key, 0)
        if want != got:
            problems.append(f"{key}: expected {want} event(s), observed {got}")
    return problems


def check_layout(scheme: str, tp: int, pp: int, *, dp: int = 1, sp: int = 1,
                 batch: int = 2, seq: int = 8,
                 seed: int = 0, schedule: str = "gpipe",
                 num_microbatches: int = 1) -> list[str]:
    """Run one (scheme, dp, tp, pp, sp, schedule, m) cell and diff its
    event stream."""
    from repro.nn.transformer import TransformerConfig
    from repro.parallel.backend import create_backend
    from repro.parallel.runtime import ModelParallelBertClassifier, ModelParallelConfig

    model_cfg = TransformerConfig(vocab_size=60, max_seq_len=16, hidden=32,
                                  num_layers=4, num_heads=4, dropout=0.0)
    config = ModelParallelConfig(model_cfg, tp=tp, pp=pp, dp=dp, sp=sp,
                                 scheme=scheme,
                                 seed=seed, pipeline_schedule=schedule,
                                 num_microbatches=num_microbatches)
    model = ModelParallelBertClassifier(config)
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, model_cfg.vocab_size, size=(batch, seq))
    labels = np.zeros(batch, dtype=np.int64)
    if num_microbatches == 1 and dp == 1 and sp == 1:
        model.loss(ids, labels).backward()
    else:
        # Microbatched, dp or sp iterations route through the backend —
        # that is where the batch split, the replica loop and the
        # gradient sync points live — so the stream that gets diffed is
        # the one the backend mirrors onto ``model.tracker``.
        create_backend("inproc", model).train_step(ids, labels, None)
    dp_grad_numel = None
    if dp > 1:
        # The flat vector dp_all_reduce shipped: every parameter that
        # received a gradient, measured off the first replica.
        dp_grad_numel = sum(p.grad.size for _, p in model.named_parameters()
                            if p.grad is not None)
    expected = (expected_events(config, batch, seq,
                                dp_grad_numel=dp_grad_numel)
                if dp > 1 else expected_events(config, batch, seq))
    problems = compare_event_streams(expected, observed_events(model.tracker))
    cell = f"scheme {scheme!r} tp={tp} pp={pp}"
    if dp > 1 or sp > 1:
        cell += f" dp={dp} sp={sp}"
    if num_microbatches > 1 or schedule != "gpipe":
        cell += f" schedule={schedule} m={num_microbatches}"
    return [f"{cell}: {p}" for p in problems]


def run_spmd_check(
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    layouts: tuple[tuple[int, int], ...] = DEFAULT_LAYOUTS,
    grid_cells: tuple[tuple[int, int, int, int], ...] = DEFAULT_GRID_CELLS,
) -> list[str]:
    """Full matrix check; returns all mismatches (empty means consistent)."""
    problems: list[str] = []
    for scheme in schemes:
        for tp, pp in layouts:
            problems.extend(check_layout(scheme, tp, pp))
            if pp > 1:
                # Microbatched 1F1B cell: counts must scale by m and the
                # schedule must not add, drop or resize any message.
                problems.extend(check_layout(
                    scheme, tp, pp, batch=4, schedule="1f1b",
                    num_microbatches=2,
                ))
        for dp, tp, pp, sp in grid_cells:
            problems.extend(check_layout(scheme, tp, pp, dp=dp, sp=sp,
                                         batch=2 * dp))
    return problems
