"""AST rule engine: file walking, rule registry, suppressions, findings.

A *rule* is an object with an ``id`` (``REPROnnn``), a short ``name``, a
one-line ``summary``, and a ``check(source)`` method yielding
:class:`Finding` records.  Rules operate on a parsed :class:`SourceFile`
so each file is read and parsed exactly once per run.

Suppression: appending ``# lint: disable=<rule>[,<rule>...]`` to the
flagged line silences those rules for that line (``disable=all`` silences
every rule).  A comment on the *first* line of a multi-line statement
covers the whole statement — a finding anchored to a continuation line
(an argument three lines into a call) honors the suppression where a
human would write it, next to the statement it governs.  Suppressions
are intentionally statement-scoped — a blanket file-level escape hatch
would defeat the point of invariant checking.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Protocol

__all__ = [
    "Finding",
    "LintError",
    "SourceFile",
    "Rule",
    "register_rule",
    "available_rules",
    "lint_source",
    "lint_paths",
]

#: Rule id used for files that fail to parse (not a registered rule).
PARSE_ERROR_ID = "REPRO000"

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\-\s]+)")


class LintError(Exception):
    """Raised for unusable lint inputs (bad path, unknown rule id)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str  # rule id, e.g. "REPRO002"
    name: str  # rule slug, e.g. "seeded-rng"
    message: str
    path: str
    line: int
    col: int = 0

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.name}] {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


class SourceFile:
    """A parsed source file shared by all rules in one run."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self._stmt_first_line: dict[int, int] | None = None

    @property
    def is_test(self) -> bool:
        """Whether the file lives in a test tree (several rules relax there)."""
        parts = Path(self.path).parts
        name = Path(self.path).name
        return "tests" in parts or name.startswith("test_") or name.startswith("conftest")

    def _line_tokens(self, line: int) -> set[str]:
        if not 1 <= line <= len(self.lines):
            return set()
        m = _SUPPRESS_RE.search(self.lines[line - 1])
        if not m:
            return set()
        return {tok.strip() for tok in m.group(1).split(",") if tok.strip()}

    def _stmt_anchor(self, line: int) -> int | None:
        """First line of the innermost statement whose span covers ``line``.

        Lets a ``# lint: disable=`` comment on a statement's opening line
        silence findings anchored anywhere inside the statement — a call
        argument on a continuation line, a wrapped condition, etc.  The
        *innermost* covering statement wins, so a suppression on an
        ``if`` header does not leak into the statements of its body.
        """
        if self._stmt_first_line is None:
            spans: dict[int, int] = {}
            # Statements in ast.walk order nest outer-before-inner, so a
            # later (inner) statement overwrites the lines it covers.
            for node in ast.walk(self.tree):
                if isinstance(node, ast.stmt) and node.end_lineno is not None:
                    for ln in range(node.lineno, node.end_lineno + 1):
                        spans[ln] = node.lineno
            self._stmt_first_line = spans
        return self._stmt_first_line.get(line)

    def suppressed(self, line: int) -> set[str]:
        """Rule ids (and slugs) disabled for ``line`` via inline comments.

        The union of tokens on the line itself and on the first line of
        the innermost statement spanning it (multi-line statements).
        """
        tokens = self._line_tokens(line)
        anchor = self._stmt_anchor(line)
        if anchor is not None and anchor != line:
            tokens = tokens | self._line_tokens(anchor)
        return tokens


class Rule(Protocol):
    id: str
    name: str
    summary: str

    def check(self, source: SourceFile) -> Iterable[Finding]: ...


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls):
    """Class decorator registering a rule (instantiated once) by its id."""
    rule = cls()
    if not re.fullmatch(r"REPRO\d{3}", rule.id):
        raise ValueError(f"rule id must look like REPROnnn, got {rule.id!r}")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def available_rules() -> list[Rule]:
    """Registered rules, sorted by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def _select(rule_ids: Iterable[str] | None) -> list[Rule]:
    if rule_ids is None:
        return available_rules()
    by_key = {r.id: r for r in _REGISTRY.values()} | {r.name: r for r in _REGISTRY.values()}
    out = []
    for rid in rule_ids:
        if rid not in by_key:
            raise LintError(f"unknown rule {rid!r}; available: {sorted(_REGISTRY)}")
        out.append(by_key[rid])
    return out


def _apply_rules(source: SourceFile, rules: list[Rule]) -> list[Finding]:
    findings = []
    for rule in rules:
        for f in rule.check(source):
            disabled = source.suppressed(f.line)
            if "all" in disabled or f.rule in disabled or f.name in disabled:
                continue
            findings.append(f)
    return findings


def lint_source(text: str, path: str = "<string>", rule_ids: Iterable[str] | None = None) -> list[Finding]:
    """Lint a source string; returns findings sorted by location."""
    rules = _select(rule_ids)
    try:
        source = SourceFile(path, text)
    except SyntaxError as exc:
        return [Finding(PARSE_ERROR_ID, "parse-error", f"syntax error: {exc.msg}",
                        path, exc.lineno or 1, exc.offset or 0)]
    return sorted(_apply_rules(source, rules), key=lambda f: (f.path, f.line, f.col, f.rule))


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py") if "egg-info" not in str(q))
        elif p.is_file():
            yield p
        else:
            raise LintError(f"no such file or directory: {p}")


def lint_paths(paths: Iterable[str | Path], rule_ids: Iterable[str] | None = None) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_source(path.read_text(), str(path), rule_ids))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
