"""DYN005: static verification of the pipeline schedules.

Backend workers execute :func:`repro.parallel.pipeline.schedule_ops`
verbatim, so a malformed schedule is a *distributed* bug: a stage that
waits for a boundary tensor nobody will send deadlocks the whole gang,
and an out-of-order backward silently changes gradient accumulation
order (breaking the bitwise oracle equivalence the test suite asserts).
This checker proves, for every ``schedule × pp × m`` in a bounded grid,
that the per-stage op lists compose into a well-formed global schedule:

- **Complete and duplicate-free**: every stage runs exactly one ``F``
  and one ``B`` per microbatch, nothing else.
- **Deterministically ordered**: forwards and backwards are each issued
  in ascending microbatch order on every stage (the invariant that keeps
  gradient accumulation — and stateful compressors — bitwise-identical
  across schedules and backends).
- **Acyclic and dependency-complete**: an event-driven simulation runs
  every stage's list against the true dataflow — ``F(s, i)`` needs
  ``F(s-1, i)`` (boundary activation), ``B(s, i)`` needs ``F(s, i)``
  and ``B(s+1, i)`` (boundary gradient) — and must retire every op.  A
  stall is reported with the stage and op that can never become ready;
  termination of the simulation is precisely acyclicity of the combined
  "program order + dataflow" relation.
- **Honest memory bound**: the highest live-graph count reached on each
  stage (forwards begun minus backwards completed, a schedule-intrinsic
  quantity) must equal
  :func:`~repro.parallel.pipeline.peak_inflight_microbatches` — the
  number the memory model and the paper-facing analysis rely on.
- **Documented makespan**: with unit-time ops, the critical path must
  finish in ``(m + pp - 1)`` slots per direction
  (:func:`~repro.parallel.pipeline.iteration_slots`), the figure the
  performance simulator and ROADMAP math assume.

All findings are strings naming schedule/pp/stage/microbatch; the CLI
surfaces them as ``DYN005``.
"""

from __future__ import annotations

from repro.parallel.pipeline import (
    SCHEDULES,
    iteration_slots,
    peak_inflight_microbatches,
    schedule_ops,
)

__all__ = ["run_schedule_check"]


def _check_one(schedule: str, pp: int, m: int, findings: list[str]) -> None:
    where = f"{schedule} pp={pp} m={m}"
    ops = {s: schedule_ops(schedule, pp, s, m) for s in range(pp)}

    # -- completeness and per-stage order --------------------------------
    for s in range(pp):
        fwd = [op.microbatch for op in ops[s] if op.kind == "F"]
        bwd = [op.microbatch for op in ops[s] if op.kind == "B"]
        expected = list(range(m))
        if sorted(fwd) != expected or sorted(bwd) != expected:
            findings.append(
                f"{where} stage {s}: expected one F and one B per "
                f"microbatch 0..{m - 1}, got F{fwd} B{bwd}"
            )
            return  # downstream checks would only cascade
        if fwd != expected:
            findings.append(
                f"{where} stage {s}: forwards out of ascending microbatch "
                f"order: {fwd}"
            )
        if bwd != expected:
            findings.append(
                f"{where} stage {s}: backwards out of ascending microbatch "
                f"order ({bwd}) — gradient accumulation order diverges from "
                "the serial oracle"
            )
        if len(ops[s]) != 2 * m:
            findings.append(
                f"{where} stage {s}: {len(ops[s])} ops, expected {2 * m}"
            )

    # -- dependency simulation (acyclic + complete + makespan) -----------
    # finish[(kind, stage, mb)] = unit-time slot the op completes in.
    finish: dict[tuple[str, int, int], int] = {}
    pc = {s: 0 for s in range(pp)}
    stage_free = {s: 0 for s in range(pp)}

    def deps(kind: str, s: int, i: int) -> list[tuple[str, int, int]]:
        if kind == "F":
            return [("F", s - 1, i)] if s > 0 else []
        need = [("F", s, i)]
        if s < pp - 1:
            need.append(("B", s + 1, i))
        return need

    progressed = True
    while progressed:
        progressed = False
        for s in range(pp):
            while pc[s] < len(ops[s]):
                op = ops[s][pc[s]]
                need = deps(op.kind, s, op.microbatch)
                if any(d not in finish for d in need):
                    break
                start = max([stage_free[s]] + [finish[d] for d in need])
                finish[(op.kind, s, op.microbatch)] = start + 1
                stage_free[s] = start + 1
                pc[s] += 1
                progressed = True
    stuck = {s: ops[s][pc[s]] for s in range(pp) if pc[s] < len(ops[s])}
    if stuck:
        desc = "; ".join(
            f"stage {s} blocked at {op.kind}{op.microbatch} waiting on "
            + ", ".join(f"{k}{i}@stage{d}" for k, d, i in deps(op.kind, s, op.microbatch)
                        if (k, d, i) not in finish)
            for s, op in sorted(stuck.items())
        )
        findings.append(
            f"{where}: schedule deadlocks — the dependency graph is cyclic "
            f"or incomplete ({desc})"
        )
        return
    makespan = max(finish.values())
    expected_makespan = 2 * iteration_slots(schedule, m, pp)
    if makespan != expected_makespan:
        findings.append(
            f"{where}: unit-time makespan is {makespan} slots, but "
            f"iteration_slots promises {expected_makespan} "
            f"(2 x (m + pp - 1)) — the simulator's bubble math is off"
        )

    # -- peak in-flight bound (schedule-intrinsic, per stage) ------------
    for s in range(pp):
        live = peak = 0
        for op in ops[s]:
            live += 1 if op.kind == "F" else -1
            peak = max(peak, live)
        promised = peak_inflight_microbatches(schedule, pp, s, m)
        if peak != promised:
            findings.append(
                f"{where} stage {s}: holds {peak} live microbatch graph(s) "
                f"at peak but peak_inflight_microbatches promises "
                f"{promised} — the memory bound is wrong"
            )


def run_schedule_check(max_pp: int = 4, max_m: int = 6) -> list[str]:
    """Verify every ``schedule × pp × m`` combination in the bounded grid.

    Returns one message per finding; empty means every schedule in the
    grid is complete, deterministic, deadlock-free and honest about its
    memory bound and makespan.
    """
    findings: list[str] = []
    for schedule in SCHEDULES:
        for pp in range(1, max_pp + 1):
            for m in range(1, max_m + 1):
                _check_one(schedule, pp, m, findings)
    return findings
