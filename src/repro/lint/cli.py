"""``python -m repro.lint`` / ``repro-lint`` command line interface.

Usage::

    python -m repro.lint src/                 # static AST rules
    python -m repro.lint --dynamic src/       # + graph sanitizer + SPMD check
    python -m repro.lint --list-rules
    python -m repro.lint --fix-report report.json src/

Exit codes: 0 clean, 1 findings, 2 usage or parse failure.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint.engine import Finding, LintError, available_rules, lint_paths

__all__ = ["main"]

#: Rule ids for the dynamic checkers (listed alongside the AST rules).
DYNAMIC_RULES = (
    ("DYN001", "graph-sanity",
     "tiny MP model forward/backward produces only finite, on-policy arrays"),
    ("DYN002", "spmd-consistency",
     "recorded CommEvent stream matches the closed-form (scheme, tp, pp) oracle"),
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static AST invariants + dynamic autograd/SPMD consistency checks.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--list-rules", action="store_true",
                        help="list every rule id and exit")
    parser.add_argument("--rules", metavar="ID[,ID...]",
                        help="run only the named rules (ids or slugs)")
    parser.add_argument("--dynamic", action="store_true",
                        help="also run the graph sanitizer and SPMD consistency check")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the report as JSON instead of human-readable lines")
    parser.add_argument("--fix-report", metavar="PATH",
                        help="write a machine-readable JSON report (for tooling that "
                             "triages or auto-fixes findings) to PATH")
    return parser


def _list_rules() -> int:
    for rule in available_rules():
        print(f"{rule.id}  {rule.name:<20} {rule.summary}")
    for rid, name, summary in DYNAMIC_RULES:
        print(f"{rid}  {name:<20} {summary} (--dynamic)")
    return 0


def _dynamic_findings() -> list[Finding]:
    # Imported lazily: these pull in the full model stack.
    from repro.lint.graph_check import run_graph_check
    from repro.lint.spmd_check import run_spmd_check

    findings = []
    for message in run_graph_check():
        findings.append(Finding("DYN001", "graph-sanity", message, "<dynamic>", 0))
    for message in run_spmd_check():
        findings.append(Finding("DYN002", "spmd-consistency", message, "<dynamic>", 0))
    return findings


def _report_dict(findings: list[Finding], checked_dynamic: bool) -> dict:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return {
        "clean": not findings,
        "dynamic_checks": checked_dynamic,
        "total": len(findings),
        "counts_by_rule": counts,
        "findings": [f.to_json() for f in findings],
    }


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2

    rule_ids = [r.strip() for r in args.rules.split(",")] if args.rules else None
    try:
        findings = lint_paths(args.paths, rule_ids)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.dynamic:
        findings.extend(_dynamic_findings())

    report = _report_dict(findings, args.dynamic)
    if args.fix_report:
        with open(args.fix_report, "w") as fh:
            json.dump(report, fh, indent=2)
    if args.as_json:
        print(json.dumps(report, indent=2))
    else:
        for f in findings:
            print(f.format())
        suffix = " (static + dynamic)" if args.dynamic else ""
        if findings:
            print(f"{len(findings)} finding(s){suffix}")
        else:
            print(f"clean{suffix}")

    if any(f.rule == "REPRO000" for f in findings):
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
