"""``python -m repro.lint`` / ``repro-lint`` command line interface.

Usage::

    python -m repro.lint src/                 # static AST rules
    python -m repro.lint --dynamic src/       # + graph sanitizer + SPMD check
    python -m repro.lint --changed-only       # only files touched vs merge-base
    python -m repro.lint --model-check        # transport model checker + schedules
    python -m repro.lint --race-log runs/conc # replay a recorded concurrency log
    python -m repro.lint --list-rules
    python -m repro.lint --fix-report report.json src/

Exit codes: 0 clean, 1 findings, 2 usage or parse failure.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.lint.engine import Finding, LintError, available_rules, lint_paths

__all__ = ["main"]

#: Rule ids for the dynamic checkers (listed alongside the AST rules).
DYNAMIC_RULES = (
    ("DYN001", "graph-sanity",
     "tiny MP model forward/backward produces only finite, on-policy arrays"),
    ("DYN002", "spmd-consistency",
     "recorded CommEvent stream matches the closed-form (scheme, tp, pp) oracle"),
    ("DYN003", "happens-before",
     "recorded concurrency log is race-free under vector-clock replay (--race-log)"),
    ("DYN004", "model-check",
     "every interleaving of the bounded ring-mailbox/barrier scenarios is safe "
     "(--model-check)"),
    ("DYN005", "schedule-check",
     "pipeline schedules are complete, acyclic, deadlock-free and honest about "
     "peak in-flight microbatches (--model-check)"),
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static AST invariants + dynamic autograd/SPMD consistency checks.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--list-rules", action="store_true",
                        help="list every rule id and exit")
    parser.add_argument("--rules", metavar="ID[,ID...]",
                        help="run only the named rules (ids or slugs)")
    parser.add_argument("--dynamic", action="store_true",
                        help="also run the graph sanitizer and SPMD consistency check")
    parser.add_argument("--changed-only", action="store_true",
                        help="lint only .py files changed since the merge-base "
                             "with --base (plus untracked files)")
    parser.add_argument("--base", default="main", metavar="REF",
                        help="base ref for --changed-only (default: main)")
    parser.add_argument("--race-log", metavar="PATH",
                        help="replay a recorded concurrency event log (file or "
                             "directory of conc-rank*.jsonl) through the DYN003 "
                             "happens-before checker")
    parser.add_argument("--model-check", action="store_true",
                        help="exhaustively model-check the ring-mailbox/barrier "
                             "protocol (DYN004) and verify the pipeline "
                             "schedules (DYN005)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the report as JSON instead of human-readable lines")
    parser.add_argument("--fix-report", metavar="PATH",
                        help="write a machine-readable JSON report (for tooling that "
                             "triages or auto-fixes findings) to PATH")
    return parser


def _list_rules() -> int:
    for rule in available_rules():
        print(f"{rule.id}  {rule.name:<20} {rule.summary}")
    for rid, name, summary in DYNAMIC_RULES:
        print(f"{rid}  {name:<20} {summary}")
    return 0


def _dynamic_findings() -> list[Finding]:
    # Imported lazily: these pull in the full model stack.
    from repro.lint.graph_check import run_graph_check
    from repro.lint.spmd_check import run_spmd_check

    findings = []
    for message in run_graph_check():
        findings.append(Finding("DYN001", "graph-sanity", message, "<dynamic>", 0))
    for message in run_spmd_check():
        findings.append(Finding("DYN002", "spmd-consistency", message, "<dynamic>", 0))
    return findings


def _race_findings(log_path: str) -> list[Finding]:
    from repro.lint.race_check import run_race_check_on_path

    return [Finding("DYN003", "happens-before", message, str(log_path), 0)
            for message in run_race_check_on_path(log_path)]


def _model_check_findings() -> list[Finding]:
    from repro.lint.model_check import run_model_check
    from repro.lint.schedule_check import run_schedule_check

    stats: dict = {}
    findings = [Finding("DYN004", "model-check", message, "<dynamic>", 0)
                for message in run_model_check(stats)]
    print(f"model check: {stats.get('scenarios', 0)} scenarios, "
          f"{stats.get('states', 0)} states, "
          f"{stats.get('transitions', 0)} transitions explored exhaustively",
          file=sys.stderr)
    findings.extend(
        Finding("DYN005", "schedule-check", message, "<dynamic>", 0)
        for message in run_schedule_check()
    )
    return findings


def _changed_files(base: str, paths: list[str]) -> list[Path]:
    """``.py`` files changed since ``merge-base(HEAD, base)`` plus untracked.

    When explicit ``paths`` are also given, only changed files under one
    of them are kept, so ``repro-lint --changed-only src/`` scopes the
    diff to the source tree.
    """
    def git(*args: str) -> str:
        proc = subprocess.run(["git", *args], capture_output=True, text=True)
        if proc.returncode != 0:
            raise LintError(
                f"git {' '.join(args)} failed: {proc.stderr.strip() or 'unknown error'}"
            )
        return proc.stdout

    merge_base = git("merge-base", "HEAD", base).strip()
    names = git("diff", "--name-only", "--diff-filter=d", merge_base,
                "--", "*.py").splitlines()
    names += git("ls-files", "--others", "--exclude-standard",
                 "--", "*.py").splitlines()
    scopes = [Path(p).resolve() for p in paths]
    out: list[Path] = []
    for name in sorted(set(names)):
        p = Path(name)
        if not p.is_file():
            continue  # deleted or moved away since the merge base
        if scopes and not any(p.resolve().is_relative_to(s) for s in scopes):
            continue
        out.append(p)
    return out


def _report_dict(findings: list[Finding], checked_dynamic: bool) -> dict:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return {
        "clean": not findings,
        "dynamic_checks": checked_dynamic,
        "total": len(findings),
        "counts_by_rule": counts,
        "findings": [f.to_json() for f in findings],
    }


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()
    wants_dynamic_only = args.model_check or args.race_log
    if not args.paths and not args.changed_only and not wants_dynamic_only:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --changed-only / --model-check / "
              "--race-log / --list-rules)", file=sys.stderr)
        return 2

    rule_ids = [r.strip() for r in args.rules.split(",")] if args.rules else None
    try:
        if args.changed_only:
            targets: list = _changed_files(args.base, args.paths)
        else:
            targets = list(args.paths)
        findings = lint_paths(targets, rule_ids) if targets else []
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    checked_dynamic = bool(args.dynamic or args.model_check or args.race_log)
    if args.dynamic:
        findings.extend(_dynamic_findings())
    if args.model_check:
        findings.extend(_model_check_findings())
    if args.race_log:
        findings.extend(_race_findings(args.race_log))

    report = _report_dict(findings, checked_dynamic)
    if args.fix_report:
        with open(args.fix_report, "w") as fh:
            json.dump(report, fh, indent=2)
    if args.as_json:
        print(json.dumps(report, indent=2))
    else:
        for f in findings:
            print(f.format())
        suffix = " (static + dynamic)" if checked_dynamic else ""
        if findings:
            print(f"{len(findings)} finding(s){suffix}")
        else:
            print(f"clean{suffix}")

    if any(f.rule == "REPRO000" for f in findings):
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
