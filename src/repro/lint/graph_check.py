"""Dynamic autograd-graph sanitation: NaN/Inf and dtype checks on live ops.

:class:`TensorSanitizer` is a guard for :func:`repro.tensor.tensor_guard`:
while installed, every op output and every backward gradient is checked
for non-finite values and off-policy float dtypes.  Compression bugs in
this codebase manifest as silently wrong numbers rather than crashes, so
the earliest NaN/Inf is the diagnostic that matters — the sanitizer
raises at the op that *produced* it, not ten layers downstream.

:func:`run_graph_check` drives a tiny :class:`ModelParallelBertClassifier`
forward/backward under the sanitizer for each compression scheme and
returns findings (empty when clean); the CLI surfaces them as DYN001.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tensor import tensor_guard

__all__ = ["GraphCheckError", "TensorSanitizer", "run_graph_check", "DEFAULT_SCHEMES"]

#: Schemes exercised by default: the w/o baseline plus one member of each
#: compressed family (AE, Top-K, quantization).
DEFAULT_SCHEMES = ("w/o", "A2", "T2", "R2", "Q2")


class GraphCheckError(RuntimeError):
    """A sanitizer violation at a specific op, with array context."""


@dataclass
class TensorSanitizer:
    """Guard callable checking op outputs and gradients.

    Parameters
    ----------
    forbid_nan / forbid_inf:
        Raise on NaN / on ±Inf in floating-point arrays.
    allowed_float_dtypes:
        Floating dtypes the training stack is allowed to produce.  The
        reproduction stores everything as float32 (wire fp16 is *byte
        accounting*, not storage), so a float64 output means an op dropped
        to double precision — usually an unconverted Python scalar.
    """

    forbid_nan: bool = True
    forbid_inf: bool = True
    allowed_float_dtypes: tuple = (np.float32, np.float16, np.float64)
    #: number of arrays checked (diagnostic; lets tests assert coverage).
    checked: int = field(default=0, compare=False)

    def __call__(self, data: np.ndarray, context: str) -> None:
        self.checked += 1
        if data.dtype.kind != "f":
            return
        if data.dtype.type not in self.allowed_float_dtypes:
            raise GraphCheckError(
                f"{context} array has off-policy float dtype {data.dtype}"
            )
        if self.forbid_nan or self.forbid_inf:
            finite = np.isfinite(data)
            if finite.all():
                return
            has_nan = bool(np.isnan(data).any())
            bad = "NaN" if has_nan else "Inf"
            if (has_nan and self.forbid_nan) or (not has_nan and self.forbid_inf):
                count = int((~finite).sum())
                raise GraphCheckError(
                    f"{context} array of shape {data.shape} contains {count} "
                    f"non-finite value(s) (first kind: {bad})"
                )


def _tiny_config(scheme: str, tp: int, pp: int):
    from repro.nn.transformer import TransformerConfig
    from repro.parallel.runtime import ModelParallelConfig

    model = TransformerConfig(vocab_size=60, max_seq_len=16, hidden=32,
                              num_layers=4, num_heads=4, dropout=0.0)
    return ModelParallelConfig(model, tp=tp, pp=pp, scheme=scheme, seed=0)


def run_graph_check(
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    tp: int = 2,
    pp: int = 2,
    batch: int = 2,
    seq: int = 8,
    seed: int = 0,
) -> list[str]:
    """Forward + backward a tiny MP BERT per scheme under the sanitizer.

    Returns one message per failing scheme; an empty list means every
    scheme's full graph (including compressor round-trips and tracked
    backward closures) produced only finite, on-policy arrays.
    """
    from repro.parallel.runtime import ModelParallelBertClassifier

    problems: list[str] = []
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, 60, size=(batch, seq))
    labels = np.zeros(batch, dtype=np.int64)
    for scheme in schemes:
        sanitizer = TensorSanitizer()
        try:
            model = ModelParallelBertClassifier(_tiny_config(scheme, tp, pp))
            with tensor_guard(sanitizer):
                model.loss(ids, labels).backward()
        except GraphCheckError as exc:
            problems.append(f"scheme {scheme!r} (tp={tp}, pp={pp}): {exc}")
        if sanitizer.checked == 0:
            problems.append(
                f"scheme {scheme!r}: sanitizer saw no arrays — guard hooks not firing"
            )
    return problems
