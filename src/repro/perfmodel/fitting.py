"""Fit the §4.7 parameters against ground truth (Fig. 5).

In the paper the ground truth is wall-clock time of one-layer models on a
V100; here it is the calibrated simulator, which plays the role of the
testbed. The fitting procedures mirror the paper's:

- α from the *largest* hidden size only (small sizes under-utilize the GPU
  and inflate extrapolations ~30×, as the paper warns);
- (β, c, d) for the piecewise T_comm by splitting measurements at the
  point where time stops being flat;
- γ by least squares on the AE overhead.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.topology import ClusterTopology
from repro.perfmodel.model import PerfModelParams, transformer_layer_flops
from repro.simulator.calibration import CALIBRATION
from repro.simulator.comm import allreduce_time
from repro.simulator.iteration import IterationSimulator, SimSetting
from repro.simulator.kernels import encode_decode_time
from repro.compression.notation import scheme_spec

__all__ = ["fit_alpha", "fit_comm_piecewise", "fit_gamma", "fit_from_simulator"]


def fit_alpha(hiddens, times_ms, batch: int, seq: int) -> float:
    """α from the largest-hidden measurement (paper's procedure)."""
    hiddens = list(hiddens)
    times_ms = list(times_ms)
    if len(hiddens) != len(times_ms) or not hiddens:
        raise ValueError("need equal, non-empty hiddens and times")
    i = int(np.argmax(hiddens))
    return times_ms[i] / transformer_layer_flops(batch, seq, hiddens[i])


def fit_comm_piecewise(elements, times_ms) -> tuple[float, float, float]:
    """Fit (β, c, d): flat region constant c, then linear slope β.

    Returns ``(beta, const_ms, threshold_elems)``.
    """
    elements = np.asarray(list(elements), dtype=np.float64)
    times = np.asarray(list(times_ms), dtype=np.float64)
    if elements.size < 3:
        raise ValueError("need at least 3 measurements")
    order = np.argsort(elements)
    elements, times = elements[order], times[order]
    const = float(times[0])
    # threshold = first point measurably above the flat region
    above = np.flatnonzero(times > const * 1.5)
    if above.size == 0:
        return 0.0, const, float(elements[-1])
    start = above[0]
    beta = float(np.sum(times[start:] * elements[start:]) / np.sum(elements[start:] ** 2))
    threshold = float(elements[start - 1]) if start > 0 else float(elements[0])
    return beta, const, threshold


def fit_gamma(elements, overhead_ms) -> float:
    """Least-squares slope of AE overhead vs B·s·h."""
    elements = np.asarray(list(elements), dtype=np.float64)
    overhead = np.asarray(list(overhead_ms), dtype=np.float64)
    if elements.size == 0:
        raise ValueError("need measurements")
    return float(np.sum(overhead * elements) / np.sum(elements**2))


def fit_from_simulator(
    batch: int = 16,
    seq: int = 128,
    hiddens: tuple[int, ...] = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 12288, 16384),
    tp: int = 4,
    encoder_dim: int = 100,
    link=None,
) -> tuple[PerfModelParams, dict]:
    """Fig. 5's procedure: measure one-layer models, fit (α, β, c, d, γ).

    ``link`` selects the fabric T_comm is measured on (default: the PCIe
    machine, where compression is worth it — §4.2). Returns the fitted
    params plus the raw (hidden → measurement) curves for the figure panels.
    """
    from repro.parallel.topology import LinkType
    from repro.simulator.kernels import gemm_time

    link = link if link is not None else LinkType.PCIE
    topo = ClusterTopology.local_pcie()
    comp_times, comm_times, overheads = [], [], []
    for h in hiddens:
        sim = IterationSimulator(
            SimSetting(topo, tp, 1, batch, seq,
                       model=_one_layer_model(h))
        )
        fwd = sim.layer_forward_compute_ms()
        # paper measures fwd+bwd compute of the layer
        comp_times.append(fwd * (1 + CALIBRATION.backward_ratio))
        comm_times.append(allreduce_time(batch * seq * h * 2, tp, link))
        # §4.7 keeps the encoder output dim e fixed (=100) as h grows.
        flops = 2.0 * batch * seq * h * encoder_dim
        enc = gemm_time(flops, CALIBRATION.ae_gemm_efficiency_enc * 112.0)
        dec = gemm_time(flops, CALIBRATION.ae_gemm_efficiency_dec * 112.0)
        overheads.append(enc + dec)

    alpha = fit_alpha(hiddens, comp_times, batch, seq)
    elems = [batch * seq * h for h in hiddens]
    beta, const, threshold = fit_comm_piecewise(elems, comm_times)
    gamma = fit_gamma(elems, overheads)
    params = PerfModelParams(alpha, beta, threshold, const, gamma)
    curves = {
        "hiddens": list(hiddens),
        "comp_ms": comp_times,
        "comm_ms": comm_times,
        "overhead_ms": overheads,
    }
    return params, curves


def _one_layer_model(hidden: int):
    from repro.nn.transformer import TransformerConfig

    heads = max(1, hidden // 64)
    return TransformerConfig(
        vocab_size=30522, max_seq_len=4096, hidden=hidden,
        num_layers=1, num_heads=heads,
    )
