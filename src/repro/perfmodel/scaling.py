"""Eq. (3) cluster scaling and the Table 10 weak-scaling sweep.

Eq. (3)::

            ((m−1)/n + 1) · L·T + (n−1) · B·s·h / w
  speedup = ─────────────────────────────────────────
            ((m−1)/n + 1) · L·T_AE + (n−1) · B·s·e / w

with m microbatches, n nodes, L layers, per-layer times T / T_AE from the
analytical model, and pipeline bandwidth w. As n grows with h, the
speedup asymptotically approaches h/e instead of decaying to 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.model import AnalyticalModel

__all__ = ["WeakScalingConfig", "cluster_speedup", "weak_scaling_table", "MEGATRON_WEAK_SCALING"]


@dataclass(frozen=True)
class WeakScalingConfig:
    """One weak-scaling row (Megatron paper Table 1 configs, as the paper)."""

    hidden: int
    num_layers: int
    num_nodes: int
    batch_size: int

    def __post_init__(self):
        for name in ("hidden", "num_layers", "num_nodes", "batch_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")


#: The paper's Table 10 rows follow Narayanan et al. 2021's Table 1.
MEGATRON_WEAK_SCALING: tuple[WeakScalingConfig, ...] = (
    WeakScalingConfig(6144, 40, 1, 1024),
    WeakScalingConfig(8192, 48, 2, 1536),
    WeakScalingConfig(10240, 60, 4, 1792),
    WeakScalingConfig(12288, 80, 8, 2304),
    WeakScalingConfig(16384, 96, 16, 2176),
    WeakScalingConfig(20480, 105, 35, 2528),
    WeakScalingConfig(25600, 128, 64, 3072),
)


def cluster_speedup(
    model: AnalyticalModel,
    hidden: int,
    num_layers: int,
    num_nodes: int,
    micro_batch: int,
    num_microbatches: int,
    seq: int,
    bandwidth_bytes_per_ms: float,
) -> float:
    """Eq. (3): end-to-end speedup of AE compression at cluster scale."""
    if num_nodes < 1 or num_layers < 1 or num_microbatches < 1:
        raise ValueError("nodes, layers and microbatches must be >= 1")
    t = model.layer_time(micro_batch, seq, hidden)
    t_ae = model.layer_time_ae(micro_batch, seq, hidden)
    pipeline_factor = (num_microbatches - 1) / num_nodes + 1.0
    p_dense = micro_batch * seq * hidden * 2 / bandwidth_bytes_per_ms
    p_ae = micro_batch * seq * model.encoder_dim * 2 / bandwidth_bytes_per_ms
    num = pipeline_factor * num_layers * t + (num_nodes - 1) * p_dense
    den = pipeline_factor * num_layers * t_ae + (num_nodes - 1) * p_ae
    return num / den


def weak_scaling_table(
    model: AnalyticalModel,
    configs: tuple[WeakScalingConfig, ...] = MEGATRON_WEAK_SCALING,
    micro_batch: int = 16,
    seq: int = 2048,
    bandwidth_gbps: float = 4.0,
) -> list[dict]:
    """Regenerate Table 10: speedup per weak-scaling configuration.

    ``micro_batch`` follows the paper (16); microbatch count is
    ``batch_size / micro_batch``. Bandwidth is the inter-node pipeline
    bandwidth (the simulator's effective Ethernet p2p rate by default).
    """
    bandwidth_bytes_per_ms = bandwidth_gbps * 1e9 / 1e3
    rows = []
    for cfg in configs:
        m = max(1, cfg.batch_size // micro_batch)
        s = cluster_speedup(
            model, cfg.hidden, cfg.num_layers, cfg.num_nodes,
            micro_batch, m, seq, bandwidth_bytes_per_ms,
        )
        rows.append({
            "hidden": cfg.hidden,
            "layers": cfg.num_layers,
            "nodes": cfg.num_nodes,
            "batch": cfg.batch_size,
            "speedup": s,
        })
    return rows
