"""The paper's §4.7 analytical cost model.

Implements, symbol-for-symbol, the equations of §4.7:

- ``T = T_comp(96Bsh² + 16Bs²h) + T_comm(Bsh)``       (Eq. 1)
- piecewise ``T_comm`` (constant below a threshold),
- ``T_overhead = γ·Bsh`` for the AE encoder/decoder,
- the single-layer speedup ``T / T_AE``              (Eq. 2)
- the cluster-scaling speedup with pipeline terms    (Eq. 3)

plus the fitting helpers that produce Fig. 5 (α, β/c/d, γ fit against
"ground truth" — in this reproduction, the simulator) and the weak-scaling
generator behind Table 10.
"""

from repro.perfmodel.model import (
    PerfModelParams,
    AnalyticalModel,
    transformer_layer_flops,
)
from repro.perfmodel.fitting import fit_alpha, fit_comm_piecewise, fit_gamma, fit_from_simulator
from repro.perfmodel.scaling import WeakScalingConfig, cluster_speedup, weak_scaling_table, MEGATRON_WEAK_SCALING

__all__ = [
    "PerfModelParams",
    "AnalyticalModel",
    "transformer_layer_flops",
    "fit_alpha",
    "fit_comm_piecewise",
    "fit_gamma",
    "fit_from_simulator",
    "WeakScalingConfig",
    "cluster_speedup",
    "weak_scaling_table",
    "MEGATRON_WEAK_SCALING",
]
