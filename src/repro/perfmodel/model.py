"""Eq. (1)–(2): analytic per-layer time and AE speedup."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["transformer_layer_flops", "PerfModelParams", "AnalyticalModel"]


def transformer_layer_flops(batch: int, seq: int, hidden: int) -> float:
    """The paper's per-layer FLOP count: ``96·B·s·h² + 16·B·s²·h``.

    (Forward + backward with activation recompute, per Narayanan et al.)
    """
    return 96.0 * batch * seq * hidden**2 + 16.0 * batch * seq**2 * hidden


@dataclass(frozen=True)
class PerfModelParams:
    """Fitted parameters of the §4.7 model.

    Attributes
    ----------
    alpha:
        ms per FLOP — fitted at the *largest* hidden size (the paper notes
        fitting at small sizes inflates predictions ~30× due to low GPU
        utilization).
    beta:
        ms per fp16 element of all-reduce message above the threshold.
    comm_threshold_elems:
        The ``d`` of the piecewise T_comm (in elements).
    comm_const_ms:
        The ``c`` of the piecewise T_comm.
    gamma:
        ms per element of AE encode+decode overhead (``T_overhead = γBsh``).
    """

    alpha: float
    beta: float
    comm_threshold_elems: float
    comm_const_ms: float
    gamma: float


class AnalyticalModel:
    """The paper's single-layer analytic model with an AE option."""

    def __init__(self, params: PerfModelParams, encoder_dim: int = 100):
        self.p = params
        self.encoder_dim = encoder_dim

    # ------------------------------------------------------------------
    def t_comp(self, batch: int, seq: int, hidden: int) -> float:
        """``T_comp = α · FLOPs`` (ms)."""
        return self.p.alpha * transformer_layer_flops(batch, seq, hidden)

    def t_comm(self, elements: float) -> float:
        """Piecewise ``T_comm`` over message size in fp16 elements (ms)."""
        if elements < self.p.comm_threshold_elems:
            return self.p.comm_const_ms
        return self.p.beta * elements

    def t_overhead(self, batch: int, seq: int, hidden: int) -> float:
        """AE encoder+decoder overhead ``γ·B·s·h`` (ms)."""
        return self.p.gamma * batch * seq * hidden

    # ------------------------------------------------------------------
    def layer_time(self, batch: int, seq: int, hidden: int) -> float:
        """Eq. (1): uncompressed per-layer time (ms)."""
        return self.t_comp(batch, seq, hidden) + self.t_comm(batch * seq * hidden)

    def layer_time_ae(self, batch: int, seq: int, hidden: int) -> float:
        """Per-layer time with AE compression to ``encoder_dim`` (ms)."""
        return (
            self.t_comp(batch, seq, hidden)
            + self.t_comm(batch * seq * self.encoder_dim)
            + self.t_overhead(batch, seq, hidden)
        )

    def speedup(self, batch: int, seq: int, hidden: int) -> float:
        """Eq. (2): ``T / T_AE``. Identical per layer, so layer-count free."""
        return self.layer_time(batch, seq, hidden) / self.layer_time_ae(batch, seq, hidden)

    def asymptotic_speedup(self) -> float:
        """Limit of Eq. (2) as ``h → ∞`` on a fixed cluster: 1 (benefits
        diminish because compute dominates)."""
        return 1.0
