"""Analysis utilities (Fig. 2 low-rank study)."""

from repro.analysis.svd import (
    singular_value_profile,
    spectrum_auc,
    collect_gradient_and_activation,
    lowrank_report,
)

__all__ = [
    "singular_value_profile",
    "spectrum_auc",
    "collect_gradient_and_activation",
    "lowrank_report",
]
