"""Fig. 2: gradients are low-rank, activations are not.

The figure orders singular values and plots the cumulative fraction of
spectral mass against the fraction of dimensions kept. A low-rank matrix's
curve shoots up (most mass in few directions); a full-rank matrix's curve
hugs the diagonal. The paper draws the *weight gradient* of a transformer
layer (the tensor data-parallel compression ships) against the layer's
*output activation* (what model-parallel compression ships), and finds only
the former is low-rank — the reason PowerSGD-style compressors are excluded
from the study (§3.1).
"""

from __future__ import annotations

import numpy as np

from repro.nn.bert import BertForSequenceClassification
from repro.nn.transformer import TransformerConfig

__all__ = [
    "singular_value_profile",
    "spectrum_auc",
    "collect_gradient_and_activation",
    "lowrank_report",
]


def singular_value_profile(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative spectral mass curve of ``matrix``.

    Returns ``(dim_fraction, sigma_fraction)``: keeping the top
    ``dim_fraction`` of singular directions captures ``sigma_fraction`` of
    the total singular-value mass. Both are in [0, 1], monotonically
    non-decreasing, with the diagonal as the full-rank reference.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"need a 2-D matrix, got shape {matrix.shape}")
    sigma = np.linalg.svd(matrix, compute_uv=False)
    total = sigma.sum()
    if total == 0:
        raise ValueError("zero matrix has no spectrum")
    cum = np.cumsum(sigma) / total
    dims = np.arange(1, len(sigma) + 1) / len(sigma)
    return dims, cum


def spectrum_auc(matrix: np.ndarray) -> float:
    """Area under the cumulative-spectrum curve (0.5 + concentration).

    ≈0.5 for an identity-like (flat) spectrum; →1.0 as the matrix becomes
    rank-1. A scalar summary of Fig. 2's visual claim.
    """
    dims, cum = singular_value_profile(matrix)
    return float(np.trapezoid(cum, dims))


def collect_gradient_and_activation(
    config: TransformerConfig | None = None,
    layer: int | None = None,
    batch: int = 16,
    seq: int = 16,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Run one training batch and capture (weight gradient, activation).

    The gradient is the attention-output projection weight's gradient in
    the chosen layer (a ``h×h`` matrix — what data-parallel gradient
    compression ships); the activation is the same layer's output reshaped
    to ``(b·s, h)`` (what model-parallel activation compression ships).
    ``layer`` defaults to the last layer, echoing the paper's use of
    BERT-Large's 12th/24-layer activations.
    """
    rng = np.random.default_rng(seed)
    config = config or TransformerConfig(
        vocab_size=128, max_seq_len=max(32, seq), hidden=64,
        num_layers=4, num_heads=4, num_classes=2, seed=seed,
    )
    layer = config.num_layers - 1 if layer is None else layer
    model = BertForSequenceClassification(config)

    captured: dict[str, np.ndarray] = {}
    model.bert.encoder.layer_hooks[layer] = lambda t: captured.update(act=t.data) or t

    ids = rng.integers(0, config.vocab_size, size=(batch, seq))
    labels = rng.integers(0, config.num_classes, size=batch)
    loss = model.loss(ids, labels)
    loss.backward()

    grad = model.bert.encoder.layers[layer].attn.out.weight.grad
    activation = captured["act"].reshape(-1, config.hidden)
    return grad.copy(), activation.copy()


def lowrank_report(seed: int = 0) -> dict:
    """Fig. 2 as data: both profiles plus their AUC summary."""
    grad, act = collect_gradient_and_activation(seed=seed)
    gd, gc = singular_value_profile(grad)
    ad, ac = singular_value_profile(act)
    return {
        "gradient": {"dims": gd, "cumulative": gc, "auc": spectrum_auc(grad)},
        "activation": {"dims": ad, "cumulative": ac, "auc": spectrum_auc(act)},
    }
