"""Random-K sparsification of activations.

Keeps ``k`` uniformly random entries. The paper implemented selection with
Python's ``random.sample``, which is why its Random-K rows show enormous
encoding times; our NumPy implementation is fast, but the *simulator*
reproduces the paper's kernel cost (see ``simulator/kernels.py``) because the
timing tables characterise the paper's system, not ours.

An optional unbiased rescale (values divided by the keep fraction) is
provided, as used in Random-K gradient compression literature (Stich et al.).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.compression.base import (
    BYTES_FP16,
    BYTES_INT32,
    CompressedMessage,
    Compressor,
    register_compressor,
)
from repro.tensor import Tensor

__all__ = ["RandomKCompressor"]


@register_compressor
class RandomKCompressor(Compressor):
    """Keep a uniformly random ``fraction`` of entries.

    Parameters
    ----------
    fraction:
        Fraction of entries kept, in (0, 1].
    seed:
        Seed for the selection RNG.
    unbiased:
        When True, kept values are scaled by ``1/fraction`` so the sparse
        tensor is an unbiased estimate of the original.
    """

    name = "randomk"
    allreduce_compatible = False

    def __init__(self, fraction: float, seed: int = 0, unbiased: bool = False):
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)
        self.unbiased = unbiased
        self._seed = int(seed)
        self._site_rngs: dict[str, np.random.Generator] = {}

    def _rng_for(self, site: str) -> np.random.Generator:
        # One independent, advancing stream per call site.  Selection at a
        # site then depends only on (seed, site, call count) — never on how
        # many *other* sites ran in this process — so an mp worker that
        # materializes a single tp rank draws the same indices the serial
        # oracle drew for that rank.
        rng = self._site_rngs.get(site)
        if rng is None:
            rng = np.random.default_rng((self._seed, zlib.crc32(site.encode())))
            self._site_rngs[site] = rng
        return rng

    def _k(self, size: int) -> int:
        return max(1, int(round(self.fraction * size)))

    def _select(self, size: int, site: str = "default") -> np.ndarray:
        k = self._k(size)
        if k >= size:
            return np.arange(size, dtype=np.int32)
        idx = self._rng_for(site).choice(size, size=k, replace=False)
        return np.sort(idx).astype(np.int32)

    def compress(self, x: np.ndarray) -> CompressedMessage:
        x = np.asarray(x)
        idx = self._select(x.size)
        values = x.reshape(-1)[idx]
        if self.unbiased:
            values = values / self.fraction
        return CompressedMessage(
            payloads={"values": values, "indices": idx},
            shape=tuple(x.shape),
            scheme=self.name,
            wire_bytes=idx.size * (BYTES_FP16 + BYTES_INT32),
            meta={"k": int(idx.size), "unbiased": self.unbiased},
        )

    def decompress(self, msg: CompressedMessage) -> np.ndarray:
        out = np.zeros(int(np.prod(msg.shape)), dtype=msg.payloads["values"].dtype)
        values = msg.payloads["values"]
        if msg.meta.get("unbiased"):
            values = values * self.fraction
        out[msg.payloads["indices"]] = values
        return out.reshape(msg.shape)

    def compressed_bytes(self, shape: tuple[int, ...]) -> int:
        k = self._k(int(np.prod(shape)))
        return k * (BYTES_FP16 + BYTES_INT32)

    def apply(self, x: Tensor, site: str = "default") -> Tensor:
        idx = self._select(x.data.size, site=site)
        mask = np.zeros(x.data.size, dtype=bool)
        mask[idx] = True
        mask = mask.reshape(x.data.shape)
        scale = (1.0 / self.fraction) if self.unbiased else 1.0
        out_data = x.data * mask * scale

        def backward(g):
            return (g * mask * scale,)

        return Tensor._make(out_data, (x,), backward)

    def runtime_state(self) -> dict:
        # bit_generator.state is a plain JSON-able dict (PCG64: name plus
        # integer state/inc words) — exactly what a bitwise resume needs.
        return {"rng": {site: rng.bit_generator.state
                        for site, rng in self._site_rngs.items()}}

    def load_runtime_state(self, state: dict) -> None:
        self._site_rngs = {}
        for site, bg_state in state.get("rng", {}).items():
            rng = np.random.default_rng(
                (self._seed, zlib.crc32(site.encode())))
            rng.bit_generator.state = bg_state
            self._site_rngs[site] = rng

    def __repr__(self) -> str:
        return f"RandomKCompressor(fraction={self.fraction:.4f}, unbiased={self.unbiased})"
