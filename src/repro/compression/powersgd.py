"""PowerSGD-style low-rank compression (Vogels et al. 2019) — the excluded
baseline.

The paper *deliberately excludes* low-rank compression from the study:
"Since the activation matrices for models are not low-rank (as shown in
Figure 2), low-rank based compression algorithms (such as PowerSGD) are not
suitable for model parallelism compression" (§3.1). We implement it anyway
so the claim is testable: the ablation benchmark
``benchmarks/test_ablation_powersgd.py`` shows PowerSGD reconstructing
weight *gradients* well at rank r ≪ h while failing badly on *activations*
at the same wire budget.

Algorithm (rank-r, single power-iteration step with optional warm start):
for a matrix ``M (n×m)``: ``P = M Q; P = orthonormalize(P); Q = Mᵀ P``;
the message is ``(P, Q)`` and the reconstruction ``P Qᵀ``. Activations
``(b, s, h)`` are flattened to ``(b·s, h)``.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import (
    BYTES_FP16,
    CompressedMessage,
    Compressor,
    register_compressor,
)
from repro.tensor import Tensor

__all__ = ["PowerSGDCompressor", "orthonormalize"]


def orthonormalize(matrix: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Gram–Schmidt orthonormalization of the columns (as in PowerSGD)."""
    m = matrix.astype(np.float64).copy()
    for i in range(m.shape[1]):
        col = m[:, i]
        for j in range(i):
            col -= (col @ m[:, j]) * m[:, j]
        norm = np.linalg.norm(col)
        m[:, i] = col / (norm + eps)
    return m.astype(np.float32)


@register_compressor
class PowerSGDCompressor(Compressor):
    """Rank-``rank`` power-iteration compression of 2-D-flattened tensors.

    Parameters
    ----------
    rank:
        Rank of the factorization (the PowerSGD ``r``).
    warm_start:
        Reuse the previous ``Q`` as the power-iteration seed (PowerSGD's
        key trick for gradients, which evolve slowly across steps).
    seed:
        Seed for the initial random ``Q``.
    """

    name = "powersgd"
    allreduce_compatible = False  # two factor matrices per message

    def __init__(self, rank: int, warm_start: bool = True, seed: int = 0):
        if rank <= 0:
            raise ValueError(f"rank must be positive, got {rank}")
        self.rank = rank
        self.warm_start = warm_start
        self._rng = np.random.default_rng(seed)
        self._q_cache: dict[tuple[int, ...], np.ndarray] = {}

    # ------------------------------------------------------------------
    def _as_matrix(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 1:
            return x.reshape(-1, 1)
        return x.reshape(-1, x.shape[-1])

    def _factorize(self, mat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        n, m = mat.shape
        r = min(self.rank, n, m)
        key = (n, m, r)
        q = self._q_cache.get(key) if self.warm_start else None
        if q is None or q.shape != (m, r):
            q = self._rng.normal(size=(m, r)).astype(np.float32)
        p = orthonormalize(mat @ q)
        q_new = mat.T @ p
        if self.warm_start:
            self._q_cache[key] = q_new
        return p, q_new

    # ------------------------------------------------------------------
    def compress(self, x: np.ndarray) -> CompressedMessage:
        x = np.asarray(x)
        mat = self._as_matrix(x)
        p, q = self._factorize(mat)
        return CompressedMessage(
            payloads={"p": p, "q": q},
            shape=tuple(x.shape),
            scheme=self.name,
            wire_bytes=(p.size + q.size) * BYTES_FP16,
            meta={"rank": p.shape[1]},
        )

    def decompress(self, msg: CompressedMessage) -> np.ndarray:
        out = msg.payloads["p"] @ msg.payloads["q"].T
        return out.reshape(msg.shape)

    def compressed_bytes(self, shape: tuple[int, ...]) -> int:
        n = int(np.prod(shape[:-1])) if len(shape) > 1 else int(np.prod(shape))
        m = shape[-1] if len(shape) > 1 else 1
        r = min(self.rank, n, m)
        return (n * r + m * r) * BYTES_FP16

    def apply(self, x: Tensor, site: str = "default") -> Tensor:
        """Differentiable round-trip via a straight-through projection.

        The reconstruction ``P Qᵀ`` is a (data-dependent) projection of the
        input; as with quantization we pass the upstream gradient straight
        through, since the factors are recomputed every call.
        """
        out_data = self.roundtrip(x.data).astype(x.data.dtype)

        def backward(g):
            return (g,)

        return Tensor._make(out_data, (x,), backward)

    def __repr__(self) -> str:
        return f"PowerSGDCompressor(rank={self.rank}, warm_start={self.warm_start})"
