"""Learnable linear auto-encoder (AE) compression.

Matches the paper's §3.2 description: per compression site there is a
learnable encoder matrix ``w ∈ R^{h×c}`` producing the compressed activation
``X w ∈ R^{b×s×c}`` and a decoder matrix ``R^{c×h}`` reconstructing it.
Both matrices are trained jointly with the model by ordinary backprop —
the possibility that distinguishes model-parallel (activation) compression
from gradient compression.

The wire message is the single fp16 code tensor, so AE is the only
compressed scheme that remains all-reduce compatible (the all-reduce then
runs over the *code* dimension).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import (
    BYTES_FP16,
    CompressedMessage,
    Compressor,
    register_compressor,
)
from repro.nn.module import Parameter
from repro.tensor import Tensor

__all__ = ["AutoencoderCompressor"]


@register_compressor
class AutoencoderCompressor(Compressor):
    """Linear encoder/decoder pair with learnable weights.

    Parameters
    ----------
    hidden:
        Activation feature size ``h`` (last axis).
    code_dim:
        Encoder output size ``c`` (< hidden). A1 uses 50, A2 uses 100 for
        BERT-Large's h=1024.
    seed:
        Initialization seed.
    init_std:
        Weight init scale. The decoder is initialised as the scaled
        transpose of the encoder so the initial round-trip is near-PCA-like
        rather than pure noise, which stabilises early training.
    """

    name = "autoencoder"
    allreduce_compatible = True
    learnable = True

    def __init__(self, hidden: int, code_dim: int, seed: int = 0, init_std: float | None = None):
        if code_dim >= hidden:
            raise ValueError(f"code_dim ({code_dim}) must be < hidden ({hidden})")
        self.hidden = hidden
        self.code_dim = code_dim
        rng = np.random.default_rng(seed)
        std = init_std if init_std is not None else (1.0 / np.sqrt(hidden))
        enc = rng.normal(0.0, std, size=(hidden, code_dim)).astype(np.float32)
        self.encoder = Parameter(enc, name="ae.encoder")
        self.decoder = Parameter((enc.T * (hidden / code_dim) * std**2 * hidden).astype(np.float32),
                                 name="ae.decoder")
        # Orthogonalize the encoder columns for a well-conditioned start and
        # set the decoder to its pseudo-inverse (transpose, once orthonormal).
        q, _ = np.linalg.qr(enc)
        self.encoder.data = q.astype(np.float32)
        self.decoder.data = q.T.astype(np.float32).copy()

    def parameters(self):
        return [self.encoder, self.decoder]

    # ------------------------------------------------------------------
    # Message face (uses current weights, no grad)
    # ------------------------------------------------------------------
    def compress(self, x: np.ndarray) -> CompressedMessage:
        x = np.asarray(x)
        if x.shape[-1] != self.hidden:
            raise ValueError(f"expected last axis {self.hidden}, got {x.shape}")
        code = x @ self.encoder.data
        return CompressedMessage(
            payloads={"code": code},
            shape=tuple(x.shape),
            scheme=self.name,
            wire_bytes=int(code.size) * BYTES_FP16,
            meta={"code_dim": self.code_dim},
        )

    def decompress(self, msg: CompressedMessage) -> np.ndarray:
        return msg.payloads["code"] @ self.decoder.data

    def compressed_bytes(self, shape: tuple[int, ...]) -> int:
        if shape[-1] != self.hidden:
            raise ValueError(f"expected last axis {self.hidden}, got {shape}")
        return int(np.prod(shape[:-1])) * self.code_dim * BYTES_FP16

    # ------------------------------------------------------------------
    # Graph face (differentiable; trains the AE jointly)
    # ------------------------------------------------------------------
    def encode(self, x: Tensor) -> Tensor:
        """Differentiable encoder GEMM."""
        return x @ self.encoder

    def decode(self, code: Tensor) -> Tensor:
        """Differentiable decoder GEMM."""
        return code @ self.decoder

    def apply(self, x: Tensor, site: str = "default") -> Tensor:
        return self.decode(self.encode(x))

    def __repr__(self) -> str:
        return f"AutoencoderCompressor(hidden={self.hidden}, code_dim={self.code_dim})"
