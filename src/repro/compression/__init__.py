"""Activation compression algorithms (the paper's §3.1).

Four families are implemented, matching the study:

- :class:`TopKCompressor` / :class:`RandomKCompressor` — sparsification.
- :class:`QuantizationCompressor` — 2/4/8-bit uniform quantization.
- :class:`AutoencoderCompressor` — learnable linear encoder/decoder (AE).
- :class:`NoCompressor` — the "w/o" baseline.

Each compressor exposes two faces:

1. a NumPy message face (``compress`` / ``decompress``) that produces a
   :class:`CompressedMessage` with exact wire-byte accounting — this is what
   the parallel runtime puts on the (simulated) wire; and
2. a differentiable graph face (``apply``) that runs
   compress→decompress inside the autograd graph with the correct gradient
   semantics (gradient masking for sparsification, straight-through for
   quantization, ordinary backprop for AE).

``notation`` maps the paper's scheme labels (A1, A2, T1–T4, R1–R4, Q1–Q3)
to configured compressors; ``policy`` captures *where* compression is applied
(which layers — §4.5).
"""

from repro.compression.base import (
    Compressor,
    CompressedMessage,
    NoCompressor,
    register_compressor,
    make_compressor,
    available_compressors,
)
from repro.compression.topk import TopKCompressor
from repro.compression.randomk import RandomKCompressor
from repro.compression.quantization import QuantizationCompressor
from repro.compression.autoencoder import AutoencoderCompressor
from repro.compression.error_feedback import ErrorFeedbackCompressor
from repro.compression.powersgd import PowerSGDCompressor
from repro.compression.policy import CompressionPolicy
from repro.compression.notation import SCHEME_LABELS, SchemeSpec, scheme_spec, build_compressor

__all__ = [
    "Compressor",
    "CompressedMessage",
    "NoCompressor",
    "TopKCompressor",
    "RandomKCompressor",
    "QuantizationCompressor",
    "AutoencoderCompressor",
    "ErrorFeedbackCompressor",
    "PowerSGDCompressor",
    "CompressionPolicy",
    "SCHEME_LABELS",
    "SchemeSpec",
    "scheme_spec",
    "build_compressor",
    "register_compressor",
    "make_compressor",
    "available_compressors",
]
