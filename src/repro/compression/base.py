"""Compressor interface, message container, and registry.

Wire-byte conventions (matching the paper's fp16 training setup):

- floating-point payloads travel as fp16 → 2 bytes/element;
- index payloads travel as int32 → 4 bytes/element;
- bit-packed payloads report their packed size exactly.

``CompressedMessage.wire_bytes`` is the number the performance simulator
feeds into its α–β communication model, so it must reflect what a real
implementation would put on the wire, not the in-memory NumPy dtypes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.tensor import Tensor

__all__ = [
    "BYTES_FP16",
    "BYTES_INT32",
    "CompressedMessage",
    "Compressor",
    "NoCompressor",
    "register_compressor",
    "make_compressor",
    "available_compressors",
]

BYTES_FP16 = 2
BYTES_INT32 = 4


@dataclass
class CompressedMessage:
    """A compressed activation as it would appear on the wire.

    Attributes
    ----------
    payloads:
        Named arrays making up the message (e.g. ``{"values", "indices"}``
    shape:
        Original (uncompressed) activation shape.
    scheme:
        Name of the producing compressor.
    wire_bytes:
        Exact bytes a real implementation would transmit.
    meta:
        Scheme-specific extras needed for decompression (scales, seeds...).
    """

    payloads: dict[str, np.ndarray]
    shape: tuple[int, ...]
    scheme: str
    wire_bytes: int
    meta: dict = field(default_factory=dict)

    @property
    def original_bytes(self) -> int:
        """Bytes of the uncompressed fp16 activation."""
        return int(np.prod(self.shape)) * BYTES_FP16

    @property
    def ratio(self) -> float:
        """Compression ratio original/compressed (>1 means smaller)."""
        return self.original_bytes / max(self.wire_bytes, 1)


class Compressor(abc.ABC):
    """Interface for activation compressors.

    Subclasses must implement the NumPy message face
    (:meth:`compress` / :meth:`decompress` / :meth:`compressed_bytes`)
    and the differentiable face (:meth:`apply`).
    """

    name: str = "base"

    #: True when the scheme produces a message all-reduce can sum directly
    #: (single float tensor).  False forces the runtime onto the
    #: all-gather path, like Top-K / Random-K / quantization in the paper §3.2.
    allreduce_compatible: bool = False

    #: True for schemes with learnable parameters (AE).
    learnable: bool = False

    @abc.abstractmethod
    def compress(self, x: np.ndarray) -> CompressedMessage:
        """Produce the wire message for activation ``x``."""

    @abc.abstractmethod
    def decompress(self, msg: CompressedMessage) -> np.ndarray:
        """Reconstruct a dense activation from ``msg``."""

    @abc.abstractmethod
    def compressed_bytes(self, shape: tuple[int, ...]) -> int:
        """Analytic wire size for an activation of ``shape`` (no data needed)."""

    @abc.abstractmethod
    def apply(self, x: Tensor, site: str = "default") -> Tensor:
        """Differentiable compress→decompress for use inside the graph.

        ``site`` identifies the activation site (layer, rank, pipeline
        boundary) for *stateful* compressors: error feedback keeps one
        residual per site, so two call sites sharing a compressor instance
        must pass distinct keys or they clobber each other's state.
        Stateless schemes ignore it.
        """

    def backward_bytes(self, shape: tuple[int, ...]) -> int:
        """Wire size of the *backward* (gradient-of-activation) message.

        Compressing the forward activation also shrinks the backward message
        (§3.3): sparsified gradients only carry the kept coordinates, and AE
        gradients flow through the code. Quantization is the exception —
        "the PyTorch backward engine only supports gradients for floating
        point tensors", so its backward stays dense
        (:class:`QuantizationCompressor` overrides this).
        """
        return self.compressed_bytes(shape)

    # ------------------------------------------------------------------
    def roundtrip(self, x: np.ndarray) -> np.ndarray:
        """Convenience: compress then decompress."""
        return self.decompress(self.compress(x))

    def ratio(self, shape: tuple[int, ...]) -> float:
        """Analytic compression ratio for ``shape``."""
        return (int(np.prod(shape)) * BYTES_FP16) / max(self.compressed_bytes(shape), 1)

    def reconstruction_error(self, x: np.ndarray) -> float:
        """Relative Frobenius reconstruction error ``||x - D(C(x))|| / ||x||``."""
        denom = float(np.linalg.norm(x))
        if denom == 0.0:
            return 0.0
        return float(np.linalg.norm(x - self.roundtrip(x))) / denom

    def parameters(self):
        """Learnable parameters (empty for non-learning schemes)."""
        return []

    # ------------------------------------------------------------------
    def runtime_state(self) -> dict:
        """Mutable per-site state for mid-run checkpointing.

        Learnable *parameters* live in the model's state dict; this is the
        rest — error-feedback residuals, advancing RNG streams — anything
        a bitwise resume of an interrupted run must restore.  Stateless
        schemes return ``{}`` (the default) and cost nothing in the
        checkpoint.
        """
        return {}

    def load_runtime_state(self, state: dict) -> None:
        """Restore state captured by :meth:`runtime_state`."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoCompressor(Compressor):
    """Identity baseline ("w/o" in the paper's tables)."""

    name = "none"
    allreduce_compatible = True

    def compress(self, x: np.ndarray) -> CompressedMessage:
        return CompressedMessage(
            payloads={"values": np.asarray(x)},
            shape=tuple(np.asarray(x).shape),
            scheme=self.name,
            wire_bytes=int(np.asarray(x).size) * BYTES_FP16,
        )

    def decompress(self, msg: CompressedMessage) -> np.ndarray:
        return msg.payloads["values"]

    def compressed_bytes(self, shape: tuple[int, ...]) -> int:
        return int(np.prod(shape)) * BYTES_FP16

    def apply(self, x: Tensor, site: str = "default") -> Tensor:
        return x


_REGISTRY: dict[str, type[Compressor]] = {}


def register_compressor(cls: type[Compressor]) -> type[Compressor]:
    """Class decorator adding a compressor to the global registry."""
    if not cls.name or cls.name == "base":
        raise ValueError(f"{cls.__name__} must define a unique .name")
    _REGISTRY[cls.name] = cls
    return cls


def make_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a registered compressor by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown compressor {name!r}; available: {sorted(_REGISTRY)}") from None
    return cls(**kwargs)


def available_compressors() -> list[str]:
    """Names of all registered compressors."""
    return sorted(_REGISTRY)


register_compressor(NoCompressor)
