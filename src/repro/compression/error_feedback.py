"""Error-feedback wrapper around any compressor.

Maintains the per-site residual ``e`` of the previous compression step and
adds it to the next input: ``msg = C(x + e); e = (x + e) - D(msg)``.
The paper's implementation "allows the integration of error-feedback
compression algorithms by retaining the error information from the previous
compression step" (§3.3); this wrapper is that mechanism, and the ablation
bench ``benchmarks/test_ablation_error_feedback.py`` measures its effect.

Each distinct activation site (layer / pipeline boundary) must use its own
wrapper instance or its own ``site`` key, since residuals are shape-bound.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedMessage, Compressor
from repro.tensor import Tensor

__all__ = ["ErrorFeedbackCompressor"]


class ErrorFeedbackCompressor(Compressor):
    """Wrap ``inner`` with error feedback state.

    Parameters
    ----------
    inner:
        The compressor producing the actual wire messages.
    decay:
        Residual decay factor in [0, 1]; 1 keeps the full residual.
    """

    def __init__(self, inner: Compressor, decay: float = 1.0):
        if not 0.0 <= decay <= 1.0:
            raise ValueError(f"decay must be in [0, 1], got {decay}")
        self.inner = inner
        self.decay = decay
        self.name = f"ef({inner.name})"
        self.allreduce_compatible = inner.allreduce_compatible
        self.learnable = inner.learnable
        self._residuals: dict[str, np.ndarray] = {}

    def residual(self, site: str = "default") -> np.ndarray | None:
        """Current residual for ``site`` (None before first use)."""
        return self._residuals.get(site)

    def reset(self) -> None:
        """Drop all residual state."""
        self._residuals.clear()

    # ------------------------------------------------------------------
    def compress(self, x: np.ndarray, site: str = "default") -> CompressedMessage:
        x = np.asarray(x, dtype=np.float32)
        prev = self._residuals.get(site)
        corrected = x + self.decay * prev if prev is not None and prev.shape == x.shape else x
        msg = self.inner.compress(corrected)
        self._residuals[site] = corrected - self.inner.decompress(msg)
        return msg

    def decompress(self, msg: CompressedMessage) -> np.ndarray:
        return self.inner.decompress(msg)

    def compressed_bytes(self, shape: tuple[int, ...]) -> int:
        return self.inner.compressed_bytes(shape)

    def backward_bytes(self, shape: tuple[int, ...]) -> int:
        return self.inner.backward_bytes(shape)

    def apply(self, x: Tensor, site: str = "default") -> Tensor:
        """Differentiable path: forward uses error-fed reconstruction.

        The residual update happens on the *values*; gradients flow through
        the inner compressor's own backward rule applied at the corrected
        point (a straight-through treatment of the additive correction).
        """
        prev = self._residuals.get(site)
        if prev is not None and prev.shape == x.data.shape:
            corrected = Tensor._make(
                x.data + self.decay * prev, (x,), lambda g: (g,)
            )
        else:
            corrected = x
        out = self.inner.apply(corrected, site=site)
        self._residuals[site] = corrected.data - out.data
        return out

    def parameters(self):
        return self.inner.parameters()

    def runtime_state(self) -> dict:
        state: dict = {"residuals": {site: r.copy()
                                     for site, r in self._residuals.items()}}
        inner = self.inner.runtime_state()
        if inner:
            state["inner"] = inner
        return state

    def load_runtime_state(self, state: dict) -> None:
        self._residuals = {site: np.asarray(r).copy()
                           for site, r in state.get("residuals", {}).items()}
        if "inner" in state:
            self.inner.load_runtime_state(state["inner"])

    def __repr__(self) -> str:
        return f"ErrorFeedbackCompressor({self.inner!r}, decay={self.decay})"
