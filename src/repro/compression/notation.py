"""The paper's scheme notation (Table 1) → configured compressors.

Label semantics for a model with hidden size ``h`` (paper: BERT-Large,
h = 1024):

========  =====================================================================
 Label     Meaning
========  =====================================================================
 w/o       no compression
 A1        AE with encoder output dim 50  (c/h = 50/1024)
 A2        AE with encoder output dim 100 (c/h = 100/1024)
 T1/R1     Top-/Random-K with the same *communication cost* as A1
 T2/R2     Top-/Random-K with the same *communication cost* as A2
 T3/R3     Top-/Random-K with the same *compression ratio* as A1 (~20×)
 T4/R4     Top-/Random-K with the same *compression ratio* as A2 (~10×)
 Q1        2-bit uniform quantization
 Q2        4-bit uniform quantization
 Q3        8-bit uniform quantization (appendix tables only)
========  =====================================================================

"Same communication cost" accounts for the sparse message carrying both
fp16 values and int32 indices (6 bytes per kept element vs 2 bytes per AE
code element), so the kept fraction is ``c / (3h)``. "Same compression
ratio" counts kept *elements* (the paper's "compress ~10/20 times"), giving
fraction ``c / h``. For h=1024 these reproduce the paper's settings exactly;
for the scaled-down accuracy models the fractions (not the absolute dims)
are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.autoencoder import AutoencoderCompressor
from repro.compression.base import Compressor, NoCompressor
from repro.compression.quantization import QuantizationCompressor
from repro.compression.randomk import RandomKCompressor
from repro.compression.topk import TopKCompressor

__all__ = ["SchemeSpec", "SCHEME_LABELS", "scheme_spec", "build_compressor"]

#: AE code dims for BERT-Large from the paper.
_A1_CODE, _A2_CODE = 50, 100
_REF_HIDDEN = 1024


@dataclass(frozen=True)
class SchemeSpec:
    """Declarative description of one notation-table entry."""

    label: str
    family: str  # "none" | "ae" | "topk" | "randomk" | "quant"
    #: for ae: c/h; for topk/randomk: kept fraction; for quant: unused
    fraction: float = 1.0
    bits: int = 0

    def code_dim(self, hidden: int) -> int:
        """AE encoder output dim for a model of ``hidden`` (≥2)."""
        return max(2, round(self.fraction * hidden))

    def build(self, hidden: int, seed: int = 0) -> Compressor:
        """Instantiate the compressor for a model of ``hidden`` size."""
        if self.family == "none":
            return NoCompressor()
        if self.family == "ae":
            return AutoencoderCompressor(hidden, self.code_dim(hidden), seed=seed)
        if self.family == "topk":
            return TopKCompressor(self.fraction)
        if self.family == "randomk":
            return RandomKCompressor(self.fraction, seed=seed)
        if self.family == "quant":
            return QuantizationCompressor(self.bits)
        raise ValueError(f"unknown family {self.family!r}")


def _ae_fraction(code: int) -> float:
    return code / _REF_HIDDEN


SCHEME_LABELS: dict[str, SchemeSpec] = {
    "w/o": SchemeSpec("w/o", "none"),
    "A1": SchemeSpec("A1", "ae", _ae_fraction(_A1_CODE)),
    "A2": SchemeSpec("A2", "ae", _ae_fraction(_A2_CODE)),
    # same comm cost as A1/A2: 6 bytes per kept element vs 2 per code element
    "T1": SchemeSpec("T1", "topk", _ae_fraction(_A1_CODE) / 3.0),
    "T2": SchemeSpec("T2", "topk", _ae_fraction(_A2_CODE) / 3.0),
    # same compression ratio (kept elements) as A1/A2
    "T3": SchemeSpec("T3", "topk", _ae_fraction(_A1_CODE)),
    "T4": SchemeSpec("T4", "topk", _ae_fraction(_A2_CODE)),
    "R1": SchemeSpec("R1", "randomk", _ae_fraction(_A1_CODE) / 3.0),
    "R2": SchemeSpec("R2", "randomk", _ae_fraction(_A2_CODE) / 3.0),
    "R3": SchemeSpec("R3", "randomk", _ae_fraction(_A1_CODE)),
    "R4": SchemeSpec("R4", "randomk", _ae_fraction(_A2_CODE)),
    "Q1": SchemeSpec("Q1", "quant", bits=2),
    "Q2": SchemeSpec("Q2", "quant", bits=4),
    "Q3": SchemeSpec("Q3", "quant", bits=8),
}


def scheme_spec(label: str) -> SchemeSpec:
    """Look up a notation-table entry, raising with the valid labels."""
    try:
        return SCHEME_LABELS[label]
    except KeyError:
        raise KeyError(f"unknown scheme {label!r}; valid: {sorted(SCHEME_LABELS)}") from None


def build_compressor(label: str, hidden: int, seed: int = 0) -> Compressor:
    """Build the compressor named by a paper label for a given hidden size."""
    return scheme_spec(label).build(hidden, seed=seed)
