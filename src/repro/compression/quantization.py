"""Uniform min-max quantization of activations (2/4/8 bits).

Follows the scheme the paper adopts from Wang et al. 2022 ("Fine-tuning
language models over slow networks using activation compression with
guarantees"): per-group uniform quantization with fp16 scale/zero-point
per group, bit-packed payload.

The wire message is ``(packed uint8, scales fp16, zeros fp16)`` — again
not a single float tensor, so it rides the all-gather path. Backward is the
straight-through estimator; as the paper notes, the PyTorch backward engine
keeps the gradient dense fp16, so quantization does **not** shrink the
backward pipeline message (honoured by the runtime's byte accounting).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import (
    BYTES_FP16,
    CompressedMessage,
    Compressor,
    register_compressor,
)
from repro.tensor import Tensor

__all__ = ["QuantizationCompressor", "pack_bits", "unpack_bits"]


def pack_bits(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack small unsigned integer ``codes`` (< 2**bits) into a uint8 array."""
    if bits not in (2, 4, 8):
        raise ValueError(f"bits must be 2, 4 or 8, got {bits}")
    codes = codes.astype(np.uint8).reshape(-1)
    per_byte = 8 // bits
    pad = (-codes.size) % per_byte
    if pad:
        codes = np.concatenate([codes, np.zeros(pad, dtype=np.uint8)])
    codes = codes.reshape(-1, per_byte)
    out = np.zeros(codes.shape[0], dtype=np.uint8)
    for j in range(per_byte):
        out |= codes[:, j] << (bits * j)
    return out


def unpack_bits(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns ``count`` codes."""
    per_byte = 8 // bits
    mask = (1 << bits) - 1
    cols = [(packed >> (bits * j)) & mask for j in range(per_byte)]
    codes = np.stack(cols, axis=1).reshape(-1)
    return codes[:count]


@register_compressor
class QuantizationCompressor(Compressor):
    """Per-group uniform min-max quantization.

    Parameters
    ----------
    bits:
        Precision of each quantized value (2, 4 or 8).
    group_size:
        Elements per quantization group sharing a (scale, zero) pair.
        The default (256) matches per-row grouping for hidden sizes around
        BERT scale without tying the scheme to a layout.
    """

    name = "quantization"
    allreduce_compatible = False

    def __init__(self, bits: int, group_size: int = 256):
        if bits not in (2, 4, 8):
            raise ValueError(f"bits must be 2, 4 or 8, got {bits}")
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        self.bits = bits
        self.group_size = group_size

    # ------------------------------------------------------------------
    def _grouped(self, flat: np.ndarray) -> tuple[np.ndarray, int]:
        """Pad and reshape a flat array into (groups, group_size).

        Padding repeats the final element (edge mode): zero padding would
        pull the last group's min/max toward 0, inflating its quantization
        step — and thus the per-element error bound — whenever the real
        values sit far from zero.
        """
        pad = (-flat.size) % self.group_size
        if pad:
            flat = np.pad(flat, (0, pad), mode="edge")
        return flat.reshape(-1, self.group_size), pad

    def _quantize(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (codes, scales, zeros) for flattened ``x``."""
        grouped, _ = self._grouped(np.asarray(x, dtype=np.float32).reshape(-1))
        lo = grouped.min(axis=1, keepdims=True)
        hi = grouped.max(axis=1, keepdims=True)
        levels = (1 << self.bits) - 1
        scale = (hi - lo) / levels
        scale = np.where(scale == 0, 1.0, scale)
        codes = np.clip(np.round((grouped - lo) / scale), 0, levels).astype(np.uint8)
        return codes, scale.reshape(-1), lo.reshape(-1)

    def _dequantize(self, codes: np.ndarray, scales: np.ndarray, zeros: np.ndarray, size: int) -> np.ndarray:
        grouped = codes.reshape(-1, self.group_size).astype(np.float32)
        out = grouped * scales[:, None] + zeros[:, None]
        return out.reshape(-1)[:size]

    # ------------------------------------------------------------------
    def compress(self, x: np.ndarray) -> CompressedMessage:
        x = np.asarray(x)
        codes, scales, zeros = self._quantize(x)
        packed = pack_bits(codes, self.bits)
        wire = packed.size + (scales.size + zeros.size) * BYTES_FP16
        return CompressedMessage(
            payloads={"packed": packed, "scales": scales, "zeros": zeros},
            shape=tuple(x.shape),
            scheme=self.name,
            wire_bytes=int(wire),
            meta={"bits": self.bits, "group_size": self.group_size},
        )

    def decompress(self, msg: CompressedMessage) -> np.ndarray:
        size = int(np.prod(msg.shape))
        n_groups = msg.payloads["scales"].size
        codes = unpack_bits(msg.payloads["packed"], self.bits, n_groups * self.group_size)
        out = self._dequantize(codes, msg.payloads["scales"], msg.payloads["zeros"], size)
        return out.reshape(msg.shape)

    def compressed_bytes(self, shape: tuple[int, ...]) -> int:
        n = int(np.prod(shape))
        n_groups = -(-n // self.group_size)
        packed = -(-(n_groups * self.group_size * self.bits) // 8)
        return packed + 2 * n_groups * BYTES_FP16

    def backward_bytes(self, shape: tuple[int, ...]) -> int:
        """Dense fp16: the backward engine cannot carry quantized gradients."""
        n = int(np.prod(shape))
        return n * BYTES_FP16

    def roundtrip(self, x: np.ndarray) -> np.ndarray:
        """Fused quantize→dequantize, skipping the bit-pack staging.

        ``pack_bits``/``unpack_bits`` are lossless on the uint8 codes, so
        the numeric result is bitwise-identical to
        ``decompress(compress(x))`` — but the in-graph hot path (every
        compressed site, every microbatch) drops two full passes over the
        payload plus the pack allocations.  The wire format keeps the
        packed form; only the local round-trip shortcuts it.
        """
        x = np.asarray(x)
        codes, scales, zeros = self._quantize(x)
        return self._dequantize(codes.reshape(-1), scales, zeros,
                                x.size).reshape(x.shape)

    def apply(self, x: Tensor, site: str = "default") -> Tensor:
        out_data = self.roundtrip(x.data).astype(x.data.dtype)

        def backward(g):
            # Straight-through estimator: quantization treated as identity.
            return (g,)

        return Tensor._make(out_data, (x,), backward)

    def __repr__(self) -> str:
        return f"QuantizationCompressor(bits={self.bits}, group_size={self.group_size})"
