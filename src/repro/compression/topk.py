"""Top-K sparsification (magnitude pruning) of activations.

Keeps the ``k`` largest-magnitude entries of the flattened activation.
The wire message is ``(values fp16, indices int32)`` — two tensors of
different dtypes, which is why the runtime cannot sum it with all-reduce
and must fall back to all-gather (paper §3.2).

Gradient semantics: the backward message is masked to the kept entries,
mirroring the paper's observation that compressing the forward activation
also shrinks the backward (gradient-of-activation) message.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import (
    BYTES_FP16,
    BYTES_INT32,
    CompressedMessage,
    Compressor,
    register_compressor,
)
from repro.tensor import Tensor

__all__ = ["TopKCompressor", "topk_mask"]


def topk_mask(x: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask of the ``k`` largest-|x| entries (flattened)."""
    flat = np.abs(x).reshape(-1)
    k = int(min(max(k, 1), flat.size))
    if k == flat.size:
        return np.ones(x.shape, dtype=bool)
    # argpartition puts the top-k (unordered) in the last k slots.
    idx = np.argpartition(flat, flat.size - k)[-k:]
    mask = np.zeros(flat.size, dtype=bool)
    mask[idx] = True
    return mask.reshape(x.shape)


@register_compressor
class TopKCompressor(Compressor):
    """Keep the top ``fraction`` of entries by magnitude.

    Parameters
    ----------
    fraction:
        Fraction of entries kept, in (0, 1].
    """

    name = "topk"
    allreduce_compatible = False

    def __init__(self, fraction: float):
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)

    def _k(self, size: int) -> int:
        return max(1, int(round(self.fraction * size)))

    def compress(self, x: np.ndarray) -> CompressedMessage:
        x = np.asarray(x)
        k = self._k(x.size)
        flat = x.reshape(-1)
        idx = np.argpartition(np.abs(flat), flat.size - k)[-k:] if k < flat.size else np.arange(flat.size)
        idx = np.sort(idx).astype(np.int32)
        values = flat[idx]
        return CompressedMessage(
            payloads={"values": values, "indices": idx},
            shape=tuple(x.shape),
            scheme=self.name,
            wire_bytes=k * (BYTES_FP16 + BYTES_INT32),
            meta={"k": k},
        )

    def decompress(self, msg: CompressedMessage) -> np.ndarray:
        out = np.zeros(int(np.prod(msg.shape)), dtype=msg.payloads["values"].dtype)
        out[msg.payloads["indices"]] = msg.payloads["values"]
        return out.reshape(msg.shape)

    def compressed_bytes(self, shape: tuple[int, ...]) -> int:
        k = self._k(int(np.prod(shape)))
        return k * (BYTES_FP16 + BYTES_INT32)

    def apply(self, x: Tensor, site: str = "default") -> Tensor:
        mask = topk_mask(x.data, self._k(x.data.size))
        out_data = x.data * mask

        def backward(g):
            return (g * mask,)

        return Tensor._make(out_data, (x,), backward)

    def __repr__(self) -> str:
        return f"TopKCompressor(fraction={self.fraction:.4f})"
