"""Compression placement policy: *which* layers get compressed (§4.5).

The paper's default is "compress the last 12 layers of the 24-layer model";
§4.5 varies both the number of compressed layers (Fig. 4a) and the location
of a fixed-size compressed window (Fig. 4b). A policy is just a set of layer
indices plus helpers for these sweeps.

Semantics: a layer in the policy compresses its *incoming* activation —
its internal tensor-parallel all-reduces and, when it is the first layer of
a pipeline stage, the stage-boundary message feeding it. This reproduces
Table 9: with the last-12-of-24 policy and PP=4, the boundary after layer 5
feeds (uncompressed) layer 6, while the boundaries after layers 11 and 17
feed compressed layers 12 and 18.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CompressionPolicy"]


@dataclass(frozen=True)
class CompressionPolicy:
    """Set of transformer-layer indices whose output activations are compressed.

    Attributes
    ----------
    num_layers:
        Total number of transformer layers in the model.
    layers:
        Indices (0-based) of the compressed layers.
    """

    num_layers: int
    layers: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self):
        if self.num_layers <= 0:
            raise ValueError("num_layers must be positive")
        non_int = [i for i in self.layers if not isinstance(i, (int, np.integer))]
        if non_int:
            # A float index like 2.5 would never equal a layer and the policy
            # would silently compress nothing at that "layer".
            raise ValueError(f"layer indices must be integers, got {sorted(map(repr, non_int))}")
        bad = [i for i in self.layers if not 0 <= i < self.num_layers]
        if bad:
            raise ValueError(f"layer indices out of range [0, {self.num_layers}): {sorted(bad)}")
        object.__setattr__(self, "layers", frozenset(int(i) for i in self.layers))

    # ------------------------------------------------------------------
    @staticmethod
    def none(num_layers: int) -> "CompressionPolicy":
        """Compress nothing (the w/o baseline)."""
        return CompressionPolicy(num_layers, frozenset())

    @staticmethod
    def all(num_layers: int) -> "CompressionPolicy":
        """Compress every layer."""
        return CompressionPolicy(num_layers, frozenset(range(num_layers)))

    @staticmethod
    def last_k(num_layers: int, k: int) -> "CompressionPolicy":
        """Compress the final ``k`` layers (the paper's default is k=12 of 24)."""
        k = max(0, min(k, num_layers))
        return CompressionPolicy(num_layers, frozenset(range(num_layers - k, num_layers)))

    @staticmethod
    def first_k(num_layers: int, k: int) -> "CompressionPolicy":
        """Compress the initial ``k`` layers (shown harmful in §4.5)."""
        k = max(0, min(k, num_layers))
        return CompressionPolicy(num_layers, frozenset(range(k)))

    @staticmethod
    def window(num_layers: int, start: int, count: int) -> "CompressionPolicy":
        """Compress ``count`` consecutive layers starting at ``start`` (Fig. 4b)."""
        end = min(start + count, num_layers)
        return CompressionPolicy(num_layers, frozenset(range(start, end)))

    @staticmethod
    def default(num_layers: int) -> "CompressionPolicy":
        """The paper's default: compress the last half of the layers."""
        return CompressionPolicy.last_k(num_layers, num_layers // 2)

    # ------------------------------------------------------------------
    def applies(self, layer: int) -> bool:
        """Whether ``layer`` compresses its incoming activation / TP traffic."""
        return layer in self.layers

    def boundary_compressed(self, last_layer_of_stage: int) -> bool:
        """Whether the pipeline boundary after ``last_layer_of_stage`` is compressed.

        The boundary message is the input of the next stage's first layer,
        so it is compressed iff that receiving layer is in the policy.
        """
        return self.applies(last_layer_of_stage + 1) if last_layer_of_stage + 1 < self.num_layers else False

    @property
    def num_compressed(self) -> int:
        return len(self.layers)

    def fraction(self) -> float:
        """Fraction of layers compressed."""
        return self.num_compressed / self.num_layers

    def __repr__(self) -> str:
        return (
            f"CompressionPolicy(num_layers={self.num_layers}, "
            f"layers={sorted(self.layers)})"
        )
