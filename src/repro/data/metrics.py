"""GLUE evaluation metrics, implemented from scratch.

Per the paper's table captions: F1 for QQP and MRPC, Matthews correlation
for CoLA, Spearman correlation for STS-B, accuracy elsewhere. All metrics
are reported ×100 by the experiment harness (matching the GLUE convention).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "f1_binary",
    "matthews_corrcoef",
    "spearman_corr",
    "pearson_corr",
    "METRICS",
]


def accuracy(preds: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches."""
    preds, labels = np.asarray(preds), np.asarray(labels)
    if preds.shape != labels.shape:
        raise ValueError(f"shape mismatch: {preds.shape} vs {labels.shape}")
    if preds.size == 0:
        raise ValueError("empty predictions")
    return float((preds == labels).mean())


def f1_binary(preds: np.ndarray, labels: np.ndarray, positive: int = 1) -> float:
    """F1 of the positive class (GLUE convention for QQP/MRPC)."""
    preds, labels = np.asarray(preds), np.asarray(labels)
    tp = int(((preds == positive) & (labels == positive)).sum())
    fp = int(((preds == positive) & (labels != positive)).sum())
    fn = int(((preds != positive) & (labels == positive)).sum())
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return float(2 * precision * recall / (precision + recall))


def matthews_corrcoef(preds: np.ndarray, labels: np.ndarray) -> float:
    """Matthews correlation coefficient for binary labels (CoLA metric).

    Returns 0 when a marginal is degenerate (all-one-class predictions) —
    the same convention sklearn uses, and visible in the paper's Table 5
    zeros for collapsed Top-K runs.
    """
    preds, labels = np.asarray(preds), np.asarray(labels)
    tp = float(((preds == 1) & (labels == 1)).sum())
    tn = float(((preds == 0) & (labels == 0)).sum())
    fp = float(((preds == 1) & (labels == 0)).sum())
    fn = float(((preds == 0) & (labels == 1)).sum())
    denom = np.sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
    if denom == 0:
        return 0.0
    return float((tp * tn - fp * fn) / denom)


def _rankdata(x: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean rank), 1-based."""
    x = np.asarray(x, dtype=np.float64)
    order = np.argsort(x, kind="mergesort")
    ranks = np.empty(len(x), dtype=np.float64)
    ranks[order] = np.arange(1, len(x) + 1)
    # average ties
    sorted_x = x[order]
    i = 0
    while i < len(x):
        j = i
        while j + 1 < len(x) and sorted_x[j + 1] == sorted_x[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = ranks[order[i : j + 1]].mean()
        i = j + 1
    return ranks


def pearson_corr(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation; 0 if either side is constant."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def spearman_corr(preds: np.ndarray, labels: np.ndarray) -> float:
    """Spearman rank correlation (STS-B metric)."""
    return pearson_corr(_rankdata(np.asarray(preds)), _rankdata(np.asarray(labels)))


METRICS = {
    "accuracy": accuracy,
    "f1": f1_binary,
    "matthews": matthews_corrcoef,
    "spearman": spearman_corr,
}
