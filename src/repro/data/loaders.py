"""Minibatching over materialized datasets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.tasks import GlueDataset

__all__ = ["Batch", "batch_iter"]


@dataclass(frozen=True)
class Batch:
    """One minibatch of encoded examples."""

    input_ids: np.ndarray
    attention_mask: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return len(self.input_ids)


def batch_iter(
    dataset: GlueDataset,
    batch_size: int,
    rng: np.random.Generator | None = None,
    drop_last: bool = False,
) -> Iterator[Batch]:
    """Iterate minibatches; shuffles when an RNG is provided."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    n = len(dataset)
    order = np.arange(n)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        if drop_last and len(idx) < batch_size:
            return
        yield Batch(
            dataset.input_ids[idx],
            dataset.attention_mask[idx],
            dataset.labels[idx],
        )
