"""Token vocabulary with BERT-style special tokens."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Vocab"]


@dataclass(frozen=True)
class Vocab:
    """Vocabulary layout: ``[PAD, CLS, SEP, MASK, UNK, content...]``.

    Content token ids run from :attr:`content_start` to ``size - 1``.
    """

    size: int = 128

    PAD: int = 0
    CLS: int = 1
    SEP: int = 2
    MASK: int = 3
    UNK: int = 4

    @property
    def content_start(self) -> int:
        return 5

    @property
    def num_content(self) -> int:
        return self.size - self.content_start

    def __post_init__(self):
        if self.size < 16:
            raise ValueError("vocabulary too small to hold specials + content")

    def is_special(self, token: int) -> bool:
        return token < self.content_start

    def content_range(self) -> range:
        return range(self.content_start, self.size)
