"""Synthetic MLM pre-training corpus (the Wikipedia/BooksCorpus substitute).

Documents are sequences of topic-coherent sentences from the same
:class:`TopicModel` that generates the downstream tasks, so masked-token
prediction forces the model to learn the topic co-occurrence structure the
tasks test — making pre-training genuinely transferable (Table 8).

Masking follows BERT: 15% of content positions are selected; of those,
80% become ``[MASK]``, 10% a random token, 10% unchanged. Labels are the
original ids at selected positions and ``ignore_index`` elsewhere.
"""

from __future__ import annotations

import numpy as np

from repro.data.loaders import Batch
from repro.data.topics import TopicModel
from repro.data.vocab import Vocab

__all__ = ["MLMCorpus", "mask_tokens"]

IGNORE_INDEX = -100


def mask_tokens(
    input_ids: np.ndarray,
    vocab: Vocab,
    rng: np.random.Generator,
    mask_prob: float = 0.15,
    ignore_index: int = IGNORE_INDEX,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply BERT-style masking; returns ``(masked_ids, labels)``."""
    if not 0.0 < mask_prob < 1.0:
        raise ValueError("mask_prob must be in (0, 1)")
    input_ids = np.asarray(input_ids)
    masked = input_ids.copy()
    labels = np.full_like(input_ids, ignore_index)

    maskable = input_ids >= vocab.content_start
    selected = maskable & (rng.random(input_ids.shape) < mask_prob)
    labels[selected] = input_ids[selected]

    roll = rng.random(input_ids.shape)
    to_mask = selected & (roll < 0.8)
    to_random = selected & (roll >= 0.8) & (roll < 0.9)
    masked[to_mask] = vocab.MASK
    if to_random.any():
        masked[to_random] = rng.integers(
            vocab.content_start, vocab.size, size=int(to_random.sum())
        )
    return masked, labels


class MLMCorpus:
    """Streaming generator of masked-LM batches."""

    def __init__(
        self,
        topics: TopicModel | None = None,
        seq_len: int = 16,
        seed: int = 0,
        mask_prob: float = 0.15,
        sentences_per_doc: int = 2,
    ):
        self.topics = topics if topics is not None else TopicModel()
        self.vocab = self.topics.vocab
        self.seq_len = seq_len
        self.mask_prob = mask_prob
        self.sentences_per_doc = sentences_per_doc
        self.rng = np.random.default_rng(seed)

    def _document(self) -> np.ndarray:
        """One document: [CLS] sent [SEP] sent [SEP] …, padded/truncated."""
        ids = np.full(self.seq_len, self.vocab.PAD, dtype=np.int64)
        ids[0] = self.vocab.CLS
        pos = 1
        topic = int(self.rng.integers(self.topics.num_topics))
        per_sent = max((self.seq_len - 1) // self.sentences_per_doc - 1, 2)
        for _ in range(self.sentences_per_doc):
            if pos + 2 > self.seq_len:
                break
            sent = self.topics.sample_sentence(topic, per_sent, self.rng)
            take = min(len(sent), self.seq_len - pos - 1)
            ids[pos : pos + take] = sent[:take]
            pos += take
            ids[pos] = self.vocab.SEP
            pos += 1
            # documents stay topically coherent but can drift to a neighbour
            if self.rng.random() < 0.3:
                topic = self.topics.related_topic(topic, self.rng)
        return ids

    def batch(self, batch_size: int) -> Batch:
        """Sample one fresh masked batch (labels carry the MLM targets)."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        docs = np.stack([self._document() for _ in range(batch_size)])
        masked, labels = mask_tokens(docs, self.vocab, self.rng, self.mask_prob)
        attention = (docs != self.vocab.PAD).astype(np.int64)
        return Batch(masked, attention, labels)
