"""Synthetic analogues of the eight GLUE tasks.

Each task mirrors its GLUE counterpart's *type* and *metric* (Table 5
caption): pair vs single-sentence, classification vs regression, and the
reported metric. Labels are functions of **lexical overlap** and **token
order** over the shared topic model — properties a small transformer can
learn via matching-attention heads, and properties that are *distributed
across positions and features*, which is what makes sparsifying activations
destructive (the paper's Fig. 2 / Table 5 finding):

======== ======================= ============ =========================================
 Task     Type                    Metric       Label rule
======== ======================= ============ =========================================
 MNLI     pair, 3-class           accuracy     ring-third difference of the two topics
                                               (mod 3); two eval splits (matched /
                                               mismatched purity)
 QQP      pair, 2-class           F1           both segments from the same ring half
 SST-2    single, 2-class         accuracy     sentiment = ring half of the topic
 MRPC     pair, 2-class (small)   F1           same-half rule at lower purity
 CoLA     single, 2-class         Matthews     alternating low/high token rule;
                                               violations are 1–2 local swaps
 QNLI     pair, 2-class           accuracy     same-half rule
 RTE      pair, 2-class (tiny)    accuracy     same-half rule at the lowest purity and
                                               smallest train set → hardest task
 STS-B    pair, regression        Spearman     5 × fraction of high-half tokens
======== ======================= ============ =========================================

The pair label is an XOR of two per-segment linear features (which ring
half each segment's topic lies in), so the decision is *distributed across
every content position and across embedding features* — destroying part of
the activation (sparsification) removes the evidence, while low-distortion
schemes (quantization, a learned AE) keep it. Small label noise keeps
ceilings below 100, echoing GLUE, and per-task purity/size echo GLUE's
difficulty ordering (CoLA and RTE are the fragile tasks, as in Table 5).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.data.metrics import METRICS
from repro.data.topics import TopicModel
from repro.data.vocab import Vocab

__all__ = ["TaskSpec", "GlueDataset", "GLUE_TASKS", "make_task", "glue_score"]


@dataclass(frozen=True)
class TaskSpec:
    """Static description of one synthetic GLUE task."""

    name: str
    pair: bool
    num_classes: int  # 1 => regression
    metric: str
    train_size: int
    eval_size: int
    sentence_len: int = 6
    purity: float = 0.95
    label_noise: float = 0.03
    num_topics: int = 8
    epochs: int = 8  # recommended from-scratch budget at batch size 32
    finetune_epochs: int = 4  # recommended budget from a pre-trained backbone
    eval_splits: tuple[str, ...] = ("eval",)

    @property
    def regression(self) -> bool:
        return self.num_classes == 1


@dataclass
class GlueDataset:
    """Materialized examples for one split."""

    input_ids: np.ndarray  # (N, seq) int64
    attention_mask: np.ndarray  # (N, seq) int64
    labels: np.ndarray  # (N,) int64 or float32
    spec: TaskSpec

    def __len__(self) -> int:
        return len(self.input_ids)

    @property
    def seq_len(self) -> int:
        return self.input_ids.shape[1]


GLUE_TASKS: dict[str, TaskSpec] = {
    "MNLI": TaskSpec("MNLI", pair=True, num_classes=3, metric="accuracy",
                     train_size=1024, eval_size=192, num_topics=9, epochs=10,
                     finetune_epochs=4, eval_splits=("m", "mm")),
    "QQP": TaskSpec("QQP", pair=True, num_classes=2, metric="f1",
                    train_size=1024, eval_size=192, epochs=8, finetune_epochs=3),
    "SST-2": TaskSpec("SST-2", pair=False, num_classes=2, metric="accuracy",
                      train_size=640, eval_size=192, purity=0.9, epochs=8,
                      finetune_epochs=3),
    "MRPC": TaskSpec("MRPC", pair=True, num_classes=2, metric="f1",
                     train_size=640, eval_size=128, purity=0.88, label_noise=0.05,
                     epochs=12, finetune_epochs=6),
    "CoLA": TaskSpec("CoLA", pair=False, num_classes=2, metric="matthews",
                     train_size=768, eval_size=128, label_noise=0.02, epochs=12,
                     finetune_epochs=12),
    "QNLI": TaskSpec("QNLI", pair=True, num_classes=2, metric="accuracy",
                     train_size=896, eval_size=192, purity=0.92, epochs=9,
                     finetune_epochs=3),
    "RTE": TaskSpec("RTE", pair=True, num_classes=2, metric="accuracy",
                    train_size=448, eval_size=96, purity=0.62, label_noise=0.06,
                    epochs=15, finetune_epochs=8),
    "STS-B": TaskSpec("STS-B", pair=True, num_classes=1, metric="spearman",
                      train_size=768, eval_size=128, epochs=8, finetune_epochs=3),
}


def _encode_single(sentence: np.ndarray, seq_len: int, vocab: Vocab) -> np.ndarray:
    ids = np.full(seq_len, vocab.PAD, dtype=np.int64)
    body = sentence[: seq_len - 2]
    ids[0] = vocab.CLS
    ids[1 : 1 + len(body)] = body
    ids[1 + len(body)] = vocab.SEP
    return ids


def _encode_pair(s1: np.ndarray, s2: np.ndarray, seq_len: int, vocab: Vocab) -> np.ndarray:
    ids = np.full(seq_len, vocab.PAD, dtype=np.int64)
    budget = seq_len - 3
    l1 = min(len(s1), budget // 2)
    l2 = min(len(s2), budget - l1)
    ids[0] = vocab.CLS
    ids[1 : 1 + l1] = s1[:l1]
    ids[1 + l1] = vocab.SEP
    ids[2 + l1 : 2 + l1 + l2] = s2[:l2]
    ids[2 + l1 + l2] = vocab.SEP
    return ids


class _TaskGenerator:
    """Sampler for one task over a shared topic model."""

    def __init__(self, spec: TaskSpec, topics: TopicModel, seq_len: int):
        self.spec = spec
        self.topics = topics
        self.vocab = topics.vocab
        self.seq_len = seq_len

    # ------------------------------------------------------------------
    def generate(self, n: int, rng: np.random.Generator, purity: float | None = None):
        purity = purity if purity is not None else self.spec.purity
        model = TopicModel(self.vocab, self.spec.num_topics, purity)
        rows, labels = [], []
        for _ in range(n):
            ids, label = self._example(model, rng)
            rows.append(ids)
            labels.append(label)
        input_ids = np.stack(rows)
        attention_mask = (input_ids != self.vocab.PAD).astype(np.int64)
        label_arr = (
            np.asarray(labels, dtype=np.float32)
            if self.spec.regression
            else np.asarray(labels, dtype=np.int64)
        )
        return GlueDataset(input_ids, attention_mask, label_arr, self.spec)

    # ------------------------------------------------------------------
    def _noisy(self, label: int, rng: np.random.Generator) -> int:
        """Flip a binary/ternary label with the task's noise probability."""
        if rng.random() < self.spec.label_noise:
            others = [c for c in range(self.spec.num_classes) if c != label]
            return int(rng.choice(others))
        return label

    def _example(self, model: TopicModel, rng: np.random.Generator):
        name = self.spec.name
        L = self.spec.sentence_len
        half = model.num_topics // 2
        if name == "SST-2":
            topic = int(rng.integers(model.num_topics))
            s = model.sample_sentence(topic, L * 2, rng)
            label = self._noisy(int(topic < half), rng)
            return _encode_single(s, self.seq_len, self.vocab), label
        if name == "CoLA":
            return self._cola_example(rng)
        if name == "STS-B":
            # Similarity = 5 × fraction of high-half content tokens in the pair.
            content = np.array(list(self.vocab.content_range()))
            mid = len(content) // 2
            low_pool, high_pool = content[:mid], content[mid:]
            alpha = float(rng.uniform(0, 1))
            take_high = rng.random(2 * L) < alpha
            tokens = np.where(
                take_high,
                rng.choice(high_pool, size=2 * L),
                rng.choice(low_pool, size=2 * L),
            ).astype(np.int64)
            label = 5.0 * float(take_high.mean())
            return _encode_pair(tokens[:L], tokens[L:], self.seq_len, self.vocab), label
        if name == "MNLI":
            # Label = ring-third difference (mod 3) of the two topics.
            third = model.num_topics // 3
            t1 = int(rng.integers(model.num_topics))
            t2 = int(rng.integers(model.num_topics))
            s1 = model.sample_sentence(t1, L, rng)
            s2 = model.sample_sentence(t2, L, rng)
            label = (t2 // third - t1 // third) % 3
            return _encode_pair(s1, s2, self.seq_len, self.vocab), self._noisy(label, rng)
        # Binary pair tasks (QQP / MRPC / QNLI / RTE): positive iff the two
        # segments' topics fall in the same ring half. Task difficulty comes
        # from the spec's purity (noisier topics) and train size.
        t1 = int(rng.integers(model.num_topics))
        t2 = int(rng.integers(model.num_topics))
        s1 = model.sample_sentence(t1, L, rng)
        s2 = model.sample_sentence(t2, L, rng)
        label = int((t1 < half) == (t2 < half))
        return _encode_pair(s1, s2, self.seq_len, self.vocab), self._noisy(label, rng)

    def _cola_example(self, rng: np.random.Generator):
        """Acceptability: tokens must alternate low-half / high-half ids.

        The rule is absolute (even content positions carry low-half tokens,
        odd positions high-half); unacceptable sentences replace one or two
        tokens with wrong-half tokens. The decision therefore requires
        fine-grained position×token information at *specific* positions —
        exactly the kind of distributed, low-magnitude evidence that
        sparsifying activations destroys first, which is why CoLA is the
        paper's most compression-sensitive task.
        """
        vocab = self.vocab
        content = np.array(list(vocab.content_range()))
        half = len(content) // 2
        low, high = content[:half], content[half:]
        L = self.spec.sentence_len * 2
        n_low = (L + 1) // 2
        seq = np.empty(L, dtype=np.int64)
        seq[0::2] = rng.choice(low, size=n_low)
        seq[1::2] = rng.choice(high, size=L - n_low)
        label = int(rng.integers(2))
        if label == 0:  # corrupt: put wrong-half tokens at 1-2 positions
            for j in rng.choice(L, size=int(rng.integers(1, 3)), replace=False):
                seq[j] = rng.choice(high if j % 2 == 0 else low)
        return _encode_single(seq, self.seq_len, vocab), self._noisy(label, rng)


def make_task(
    name: str,
    topics: TopicModel | None = None,
    seq_len: int = 16,
    seed: int = 0,
    train_size: int | None = None,
) -> tuple[GlueDataset, dict[str, GlueDataset]]:
    """Materialize the train split and eval split(s) of a task.

    MNLI gets two eval splits: *matched* at the train purity and
    *mismatched* at reduced purity (a mild domain shift), echoing GLUE.
    """
    if name not in GLUE_TASKS:
        raise KeyError(f"unknown task {name!r}; valid: {sorted(GLUE_TASKS)}")
    spec = GLUE_TASKS[name]
    topics = topics if topics is not None else TopicModel()
    gen = _TaskGenerator(spec, topics, seq_len)
    # crc32, not hash(): builtin string hashing is salted per process
    # (PYTHONHASHSEED), which would give every run a different dataset.
    rng = np.random.default_rng(seed + zlib.crc32(name.encode()) % 100000)
    n_train = train_size if train_size is not None else spec.train_size
    train = gen.generate(n_train, rng)
    evals: dict[str, GlueDataset] = {}
    for split in spec.eval_splits:
        purity = spec.purity * 0.9 if split == "mm" else None
        evals[split] = gen.generate(spec.eval_size, rng, purity=purity)
    return train, evals


def glue_score(results: dict[str, float]) -> float:
    """Average of per-task scores (the paper's ``Avg.`` column).

    ``results`` maps column names (e.g. ``"MNLI-m"``, ``"CoLA"``) to scores
    already on the ×100 scale.
    """
    if not results:
        raise ValueError("no results to average")
    return float(np.mean(list(results.values())))
