"""Latent topic model driving all synthetic text generation.

Content tokens are partitioned into ``num_topics`` equal groups; a sentence
on topic ``t`` samples ``purity`` of its tokens from topic ``t`` and the
rest uniformly from all content tokens. Topics are arranged on a ring so
"related" topics (distance 1) exist for the MNLI-style *neutral* class.
"""

from __future__ import annotations

import numpy as np

from repro.data.vocab import Vocab

__all__ = ["TopicModel"]


class TopicModel:
    """Shared generative structure for GLUE analogues and the MLM corpus.

    Parameters
    ----------
    vocab:
        The token vocabulary.
    num_topics:
        Number of latent topics (ring-structured).
    purity:
        Fraction of a sentence's tokens drawn from its topic.
    """

    def __init__(self, vocab: Vocab | None = None, num_topics: int = 8, purity: float = 0.8):
        self.vocab = vocab if vocab is not None else Vocab()
        if num_topics < 3:
            raise ValueError("need at least 3 topics for the ring structure")
        if not 0.0 < purity <= 1.0:
            raise ValueError("purity must be in (0, 1]")
        self.num_topics = num_topics
        self.purity = purity
        content = np.array(list(self.vocab.content_range()))
        self.topic_tokens = np.array_split(content, num_topics)

    # ------------------------------------------------------------------
    def sample_sentence(self, topic: int, length: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``length`` content tokens for ``topic``."""
        topic = topic % self.num_topics
        own = self.topic_tokens[topic]
        n_topic = int(round(self.purity * length))
        tokens = np.concatenate([
            rng.choice(own, size=n_topic),
            rng.choice(np.array(list(self.vocab.content_range())), size=length - n_topic),
        ])
        rng.shuffle(tokens)
        return tokens.astype(np.int64)

    def ring_distance(self, a: int, b: int) -> int:
        """Distance between topics on the ring."""
        d = abs(a - b) % self.num_topics
        return min(d, self.num_topics - d)

    def related_topic(self, topic: int, rng: np.random.Generator) -> int:
        """A ring-neighbour of ``topic`` (distance exactly 1)."""
        return (topic + rng.choice([-1, 1])) % self.num_topics

    def far_topic(self, topic: int, rng: np.random.Generator) -> int:
        """A topic at ring distance ≥ 2 from ``topic``."""
        candidates = [t for t in range(self.num_topics) if self.ring_distance(t, topic) >= 2]
        return int(rng.choice(candidates))

    def topic_of_token(self, token: int) -> int | None:
        """Topic owning ``token`` (None for specials)."""
        if self.vocab.is_special(token):
            return None
        for t, toks in enumerate(self.topic_tokens):
            if token in toks:
                return t
        return None
