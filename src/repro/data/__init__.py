"""Synthetic data substrate replacing GLUE and Wikipedia/BooksCorpus.

The eight GLUE tasks are replaced by synthetic analogues with matched task
*types* and *metrics* (see ``tasks.py``); pre-training uses a synthetic
topic-coherent corpus over the same vocabulary so that MLM pre-training
genuinely transfers to the downstream tasks (the Table 8 workflow).

All generation is driven by a shared latent **topic model**
(:class:`TopicModel`): content tokens are grouped into topics, sentences
sample mostly from one topic plus noise, and task labels are functions of
topic structure. This gives the tasks learnable signal distributed across
many token positions — the property that makes sparsification-based
activation compression destructive, as in the paper.
"""

from repro.data.vocab import Vocab
from repro.data.topics import TopicModel
from repro.data.tasks import (
    TaskSpec,
    GlueDataset,
    GLUE_TASKS,
    make_task,
    glue_score,
)
from repro.data.loaders import Batch, batch_iter
from repro.data.metrics import (
    accuracy,
    f1_binary,
    matthews_corrcoef,
    spearman_corr,
    pearson_corr,
    METRICS,
)
from repro.data.pretraining import MLMCorpus, mask_tokens

__all__ = [
    "Vocab",
    "TopicModel",
    "TaskSpec",
    "GlueDataset",
    "GLUE_TASKS",
    "make_task",
    "glue_score",
    "Batch",
    "batch_iter",
    "accuracy",
    "f1_binary",
    "matthews_corrcoef",
    "spearman_corr",
    "pearson_corr",
    "METRICS",
    "MLMCorpus",
    "mask_tokens",
]
