"""Schema of ``BENCH_<sha>.json`` and a dependency-free validator.

The schema is written as a (subset of) JSON Schema so it doubles as
documentation and stays loadable by external tooling, but validation is
performed by the small interpreter below — the bench gate must run in CI
and on contributor machines without optional dependencies.

Supported keywords: ``type``, ``required``, ``properties``,
``additionalProperties`` (as a sub-schema or ``False``), ``items``,
``enum``, ``minimum``.  That subset is exactly what the bench document
needs.
"""

from __future__ import annotations

__all__ = ["SCHEMA_VERSION", "BENCH_SCHEMA", "BenchSchemaError", "validate_bench",
           "schema_errors"]

SCHEMA_VERSION = 1

_NUMBER = {"type": "number"}
_WALL = {
    "type": "object",
    "required": ["median", "iqr", "rounds"],
    "properties": {
        "median": {"type": "number", "minimum": 0},
        "iqr": {"type": "number", "minimum": 0},
        "rounds": {"type": "integer", "minimum": 1},
        "times": {"type": "array", "items": {"type": "number", "minimum": 0}},
    },
}

BENCH_SCHEMA = {
    "type": "object",
    "required": ["schema_version", "git_sha", "quick", "machine_calibration_ms",
                 "suite", "cases"],
    "additionalProperties": False,
    "properties": {
        "schema_version": {"type": "integer", "enum": [SCHEMA_VERSION]},
        "git_sha": {"type": "string"},
        "created_unix": {"type": "number"},
        "quick": {"type": "boolean"},
        "suite": {"type": "string"},
        "machine_calibration_ms": {"type": "number", "minimum": 0},
        "cases": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["id", "kind", "params", "wall_ms", "deterministic"],
                "properties": {
                    "id": {"type": "string"},
                    "kind": {"type": "string",
                             "enum": ["mp_step", "finetune", "sim",
                                      "backend_step", "degraded"]},
                    "params": {
                        "type": "object",
                        "required": ["scheme", "tp", "pp"],
                        "properties": {
                            "scheme": {"type": "string"},
                            "tp": {"type": "integer", "minimum": 1},
                            "pp": {"type": "integer", "minimum": 1},
                            "dp": {"type": "integer", "minimum": 1},
                            "sp": {"type": "integer", "minimum": 1},
                            "backend": {"type": "string"},
                            "schedule": {"type": "string",
                                         "enum": ["gpipe", "1f1b"]},
                            "microbatches": {"type": "integer", "minimum": 1},
                            "fault_plan": {"type": "string"},
                        },
                    },
                    "wall_ms": _WALL,
                    # Optional per-case telemetry summary (pooled window
                    # stats from the live side channel when REPRO_TELEMETRY
                    # was armed for the run). Shape owned by
                    # repro.obs.telemetry; opaque to the bench gate.
                    "telemetry": {"type": "object"},
                    # Flat metric name -> number, except comm_bytes which
                    # is a string-keyed byte map (from CommTracker.summary).
                    "deterministic": {
                        "type": "object",
                        "properties": {
                            "comm_bytes": {
                                "type": "object",
                                "additionalProperties": {"type": "integer",
                                                         "minimum": 0},
                            },
                        },
                        "additionalProperties": _NUMBER,
                    },
                },
            },
        },
    },
}


class BenchSchemaError(ValueError):
    """A bench document violated :data:`BENCH_SCHEMA`."""


def _type_ok(value, expected: str) -> bool:
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    raise ValueError(f"schema bug: unknown type {expected!r}")


def _validate(value, schema: dict, path: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None and not _type_ok(value, expected):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                _validate(sub, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                _validate(sub, extra, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}.{key}: unexpected key")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{i}]", errors)


def schema_errors(value, schema: dict, *, path: str = "$") -> list[str]:
    """Validate ``value`` against a schema in the supported subset.

    Public, generic entry point for other schema owners (the telemetry
    run registry reuses it) — returns the error list instead of raising
    so callers can wrap it in their own exception type.
    """
    errors: list[str] = []
    _validate(value, schema, path, errors)
    return errors


def validate_bench(doc: dict) -> dict:
    """Validate a bench document; returns it, raises :class:`BenchSchemaError`.

    Beyond the structural schema, case ids must be unique — the compare
    gate matches baseline and candidate by id.
    """
    errors: list[str] = []
    _validate(doc, BENCH_SCHEMA, "$", errors)
    if not errors:
        seen: set[str] = set()
        for case in doc["cases"]:
            cid = case["id"]
            if cid in seen:
                errors.append(f"$.cases: duplicate case id {cid!r}")
            seen.add(cid)
    if errors:
        raise BenchSchemaError(
            "invalid bench document:\n  " + "\n  ".join(errors)
        )
    return doc
