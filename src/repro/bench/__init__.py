"""Continuous perf-regression harness: pinned suite, tracked baselines.

``python -m repro.bench run`` executes the pinned benchmark suite
(model-parallel train steps over TP/PP layouts × compression schemes, a
recorded fine-tune, and the simulator sweep) with warmup and repeats,
collecting median/IQR wall time plus deterministic profiler rollups
(FLOPs, comm bytes from ``CommTracker.summary()``, allocation high-water
marks) into a schema-validated ``BENCH_<git-sha>.json``.

``python -m repro.bench compare`` gates a candidate file against the
committed ``benchmarks/baseline.json`` — deterministic metrics must
match, wall times may drift only within a machine-normalized tolerance —
and exits nonzero on regression, which is what CI runs on every PR.

``python -m repro.bench report`` renders a run as markdown or CSV.
"""

from repro.bench.compare import CompareResult, compare_docs, load_doc
from repro.bench.run import run_suite
from repro.bench.schema import validate_bench
from repro.bench.suite import BenchCase, default_suite
from repro.bench.timing import TimingResult, timed

__all__ = [
    "BenchCase",
    "default_suite",
    "TimingResult",
    "timed",
    "run_suite",
    "validate_bench",
    "compare_docs",
    "CompareResult",
    "load_doc",
]
