"""Render a bench document as markdown or CSV."""

from __future__ import annotations

import csv
import io

__all__ = ["render_markdown", "render_csv"]


def _case_rows(doc: dict) -> list[dict]:
    rows = []
    for case in doc["cases"]:
        det = case.get("deterministic", {})
        comm = det.get("comm_bytes", {})
        rows.append({
            "case": case["id"],
            "kind": case["kind"],
            "scheme": case["params"]["scheme"],
            "tp": case["params"]["tp"],
            "pp": case["params"]["pp"],
            "wall_median_ms": case["wall_ms"]["median"],
            "wall_iqr_ms": case["wall_ms"]["iqr"],
            "rounds": case["wall_ms"]["rounds"],
            "flops": det.get("flops", ""),
            "alloc_bytes": det.get("alloc_bytes", ""),
            "peak_alloc_bytes": det.get("peak_alloc_bytes", ""),
            "comm_bytes": sum(comm.values()) if comm else "",
            "sim_total_ms": det.get("total_ms", ""),
        })
    return rows


def render_markdown(doc: dict) -> str:
    """Markdown summary: header metadata plus one table row per case."""
    rows = _case_rows(doc)
    lines = [
        f"# Bench run `{doc['git_sha']}`",
        "",
        f"- suite: `{doc['suite']}`  ·  quick: `{doc['quick']}`",
        f"- machine calibration: {doc['machine_calibration_ms']:.3f} ms",
        "",
    ]
    columns = list(rows[0].keys()) if rows else []
    if rows:
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "|".join(" --- " for _ in columns) + "|")
        for row in rows:
            cells = [
                f"{v:.3f}" if isinstance(v, float) else str(v)
                for v in (row[c] for c in columns)
            ]
            lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def render_csv(doc: dict) -> str:
    """Flat CSV, one row per case (the dashboard-ingestible form)."""
    rows = _case_rows(doc)
    buf = io.StringIO()
    if rows:
        writer = csv.DictWriter(buf, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return buf.getvalue()
