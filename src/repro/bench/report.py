"""Render a bench document as markdown or CSV.

Markdown rows are grouped by topology axes (dp, tp, pp, sp): one table
per grid cell, in axis order, so the DP/SP cases read as their own
sections instead of interleaving with the TP×PP grid.
"""

from __future__ import annotations

import csv
import io

__all__ = ["render_markdown", "render_csv"]


def _topology_label(params: dict) -> str:
    dp = params.get("dp", 1)
    sp = params.get("sp", 1)
    label = f"tp{params['tp']}·pp{params['pp']}"
    if dp > 1:
        label = f"dp{dp}·{label}"
    if sp > 1:
        label = f"{label}·sp{sp}"
    return label


def _case_rows(doc: dict) -> list[dict]:
    rows = []
    for case in doc["cases"]:
        det = case.get("deterministic", {})
        comm = det.get("comm_bytes", {})
        params = case["params"]
        rows.append({
            "case": case["id"],
            "kind": case["kind"],
            "scheme": params["scheme"],
            "dp": params.get("dp", 1),
            "tp": params["tp"],
            "pp": params["pp"],
            "sp": params.get("sp", 1),
            "wall_median_ms": case["wall_ms"]["median"],
            "wall_iqr_ms": case["wall_ms"]["iqr"],
            "rounds": case["wall_ms"]["rounds"],
            "flops": det.get("flops", ""),
            "alloc_bytes": det.get("alloc_bytes", ""),
            "peak_alloc_bytes": det.get("peak_alloc_bytes", ""),
            "comm_bytes": sum(comm.values()) if comm else "",
            "sim_total_ms": det.get("total_ms", ""),
        })
    return rows


def _render_table(rows: list[dict], columns: list[str]) -> list[str]:
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join(" --- " for _ in columns) + "|"]
    for row in rows:
        cells = [
            f"{v:.3f}" if isinstance(v, float) else str(v)
            for v in (row[c] for c in columns)
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return lines


def render_markdown(doc: dict) -> str:
    """Markdown summary: header metadata plus one table per topology."""
    rows = _case_rows(doc)
    lines = [
        f"# Bench run `{doc['git_sha']}`",
        "",
        f"- suite: `{doc['suite']}`  ·  quick: `{doc['quick']}`",
        f"- machine calibration: {doc['machine_calibration_ms']:.3f} ms",
        "",
    ]
    if not rows:
        return "\n".join(lines) + "\n"
    columns = [c for c in rows[0] if c not in ("dp", "tp", "pp", "sp")]
    # Group by topology axes, preserving the suite's axis ordering.
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        groups.setdefault((row["dp"], row["tp"], row["pp"], row["sp"]),
                          []).append(row)
    for key in sorted(groups):
        dp, tp, pp, sp = key
        label = _topology_label({"dp": dp, "tp": tp, "pp": pp, "sp": sp})
        lines.append(f"## Topology {label}")
        lines.append("")
        lines.extend(_render_table(groups[key], columns))
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def render_csv(doc: dict) -> str:
    """Flat CSV, one row per case (the dashboard-ingestible form)."""
    rows = _case_rows(doc)
    buf = io.StringIO()
    if rows:
        writer = csv.DictWriter(buf, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return buf.getvalue()
