"""Gate a candidate bench run against the committed baseline.

Two classes of metric, two gates:

- **Deterministic** metrics (FLOPs, op/alloc counts, comm bytes, the
  simulator breakdown) must match the baseline to within a hair
  (relative 1e-9) — they are identical run to run by construction, so
  *any* drift means the workload itself changed and the baseline must be
  refreshed deliberately (see EXPERIMENTS.md).
- **Wall times** are measurements: both sides are first normalized by
  their own file's ``machine_calibration_ms`` (how fast that machine
  runs a pinned NumPy workload), then the normalized ratio is gated at
  ``wall_tol`` (default 1.75×, i.e. a true 2× regression always trips).
  Cases whose absolute medians are below ``wall_floor_ms`` on both sides
  are too noise-dominated to gate and are reported as skipped.

A case present in the baseline but missing from the candidate fails the
gate (a silently dropped benchmark is a regression of the harness
itself); new candidate-only cases are reported but pass.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["MetricCheck", "CompareResult", "compare_docs", "load_doc",
           "DEFAULT_WALL_TOL", "DEFAULT_WALL_FLOOR_MS"]

DEFAULT_WALL_TOL = 1.75
DEFAULT_WALL_FLOOR_MS = 2.0
_DET_RTOL = 1e-9


def load_doc(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


@dataclass(frozen=True)
class MetricCheck:
    """Verdict on one metric of one case."""

    case_id: str
    metric: str
    baseline: float | None
    candidate: float | None
    ratio: float | None  # candidate/baseline (normalized for wall times)
    status: str  # "ok" | "regression" | "skipped" | "missing" | "new"
    note: str = ""


@dataclass
class CompareResult:
    checks: list[MetricCheck] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricCheck]:
        return [c for c in self.checks if c.status in ("regression", "missing")]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_rows(self) -> list[dict]:
        return [
            {"case": c.case_id, "metric": c.metric,
             "baseline": "-" if c.baseline is None else c.baseline,
             "candidate": "-" if c.candidate is None else c.candidate,
             "ratio": "-" if c.ratio is None else f"{c.ratio:.3f}",
             "status": c.status + (f" ({c.note})" if c.note else "")}
            for c in self.checks
        ]


def _close(a: float, b: float, rtol: float = _DET_RTOL) -> bool:
    return abs(a - b) <= rtol * max(abs(a), abs(b), 1.0)


def _det_values(case: dict) -> dict[str, float]:
    """Flatten a case's deterministic block to metric-name -> number."""
    out: dict[str, float] = {}
    for name, value in case.get("deterministic", {}).items():
        if isinstance(value, dict):
            for key, sub in value.items():
                out[f"{name}.{key}"] = float(sub)
        else:
            out[name] = float(value)
    return out


def compare_docs(
    candidate: dict,
    baseline: dict,
    wall_tol: float = DEFAULT_WALL_TOL,
    wall_floor_ms: float = DEFAULT_WALL_FLOOR_MS,
) -> CompareResult:
    """Compare two validated bench documents case by case.

    Both documents must come from the *same* suite: gating a degraded
    (fault-injected) run against the healthy baseline would either flag
    recovery cost as a regression or, worse, accept it as the new
    normal.
    """
    if wall_tol <= 1.0:
        raise ValueError(f"wall_tol must be > 1, got {wall_tol}")
    cand_suite = candidate.get("suite", "default")
    base_suite = baseline.get("suite", "default")
    if cand_suite != base_suite:
        raise ValueError(
            f"refusing to compare suite {cand_suite!r} against suite "
            f"{base_suite!r}: degraded (faulted) runs must only be gated "
            "against other degraded runs")
    result = CompareResult()
    cand_cases = {c["id"]: c for c in candidate["cases"]}
    base_cases = {c["id"]: c for c in baseline["cases"]}
    cand_cal = candidate["machine_calibration_ms"]
    base_cal = baseline["machine_calibration_ms"]
    if cand_cal <= 0 or base_cal <= 0:
        raise ValueError("machine_calibration_ms must be positive in both files")

    for cid, base in base_cases.items():
        cand = cand_cases.get(cid)
        if cand is None:
            result.checks.append(MetricCheck(
                cid, "-", None, None, None, "missing",
                "case dropped from candidate run"))
            continue

        base_wall = base["wall_ms"]["median"]
        cand_wall = cand["wall_ms"]["median"]
        if base_wall < wall_floor_ms and cand_wall < wall_floor_ms:
            result.checks.append(MetricCheck(
                cid, "wall_ms", base_wall, cand_wall, None, "skipped",
                f"both medians < {wall_floor_ms} ms floor"))
        else:
            ratio = (cand_wall / cand_cal) / (base_wall / base_cal)
            status = "regression" if ratio > wall_tol else "ok"
            note = f"normalized > {wall_tol}x" if status == "regression" else ""
            result.checks.append(MetricCheck(
                cid, "wall_ms", base_wall, cand_wall, ratio, status, note))

        base_det = _det_values(base)
        cand_det = _det_values(cand)
        for metric in sorted(set(base_det) | set(cand_det)):
            b, c = base_det.get(metric), cand_det.get(metric)
            if b is None:
                result.checks.append(MetricCheck(
                    cid, metric, None, c, None, "new", "metric not in baseline"))
            elif c is None:
                result.checks.append(MetricCheck(
                    cid, metric, b, None, None, "missing",
                    "deterministic metric dropped"))
            elif _close(b, c):
                result.checks.append(MetricCheck(cid, metric, b, c,
                                                 c / b if b else None, "ok"))
            else:
                result.checks.append(MetricCheck(
                    cid, metric, b, c, c / b if b else None, "regression",
                    "deterministic metric drifted — refresh the baseline "
                    "deliberately if intended"))

    for cid in cand_cases:
        if cid not in base_cases:
            result.checks.append(MetricCheck(
                cid, "-", None, None, None, "new", "case not in baseline"))
    return result
