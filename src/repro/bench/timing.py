"""Shared wall-clock timing helper: warmup + repeats, median/IQR.

One-shot timing (the old ``benchmarks/conftest.py`` ``run_once``) is
noise-dominated: the first call pays allocator warmup, cache population
and import side effects.  :func:`timed` runs ``warmup`` discarded calls
followed by ``rounds`` measured ones and reports the median with the
interquartile range as the spread estimate — robust against the
occasional scheduler hiccup that poisons a mean.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["TimingResult", "timed", "machine_calibration_ms"]


@dataclass
class TimingResult:
    """Wall times of one benchmarked callable."""

    times_ms: list[float]
    result: object  # return value of the last measured call

    @property
    def rounds(self) -> int:
        return len(self.times_ms)

    @property
    def median_ms(self) -> float:
        return float(np.median(self.times_ms))

    @property
    def iqr_ms(self) -> float:
        lo, hi = np.percentile(self.times_ms, [25.0, 75.0])
        return float(hi - lo)

    def as_dict(self) -> dict:
        return {
            "median": self.median_ms,
            "iqr": self.iqr_ms,
            "rounds": self.rounds,
            "times": list(self.times_ms),
        }


def timed(
    fn: Callable,
    *args,
    warmup: int = 1,
    rounds: int = 3,
    clock: Callable[[], float] = time.perf_counter,
    **kwargs,
) -> TimingResult:
    """Time ``fn(*args, **kwargs)``: ``warmup`` discarded + ``rounds`` kept."""
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn(*args, **kwargs)
    times_ms: list[float] = []
    result = None
    for _ in range(rounds):
        t0 = clock()
        result = fn(*args, **kwargs)
        times_ms.append((clock() - t0) * 1e3)
    return TimingResult(times_ms, result)


def machine_calibration_ms(rounds: int = 5) -> float:
    """Median time of a pinned NumPy workload, for cross-machine scaling.

    Wall times in a bench file are only comparable across machines after
    dividing by how fast the machine runs a fixed reference workload
    (GEMM + elementwise, the same mix the suite exercises).  ``compare``
    normalizes both sides by their own calibration before gating.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 256)).astype(np.float32)
    b = rng.standard_normal((256, 256)).astype(np.float32)

    def workload():
        out = a
        for _ in range(8):
            out = np.tanh(out @ b)
        return out

    return timed(workload, warmup=2, rounds=rounds).median_ms
