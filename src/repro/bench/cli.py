"""``python -m repro.bench`` — run, gate and report perf benchmarks.

Usage::

    python -m repro.bench run [--quick] [--out DIR] [--no-trace]
                              [--suite default|degraded] [--only GLOB]
    python -m repro.bench compare [CANDIDATE] [--baseline PATH]
                                  [--wall-tol 1.75] [--all]
    python -m repro.bench report [CANDIDATE] [--format md|csv] [--out PATH]

``run`` executes the pinned suite (see :mod:`repro.bench.suite`) and
writes ``BENCH_<git-sha>.json`` plus a merged profiled+simulated Chrome
trace.  ``compare`` gates a candidate against the committed baseline and
exits 1 on regression — CI's bench-smoke job runs exactly that.
``report`` renders a run as markdown (default) or CSV.

When CANDIDATE is omitted, the newest ``BENCH_*.json`` under the output
directory (default ``.``) is used.
"""

from __future__ import annotations

import argparse
import glob
import os
import sys

from repro.bench.compare import (
    DEFAULT_WALL_FLOOR_MS,
    DEFAULT_WALL_TOL,
    compare_docs,
    load_doc,
)
from repro.bench.report import render_csv, render_markdown
from repro.bench.run import run_suite
from repro.bench.schema import BenchSchemaError, validate_bench

__all__ = ["main"]

DEFAULT_BASELINE = os.path.join("benchmarks", "baseline.json")


def _newest_bench(directory: str) -> str | None:
    paths = glob.glob(os.path.join(directory, "BENCH_*.json"))
    paths = [p for p in paths if not p.endswith(".trace.json")]
    return max(paths, key=os.path.getmtime) if paths else None


def _resolve_candidate(arg: str | None, directory: str) -> str | None:
    if arg:
        return arg
    found = _newest_bench(directory)
    if found is None:
        print(f"error: no BENCH_*.json found under {directory!r}; "
              "run `python -m repro.bench run` first", file=sys.stderr)
    return found


def _load_validated(path: str) -> dict | None:
    try:
        return validate_bench(load_doc(path))
    except FileNotFoundError:
        print(f"error: file not found: {path}", file=sys.stderr)
    except (BenchSchemaError, ValueError) as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
    return None


def cmd_run(args: argparse.Namespace) -> int:
    from repro.bench.suite import degraded_suite

    def progress(case, result):
        wall = result["wall_ms"]
        print(f"  {case.id}: median {wall['median']:.2f} ms "
              f"(IQR {wall['iqr']:.2f}, n={wall['rounds']})")

    suite = degraded_suite() if args.suite == "degraded" else None
    try:
        doc, bench_path, trace_path = run_suite(
            quick=args.quick, suite=suite, out_dir=args.out,
            write_trace_artifact=not args.no_trace and args.suite == "default",
            progress=progress, suite_name=args.suite, only=args.only,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {bench_path} ({len(doc['cases'])} cases, "
          f"sha {doc['git_sha']}, quick={doc['quick']})")
    if trace_path:
        print(f"wrote {trace_path} (merged profiled+simulated Chrome trace)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table

    candidate_path = _resolve_candidate(args.candidate, args.dir)
    if candidate_path is None:
        return 2
    candidate = _load_validated(candidate_path)
    baseline = _load_validated(args.baseline)
    if candidate is None or baseline is None:
        return 2

    try:
        result = compare_docs(candidate, baseline, wall_tol=args.wall_tol,
                              wall_floor_ms=args.wall_floor)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = result.as_rows()
    if not args.all:
        rows = [r for r in rows if not r["status"].startswith("ok")]
    if rows:
        print(format_table(rows, title=f"{candidate_path} vs {args.baseline}"))
    if result.ok:
        print(f"OK: no regressions across {len(result.checks)} checks")
        return 0
    print(f"FAIL: {len(result.regressions)} regression(s) "
          f"across {len(result.checks)} checks", file=sys.stderr)
    # Name every offender explicitly: the summary table above is filtered
    # and easy to misread in CI logs, so the verdict itself must say which
    # case/metric regressed and the two values being compared.
    for check in result.regressions:
        print(f"  {check.case_id} :: {check.metric}: "
              f"baseline={check.baseline} candidate={check.candidate}",
              file=sys.stderr)
    return 1


def cmd_report(args: argparse.Namespace) -> int:
    candidate_path = _resolve_candidate(args.candidate, args.dir)
    if candidate_path is None:
        return 2
    doc = _load_validated(candidate_path)
    if doc is None:
        return 2
    text = render_csv(doc) if args.format == "csv" else render_markdown(doc)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.bench",
                                     description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_run = sub.add_parser("run", help="run the pinned suite")
    p_run.add_argument("--quick", action="store_true",
                       help="fewer warmups/rounds (CI smoke mode)")
    p_run.add_argument("--out", default=".", help="output directory")
    p_run.add_argument("--no-trace", action="store_true",
                       help="skip the merged Chrome-trace artifact")
    p_run.add_argument("--suite", choices=("default", "degraded"),
                       default="default",
                       help="degraded = the fault-injected chaos matrix "
                            "(never gated against the healthy baseline)")
    p_run.add_argument("--only", metavar="GLOB",
                       help="run only cases whose id matches this glob "
                            "(e.g. 'backend_step/mp/*')")
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare", help="gate a run against the baseline")
    p_cmp.add_argument("candidate", nargs="?",
                       help="bench file (default: newest BENCH_*.json in --dir)")
    p_cmp.add_argument("--dir", default=".",
                       help="where to look for the newest candidate")
    p_cmp.add_argument("--baseline", default=DEFAULT_BASELINE)
    p_cmp.add_argument("--wall-tol", type=float, default=DEFAULT_WALL_TOL,
                       help="normalized wall-time ratio that fails the gate")
    p_cmp.add_argument("--wall-floor", type=float, default=DEFAULT_WALL_FLOOR_MS,
                       help="skip wall gating below this absolute median (ms)")
    p_cmp.add_argument("--all", action="store_true",
                       help="print passing checks too")
    p_cmp.set_defaults(fn=cmd_compare)

    p_rep = sub.add_parser("report", help="render a run as markdown/CSV")
    p_rep.add_argument("candidate", nargs="?")
    p_rep.add_argument("--dir", default=".")
    p_rep.add_argument("--format", choices=("md", "csv"), default="md")
    p_rep.add_argument("--out", help="write to a file instead of stdout")
    p_rep.set_defaults(fn=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
