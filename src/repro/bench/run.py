"""Execute the pinned suite and write a schema-valid ``BENCH_<sha>.json``.

Timing and profiling are separate passes per case: wall-time rounds run
with no hooks installed (so the medians measure the real hot path), then
one extra profiled pass collects the deterministic rollups — FLOPs, op
and allocation counts from :class:`~repro.obs.profile.OpProfiler`, wire
bytes from ``CommTracker.summary()``.  The deterministic half is what
``compare`` pins exactly; wall times are gated with a machine-normalized
tolerance.
"""

from __future__ import annotations

import json
import os
import subprocess
import time

import numpy as np

from repro.bench.schema import SCHEMA_VERSION, validate_bench
from repro.bench.suite import BenchCase, default_suite
from repro.bench.timing import machine_calibration_ms, timed

__all__ = ["run_suite", "git_sha", "bench_filename"]

#: (warmup, rounds) per case kind, keyed by quick mode. Even quick mode
#: keeps 3 rounds: the gate compares medians, and a median of 3 absorbs
#: one scheduler hiccup where a median of 2 (= the mean) cannot.
_REPEATS = {
    True: {"mp_step": (1, 3), "finetune": (0, 3), "sim": (1, 3),
           "backend_step": (1, 3), "degraded": (0, 3)},
    False: {"mp_step": (2, 5), "finetune": (1, 5), "sim": (2, 5),
            "backend_step": (1, 5), "degraded": (0, 5)},
}


def git_sha(short: bool = True) -> str:
    """Current commit sha, or ``"unknown"`` outside a git checkout."""
    cmd = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        out = subprocess.run(cmd, capture_output=True, text=True, timeout=10)
    except OSError:
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def bench_filename(sha: str) -> str:
    return f"BENCH_{sha}.json"


# ----------------------------------------------------------------------
# Case runners
# ----------------------------------------------------------------------
def _mp_step_workload(case: BenchCase):
    """Build (step_fn, model, optimizer) for one mp_step case."""
    from repro.optim import Adam
    from repro.parallel import ModelParallelBertClassifier, ModelParallelConfig
    from repro.training.finetune import default_accuracy_model

    cfg = ModelParallelConfig(
        default_accuracy_model(num_classes=2, seed=0),
        tp=case.tp, pp=case.pp, scheme=case.scheme, seed=0,
    )
    model = ModelParallelBertClassifier(cfg)
    optimizer = Adam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(0)
    input_ids = rng.integers(0, cfg.model.vocab_size, size=(16, 16))
    labels = rng.integers(0, 2, size=16)
    mask = np.ones((16, 16), dtype=np.int64)

    def step():
        model.tracker.reset()
        optimizer.zero_grad()
        loss = model.loss(input_ids, labels, mask)
        loss.backward()
        optimizer.step()
        return loss.item()

    return step, model, optimizer, (input_ids, labels, mask)


def _profile_mp_step(case: BenchCase, record_events: bool = False):
    """One profiled step: returns (profiler summary, tracker summary, profiler)."""
    from repro.obs.profile import OpProfiler

    step, model, optimizer, (input_ids, labels, mask) = _mp_step_workload(case)
    prof = OpProfiler(record_events=record_events)
    prof.watch(model.tracker)
    model.tracker.reset()
    with prof:
        with prof.span(f"step {case.id}", cat="step", rank=0):
            optimizer.zero_grad()
            with prof.span("forward", cat="phase"):
                loss = model.loss(input_ids, labels, mask)
            with prof.span("backward", cat="phase"):
                loss.backward()
            with prof.span("optimizer", cat="phase"):
                optimizer.step()
    comm = {"/".join(key): value for key, value in model.tracker.summary().items()}
    return prof.summary(), comm, prof


def _run_mp_step(case: BenchCase, warmup: int, rounds: int) -> dict:
    step, *_ = _mp_step_workload(case)
    timing = timed(step, warmup=warmup, rounds=rounds)
    summary, comm, _ = _profile_mp_step(case)
    deterministic = {
        "flops": summary["flops"],
        "op_calls": summary["op_calls"],
        "alloc_bytes": summary["alloc_bytes"],
        "peak_alloc_bytes": summary["peak_alloc_bytes"],
        "comm_events": summary["comm_events"],
        "comm_bytes": comm,
    }
    return {"wall_ms": timing.as_dict(), "deterministic": deterministic}


def _run_backend_step(case: BenchCase, warmup: int, rounds: int) -> dict:
    """One optimizer step through an execution backend.

    Backend construction (spawning workers, allocating shared memory for
    the mp case) happens once, outside the timed region — the suite tracks
    steady-state step cost, not cold start.  Deterministic metrics stay
    machine-independent: comm event counts and wire bytes only (step losses
    depend on BLAS accumulation order and may differ across machines).
    """
    from repro.optim import Adam
    from repro.parallel import ModelParallelBertClassifier, ModelParallelConfig
    from repro.parallel.backend import create_backend
    from repro.training.finetune import default_accuracy_model

    cfg = ModelParallelConfig(
        default_accuracy_model(num_classes=2, seed=0),
        tp=case.tp, pp=case.pp, dp=case.dp, sp=case.sp,
        scheme=case.scheme, seed=0,
        backend=case.backend, pipeline_schedule=case.schedule,
        num_microbatches=case.microbatches,
    )
    model = ModelParallelBertClassifier(cfg)
    optimizer = Adam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(0)
    input_ids = rng.integers(0, cfg.model.vocab_size, size=(16, 16))
    labels = rng.integers(0, 2, size=16)
    mask = np.ones((16, 16), dtype=np.int64)

    backend = create_backend(case.backend, model)
    collector = None
    try:
        def step():
            optimizer.zero_grad()
            result = backend.train_step(input_ids, labels, mask)
            backend.apply_grads(model, result)
            optimizer.step()
            backend.sync_weights(model)
            return result

        timing = timed(step, warmup=warmup, rounds=rounds)
        result = timing.result
        deterministic = {
            "comm_events": len(result.events),
            "comm_bytes": {"/".join(key): value
                           for key, value in model.tracker.summary().items()},
        }
        from repro.obs.telemetry.agent import enabled as _telemetry_enabled

        if _telemetry_enabled():
            from repro.obs.telemetry import Collector

            collector = Collector()
            collector.drain(backend, grace_s=0.2)
    finally:
        backend.close()
    out = {"wall_ms": timing.as_dict(), "deterministic": deterministic}
    if collector is not None:
        # close() parks late queue batches in the backlog; fold them in
        # before freezing the per-case snapshot.
        collector.drain(backend)
        out["telemetry"] = collector.snapshot()
    return out


def _run_finetune(case: BenchCase, warmup: int, rounds: int) -> dict:
    from repro.training.finetune import finetune_on_task
    from repro.training.trainer import TrainConfig

    def run():
        return finetune_on_task(
            "RTE", scheme=case.scheme, tp=case.tp, pp=case.pp,
            train_config=TrainConfig(epochs=1, lr=1e-3, seed=0, batch_size=64),
            seed=0,
        )

    timing = timed(run, warmup=warmup, rounds=rounds)
    return {"wall_ms": timing.as_dict(), "deterministic": {}}


def _sim_setting(case: BenchCase):
    from repro.parallel.topology import ClusterTopology, LinkType
    from repro.simulator.iteration import SimSetting

    world = case.tp * case.pp
    topo = ClusterTopology(1, world, LinkType.PCIE)
    return SimSetting(topo, case.tp, case.pp, 32, 512,
                      num_microbatches=4, scheme=case.scheme,
                      schedule=case.schedule)


def _run_sim(case: BenchCase, warmup: int, rounds: int) -> dict:
    from repro.simulator.iteration import IterationSimulator

    sim = IterationSimulator(_sim_setting(case))
    timing = timed(sim.breakdown, warmup=warmup, rounds=rounds)
    breakdown = timing.result
    deterministic = {
        "total_ms": breakdown.total_ms,
        "forward_ms": breakdown.forward_ms,
        "backward_ms": breakdown.backward_ms,
        "optimizer_ms": breakdown.optimizer_ms,
        "pipeline_ms": breakdown.pipeline_ms,
        "encode_ms": breakdown.encode_ms,
        "decode_ms": breakdown.decode_ms,
        "tensor_comm_ms": breakdown.tensor_comm_ms,
    }
    return {"wall_ms": timing.as_dict(), "deterministic": deterministic}


def _run_degraded(case: BenchCase, warmup: int, rounds: int) -> dict:
    """A backend step with the case's fault plan armed in every worker.

    ``REPRO_FAULT_PLAN`` must be set *before* backend construction — the
    workers read it once at spawn — and is restored afterwards so the
    rest of the suite stays healthy.  Zero warmup is deliberate: the
    planned faults fire on the earliest steps, which are exactly the
    ones a degraded median should include.  The deterministic metrics
    (comm events/bytes in the parent) are unaffected by worker-side
    retries, so they still pin the workload's identity.
    """
    from repro.parallel.backend import faults

    prev = os.environ.get(faults.ENV_VAR)
    os.environ[faults.ENV_VAR] = case.fault_plan
    try:
        return _run_backend_step(case, warmup, rounds)
    finally:
        if prev is None:
            os.environ.pop(faults.ENV_VAR, None)
        else:
            os.environ[faults.ENV_VAR] = prev


_RUNNERS = {"mp_step": _run_mp_step, "finetune": _run_finetune,
            "sim": _run_sim, "backend_step": _run_backend_step,
            "degraded": _run_degraded}

#: Case whose profiled timeline is exported as the merged trace artifact.
_TRACE_CASE_ID = "mp_step/tp2pp2/A2"


def _worker_timeline_trace(case: BenchCase) -> dict:
    """One real 1F1B mp-backend step with per-rank timelines.

    The worker timelines carry the ``mp.async`` spans — issued collectives
    and staged ring sends still in flight — which render as Chrome async
    ``b``/``e`` pairs; CI's bench smoke asserts the artifact contains at
    least one, pinning the overlap machinery into the exported trace.
    """
    from repro.parallel import ModelParallelBertClassifier, ModelParallelConfig
    from repro.parallel.backend import create_backend
    from repro.obs.trace import worker_timelines_trace
    from repro.training.finetune import default_accuracy_model

    cfg = ModelParallelConfig(
        default_accuracy_model(num_classes=2, seed=0),
        tp=case.tp, pp=case.pp, scheme=case.scheme, seed=0, backend="mp",
        pipeline_schedule="1f1b", num_microbatches=4,
    )
    model = ModelParallelBertClassifier(cfg)
    rng = np.random.default_rng(0)
    input_ids = rng.integers(0, cfg.model.vocab_size, size=(16, 16))
    labels = rng.integers(0, 2, size=16)
    backend = create_backend("mp", model, collect_timelines=True)
    try:
        result = backend.train_step(input_ids, labels, None)
    finally:
        backend.close()
    # tp/pp let the trace exporter label tracks "rank N · tpX/ppY" via
    # Chrome process_name/thread_name metadata.
    return worker_timelines_trace(
        result.timelines,
        {"run_id": f"{case.id} (mp 1f1b m=4)", "schedule": "1f1b",
         "tp": case.tp, "pp": case.pp},
    )


def _trace_artifact(suite: list[BenchCase]) -> dict | None:
    """Merged (profiled real step | simulated iteration | mp worker
    timelines) Chrome trace."""
    from repro.obs.trace import merge_traces, profiler_trace, simulated_iteration_trace

    matches = [c for c in suite if c.id == _TRACE_CASE_ID]
    if not matches:
        return None
    case = matches[0]
    _, _, prof = _profile_mp_step(case, record_events=True)
    profiled = profiler_trace(prof, {"run_id": case.id})
    simulated = simulated_iteration_trace(_sim_setting(case))
    workers = _worker_timeline_trace(case)
    return merge_traces(profiled, simulated, workers,
                        meta={"bench_case": case.id})


# ----------------------------------------------------------------------
def run_suite(
    quick: bool = False,
    suite: list[BenchCase] | None = None,
    out_dir: str = ".",
    write_trace_artifact: bool = True,
    progress=None,
    suite_name: str = "default",
    only: str | None = None,
) -> tuple[dict, str, str | None]:
    """Run the suite; returns ``(doc, bench_path, trace_path_or_None)``.

    ``suite_name`` is recorded in the document; the compare gate refuses
    to gate documents from different suites against each other, which is
    what keeps degraded (faulted) runs away from the healthy baseline.

    ``only`` restricts the run to cases whose id matches the glob (e.g.
    ``backend_step/mp/*`` for the telemetry-overhead CI check); an empty
    match is an error rather than a silently empty document.
    """
    suite = default_suite() if suite is None else suite
    if only is not None:
        import fnmatch

        suite = [c for c in suite if fnmatch.fnmatch(c.id, only)]
        if not suite:
            raise ValueError(f"--only {only!r} matches no case in the suite")
    repeats = _REPEATS[bool(quick)]
    cases = []
    for case in suite:
        warmup, rounds = repeats[case.kind]
        result = _RUNNERS[case.kind](case, warmup, rounds)
        cases.append({"id": case.id, "kind": case.kind, "params": case.params(),
                      **result})
        if progress is not None:
            progress(case, cases[-1])

    sha = git_sha()
    doc = {
        "schema_version": SCHEMA_VERSION,
        "git_sha": sha,
        "created_unix": time.time(),
        "quick": bool(quick),
        "suite": suite_name,
        "machine_calibration_ms": machine_calibration_ms(),
        "cases": cases,
    }
    validate_bench(doc)

    os.makedirs(out_dir, exist_ok=True)
    bench_path = os.path.join(out_dir, bench_filename(sha))
    with open(bench_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

    trace_path = None
    if write_trace_artifact:
        trace = _trace_artifact(suite)
        if trace is not None:
            trace_path = os.path.join(out_dir, f"BENCH_{sha}.trace.json")
            with open(trace_path, "w", encoding="utf-8") as fh:
                json.dump(trace, fh)
    return doc, bench_path, trace_path
