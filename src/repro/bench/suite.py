"""The pinned benchmark suite: which workloads the harness tracks.

Four kinds of case, mirroring how the repo is actually exercised:

- ``mp_step`` — one full model-parallel training step (forward, backward,
  clipped Adam step) of the scaled-down accuracy model, for every
  TP×PP layout in {2×1, 1×2, 2×2} × scheme in {w/o, T2, R2, Q2, A2}.
  These are the hot paths every compression/runtime PR touches.
- ``finetune`` — one short recorded fine-tune (RTE, 1 epoch), the
  end-to-end path the observability overhead guarantee is written
  against.
- ``sim`` — the calibrated simulator's iteration breakdown for the same
  layout×scheme grid at BERT-Large scale.  Fully deterministic, so the
  compare gate pins it exactly: any change to the cost model shows up.
- ``backend_step`` — one optimizer step driven through an execution
  backend (``inproc`` oracle vs the ``mp`` process gang), timing the
  process/shared-memory overhead against the serial path.  Deterministic
  metrics are limited to comm events/bytes: losses are machine-dependent
  (BLAS summation order), comm accounting is not.  Pipelined layouts add
  microbatched 1F1B variants (``.../1f1b-m4``) on the mp backend — the
  schedule/overlap hot path this suite's wall times gate.

A fifth kind, ``degraded``, lives in its own opt-in suite
(:func:`degraded_suite`, ``python -m repro.bench run --suite degraded``):
the same mp backend step executed under a builtin fault plan
(``REPRO_FAULT_PLAN``), per plan × scheme.  It measures what recovery
costs — retries, backoff, re-reads — and must **never** be compared
against ``benchmarks/baseline.json``, whose medians are healthy-path
numbers (the compare gate refuses mismatched suite names).

Case ids are stable strings (``mp_step/tp2pp1/T2``); the compare gate
matches baseline and candidate by id.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BenchCase", "LAYOUTS", "SCHEMES", "BACKEND_SCHEMES",
           "GRID_CELLS", "DEGRADED_SCHEMES", "DEGRADED_PLANS",
           "default_suite", "degraded_suite", "scheme_slug", "topology_slug"]

#: (tp, pp) layouts the paper's small-scale tables exercise.
LAYOUTS: tuple[tuple[int, int], ...] = ((2, 1), (1, 2), (2, 2))

#: (dp, tp, pp, sp) cells exercising the DP and ring-SP topology axes on
#: the backend seam (healthy suite only).
GRID_CELLS: tuple[tuple[int, int, int, int], ...] = (
    (2, 1, 1, 1),  # pure data parallelism, compressible gradient wire
    (1, 1, 2, 2),  # ring sequence parallelism across a pipeline split
)

#: One representative scheme per family plus the uncompressed baseline.
SCHEMES: tuple[str, ...] = ("w/o", "T2", "R2", "Q2", "A2")


def scheme_slug(scheme: str) -> str:
    """Scheme label as a path-safe id component (``w/o`` → ``wo``)."""
    return scheme.replace("/", "")


def topology_slug(dp: int, tp: int, pp: int, sp: int) -> str:
    """Stable id component for a grid cell (``dp2tp1pp1``, ``tp1pp2sp2``).

    Degenerate axes are omitted so pre-grid case ids (``tp2pp1`` …) are
    unchanged — the compare gate matches baseline rows by id.
    """
    slug = f"tp{tp}pp{pp}"
    if dp > 1:
        slug = f"dp{dp}{slug}"
    if sp > 1:
        slug = f"{slug}sp{sp}"
    return slug


#: Schemes the backend comparison tracks — one per family is enough to
#: cover the identity, all-gather and quantized collective paths.
BACKEND_SCHEMES: tuple[str, ...] = ("w/o", "T2", "Q2")

#: Degraded-mode matrix: builtin fault plans × a dense and a compressed
#: scheme, enough to see whether compression changes recovery cost.
DEGRADED_PLANS: tuple[str, ...] = ("mixed", "straggler")
DEGRADED_SCHEMES: tuple[str, ...] = ("w/o", "Q2")


@dataclass(frozen=True)
class BenchCase:
    """One tracked workload."""

    id: str
    kind: str  # "mp_step" | "finetune" | "sim" | "backend_step" | "degraded"
    scheme: str = "w/o"
    tp: int = 1
    pp: int = 1
    dp: int = 1
    sp: int = 1
    backend: str = "inproc"
    schedule: str = "gpipe"
    microbatches: int = 1
    #: Builtin fault-plan name armed via ``REPRO_FAULT_PLAN`` for
    #: ``degraded`` cases; empty (no plan) everywhere else.
    fault_plan: str = ""

    def params(self) -> dict:
        p = {"scheme": self.scheme, "tp": self.tp, "pp": self.pp,
             "dp": self.dp, "sp": self.sp,
             "backend": self.backend, "schedule": self.schedule,
             "microbatches": self.microbatches}
        if self.fault_plan:
            p["fault_plan"] = self.fault_plan
        return p


def default_suite() -> list[BenchCase]:
    """The pinned suite, in stable order."""
    cases: list[BenchCase] = []
    for tp, pp in LAYOUTS:
        for scheme in SCHEMES:
            cases.append(BenchCase(
                id=f"mp_step/tp{tp}pp{pp}/{scheme_slug(scheme)}",
                kind="mp_step", scheme=scheme, tp=tp, pp=pp,
            ))
    cases.append(BenchCase(id="finetune/RTE/wo", kind="finetune",
                           scheme="w/o", tp=2, pp=2))
    for tp, pp in LAYOUTS:
        for scheme in SCHEMES:
            cases.append(BenchCase(
                id=f"sim/tp{tp}pp{pp}/{scheme_slug(scheme)}",
                kind="sim", scheme=scheme, tp=tp, pp=pp,
            ))
    # 1F1B simulator rows: same grid, pipelined layouts only (pp > 1 is
    # where the schedules differ), m=4 as in the gpipe sim rows.
    for tp, pp in LAYOUTS:
        if pp == 1:
            continue
        for scheme in SCHEMES:
            cases.append(BenchCase(
                id=f"sim/tp{tp}pp{pp}/{scheme_slug(scheme)}/1f1b",
                kind="sim", scheme=scheme, tp=tp, pp=pp, schedule="1f1b",
            ))
    # Execution-backend comparison: the same step through the inproc oracle
    # and the mp process gang, per layout × scheme.  Wall times quantify
    # the process/shm overhead; the deterministic comm metrics must be
    # identical between the two backends (bitwise-equivalence contract).
    for backend in ("inproc", "mp"):
        for tp, pp in LAYOUTS:
            for scheme in BACKEND_SCHEMES:
                cases.append(BenchCase(
                    id=f"backend_step/{backend}/tp{tp}pp{pp}/{scheme_slug(scheme)}",
                    kind="backend_step", scheme=scheme, tp=tp, pp=pp,
                    backend=backend,
                ))
    # Microbatched 1F1B steps through the mp gang: the schedule only runs
    # for real on the process backend (the inproc oracle is a serial
    # microbatch loop), and only a real pipeline exercises it.
    for tp, pp in LAYOUTS:
        if pp == 1:
            continue
        for scheme in BACKEND_SCHEMES:
            cases.append(BenchCase(
                id=f"backend_step/mp/tp{tp}pp{pp}/{scheme_slug(scheme)}/1f1b-m4",
                kind="backend_step", scheme=scheme, tp=tp, pp=pp,
                backend="mp", schedule="1f1b", microbatches=4,
            ))
    # The DP/SP grid cells, on both backends: dp2's gradient wire is where
    # gradient compression earns (or loses) its keep, sp2's ring exchange
    # is the new attention-boundary hot path.
    for backend in ("inproc", "mp"):
        for dp, tp, pp, sp in GRID_CELLS:
            for scheme in BACKEND_SCHEMES:
                cases.append(BenchCase(
                    id=(f"backend_step/{backend}/{topology_slug(dp, tp, pp, sp)}"
                        f"/{scheme_slug(scheme)}"),
                    kind="backend_step", scheme=scheme, tp=tp, pp=pp,
                    dp=dp, sp=sp, backend=backend,
                ))
    return cases


def degraded_suite() -> list[BenchCase]:
    """The opt-in chaos matrix: fault plan × scheme on the mp backend.

    Every case is a tp2pp2 mp step with ``REPRO_FAULT_PLAN`` armed, so
    the wall times include retries, re-reads and injected stragglers.
    Compare runs of this suite only against other degraded runs.
    """
    return [
        BenchCase(
            id=f"degraded/{plan}/tp2pp2/{scheme_slug(scheme)}",
            kind="degraded", scheme=scheme, tp=2, pp=2, backend="mp",
            fault_plan=plan,
        )
        for plan in DEGRADED_PLANS
        for scheme in DEGRADED_SCHEMES
    ]
