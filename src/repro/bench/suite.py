"""The pinned benchmark suite: which workloads the harness tracks.

Three kinds of case, mirroring how the repo is actually exercised:

- ``mp_step`` — one full model-parallel training step (forward, backward,
  clipped Adam step) of the scaled-down accuracy model, for every
  TP×PP layout in {2×1, 1×2, 2×2} × scheme in {w/o, T2, R2, Q2, A2}.
  These are the hot paths every compression/runtime PR touches.
- ``finetune`` — one short recorded fine-tune (RTE, 1 epoch), the
  end-to-end path the observability overhead guarantee is written
  against.
- ``sim`` — the calibrated simulator's iteration breakdown for the same
  layout×scheme grid at BERT-Large scale.  Fully deterministic, so the
  compare gate pins it exactly: any change to the cost model shows up.

Case ids are stable strings (``mp_step/tp2pp1/T2``); the compare gate
matches baseline and candidate by id.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BenchCase", "LAYOUTS", "SCHEMES", "default_suite", "scheme_slug"]

#: (tp, pp) layouts the paper's small-scale tables exercise.
LAYOUTS: tuple[tuple[int, int], ...] = ((2, 1), (1, 2), (2, 2))

#: One representative scheme per family plus the uncompressed baseline.
SCHEMES: tuple[str, ...] = ("w/o", "T2", "R2", "Q2", "A2")


def scheme_slug(scheme: str) -> str:
    """Scheme label as a path-safe id component (``w/o`` → ``wo``)."""
    return scheme.replace("/", "")


@dataclass(frozen=True)
class BenchCase:
    """One tracked workload."""

    id: str
    kind: str  # "mp_step" | "finetune" | "sim"
    scheme: str = "w/o"
    tp: int = 1
    pp: int = 1

    def params(self) -> dict:
        return {"scheme": self.scheme, "tp": self.tp, "pp": self.pp}


def default_suite() -> list[BenchCase]:
    """The pinned suite, in stable order."""
    cases: list[BenchCase] = []
    for tp, pp in LAYOUTS:
        for scheme in SCHEMES:
            cases.append(BenchCase(
                id=f"mp_step/tp{tp}pp{pp}/{scheme_slug(scheme)}",
                kind="mp_step", scheme=scheme, tp=tp, pp=pp,
            ))
    cases.append(BenchCase(id="finetune/RTE/wo", kind="finetune",
                           scheme="w/o", tp=2, pp=2))
    for tp, pp in LAYOUTS:
        for scheme in SCHEMES:
            cases.append(BenchCase(
                id=f"sim/tp{tp}pp{pp}/{scheme_slug(scheme)}",
                kind="sim", scheme=scheme, tp=tp, pp=pp,
            ))
    return cases
