"""Every fitted constant of the simulator, with provenance.

All constants are calibrated once against the paper's own measurements
(which table/row each came from is noted inline) and then *never* adjusted
per-experiment — the point of the simulator is that one set of constants
regenerates every table's shape.

Calibration walk-through (fine-tune workload, BERT-Large, b=32, s=512):

- Per-layer forward FLOPs = 24·B·s·h² + 4·B·s²·h ≈ 0.447 TFLOP.
- Table 4's Forward column contains forward compute + *all* tensor
  collectives (its caption folds tensor enc/dec/comm into forward) while
  Backward is pure compute; Backward/Forward-compute ≈ 354/126 ≈ 2.8,
  consistent with Megatron's activation recompute (re-forward + 2×forward).
- Fitting the three Table 2 rows (NVLink totals, m=1 GPipe) with that 2.8
  ratio yields the per-TP-degree effective GEMM throughputs below, and a
  residual that closes with ≈40 memory passes/layer/direction of
  elementwise work (LayerNorm, GELU, softmax, residual, dropout) — all
  three rows then land within ~1.5% of the paper.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields

__all__ = ["Calibration", "CALIBRATION"]


@dataclass(frozen=True)
class Calibration:
    """Fitted efficiency / overhead constants."""

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    #: Effective transformer-GEMM throughput (TFLOPs) per tensor-parallel
    #: degree. Narrower per-rank GEMMs run less efficiently. Fit: Table 2
    #: w/o rows (TP1PP4, TP2PP2, TP4PP1); TP8 extrapolated.
    gemm_tflops_by_tp: dict = field(
        default_factory=lambda: {1: 54.0, 2: 42.0, 4: 41.0, 8: 37.0}
    )

    #: Backward compute = ratio × forward compute. Fit: Table 4 Backward
    #: column (354 ms) minus its 24 f-collectives (≈150 ms) over the
    #: forward compute (≈126 ms) ⇒ ≈ 1.6.
    backward_ratio: float = 1.6

    #: Memory passes over the B·s·h activation per layer per direction for
    #: elementwise/normalization kernels. Fit: residual of Table 2 rows.
    elementwise_passes: float = 40.0

    #: Optimizer (fp16 Adam) step time, ms. Fit: Table 4/7 Optimizer column.
    optimizer_ms: float = 5.8

    #: Effective fraction of V100 peak for the *skinny* AE encoder/decoder
    #: GEMMs. Fit: Table 4 A1 row (2.16 ms enc / 3.12 ms dec over 24 calls
    #: of 2·B·s·h·c = 3.4 GFLOP).
    ae_gemm_efficiency_enc: float = 0.17
    ae_gemm_efficiency_dec: float = 0.12

    # ------------------------------------------------------------------
    # Encode/decode kernel overheads
    # ------------------------------------------------------------------
    #: torch.topk scan cost per input element, ns. Fit: Table 4 T1 encode
    #: 70.08 ms / 24 calls / 16.78 M elements.
    topk_select_ns_per_elem: float = 0.174

    #: Top-K value/index gather cost per kept element, ns. Fit: the T1→T4
    #: encode slope in Table 4 (70.08 → 74.88 ms as k grows 6×).
    topk_gather_ns_per_kept: float = 0.15

    #: Sparse scatter cost per kept element per decoded message, ns.
    #: Fit: Table 4 T4 decode 45.36 ms / (24 calls × 2 messages × 1.64 M).
    sparse_per_kept_ns: float = 0.58

    #: Python ``random.sample`` cost per sampled index, ns — the paper's
    #: Random-K encoder runs in pure Python (§3.2), which is why its rows
    #: are catastrophic. Fit: Table 4 R1 encode 2 040 ms / 24 calls / 273 k.
    randomk_sample_ns_per_kept: float = 311.0

    #: Quantization encode/decode cost per element, ns. Fit: Table 4 Q1
    #: encode 20.64 ms and decode 32.16 ms over 24 calls of 16.78 M.
    quant_encode_ns_per_elem: float = 0.051
    quant_decode_ns_per_elem: float = 0.080

    #: Fixed per-call kernel-launch overhead for any encode/decode, ms.
    #: Fit: residual of the T1 decode column (launch-dominated at small k).
    kernel_launch_ms: float = 0.1

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    #: §4.7's piecewise T_comm: below this many bytes a collective costs a
    #: constant. Paper: d = 16·128·100 fp16 elements ≈ 0.82 MB, c ≈ 0.2 ms.
    small_message_bytes: int = 819_200
    small_message_ms: float = 0.2

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    #: Quantized pipeline transfers stage through dtype conversions and
    #: multi-tensor sends; Table 7's Q1/Q2 Waiting column (~2.3× w/o)
    #: calibrates to ≈2 dense-equivalent staging passes per direction on
    #: top of the packed send.
    quant_pipeline_dense_staging: bool = True
    quant_pipeline_staging_passes: float = 2.0

    #: With several microbatches in flight, GPU-side encode/decode kernels
    #: hide inside pipeline stalls: Table 7's enc/dec columns match one
    #: microbatch's worth, not m×. Random-K's Python ``random.sample``
    #: encoder is CPU-blocking and cannot overlap (its Table 7 rows *are*
    #: ~m× the fine-tuning cost), so it is exempted.
    overlap_encdec_with_pipeline: bool = True

    #: Per-boundary fixed software overhead of a send/recv pair, ms.
    pipeline_overhead_ms: float = 1.0

    def gemm_tflops(self, tp: int) -> float:
        """Effective GEMM throughput for a TP degree (nearest fitted point)."""
        if tp in self.gemm_tflops_by_tp:
            return self.gemm_tflops_by_tp[tp]
        keys = sorted(self.gemm_tflops_by_tp)
        nearest = min(keys, key=lambda k: abs(k - tp))
        return self.gemm_tflops_by_tp[nearest]

    # ------------------------------------------------------------------
    # Persistence — so a re-fit (see perfmodel.fitting) can be saved and
    # diffed against the committed constants instead of silently replacing
    # them.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Calibration":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown calibration fields: {unknown}")
        payload = dict(data)
        if "gemm_tflops_by_tp" in payload:
            # JSON round-trips int keys as strings.
            payload["gemm_tflops_by_tp"] = {
                int(k): float(v) for k, v in payload["gemm_tflops_by_tp"].items()
            }
        return cls(**payload)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Calibration":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


CALIBRATION = Calibration()
