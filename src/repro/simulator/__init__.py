"""Calibrated performance simulator for the paper's testbeds.

The timing tables in the paper are compositions of four ingredients:

1. GEMM/attention compute on V100s (fp16 tensor cores at realistic
   efficiency),
2. collective communication over NVLink / PCIe / 10 GbE with an α–β cost
   model (plus the paper's §4.7 small-message constant),
3. per-scheme encode/decode kernel overheads (including the pathological
   Python ``random.sample`` cost that dominates the Random-K rows), and
4. the GPipe pipeline schedule (bubble + stage-boundary sends).

:mod:`repro.simulator.calibration` holds every fitted constant with the
paper table it was fit against. :class:`IterationSimulator` composes the
ingredients into the per-iteration totals and the Table 4/7-style
breakdowns; :mod:`repro.simulator.pipeline_sim` produces per-boundary
communication times (Table 9).
"""

from repro.simulator.hardware import GPUSpec, LinkSpec, V100, LINKS
from repro.simulator.calibration import CALIBRATION, Calibration
from repro.simulator.comm import allreduce_time, allgather_time, p2p_time
from repro.simulator.kernels import encode_decode_time, gemm_time, EncodeDecodeCost
from repro.simulator.iteration import (
    IterationSimulator,
    SimSetting,
    IterationBreakdown,
)
from repro.simulator.pipeline_sim import stage_boundary_times

__all__ = [
    "GPUSpec",
    "LinkSpec",
    "V100",
    "LINKS",
    "CALIBRATION",
    "Calibration",
    "allreduce_time",
    "allgather_time",
    "p2p_time",
    "encode_decode_time",
    "gemm_time",
    "EncodeDecodeCost",
    "IterationSimulator",
    "SimSetting",
    "IterationBreakdown",
    "stage_boundary_times",
]
