"""Per-boundary pipeline communication times (Table 9)."""

from __future__ import annotations

from repro.simulator.iteration import IterationSimulator, SimSetting

__all__ = ["stage_boundary_times"]


def stage_boundary_times(setting: SimSetting) -> dict[str, float]:
    """Average per-iteration communication time of each pipeline boundary.

    Returns a mapping ``"s↔s+1" → ms`` summing the forward and backward
    sends of all microbatches across that boundary — the quantity Table 9
    reports per stage pair.
    """
    sim = IterationSimulator(setting)
    out: dict[str, float] = {}
    for b in range(setting.pp - 1):
        fwd, bwd = sim.boundary_send_ms(b)
        out[f"{b}<->{b + 1}"] = setting.num_microbatches * (fwd + bwd)
    return out
