"""α–β collective communication cost models.

Ring all-reduce moves ``2(p−1)/p × bytes`` per rank; all-gather moves
``(p−1) × msg_bytes`` into each rank; point-to-point moves the payload once.
Below the §4.7 small-message threshold every collective costs the fitted
constant (one launch round), matching the paper's piecewise ``T_comm``.
"""

from __future__ import annotations

from repro.parallel.topology import LinkType
from repro.simulator.calibration import CALIBRATION, Calibration
from repro.simulator.hardware import LINKS, LinkSpec

__all__ = [
    "allreduce_time",
    "allgather_time",
    "allreduce_multinode_time",
    "p2p_time",
    "link_of",
]


def link_of(link: LinkType | LinkSpec) -> LinkSpec:
    """Resolve a link type to its spec."""
    if isinstance(link, LinkSpec):
        return link
    return LINKS[link]


def _beta_ms(bytes_on_wire: float, link: LinkSpec, world: int = 2) -> float:
    """Serialization time in ms for ``bytes_on_wire`` over ``link``.

    Fully-connected fabrics (NVLink) run a p-rank ring over p concurrent
    links, so effective bandwidth scales by ``max(1, world/2)``.
    """
    bw = link.bandwidth_gbps * 1e9
    if link.ring_scales_with_world:
        bw *= max(1.0, world / 2.0)
    return bytes_on_wire / bw * 1e3


def allreduce_time(
    bytes_per_rank: int,
    world: int,
    link: LinkType | LinkSpec,
    cal: Calibration = CALIBRATION,
) -> float:
    """Ring all-reduce time in ms for a ``bytes_per_rank`` payload."""
    if world <= 1:
        return 0.0
    spec = link_of(link)
    if bytes_per_rank < cal.small_message_bytes:
        return cal.small_message_ms
    wire = 2.0 * (world - 1) / world * bytes_per_rank
    alpha = 2.0 * (world - 1) * spec.latency_s * 1e3
    return _beta_ms(wire, spec, world) + alpha


def allgather_time(
    msg_bytes: int,
    world: int,
    link: LinkType | LinkSpec,
    cal: Calibration = CALIBRATION,
) -> float:
    """All-gather time in ms when each rank contributes ``msg_bytes``."""
    if world <= 1:
        return 0.0
    spec = link_of(link)
    wire = (world - 1) * msg_bytes
    if wire < cal.small_message_bytes:
        return cal.small_message_ms
    alpha = (world - 1) * spec.latency_s * 1e3
    return _beta_ms(wire, spec, world) + alpha


def p2p_time(
    bytes_payload: int,
    link: LinkType | LinkSpec,
    cal: Calibration = CALIBRATION,
) -> float:
    """Point-to-point send time in ms (pipeline boundary)."""
    spec = link_of(link)
    if bytes_payload < cal.small_message_bytes:
        return cal.small_message_ms
    return bytes_payload / (spec.p2p_gbps * 1e9) * 1e3 + spec.latency_s * 1e3


def allreduce_multinode_time(
    bytes_per_rank: int,
    world: int,
    gpus_per_node: int,
    intra: LinkType | LinkSpec,
    inter: LinkType | LinkSpec,
    cal: Calibration = CALIBRATION,
) -> float:
    """Hierarchical all-reduce for a group spanning several nodes.

    NCCL reduces within each node over the fast fabric, exchanges across
    nodes (full-duplex NIC, so the inter phase overlaps both directions),
    then broadcasts within the node. This is what keeps the paper's
    TP=8 rows at ~10× (not ~30×) the TP=4 rows (Table 6).
    """
    if world <= gpus_per_node:
        return allreduce_time(bytes_per_rank, world, intra, cal)
    nodes = -(-world // gpus_per_node)
    intra_part = allreduce_time(bytes_per_rank, gpus_per_node, intra, cal)
    inter_spec = link_of(inter)
    wire = 2.0 * (nodes - 1) / nodes * bytes_per_rank / 2.0  # full duplex
    inter_part = _beta_ms(wire, inter_spec) + 2 * (nodes - 1) * inter_spec.latency_s * 1e3
    return intra_part + inter_part
