"""Compute-kernel cost models: transformer GEMMs and encode/decode overheads."""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.notation import SchemeSpec
from repro.simulator.calibration import CALIBRATION, Calibration
from repro.simulator.hardware import V100, GPUSpec

__all__ = [
    "gemm_time",
    "layer_forward_flops",
    "elementwise_time",
    "EncodeDecodeCost",
    "encode_decode_time",
]


def layer_forward_flops(batch: int, seq: int, hidden: int) -> float:
    """Forward FLOPs of one transformer layer (Narayanan et al. 2021).

    QKV + output projections (8·B·s·h²), attention scores+context
    (4·B·s²·h), MLP (16·B·s·h²) → 24·B·s·h² + 4·B·s²·h.
    """
    return 24.0 * batch * seq * hidden**2 + 4.0 * batch * seq**2 * hidden


def gemm_time(flops: float, tflops: float) -> float:
    """Time (ms) to execute ``flops`` at an effective ``tflops`` rate."""
    if flops <= 0:
        return 0.0
    return flops / (tflops * 1e12) * 1e3


def elementwise_time(
    batch: int, seq: int, hidden: int, tp: int,
    cal: Calibration = CALIBRATION, gpu: GPUSpec = V100,
) -> float:
    """Per-layer per-direction elementwise kernel time (ms).

    LayerNorm/GELU/softmax/residual/dropout are memory-bound: modeled as
    ``elementwise_passes`` traversals of the (sharded) fp16 activation.
    """
    bytes_activation = batch * seq * hidden * 2 / tp
    return cal.elementwise_passes * bytes_activation / (gpu.mem_bandwidth_gbps * 1e9) * 1e3


@dataclass(frozen=True)
class EncodeDecodeCost:
    """Per-site, per-call encode/decode kernel times (ms)."""

    encode_ms: float
    decode_ms: float
    #: extra backward-pass compute the scheme adds at this site (AE's
    #: dW / dX GEMMs; ~0 for the other schemes).
    backward_ms: float = 0.0


def encode_decode_time(
    spec: SchemeSpec,
    batch: int,
    seq: int,
    hidden: int,
    decode_multiplicity: int = 1,
    cal: Calibration = CALIBRATION,
    gpu: GPUSpec = V100,
) -> EncodeDecodeCost:
    """Encode/decode kernel cost for one compression site.

    Parameters
    ----------
    spec:
        Notation-table entry describing the scheme.
    decode_multiplicity:
        How many messages each rank decompresses (the all-gather fallback
        makes every rank decode ``tp`` messages before the local sum).
    """
    n = float(batch * seq * hidden)
    launch = cal.kernel_launch_ms
    if spec.family == "none":
        return EncodeDecodeCost(0.0, 0.0)
    if spec.family == "ae":
        c = spec.code_dim(hidden)
        flops = 2.0 * batch * seq * hidden * c
        enc = gemm_time(flops, cal.ae_gemm_efficiency_enc * gpu.fp16_peak_tflops)
        dec = gemm_time(flops, cal.ae_gemm_efficiency_dec * gpu.fp16_peak_tflops)
        # Backward re-runs both GEMMs for dX and both for dW.
        return EncodeDecodeCost(enc + launch, dec + launch, backward_ms=2.0 * (enc + dec))
    if spec.family == "topk":
        k = spec.fraction * n
        enc = (cal.topk_select_ns_per_elem * n + cal.topk_gather_ns_per_kept * k) * 1e-6
        dec = cal.sparse_per_kept_ns * k * 1e-6 * decode_multiplicity
        return EncodeDecodeCost(enc + launch, dec + launch * decode_multiplicity)
    if spec.family == "randomk":
        k = spec.fraction * n
        enc = cal.randomk_sample_ns_per_kept * k * 1e-6
        dec = cal.sparse_per_kept_ns * k * 1e-6 * decode_multiplicity
        return EncodeDecodeCost(enc + launch, dec + launch * decode_multiplicity)
    if spec.family == "quant":
        # Dequantization of the gathered messages is fused with the local
        # sum, so decode does not scale with the message count (Table 4 Q1).
        enc = cal.quant_encode_ns_per_elem * n * 1e-6
        dec = cal.quant_decode_ns_per_elem * n * 1e-6
        return EncodeDecodeCost(enc + launch, dec + launch)
    raise ValueError(f"unknown scheme family {spec.family!r}")
