"""Per-iteration timing composition (the engine behind Tables 2–4, 6–7, 11–14).

One training iteration under TP × PP decomposes as:

- per layer, per microbatch: forward GEMMs + elementwise kernels + two
  forward ``g`` collectives (all-reduce, or the compressed variant);
- backward: ``backward_ratio`` × forward compute + two dense ``f``
  all-reduces (compression never shrinks these — the input-gradient
  reduction is part of the layer math, not a message we encode);
- encode/decode kernel overheads at every compressed site;
- the pipeline schedule stretches per-stage work over ``m + pp − 1``
  slots (GPipe and non-interleaved 1F1B share that makespan; 1F1B
  interleaves the steady state, overlapping ``(m−1)(tf+tb)`` of forward
  and backward work — reported as :attr:`IterationBreakdown.overlap_ms`);
- pipeline boundaries add per-microbatch sends gated by the slowest
  boundary link.

Column conventions follow Table 4's caption: the Forward column contains
forward compute **plus** tensor enc/dec and the forward collectives; the
Backward column contains backward compute plus the backward ``f``
all-reduces (and the AE's extra backward GEMMs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compression import CompressionPolicy
from repro.compression.notation import SchemeSpec, scheme_spec
from repro.nn.transformer import TransformerConfig
from repro.parallel.pipeline import SCHEDULES, PipelinePartition, warmup_depth
from repro.parallel.topology import ClusterTopology, ParallelLayout
from repro.simulator.calibration import CALIBRATION, Calibration
from repro.simulator.comm import (
    allgather_time,
    allreduce_multinode_time,
    allreduce_time,
    link_of,
    p2p_time,
)
from repro.simulator.hardware import LinkModel
from repro.simulator.kernels import (
    EncodeDecodeCost,
    elementwise_time,
    encode_decode_time,
    gemm_time,
    layer_forward_flops,
)

__all__ = ["SimSetting", "IterationBreakdown", "IterationSimulator"]

BYTES_FP16 = 2


@dataclass
class SimSetting:
    """One simulated experimental setting."""

    topology: ClusterTopology
    tp: int
    pp: int
    micro_batch: int
    seq: int
    num_microbatches: int = 1
    scheme: str = "w/o"
    policy: CompressionPolicy | None = None
    model: TransformerConfig = field(default_factory=TransformerConfig.bert_large)
    schedule: str = "gpipe"
    #: Heterogeneous deviation from the uniform topology (per-stage TP
    #: links, per-boundary PP links, straggler multipliers).  None — the
    #: default — keeps every homogeneous code path bitwise-identical to
    #: the pinned bench baselines.
    links: "LinkModel | None" = None
    #: Data-parallel replicas and ring sequence-parallel degree.  At the
    #: defaults (1, 1) every sum below gains exactly ``+ 0.0`` — bitwise
    #: neutral, so the pinned bench baselines are unchanged.
    dp: int = 1
    sp: int = 1

    def __post_init__(self):
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"unknown pipeline schedule {self.schedule!r}; "
                f"valid: {list(SCHEDULES)}"
            )
        if self.policy is None:
            if self.scheme == "w/o":
                self.policy = CompressionPolicy.none(self.model.num_layers)
            else:
                self.policy = CompressionPolicy.default(self.model.num_layers)
        if self.sp > 1 and self.tp != 1:
            raise ValueError("ring sequence parallelism requires tp == 1")
        if self.sp > 1 and self.seq % self.sp != 0:
            raise ValueError(f"seq={self.seq} not divisible by sp={self.sp}")
        # Validates dp·pp·sp·tp == world size.
        self.layout = ParallelLayout(self.topology, self.tp, self.pp,
                                     dp=self.dp, sp=self.sp)
        self.partition = PipelinePartition.balanced(self.model.num_layers, self.pp)
        if self.num_microbatches <= 0:
            raise ValueError("num_microbatches must be positive")


@dataclass(frozen=True)
class IterationBreakdown:
    """Table-4-style per-iteration breakdown, all times in ms."""

    forward_ms: float
    backward_ms: float
    optimizer_ms: float
    pipeline_ms: float  # "Waiting & Pipeline Comm."
    encode_ms: float  # "Tensor Enc."
    decode_ms: float  # "Tensor Dec."
    tensor_comm_ms: float  # forward g collectives ("Tensor Comm.")
    #: Wall time where the schedule runs forward and backward compute
    #: concurrently (1F1B steady state); 0 under GPipe, whose forward
    #: region drains before the first backward starts.  Counted once in
    #: :attr:`total_ms` — the Forward and Backward columns each contain
    #: their full makespan, so their sum double-counts this window.
    overlap_ms: float = 0.0
    #: Per-iteration DP gradient all-reduce and SP ring-exchange comm;
    #: exactly 0.0 at dp = sp = 1, keeping total_ms bitwise-unchanged
    #: for every pre-grid setting.
    dp_comm_ms: float = 0.0
    sp_comm_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (self.forward_ms + self.backward_ms + self.optimizer_ms
                + self.pipeline_ms - self.overlap_ms
                + self.dp_comm_ms + self.sp_comm_ms)


class IterationSimulator:
    """Compose an iteration's timing for one :class:`SimSetting`."""

    def __init__(self, setting: SimSetting, cal: Calibration = CALIBRATION):
        self.s = setting
        self.cal = cal
        self.spec: SchemeSpec = scheme_spec(setting.scheme)

    # ------------------------------------------------------------------
    # Per-layer ingredients
    # ------------------------------------------------------------------
    def _dense_bytes(self) -> int:
        s = self.s
        return s.micro_batch * s.seq * s.model.hidden * BYTES_FP16

    def _compressed_bytes(self) -> int:
        """Forward wire bytes of one compressed activation message."""
        s = self.s
        n = s.micro_batch * s.seq * s.model.hidden
        if self.spec.family == "ae":
            c = self.spec.code_dim(s.model.hidden)
            return s.micro_batch * s.seq * c * BYTES_FP16
        if self.spec.family in ("topk", "randomk"):
            k = int(round(self.spec.fraction * n))
            return k * (BYTES_FP16 + 4)
        if self.spec.family == "quant":
            groups = -(-n // 256)
            return n * self.spec.bits // 8 + 2 * groups * BYTES_FP16
        return n * BYTES_FP16

    def _backward_boundary_bytes(self) -> int:
        """Backward (gradient) bytes across a compressed PP boundary."""
        if self.spec.family == "quant":
            return self._dense_bytes()  # §3.3: backward stays dense fp16
        return self._compressed_bytes()

    def layer_forward_compute_ms(self) -> float:
        s = self.s
        flops = layer_forward_flops(s.micro_batch, s.seq, s.model.hidden) / s.tp
        return gemm_time(flops, self.cal.gemm_tflops(s.tp))

    def layer_elementwise_ms(self) -> float:
        s = self.s
        return elementwise_time(s.micro_batch, s.seq, s.model.hidden, s.tp, self.cal)

    def site_cost(self) -> EncodeDecodeCost:
        """Encode/decode kernel cost at one TP site (per microbatch)."""
        s = self.s
        mult = 1 if self.spec.family in ("none", "ae") else s.tp
        return encode_decode_time(
            self.spec, s.micro_batch, s.seq, s.model.hidden,
            decode_multiplicity=mult, cal=self.cal,
        )

    def _tp_link_override(self, stage: int | None):
        """The stage's heterogeneous TP link, or None for the uniform one."""
        s = self.s
        if s.links is None or stage is None:
            return None
        return s.links.tp_link(stage)

    def _stage_slowdown(self, stage: int | None) -> float:
        """Straggler multiplier gating ``stage`` (1.0 when homogeneous)."""
        s = self.s
        if s.links is None or stage is None:
            return 1.0
        return s.links.stage_slowdown(stage, s.tp)

    def _tp_allreduce_ms(self, nbytes: int, stage: int | None = None) -> float:
        """One TP all-reduce, hierarchical when the group spans nodes."""
        s = self.s
        override = self._tp_link_override(stage)
        if override is not None:
            # A per-stage link replaces the whole hierarchy: the stage's TP
            # group runs its ring over that one fabric.
            return allreduce_time(nbytes, s.tp, override, self.cal)
        return allreduce_multinode_time(
            nbytes, s.tp, s.topology.gpus_per_node,
            s.topology.intra_node_link, s.topology.inter_node_link, self.cal,
        )

    def tp_forward_comm_ms(self, compressed: bool, stage: int | None = None) -> float:
        """One forward ``g`` collective (per site, per microbatch)."""
        s = self.s
        if s.tp <= 1:
            return 0.0
        if not compressed or self.spec.family == "none":
            return self._tp_allreduce_ms(self._dense_bytes(), stage)
        if self.spec.family == "ae":
            return self._tp_allreduce_ms(self._compressed_bytes(), stage)
        link = self._tp_link_override(stage) or s.layout.tp_link(0)
        return allgather_time(self._compressed_bytes(), s.tp, link, self.cal)

    def tp_backward_comm_ms(self, stage: int | None = None) -> float:
        """One backward ``f`` all-reduce — always the dense activation."""
        if self.s.tp <= 1:
            return 0.0
        return self._tp_allreduce_ms(self._dense_bytes(), stage)

    # ------------------------------------------------------------------
    # DP / SP axes (closed-form per-iteration comm volumes)
    # ------------------------------------------------------------------
    def _model_param_count(self) -> int:
        """Closed-form parameter count of the model (the DP wire volume)."""
        mdl = self.s.model
        h, f = mdl.hidden, mdl.ffn_hidden
        per_layer = ((h * 3 * h + 3 * h)      # qkv projection
                     + (h * h + h)            # out projection
                     + 2 * (2 * h)            # two layer norms
                     + (h * f + f)            # fc1
                     + (f * h + h))           # fc2
        emb = mdl.vocab_size * h + mdl.max_seq_len * h + 2 * h
        return mdl.num_layers * per_layer + emb

    def dp_comm_ms(self) -> float:
        """The once-per-iteration DP gradient sync over the flat parameter
        vector; compressed schemes ship (all-gather) their sparse/quantized
        payloads exactly as the runtime's ``dp_all_reduce`` does."""
        s = self.s
        if s.dp <= 1:
            return 0.0
        n = self._model_param_count()
        link = s.layout.dp_link()
        fam = self.spec.family
        if fam in ("topk", "randomk"):
            k = int(round(self.spec.fraction * n))
            return allgather_time(k * (BYTES_FP16 + 4), s.dp, link, self.cal)
        if fam == "quant":
            groups = -(-n // 256)
            nbytes = n * self.spec.bits // 8 + 2 * groups * BYTES_FP16
            return allgather_time(nbytes, s.dp, link, self.cal)
        # "w/o" and AE reduce dense: the AE's encoder is dimension-bound
        # to the activation hidden size and cannot eat a parameter vector.
        return allreduce_time(n * BYTES_FP16, s.dp, link, self.cal)

    def sp_comm_ms(self) -> float:
        """Ring sequence-parallel exchange at every attention boundary:
        per layer and microbatch, each direction moves the K/V/ctx block
        triple around the sp ring (an all-gather of 3 sequence blocks)."""
        s = self.s
        if s.sp <= 1:
            return 0.0
        blk = s.micro_batch * (s.seq // s.sp) * s.model.hidden * BYTES_FP16
        per_exchange = allgather_time(3 * blk, s.sp, s.layout.sp_link(0),
                                      self.cal)
        return s.model.num_layers * s.num_microbatches * 2 * per_exchange

    # ------------------------------------------------------------------
    # Pipeline boundaries
    # ------------------------------------------------------------------
    def boundary_send_ms(self, boundary_index: int) -> tuple[float, float]:
        """(forward, backward) send time of one boundary, per microbatch."""
        s = self.s
        link = s.layout.pp_link(boundary_index)
        if s.links is not None:
            link = s.links.pp_link(boundary_index, link)
        last_layer = s.partition.boundaries()[boundary_index]
        compressed = (
            self.spec.family != "none" and s.policy.boundary_compressed(last_layer)
        )
        if not compressed:
            dense = p2p_time(self._dense_bytes(), link, self.cal)
            return dense, dense
        fwd = p2p_time(self._compressed_bytes(), link, self.cal)
        bwd = p2p_time(self._backward_boundary_bytes(), link, self.cal)
        if self.spec.family == "quant" and self.cal.quant_pipeline_dense_staging:
            # Table 7 Q rows: the multi-tensor + dtype-conversion path costs
            # ~2 dense-equivalent staging passes in each direction.
            staging = (self.cal.quant_pipeline_staging_passes
                       * p2p_time(self._dense_bytes(), link, self.cal))
            fwd += staging
            bwd += staging
        return fwd, bwd

    def boundary_site_cost(self) -> EncodeDecodeCost:
        """Encode/decode kernel cost at one PP boundary (per microbatch)."""
        s = self.s
        return encode_decode_time(
            self.spec, s.micro_batch, s.seq, s.model.hidden,
            decode_multiplicity=1, cal=self.cal,
        )

    # ------------------------------------------------------------------
    # Schedule ingredients (shared with repro.obs.trace)
    # ------------------------------------------------------------------
    def stage_compute_ms(self, stage: int | None = None) -> tuple[float, float]:
        """(forward, backward) compute of one stage for one microbatch.

        ``stage`` selects the straggler multiplier when a heterogeneous
        :class:`LinkModel` is configured; None (or no model) is the
        uniform-cluster value.
        """
        s = self.s
        layer_fwd = self.layer_forward_compute_ms()
        layer_ew = self.layer_elementwise_ms()
        per_stage = s.model.num_layers / s.pp
        fwd = (layer_fwd + layer_ew) * per_stage
        bwd = (self.cal.backward_ratio * layer_fwd + layer_ew) * per_stage
        slow = self._stage_slowdown(stage)
        if slow != 1.0:
            fwd *= slow
            bwd *= slow
        return fwd, bwd

    def compute_makespans(self) -> tuple[float, float, float]:
        """(forward, backward, overlap) compute makespans of the schedule.

        GPipe drains all forwards before the first backward, so the two
        regions abut: ``slots·tf`` then ``slots·tb``, overlap 0.  Under
        non-interleaved 1F1B the last stage starts B0 at ``pp·tf`` while
        earlier stages still have steady-state forwards to run, so the
        forward region stretches to ``pp·tf + (m−1)(tf+tb)`` and the
        backward region to ``(m−1)·tf + (m+pp−1)·tb`` — the two windows
        share exactly ``(m−1)(tf+tb)`` of wall time, and the iteration
        makespan ``(m+pp−1)(tf+tb)`` matches GPipe's (the non-interleaved
        schedule shrinks memory and overlaps comm, not the bubble).
        """
        s = self.s
        m = s.num_microbatches
        slots = m + s.pp - 1
        if s.links is None:
            # Homogeneous path, kept verbatim: the bench baselines pin
            # these sums bitwise, and float sums of equal stage times are
            # not interchangeable with the per-stage generalization below
            # (slots·tf ≠ tf+tf+…+tf in IEEE arithmetic).
            tf, tb = self.stage_compute_ms()
            if s.schedule == "gpipe":
                return slots * tf, slots * tb, 0.0
            fwd = s.pp * tf + (m - 1) * (tf + tb)
            bwd = (m - 1) * tf + slots * tb
            return fwd, bwd, (m - 1) * (tf + tb)
        # Heterogeneous: per-stage times; a pipeline's steady state is
        # gated by its slowest stage, and each region additionally pays
        # every stage's own work once (the fill/drain ramps).  These forms
        # reduce to the homogeneous ones when all stages are equal.
        per_stage = [self.stage_compute_ms(st) for st in range(s.pp)]
        tfs = [tf for tf, _ in per_stage]
        tbs = [tb for _, tb in per_stage]
        if s.schedule == "gpipe":
            fwd = sum(tfs) + (m - 1) * max(tfs)
            bwd = sum(tbs) + (m - 1) * max(tbs)
            return fwd, bwd, 0.0
        cycle = max(tf + tb for tf, tb in per_stage)
        fwd = sum(tfs) + (m - 1) * cycle
        bwd = (m - 1) * max(tfs) + sum(tbs) + (m - 1) * max(tbs)
        return fwd, bwd, (m - 1) * cycle

    def stage_op_starts(self, stage: int) -> tuple[list[float], list[float]]:
        """Start times (ms) of stage ``stage``'s F and B ops, per microbatch.

        The tight schedule under uniform per-stage times ``tf``/``tb``:

        - GPipe: ``F_i`` at ``(stage+i)·tf``; ``B_i`` drains after the
          forward region at ``slots·tf + (pp−1−stage+i)·tb``.
        - 1F1B: ``B_i`` is gated by the downstream grad,
          ``pp·tf + i(tf+tb) + (pp−1−stage)·tb`` on every stage; warmup
          forwards run at ``(stage+i)·tf`` and each steady-state forward
          back-to-back against its paired backward (``B_{i−w}`` start −
          ``tf``, with ``w`` the stage's warmup depth).

        Always uses the *uniform* stage times — trace rendering keeps the
        idealized schedule even under a heterogeneous
        :class:`LinkModel`; the makespans above are where heterogeneity
        enters the timing model.
        """
        s = self.s
        m = s.num_microbatches
        tf, tb = self.stage_compute_ms()
        if s.schedule == "gpipe":
            fwd_end = (m + s.pp - 1) * tf
            return ([(stage + i) * tf for i in range(m)],
                    [fwd_end + (s.pp - 1 - stage + i) * tb for i in range(m)])
        w = warmup_depth(s.schedule, s.pp, stage, m)
        b = [s.pp * tf + i * (tf + tb) + (s.pp - 1 - stage) * tb
             for i in range(m)]
        f = [(stage + i) * tf if i < w else b[i - w] - tf for i in range(m)]
        return f, b

    def encdec_multipliers(self) -> tuple[int, int]:
        """(encode, decode/ae-backward) kernel multiplicities per site.

        GPU-side encode/decode kernels hide in pipeline stalls once several
        microbatches are in flight (see Calibration); the CPU-blocking
        Random-K sampler cannot, so its encode count stays per-microbatch.
        """
        s, cal = self.s, self.cal
        m = s.num_microbatches
        overlapped = m > 1 and cal.overlap_encdec_with_pipeline
        gpu_mult = 1 if overlapped else m
        enc_mult = m if self.spec.family == "randomk" else gpu_mult
        return enc_mult, gpu_mult

    def layer_compressed(self, layer: int) -> bool:
        """Whether ``layer``'s two TP collectives run through the compressor."""
        s = self.s
        return self.spec.family != "none" and s.tp > 1 and s.policy.applies(layer)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def breakdown(self) -> IterationBreakdown:
        s, cal = self.s, self.cal
        m = s.num_microbatches
        compressed_scheme = self.spec.family != "none"

        fwd_comm_total = 0.0  # per iteration, all layers, all microbatches
        bwd_comm_total = 0.0
        enc_total = 0.0
        dec_total = 0.0
        ae_bwd_total = 0.0

        site = self.site_cost()
        L = s.model.num_layers
        enc_mult, gpu_mult = self.encdec_multipliers()

        for layer in range(L):
            layer_compressed = self.layer_compressed(layer)
            stage = s.partition.stage_of(layer) if s.links is not None else None
            fwd_comm_total += 2 * m * self.tp_forward_comm_ms(layer_compressed, stage)
            bwd_comm_total += 2 * m * self.tp_backward_comm_ms(stage)
            if layer_compressed:
                enc_total += 2 * enc_mult * site.encode_ms
                dec_total += 2 * gpu_mult * site.decode_ms
                ae_bwd_total += 2 * gpu_mult * site.backward_ms

        # Pipeline boundary sends + encode/decode at compressed boundaries.
        pipeline_ms = 0.0
        if s.pp > 1:
            sends = [self.boundary_send_ms(b) for b in range(s.pp - 1)]
            pipeline_ms = m * sum(f + b for f, b in sends) \
                + (s.pp - 1) * cal.pipeline_overhead_ms
            bcost = self.boundary_site_cost()
            for b, last_layer in enumerate(s.partition.boundaries()):
                if compressed_scheme and s.policy.boundary_compressed(last_layer):
                    enc_total += enc_mult * bcost.encode_ms
                    dec_total += gpu_mult * bcost.decode_ms

        fwd_makespan, bwd_makespan, overlap_ms = self.compute_makespans()
        forward_ms = fwd_makespan + fwd_comm_total + enc_total + dec_total
        backward_ms = bwd_makespan + bwd_comm_total + ae_bwd_total
        return IterationBreakdown(
            forward_ms=forward_ms,
            backward_ms=backward_ms,
            optimizer_ms=cal.optimizer_ms,
            pipeline_ms=pipeline_ms,
            encode_ms=enc_total,
            decode_ms=dec_total,
            tensor_comm_ms=fwd_comm_total,
            overlap_ms=overlap_ms,
            dp_comm_ms=self.dp_comm_ms(),
            sp_comm_ms=self.sp_comm_ms(),
        )

    def total_ms(self) -> float:
        """Average iteration time in ms (the tables' headline number)."""
        return self.breakdown().total_ms

    def placement_report(self) -> list[dict]:
        """Per-link compression payoff: where does this scheme help?

        One entry per TP stage (``kind="tp"``) and PP boundary
        (``kind="pp"``), each with the resolved link name, the dense and
        compressed per-microbatch comm cost over that link, and their
        ratio.  ``speedup < 1`` flags links where the scheme *loses* —
        the heterogeneous question the paper's uniform testbeds can't
        ask: with stage 0 on NVLink and stage 1 on Ethernet, compression
        may pay only on the slow half.
        """
        s = self.s
        report: list[dict] = []
        if s.tp > 1:
            for stage in range(s.pp):
                st = stage if s.links is not None else None
                dense = self.tp_forward_comm_ms(False, st)
                comp = self.tp_forward_comm_ms(True, st)
                link = self._tp_link_override(st) or s.topology.intra_node_link
                report.append({
                    "kind": "tp",
                    "index": stage,
                    "link": link_of(link).name,
                    "dense_ms": dense,
                    "compressed_ms": comp,
                    "speedup": dense / comp if comp > 0 else 1.0,
                })
        if s.pp > 1:
            for b in range(s.pp - 1):
                link = s.layout.pp_link(b)
                if s.links is not None:
                    link = s.links.pp_link(b, link)
                dense = p2p_time(self._dense_bytes(), link, self.cal)
                fwd, bwd = self.boundary_send_ms(b)
                report.append({
                    "kind": "pp",
                    "index": b,
                    "link": link_of(link).name,
                    "dense_ms": 2 * dense,
                    "compressed_ms": fwd + bwd,
                    "speedup": (2 * dense) / (fwd + bwd) if fwd + bwd > 0 else 1.0,
                })
        return report
