"""Device and link specifications for the paper's testbeds."""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.topology import LinkType

__all__ = ["GPUSpec", "LinkSpec", "V100", "LINKS"]


@dataclass(frozen=True)
class GPUSpec:
    """A GPU's raw capabilities."""

    name: str
    fp16_peak_tflops: float  # tensor-core peak
    mem_bandwidth_gbps: float  # HBM bandwidth, GB/s


#: Tesla V100 (the paper's GPU on both testbeds).
V100 = GPUSpec(name="V100", fp16_peak_tflops=112.0, mem_bandwidth_gbps=900.0)


@dataclass(frozen=True)
class LinkSpec:
    """An interconnect's α–β parameters.

    ``bandwidth_gbps`` is the *effective* point-to-point bandwidth seen by
    NCCL-style collectives (GB/s), ``latency_s`` the per-round α term.
    ``ring_scales_with_world`` marks fully-connected fabrics (NVLink)
    where a p-GPU ring drives p links concurrently, so aggregate bus
    bandwidth grows ≈ p/2 — this is what makes the paper's TP=4 rows
    cheaper per byte than TP=2 and flips Table 6's ordering in favour of
    TP4, PP4.
    """

    name: str
    bandwidth_gbps: float
    latency_s: float
    ring_scales_with_world: bool = False
    #: Effective bandwidth for point-to-point (pipeline) transfers, which
    #: often outrun a congested ring collective on the same fabric. None
    #: means "same as bandwidth_gbps".
    p2p_bandwidth_gbps: float | None = None

    @property
    def p2p_gbps(self) -> float:
        return self.p2p_bandwidth_gbps if self.p2p_bandwidth_gbps is not None else self.bandwidth_gbps


#: Effective link parameters. Bandwidths are effective (not line-rate):
#: - NVLink: the paper quotes 40 GB/s intra-node for p3.8xlarge;
#:   fully-connected, so collective bandwidth scales with the ring size.
#: - PCIe: all four local GPUs share one bridge (no scaling); Table 4's
#:   Tensor-Comm column (48 forward collectives of 32 MB in 150.7 ms)
#:   implies ~10 GB/s effective.
#: - Ethernet: 10 Gbps line rate → 1.25 GB/s, ~1.0 GB/s effective.
#: The Ethernet p2p rate (4 GB/s) is fit to Table 9's w/o column (77.8–97.7
#: ms per boundary per iteration at micro-batch 128 × 8 microbatches). It
#: exceeds the quoted 10 Gbps line rate — the paper's own pipeline numbers
#: do too, suggesting multi-flow/placement effects — and is kept as a
#: calibrated effective constant.
LINKS: dict[LinkType, LinkSpec] = {
    LinkType.NVLINK: LinkSpec("NVLink", bandwidth_gbps=40.0, latency_s=10e-6,
                              ring_scales_with_world=True),
    LinkType.PCIE: LinkSpec("PCIe (shared bridge)", bandwidth_gbps=10.0, latency_s=15e-6),
    LinkType.ETHERNET: LinkSpec("10GbE", bandwidth_gbps=1.0, latency_s=50e-6,
                                p2p_bandwidth_gbps=4.0),
}
