"""Device and link specifications for the paper's testbeds.

Beyond the paper's three *uniform* testbeds (NVLink / PCIe / 10GbE),
:class:`LinkModel` describes heterogeneous deployments — a different
fabric per pipeline stage or boundary, plus per-rank compute slowdown
multipliers (stragglers) — so the simulator can answer where compression
pays *per link* instead of assuming one link class everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.topology import LinkType

__all__ = ["GPUSpec", "LinkSpec", "LinkModel", "V100", "LINKS"]


@dataclass(frozen=True)
class GPUSpec:
    """A GPU's raw capabilities."""

    name: str
    fp16_peak_tflops: float  # tensor-core peak
    mem_bandwidth_gbps: float  # HBM bandwidth, GB/s


#: Tesla V100 (the paper's GPU on both testbeds).
V100 = GPUSpec(name="V100", fp16_peak_tflops=112.0, mem_bandwidth_gbps=900.0)


@dataclass(frozen=True)
class LinkSpec:
    """An interconnect's α–β parameters.

    ``bandwidth_gbps`` is the *effective* point-to-point bandwidth seen by
    NCCL-style collectives (GB/s), ``latency_s`` the per-round α term.
    ``ring_scales_with_world`` marks fully-connected fabrics (NVLink)
    where a p-GPU ring drives p links concurrently, so aggregate bus
    bandwidth grows ≈ p/2 — this is what makes the paper's TP=4 rows
    cheaper per byte than TP=2 and flips Table 6's ordering in favour of
    TP4, PP4.
    """

    name: str
    bandwidth_gbps: float
    latency_s: float
    ring_scales_with_world: bool = False
    #: Effective bandwidth for point-to-point (pipeline) transfers, which
    #: often outrun a congested ring collective on the same fabric. None
    #: means "same as bandwidth_gbps".
    p2p_bandwidth_gbps: float | None = None

    @property
    def p2p_gbps(self) -> float:
        return self.p2p_bandwidth_gbps if self.p2p_bandwidth_gbps is not None else self.bandwidth_gbps

    def scaled(self, bw_factor: float, latency_factor: float = 1.0) -> "LinkSpec":
        """A degraded (or upgraded) copy of this link.

        ``bw_factor`` scales both the collective and the point-to-point
        bandwidth; ``latency_factor`` scales the α term.  Used to model a
        congested or downtrained link without inventing a new fabric:
        ``LINKS[LinkType.NVLINK].scaled(0.25)`` is "NVLink at quarter
        bandwidth".
        """
        if bw_factor <= 0 or latency_factor <= 0:
            raise ValueError("scale factors must be positive")
        return LinkSpec(
            name=f"{self.name} (bw x{bw_factor:g})",
            bandwidth_gbps=self.bandwidth_gbps * bw_factor,
            latency_s=self.latency_s * latency_factor,
            ring_scales_with_world=self.ring_scales_with_world,
            p2p_bandwidth_gbps=(None if self.p2p_bandwidth_gbps is None
                                else self.p2p_bandwidth_gbps * bw_factor),
        )


@dataclass(frozen=True)
class LinkModel:
    """Heterogeneous link/compute assignment over a TP × PP layout.

    All maps are sparse: anything not named falls back to the layout's
    homogeneous default, so a :class:`LinkModel` only describes the
    *deviation* from a uniform cluster.

    - ``tp_links``: pipeline stage → link its TP collectives travel over
      (e.g. stage 0 on NVLink, stage 1 on PCIe).
    - ``pp_links``: boundary index → link the boundary activation
      crosses (mixed NVLink/PCIe/Ethernet pipelines).
    - ``slow_ranks``: global rank → compute-time multiplier ≥ 1 (a 1.5
      means that rank's kernels take 1.5× as long — a straggler).  A
      stage is gated by its slowest rank.
    """

    tp_links: dict[int, "LinkType | LinkSpec"] = field(default_factory=dict)
    pp_links: dict[int, "LinkType | LinkSpec"] = field(default_factory=dict)
    slow_ranks: dict[int, float] = field(default_factory=dict)

    def __post_init__(self):
        for rank, mult in self.slow_ranks.items():
            if mult < 1.0:
                raise ValueError(
                    f"slow_ranks[{rank}] must be >= 1.0 (got {mult}); model "
                    "a faster cluster by scaling the calibration instead")

    def tp_link(self, stage: int):
        """Override link for stage ``stage``'s TP group, or None."""
        return self.tp_links.get(stage)

    def pp_link(self, boundary: int, default):
        """Link for boundary ``boundary`` (falls back to ``default``)."""
        return self.pp_links.get(boundary, default)

    def stage_slowdown(self, stage: int, tp: int) -> float:
        """Compute multiplier gating ``stage``: its slowest rank's factor."""
        ranks = range(stage * tp, (stage + 1) * tp)
        return max((self.slow_ranks.get(r, 1.0) for r in ranks), default=1.0)


#: Effective link parameters. Bandwidths are effective (not line-rate):
#: - NVLink: the paper quotes 40 GB/s intra-node for p3.8xlarge;
#:   fully-connected, so collective bandwidth scales with the ring size.
#: - PCIe: all four local GPUs share one bridge (no scaling); Table 4's
#:   Tensor-Comm column (48 forward collectives of 32 MB in 150.7 ms)
#:   implies ~10 GB/s effective.
#: - Ethernet: 10 Gbps line rate → 1.25 GB/s, ~1.0 GB/s effective.
#: The Ethernet p2p rate (4 GB/s) is fit to Table 9's w/o column (77.8–97.7
#: ms per boundary per iteration at micro-batch 128 × 8 microbatches). It
#: exceeds the quoted 10 Gbps line rate — the paper's own pipeline numbers
#: do too, suggesting multi-flow/placement effects — and is kept as a
#: calibrated effective constant.
LINKS: dict[LinkType, LinkSpec] = {
    LinkType.NVLINK: LinkSpec("NVLink", bandwidth_gbps=40.0, latency_s=10e-6,
                              ring_scales_with_world=True),
    LinkType.PCIE: LinkSpec("PCIe (shared bridge)", bandwidth_gbps=10.0, latency_s=15e-6),
    LinkType.ETHERNET: LinkSpec("10GbE", bandwidth_gbps=1.0, latency_s=50e-6,
                                p2p_bandwidth_gbps=4.0),
}
