"""Learning-rate schedules as callables step -> lr multiplier."""

from __future__ import annotations

__all__ = ["LRSchedule", "ConstantLR", "WarmupLinearLR"]


class LRSchedule:
    """Base schedule: drives ``optimizer.lr`` each call to :meth:`step`."""

    def __init__(self, optimizer, base_lr: float | None = None):
        self.optimizer = optimizer
        self.base_lr = base_lr if base_lr is not None else optimizer.lr
        self._step = 0

    def multiplier(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self._step += 1
        lr = self.base_lr * self.multiplier(self._step)
        self.optimizer.lr = lr
        return lr

    def state_dict(self) -> dict:
        return {"step": self._step}

    def load_state_dict(self, state: dict) -> None:
        self._step = int(state["step"])


class ConstantLR(LRSchedule):
    """No-op schedule."""

    def multiplier(self, step: int) -> float:
        return 1.0


class WarmupLinearLR(LRSchedule):
    """Linear warmup followed by linear decay to zero (BERT default)."""

    def __init__(self, optimizer, warmup_steps: int, total_steps: int, base_lr: float | None = None):
        super().__init__(optimizer, base_lr)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.warmup_steps = max(warmup_steps, 0)
        self.total_steps = total_steps

    def multiplier(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return step / self.warmup_steps
        remaining = max(self.total_steps - step, 0)
        denom = max(self.total_steps - self.warmup_steps, 1)
        return remaining / denom
