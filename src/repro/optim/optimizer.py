"""SGD / Adam / AdamW on :class:`repro.nn.Parameter` lists."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "AdamW"]


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: list[Tensor], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        self.step_count += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            self._update(i, p)

    def _update(self, index: int, p: Tensor) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Serializable optimizer state for checkpointing.

        Slot buffers are keyed by parameter *index*, which is stable
        across a fresh model construction from the same config (parameter
        registration order is deterministic) — the checkpoint needs no
        name mapping.
        """
        return {"step_count": self.step_count, "lr": self.lr,
                "slots": self._slot_state()}

    def load_state_dict(self, state: dict) -> None:
        self.step_count = int(state["step_count"])
        self.lr = float(state["lr"])
        self._load_slot_state(state.get("slots", {}))

    def _slot_state(self) -> dict[str, dict[int, np.ndarray]]:
        """Per-subclass slot buffers (momenta etc.); base class has none."""
        return {}

    def _load_slot_state(self, slots: dict) -> None:
        pass

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm in place; returns the pre-clip norm."""
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float((p.grad.astype(np.float64) ** 2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad *= scale
        return norm


class SGD(Optimizer):
    """SGD with optional momentum and weight decay."""

    def __init__(self, params, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def _update(self, index: int, p: Tensor) -> None:
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        if self.momentum:
            v = self._velocity.get(index)
            v = self.momentum * v + g if v is not None else g.copy()
            self._velocity[index] = v
            g = v
        p.data -= self.lr * g

    def _slot_state(self) -> dict[str, dict[int, np.ndarray]]:
        return {"velocity": {i: v.copy() for i, v in self._velocity.items()}}

    def _load_slot_state(self, slots: dict) -> None:
        self._velocity = {int(i): np.asarray(v).copy()
                          for i, v in slots.get("velocity", {}).items()}


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}

    def _effective_grad(self, p: Tensor) -> np.ndarray:
        if self.weight_decay:
            return p.grad + self.weight_decay * p.data
        return p.grad

    def _update(self, index: int, p: Tensor) -> None:
        b1, b2 = self.betas
        g = self._effective_grad(p)
        m = self._m.get(index)
        v = self._v.get(index)
        m = b1 * m + (1 - b1) * g if m is not None else (1 - b1) * g
        v = b2 * v + (1 - b2) * g * g if v is not None else (1 - b2) * g * g
        self._m[index], self._v[index] = m, v
        mhat = m / (1 - b1**self.step_count)
        vhat = v / (1 - b2**self.step_count)
        p.data -= self.lr * mhat / (np.sqrt(vhat) + self.eps)

    def _slot_state(self) -> dict[str, dict[int, np.ndarray]]:
        return {"m": {i: m.copy() for i, m in self._m.items()},
                "v": {i: v.copy() for i, v in self._v.items()}}

    def _load_slot_state(self, slots: dict) -> None:
        self._m = {int(i): np.asarray(m).copy()
                   for i, m in slots.get("m", {}).items()}
        self._v = {int(i): np.asarray(v).copy()
                   for i, v in slots.get("v", {}).items()}


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def _effective_grad(self, p: Tensor) -> np.ndarray:
        return p.grad

    def _update(self, index: int, p: Tensor) -> None:
        if self.weight_decay:
            p.data -= self.lr * self.weight_decay * p.data
        super()._update(index, p)
