"""Optimizers and learning-rate schedules."""

from repro.optim.optimizer import Optimizer, SGD, Adam, AdamW
from repro.optim.lr_scheduler import LRSchedule, ConstantLR, WarmupLinearLR

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "LRSchedule", "ConstantLR", "WarmupLinearLR"]
