"""Figure 5: the §4.7 analytical model against (simulated) ground truth."""

import numpy as np

from repro.experiments import figure5_fit
from repro.experiments.report import format_table


def test_fig5_perfmodel_fit(timed_run):
    result = timed_run(figure5_fit)
    measured, predicted = result["measured"], result["predicted"]
    rows = [
        {
            "hidden": h,
            "comp_meas": m_c,
            "comp_pred": p_c,
            "comm_meas": m_k,
            "comm_pred": p_k,
            "overhead_meas": m_o,
            "overhead_pred": p_o,
            "speedup": s,
        }
        for h, m_c, p_c, m_k, p_k, m_o, p_o, s in zip(
            measured["hiddens"], measured["comp_ms"], predicted["comp_pred_ms"],
            measured["comm_ms"], predicted["comm_pred_ms"],
            measured["overhead_ms"], predicted["overhead_pred_ms"],
            predicted["speedup"],
        )
    ]
    print("\n" + format_table(rows, title="Figure 5 — perf-model fit (one transformer layer, TP=4)"))
    params = result["params"]
    print(f"alpha={params.alpha:.3e} ms/FLOP  beta={params.beta:.3e} ms/elem  "
          f"gamma={params.gamma:.3e} ms/elem  c={params.comm_const_ms:.3f} ms  "
          f"d={params.comm_threshold_elems:.0f} elems")

    big = [r for r in rows if r["hidden"] >= 1024]
    # (a) compute prediction within 30% at large hidden sizes (the paper
    # notes small-h fits are unusable; α is fit at the largest size).
    for r in big:
        assert abs(r["comp_pred"] - r["comp_meas"]) < 0.5 * r["comp_meas"]
    # (b) comm prediction tracks measurement above the threshold.
    for r in big:
        assert abs(r["comm_pred"] - r["comm_meas"]) < 0.3 * r["comm_meas"]
    # (c) overhead is linear in B·s·h: prediction within 20%.
    for r in big:
        assert abs(r["overhead_pred"] - r["overhead_meas"]) < 0.2 * max(r["overhead_meas"], 1e-9)
    # (d) speedup declines monotonically with hidden size toward 1.
    speedups = [r["speedup"] for r in big]
    assert speedups == sorted(speedups, reverse=True)
    assert speedups[-1] > 1.0
