"""Table 10: weak-scaling speedup of AE compression (Eq. 3)."""

from repro.experiments import format_table, table10_weak_scaling


def test_table10_weak_scaling(timed_run):
    rows = timed_run(table10_weak_scaling)
    print("\n" + format_table(rows, title="Table 10 — weak-scaling AE speedup (Eq. 3, Megatron configs)"))
    speedups = [r["speedup"] for r in rows]
    # All configurations retain a real speedup (paper: 1.46×–1.91×).
    assert all(s > 1.15 for s in speedups)
    # Speedup declines as hidden grows…
    assert speedups == sorted(speedups, reverse=True)
    # …but node growth keeps it from collapsing: the h=25600 run still
    # holds most of the h=16384 run's benefit (paper plateaus at ~1.46).
    assert speedups[-1] > speedups[0] * 0.55
