"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table/figure, prints it (so the
captured bench output doubles as the reproduction record), and asserts the
paper's *shape* claims — who wins, rough factors, crossovers — not absolute
milliseconds (see EXPERIMENTS.md).

Timing goes through :func:`repro.bench.timing.timed` (the same helper the
``repro.bench`` suite uses): warmup + repeated rounds, median/IQR printed
per test.  Table generators are deterministic, so re-running them only
costs time; set ``REPRO_BENCH_ROUNDS=1 REPRO_BENCH_WARMUP=0`` to get the
old time-it-once behaviour.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.timing import timed


def run_timed(fn, *args, label: str = "", **kwargs):
    """Time ``fn`` with the shared median helper and return its result."""
    warmup = int(os.environ.get("REPRO_BENCH_WARMUP", "1"))
    rounds = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
    timing = timed(fn, *args, warmup=warmup, rounds=rounds, **kwargs)
    name = label or getattr(fn, "__name__", "fn")
    print(f"\n[timed] {name}: median {timing.median_ms:.2f} ms "
          f"(IQR {timing.iqr_ms:.2f} ms, rounds {timing.rounds})")
    return timing.result


@pytest.fixture
def timed_run(request):
    """Fixture form of :func:`run_timed`, labelled with the test name."""

    def _run(fn, *args, **kwargs):
        return run_timed(fn, *args, label=request.node.name, **kwargs)

    return _run
