"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table/figure, prints it (so the
captured bench output doubles as the reproduction record), and asserts the
paper's *shape* claims — who wins, rough factors, crossovers — not absolute
milliseconds (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once through pytest-benchmark and return result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
