"""Table 5: fine-tuning accuracy per compression scheme (real training).

Quick profile (default): 4 tasks × 4 schemes. ``REPRO_PROFILE=full``
regenerates all 9 columns × 9 scheme rows (takes minutes).
"""

from repro.experiments import format_table, table5_glue_accuracy


def test_table5_glue_accuracy(timed_run):
    rows = timed_run(table5_glue_accuracy)
    print("\n" + format_table(rows, title="Table 5 — GLUE fine-tune scores (×100), TP=2 PP=2, last-half policy"))
    by = {r["scheme"]: r for r in rows}
    wo = by["w/o"]
    # Takeaway 2: AE and quantization preserve accuracy; Top-K does not.
    # Margins allow for the synthetic CoLA analogue's high-variance training
    # "click" (±15 on a 4-task average; see EXPERIMENTS.md).
    assert by["Q2"]["Avg."] > wo["Avg."] - 15.0
    assert by["A2"]["Avg."] > wo["Avg."] - 15.0
    assert by["T1"]["Avg."] < wo["Avg."]
    assert by["T1"]["Avg."] == min(r["Avg."] for r in rows)
    # The baseline genuinely learns the suite.
    assert wo["Avg."] > 65.0
    # CoLA is the most fragile task: no Top-K run ever trains it properly
    # (the paper's zeros; our analogue never exceeds MCC 0.25 under T1).
    if "CoLA" in wo:
        assert by["T1"]["CoLA"] < 25.0
