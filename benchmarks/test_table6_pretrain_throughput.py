"""Table 6: pre-training iteration times on 4 nodes (16 V100s)."""

from repro.experiments import format_table, table6_pretrain


def test_table6_pretrain_throughput(timed_run):
    rows = timed_run(table6_pretrain)
    print("\n" + format_table(rows, title="Table 6 — pre-train iteration time (ms), 4×p3.8xlarge, micro=128 s=128"))
    by = {r["setting"]: r for r in rows}
    best = by["TP=4, PP=4"]
    # TP=4, PP=4 is the best distributed setting (TP stays on NVLink).
    assert best["w/o"] < by["TP=2, PP=8"]["w/o"]
    assert best["w/o"] < by["TP=8, PP=2"]["w/o"]
    # TP spanning nodes (TP=8) is ~an order of magnitude slower.
    assert by["TP=8, PP=2"]["w/o"] > 7 * best["w/o"]
    # Takeaway 3: AE and Top-K improve pre-training; quantization does not.
    assert best["A1"] < best["w/o"]
    assert best["A2"] < best["w/o"]
    assert best["T1"] < best["w/o"]
    assert best["Q1"] > best["w/o"]
    assert best["Q2"] > best["w/o"]
    assert best["R1"] > 5 * best["w/o"]
    # Paper: AE speeds pre-training up by ~16%; require at least 10%.
    assert best["w/o"] / min(best["A1"], best["A2"]) > 1.10
