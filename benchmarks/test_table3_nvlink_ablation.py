"""Table 3: AE with vs without NVLink — bandwidth gates the benefit."""

from repro.experiments import format_table, table3_nvlink_ablation


def test_table3_nvlink_ablation(timed_run):
    rows = timed_run(table3_nvlink_ablation)
    print("\n" + format_table(rows, title="Table 3 — w/o vs AE, with/without NVLink (ms)"))
    nv = {r["setting"]: r for r in rows if r["machine"] == "With NVLink"}
    pcie = {r["setting"]: r for r in rows if r["machine"] == "Without NVLink"}
    # Takeaway: the AE speedup appears only on the slower interconnect.
    nv_speedup = nv["TP=4, PP=1"]["w/o"] / nv["TP=4, PP=1"]["A1"]
    pcie_speedup = pcie["TP=4, PP=1"]["w/o"] / pcie["TP=4, PP=1"]["A1"]
    assert pcie_speedup > nv_speedup
    # Paper: up to ~17.8% end-to-end without NVLink; we require >8%.
    assert pcie_speedup > 1.08
    # Without TP communication (TP=1), AE still helps slightly via the
    # pipeline boundary on the PCIe box.
    assert pcie["TP=1, PP=4"]["A1"] <= pcie["TP=1, PP=4"]["w/o"] * 1.02
