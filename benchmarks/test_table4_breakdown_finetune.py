"""Table 4: per-phase breakdown on the PCIe machine, TP=2 PP=2."""

from repro.experiments import format_table, table4_breakdown_finetune


def test_table4_breakdown_finetune(timed_run):
    rows = timed_run(table4_breakdown_finetune)
    print("\n" + format_table(rows, title="Table 4 — breakdown (ms), PCIe, TP=2 PP=2, b=32 s=512"))
    by = {r["scheme"]: r for r in rows}
    wo, a1 = by["w/o"], by["A1"]
    # AE halves-or-better the tensor communication time (paper: 150.7→80.9).
    assert a1["tensor_comm"] < wo["tensor_comm"] * 0.62
    # AE's encode/decode overhead is small (single-digit ms).
    assert a1["tensor_enc"] + a1["tensor_dec"] < 15
    # Top-K's encode overhead dwarfs AE's (paper: 70.1 vs 2.2 ms).
    assert by["T1"]["tensor_enc"] > 10 * a1["tensor_enc"]
    # Random-K's Python-sampling encode dominates its entire iteration.
    assert by["R1"]["tensor_enc"] > by["R1"]["backward"]
    assert by["R4"]["tensor_enc"] > by["R3"]["tensor_enc"] > by["R2"]["tensor_enc"]
    # Backward time barely changes across schemes (f all-reduces stay dense);
    # AE adds a few ms of backward GEMMs.
    for scheme in ["T1", "T4", "Q1", "Q2", "R1"]:
        assert abs(by[scheme]["backward"] - wo["backward"]) < 0.15 * wo["backward"]
    assert a1["backward"] >= wo["backward"]
    # End-to-end: only AE beats the baseline on this machine.
    assert a1["total"] < wo["total"]
    for scheme in ["T1", "T2", "T3", "T4", "R1", "Q1"]:
        assert by[scheme]["total"] > wo["total"] * 0.99
