"""Table 7: pre-training breakdown at TP=4 PP=4."""

from repro.experiments import format_table, table7_breakdown_pretrain


def test_table7_breakdown_pretrain(timed_run):
    rows = timed_run(table7_breakdown_pretrain)
    print("\n" + format_table(rows, title="Table 7 — pre-train breakdown (ms), TP=4 PP=4, micro=128 global=1024"))
    by = {r["scheme"]: r for r in rows}
    wo = by["w/o"]
    # Compression slashes waiting & pipeline time (inter-node bandwidth is
    # the bottleneck): paper 528 → 233 for A1.
    assert by["A1"]["wait_pipeline"] < wo["wait_pipeline"] * 0.6
    assert by["T1"]["wait_pipeline"] < wo["wait_pipeline"] * 0.6
    # Quantization makes the pipeline *worse* (multi-tensor + dense backward).
    assert by["Q1"]["wait_pipeline"] > wo["wait_pipeline"] * 1.5
    # Random-K's encode is still catastrophic at pre-training scale.
    assert by["R1"]["tensor_enc"] > 10 * by["T1"]["tensor_enc"]
    assert by["R1"]["total"] > 8 * wo["total"]
