"""Ablation (§3.1's exclusion, made empirical): PowerSGD on activations.

The paper excludes low-rank compression because Fig. 2 shows activations
are not low-rank. This bench runs PowerSGD anyway, head-to-head against AE
at a matched wire budget, on real gradients and activations from a trained
model — turning the exclusion argument into a measurement.
"""

import numpy as np

from repro.analysis import collect_gradient_and_activation
from repro.compression import AutoencoderCompressor, PowerSGDCompressor


def test_powersgd_fails_on_activations(timed_run):
    def run():
        grad, act = collect_gradient_and_activation(batch=8, seq=16, seed=0)
        rows = []
        for rank in (2, 4, 8):
            cg = PowerSGDCompressor(rank=rank, warm_start=False, seed=0)
            ca = PowerSGDCompressor(rank=rank, warm_start=False, seed=0)
            grad_err = min(np.linalg.norm(cg.roundtrip(grad) - grad) for _ in range(3)) \
                / np.linalg.norm(grad)
            act_err = min(np.linalg.norm(ca.roundtrip(act) - act) for _ in range(3)) \
                / np.linalg.norm(act)
            rows.append({"rank": rank, "grad_err": grad_err, "act_err": act_err})
        return rows

    rows = timed_run(run)
    print("\nAblation — PowerSGD relative reconstruction error:")
    for r in rows:
        print(f"  rank {r['rank']}: gradient {r['grad_err']:.3f}   "
              f"activation {r['act_err']:.3f}")
    # The exclusion claim: at every rank, gradients compress far better.
    for r in rows:
        assert r["act_err"] > r["grad_err"]
    # And the gap is large at small rank (where compression is worthwhile).
    assert rows[0]["act_err"] > rows[0]["grad_err"] + 0.2


def test_trained_ae_beats_powersgd_on_activations(timed_run):
    """A *learned* linear code beats per-call power iteration at equal
    wire budget — why the paper's learning-based family wins."""

    def run():
        _, act = collect_gradient_and_activation(batch=8, seq=16, seed=0)
        h = act.shape[-1]
        rank = 8
        psgd = PowerSGDCompressor(rank=rank, warm_start=False, seed=0)
        psgd_err = np.linalg.norm(psgd.roundtrip(act) - act) / np.linalg.norm(act)

        ae = AutoencoderCompressor(hidden=h, code_dim=rank, seed=0)
        from repro.optim import Adam
        from repro.tensor import Tensor

        opt = Adam(ae.parameters(), lr=1e-2)
        for _ in range(300):
            opt.zero_grad()
            t = Tensor(act)
            loss = ((ae.apply(t) - t) ** 2).mean()
            loss.backward()
            opt.step()
        ae_err = ae.reconstruction_error(act)
        return psgd_err, ae_err

    psgd_err, ae_err = timed_run(run)
    print(f"\nAblation — activation reconstruction at equal code size: "
          f"PowerSGD {psgd_err:.3f} vs trained AE {ae_err:.3f}")
    assert ae_err < psgd_err
