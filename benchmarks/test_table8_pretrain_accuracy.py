"""Table 8: pre-train *with* compression, fine-tune without.

Each scheme pre-trains its own backbone (AE parameters are dropped when
loading — takeaway 5's "remove the AE during fine-tuning").
"""

from repro.experiments import format_table, table8_pretrain_accuracy


def test_table8_pretrain_accuracy(timed_run):
    rows = timed_run(table8_pretrain_accuracy)
    print("\n" + format_table(rows, title="Table 8 — fine-tune scores from compressed pre-training checkpoints"))
    by = {r["scheme"]: r for r in rows}
    wo = by["w/o"]
    # Takeaway 5's positive half: AE pre-training costs nothing — the
    # checkpoint fine-tunes at least as well as the uncompressed one after
    # the AE parameters are discarded (paper: 82.96 vs 82.89).
    assert by["A2"]["Avg."] > wo["Avg."] - 10.0
    # Ordering: Top-K pre-training never beats AE pre-training. (The paper's
    # *magnitude* of Top-K damage — 51.6 vs 82.9 — does not reproduce at our
    # 4-layer scale, where two compressed layers during a short pre-training
    # are easily compensated; see EXPERIMENTS.md "Known deviations".)
    assert by["T2"]["Avg."] <= by["A2"]["Avg."]
    if "RTE" in wo:
        assert by["T2"]["RTE"] <= by["A2"]["RTE"]
