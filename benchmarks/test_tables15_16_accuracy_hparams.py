"""Tables 15–16: accuracy under the (batch, sequence) hyper-parameter sweep."""

from repro.experiments import format_table, tables15_16_accuracy


def test_tables15_16_accuracy_hparams(timed_run):
    tables = timed_run(tables15_16_accuracy)
    for key, rows in tables.items():
        print("\n" + format_table(rows, title=f"{key} — GLUE scores (×100), TP=2 PP=2"))
    # The scheme ordering is batch-size independent: the baseline and the
    # low-distortion schemes never fall behind Top-K in either sweep (at
    # b=8 on the easy tasks Top-K's damage can vanish entirely — a tie —
    # which matches the paper's "ordering unchanged, dips small").
    for key, rows in tables.items():
        by = {r["scheme"]: r for r in rows}
        assert by["w/o"]["Avg."] >= by["T1"]["Avg."], key
        assert by["Q2"]["Avg."] >= by["T1"]["Avg."], key
    # At the default batch the separation is real.
    b32 = {r["scheme"]: r for r in tables["table15_b32"]}
    assert b32["w/o"]["Avg."] > b32["T1"]["Avg."]
