"""Table 9: per-pipeline-boundary communication, w/o vs A2."""

from repro.experiments import format_table, table9_stage_comm


def test_table9_stage_comm(timed_run):
    rows = timed_run(table9_stage_comm)
    print("\n" + format_table(rows, title="Table 9 — per-boundary comm time (ms/iteration), PP=4, last-12 policy"))
    first, second, third = rows
    # The first boundary feeds an uncompressed layer → unchanged.
    assert abs(first["comm_A2"] - first["comm_wo"]) < 1e-6
    # The compressed boundaries drop ~6–10× (paper: 88.7→13.2, 97.7→14.1).
    for row in (second, third):
        ratio = row["comm_wo"] / row["comm_A2"]
        assert 4.0 < ratio < 15.0, ratio
