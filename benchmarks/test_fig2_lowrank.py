"""Figure 2: gradients are low-rank; activations are not."""

import numpy as np

from repro.experiments import figure2_lowrank


def test_fig2_lowrank(timed_run):
    report = timed_run(figure2_lowrank)
    g, a = report["gradient"], report["activation"]
    print("\nFigure 2 — cumulative singular-value mass (fraction of dims -> fraction of mass)")
    for frac in (0.1, 0.25, 0.5):
        gi = int(frac * len(g["dims"]))
        ai = int(frac * len(a["dims"]))
        print(f"  top {int(frac*100):3d}% dims: gradient {g['cumulative'][gi]:.2f}  "
              f"activation {a['cumulative'][ai]:.2f}")
    print(f"  AUC: gradient {g['auc']:.3f}  activation {a['auc']:.3f}")
    # Shape: the gradient's spectrum concentrates (AUC near 1); the
    # activation's hugs the diagonal (AUC near 0.5–0.7).
    assert report["gradient_is_lower_rank"]
    assert g["auc"] > 0.85
    assert a["auc"] < 0.8
    # The activation curve is near-linear: no 10% of dims holds >50% mass.
    ai = int(0.1 * len(a["dims"]))
    assert a["cumulative"][ai] < 0.5
