"""Micro-benchmarks of the compressor kernels themselves.

These time our actual NumPy implementations. Note the contrast with the
*simulated* costs: our Random-K uses vectorized ``Generator.choice`` and
is fast; the paper's Python ``random.sample`` encoder is the reason its R
rows blow up — the simulator reproduces the paper's kernel, not ours.
"""

import numpy as np
import pytest

from repro.compression import (
    AutoencoderCompressor,
    QuantizationCompressor,
    RandomKCompressor,
    TopKCompressor,
)

ACTIVATION = np.random.default_rng(0).normal(size=(32, 128, 64)).astype(np.float32)


@pytest.mark.parametrize("name,comp", [
    ("topk", TopKCompressor(0.05)),
    ("randomk", RandomKCompressor(0.05)),
    ("quant4", QuantizationCompressor(4)),
    ("ae", AutoencoderCompressor(64, 6)),
])
def test_compress_roundtrip_speed(timed_run, name, comp):
    out = timed_run(lambda: comp.decompress(comp.compress(ACTIVATION)))
    assert out.shape == ACTIVATION.shape
