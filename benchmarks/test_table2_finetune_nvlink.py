"""Table 2: fine-tune iteration times on the NVLink machine (b=32, s=512)."""

from repro.experiments import format_table, table2_finetune_nvlink


def test_table2_finetune_nvlink(timed_run):
    rows = timed_run(table2_finetune_nvlink)
    print("\n" + format_table(rows, title="Table 2 — fine-tune iteration time (ms), NVLink, b=32 s=512"))
    by = {r["setting"]: r for r in rows}
    for setting, row in by.items():
        # Takeaway 1: with NVLink, no non-learning scheme beats the baseline.
        for scheme in ["T1", "T2", "T3", "T4", "R1", "R2", "R3", "R4", "Q1", "Q2"]:
            assert row[scheme] >= row["w/o"] * 0.99, (setting, scheme)
        # Random-K is catastrophically slower where TP communication exists.
        if setting != "TP=1, PP=4":
            assert row["R1"] > 3 * row["w/o"]
            assert row["R4"] > row["R3"] > row["R2"] > row["R1"]
    # AE is within a few percent of the baseline everywhere on NVLink.
    for row in rows:
        assert row["A1"] < row["w/o"] * 1.10
    # TP=4, PP=1 is the fastest uncompressed setting (as in the paper).
    assert by["TP=4, PP=1"]["w/o"] < by["TP=2, PP=2"]["w/o"] < by["TP=1, PP=4"]["w/o"]
