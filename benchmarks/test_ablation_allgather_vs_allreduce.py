"""Ablation (DESIGN.md §5.3): the all-gather fallback's cost.

Sparse/quantized schemes cannot ride all-reduce (two tensors / non-float
dtypes) and fall back to all-gather + local sum. This ablation quantifies
how much of those schemes' slowdown is the collective switch itself, by
simulating a counterfactual Top-K that *could* use all-reduce.
"""

from repro.compression.notation import scheme_spec
from repro.parallel.topology import ClusterTopology, LinkType
from repro.simulator import SimSetting, allgather_time, allreduce_time


def test_allgather_penalty_grows_with_world(timed_run):
    def run():
        spec = scheme_spec("T2")
        batch, seq, hidden = 32, 512, 1024
        msg = int(round(spec.fraction * batch * seq * hidden)) * 6
        rows = []
        for world in (2, 4, 8):
            ag = allgather_time(msg, world, LinkType.PCIE)
            ar = allreduce_time(msg, world, LinkType.PCIE)
            rows.append({"world": world, "allgather_ms": ag,
                         "allreduce_ms": ar, "penalty": ag / ar})
        return rows

    rows = timed_run(run)
    print("\nAblation — all-gather vs (counterfactual) all-reduce for T2's message:")
    for r in rows:
        print(f"  world={r['world']}: allgather {r['allgather_ms']:.3f} ms, "
              f"allreduce {r['allreduce_ms']:.3f} ms, penalty {r['penalty']:.2f}x")
    # All-gather moves (p−1)·msg per rank vs all-reduce's 2(p−1)/p·msg:
    # the penalty approaches p/2 and grows with the world size.
    penalties = [r["penalty"] for r in rows]
    assert penalties == sorted(penalties)
    assert penalties[-1] > 2.0
