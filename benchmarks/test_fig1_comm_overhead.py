"""Figure 1: model-parallel communication overhead vs (batch, seqlen)."""

from repro.experiments import figure1_comm_overhead, format_table


def test_fig1_comm_overhead(timed_run):
    rows = timed_run(figure1_comm_overhead)
    print("\n" + format_table(rows, title="Figure 1 — MP communication overhead (BERT-Large, TP=4, PCIe)"))
    # Shape: communication is a substantial fraction of iteration time at
    # the default fine-tuning setting (b=32, s=512).
    big = next(r for r in rows if r["batch"] == 32 and r["seq"] == 512)
    assert big["comm_fraction"] > 0.30
    # Absolute comm time grows with the activation size b·s.
    sizes = sorted(rows, key=lambda r: r["batch"] * r["seq"])
    comms = [r["comm_ms"] for r in sizes]
    assert comms == sorted(comms)
