"""Figure 4b: accuracy vs compressed-window location — early layers hurt."""

from repro.experiments import fig4b_location, format_table


def test_fig4b_location(timed_run):
    rows = timed_run(fig4b_location)
    print("\n" + format_table(rows, title="Figure 4b — score vs location of a 2-layer compressed window (A2)"))
    # Takeaway 7 (attenuated at our 4-layer depth — see EXPERIMENTS.md):
    # the earliest window is never the *uniquely best* placement, and all
    # window placements complete with in-range scores.
    for row in rows:
        assert -100.0 <= row["CoLA"] <= 100.0
        assert 0.0 <= row["RTE"] <= 100.0
    combined = [r["CoLA"] + r["RTE"] for r in rows]
    assert max(combined[1:]) >= combined[0] - 3.0
