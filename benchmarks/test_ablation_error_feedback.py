"""Ablation (DESIGN.md §5.1): does error feedback rescue sparsification?

The paper's implementation "allows the integration of error-feedback
compression algorithms" but does not evaluate them; this ablation measures
the reconstruction benefit EF brings to Top-K on realistic activations.
"""

import numpy as np

from repro.compression import ErrorFeedbackCompressor, TopKCompressor


def _activation_stream(n_steps=24, shape=(32, 64), seed=0):
    """Slowly-drifting activations, like consecutive training iterations."""
    rng = np.random.default_rng(seed)
    base = rng.normal(size=shape).astype(np.float32)
    for _ in range(n_steps):
        base = 0.95 * base + 0.05 * rng.normal(size=shape).astype(np.float32)
        yield base.copy()


def _cumulative_error(compressor, use_site=False):
    """Error of the *running sum* of reconstructions vs the true stream.

    This is the quantity error feedback provably bounds: with EF the sum of
    transmitted messages equals the sum of inputs up to the final residual,
    whereas plain sparsification drops the same (small-magnitude) mass
    every step and the omission accumulates.
    """
    total_x = total_r = None
    for x in _activation_stream():
        if use_site:
            msg = compressor.compress(x, site="abl")
        else:
            msg = compressor.compress(x)
        recon = compressor.decompress(msg)
        total_x = x if total_x is None else total_x + x
        total_r = recon if total_r is None else total_r + recon
    return float(np.linalg.norm(total_x - total_r) / np.linalg.norm(total_x))


def test_error_feedback_reduces_cumulative_error(timed_run):
    def run():
        plain = _cumulative_error(TopKCompressor(0.1))
        ef = _cumulative_error(ErrorFeedbackCompressor(TopKCompressor(0.1)), use_site=True)
        return plain, ef

    plain, ef = timed_run(run)
    print(f"\nAblation — Top-K 10% cumulative-stream error: "
          f"plain {plain:.3f}, with error feedback {ef:.3f}")
    assert ef < plain * 0.6


def test_error_feedback_decay_tradeoff(benchmark):
    """Stronger feedback (decay→1) corrects more of the dropped mass."""

    def run():
        return {
            decay: _cumulative_error(
                ErrorFeedbackCompressor(TopKCompressor(0.1), decay=decay),
                use_site=True,
            )
            for decay in (0.0, 0.5, 1.0)
        }

    errs = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation — EF decay sweep (cumulative error):",
          {k: round(v, 3) for k, v in errs.items()})
    # decay=0 is plain Top-K; full feedback should beat it clearly.
    assert errs[1.0] < errs[0.0]
