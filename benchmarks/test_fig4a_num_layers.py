"""Figure 4a: accuracy vs number of compressed layers (CoLA/RTE analogues)."""

from repro.experiments import fig4a_num_layers, format_table


def test_fig4a_num_layers(timed_run):
    rows = timed_run(fig4a_num_layers)
    print("\n" + format_table(rows, title="Figure 4a — score vs #final layers compressed (A2)"))
    # Takeaway 6: accuracy decreases as more layers are compressed.
    # Compare the uncompressed run with the all-layers run.
    first, last = rows[0], rows[-1]
    for task in ("CoLA", "RTE"):
        assert last[task] < first[task] + 3.0, task
    # Compressing half the layers stays within a few points of baseline
    # for the more robust RTE analogue.
    half = next(r for r in rows if r["layers_compressed"] == 2)
    assert half["RTE"] > first["RTE"] - 12.0
