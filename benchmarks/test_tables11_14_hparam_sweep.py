"""Tables 11–14: batch/sequence sweep — small messages kill the benefit."""

from repro.experiments import format_table, tables11_14_hparam_sweep


def test_tables11_14_hparam_sweep(timed_run):
    tables = timed_run(tables11_14_hparam_sweep)
    for key, rows in tables.items():
        print("\n" + format_table(rows, title=f"{key} — fine-tune time (ms), s=128"))
    # Takeaway 8: at s=128 compression stops paying. On NVLink no scheme
    # improves throughput at all (paper Tables 11–12); on PCIe only AE can
    # still eke out a small win (paper Table 13's underlined A1/A2 cells)
    # while the non-learning schemes always lose.
    for key, rows in tables.items():
        nvlink = "nvlink" in key
        for row in rows:
            for scheme in ["T1", "T4", "Q1", "Q3"]:
                assert row[scheme] > row["w/o"] * 0.97, (key, row["setting"], scheme)
            for scheme in ["A1", "A2"]:
                floor = 0.97 if nvlink else 0.88
                assert row[scheme] > row["w/o"] * floor, (key, row["setting"], scheme)
    # Random-K remains the worst everywhere TP communication exists.
    for key, rows in tables.items():
        for row in rows:
            if row["setting"] != "TP=1, PP=4":
                assert row["R4"] > row["R1"] > row["w/o"]
