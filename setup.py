"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so PEP 517
editable installs (which build a wheel) fail. ``pip install -e .`` falls back
to ``setup.py develop`` when this file exists and no build-system table forces
isolation. All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
