"""Tests for the Fig. 2 low-rank analysis."""

import numpy as np
import pytest

from repro.analysis import (
    collect_gradient_and_activation,
    lowrank_report,
    singular_value_profile,
    spectrum_auc,
)

RNG = np.random.default_rng(0)


class TestProfiles:
    def test_identity_spectrum_is_diagonal(self):
        dims, cum = singular_value_profile(np.eye(16))
        np.testing.assert_allclose(cum, dims)

    def test_rank_one_concentrates(self):
        m = np.outer(RNG.normal(size=20), RNG.normal(size=20))
        dims, cum = singular_value_profile(m)
        assert cum[0] == pytest.approx(1.0, abs=1e-6)

    def test_monotone_and_bounded(self):
        m = RNG.normal(size=(12, 30))
        dims, cum = singular_value_profile(m)
        assert (np.diff(cum) >= -1e-12).all()
        assert cum[-1] == pytest.approx(1.0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            singular_value_profile(np.zeros(5))

    def test_zero_matrix_rejected(self):
        with pytest.raises(ValueError):
            singular_value_profile(np.zeros((3, 3)))

    def test_auc_ordering(self):
        flat = spectrum_auc(np.eye(16))
        spiked = spectrum_auc(np.outer(np.ones(16), np.ones(16)) + 0.01 * RNG.normal(size=(16, 16)))
        assert flat == pytest.approx(0.5, abs=0.05)
        assert spiked > 0.9


class TestCollection:
    def test_shapes(self):
        grad, act = collect_gradient_and_activation(batch=4, seq=8)
        assert grad.shape == (64, 64)  # attention out projection, h×h
        assert act.shape == (4 * 8, 64)

    def test_gradient_lower_rank_than_activation(self):
        report = lowrank_report(seed=0)
        assert report["gradient"]["auc"] > report["activation"]["auc"]

    def test_stable_across_seeds(self):
        for seed in (1, 2):
            report = lowrank_report(seed=seed)
            assert report["gradient"]["auc"] > report["activation"]["auc"] + 0.05
