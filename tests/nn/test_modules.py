"""Tests for the Module system and core layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import ModuleList, Parameter
from repro.tensor import Tensor

RNG = np.random.default_rng(0)


class TestModuleSystem:
    def _toy(self):
        class Toy(nn.Module):
            def __init__(self):
                super().__init__()
                self.lin = nn.Linear(4, 3, np.random.default_rng(0))
                self.ln = nn.LayerNorm(3)

            def forward(self, x):
                return self.ln(self.lin(x))

        return Toy()

    def test_named_parameters_paths(self):
        toy = self._toy()
        names = {n for n, _ in toy.named_parameters()}
        assert names == {"lin.weight", "lin.bias", "ln.weight", "ln.bias"}

    def test_num_parameters(self):
        toy = self._toy()
        assert toy.num_parameters() == 4 * 3 + 3 + 3 + 3

    def test_zero_grad_clears(self):
        toy = self._toy()
        out = toy(Tensor(RNG.normal(size=(2, 4)).astype(np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in toy.parameters())
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())

    def test_state_dict_roundtrip(self):
        toy = self._toy()
        state = toy.state_dict()
        toy2 = self._toy()
        for p in toy2.parameters():
            p.data += 1.0
        toy2.load_state_dict(state)
        for (n1, p1), (n2, p2) in zip(toy.named_parameters(), toy2.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_load_state_dict_strict_mismatch(self):
        toy = self._toy()
        state = toy.state_dict()
        del state["lin.bias"]
        with pytest.raises(KeyError):
            toy.load_state_dict(state)
        toy.load_state_dict(state, strict=False)  # ok non-strict

    def test_load_state_dict_shape_mismatch(self):
        toy = self._toy()
        state = toy.state_dict()
        state["lin.weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            toy.load_state_dict(state)

    def test_train_eval_mode_recursive(self):
        toy = self._toy()
        toy.eval()
        assert all(not m.training for m in toy.modules())
        toy.train()
        assert all(m.training for m in toy.modules())

    def test_module_list_registration(self):
        ml = ModuleList([nn.LayerNorm(2), nn.LayerNorm(2)])
        assert len(ml) == 2
        assert len(list(ml.named_parameters())) == 4
        assert ml[0] is list(iter(ml))[0]


class TestLayers:
    def test_linear_shapes_and_values(self):
        lin = nn.Linear(4, 3, np.random.default_rng(0))
        x = RNG.normal(size=(2, 5, 4)).astype(np.float32)
        out = lin(Tensor(x))
        assert out.shape == (2, 5, 3)
        np.testing.assert_allclose(out.data, x @ lin.weight.data + lin.bias.data, rtol=1e-5)

    def test_linear_no_bias(self):
        lin = nn.Linear(4, 3, np.random.default_rng(0), bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_embedding_lookup(self):
        emb = nn.Embedding(10, 6, np.random.default_rng(0))
        ids = np.array([[0, 3], [9, 3]])
        out = emb(ids)
        assert out.shape == (2, 2, 6)
        np.testing.assert_array_equal(out.data[0, 1], out.data[1, 1])

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0, np.random.default_rng(0))

    def test_layernorm_normalizes(self):
        ln = nn.LayerNorm(8)
        x = Tensor(RNG.normal(size=(3, 8)).astype(np.float32) * 5 + 2)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0, atol=1e-5)


class TestAttention:
    def test_output_shape(self):
        attn = nn.MultiHeadAttention(16, 4, np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(2, 5, 16)).astype(np.float32))
        assert attn(x).shape == (2, 5, 16)

    def test_heads_must_divide(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(10, 3, np.random.default_rng(0))

    def test_padding_mask_blocks_attention(self):
        """Masked key positions must not influence outputs of other queries."""
        attn = nn.MultiHeadAttention(8, 2, np.random.default_rng(0))
        x1 = RNG.normal(size=(1, 4, 8)).astype(np.float32)
        x2 = x1.copy()
        x2[0, 3] = 99.0  # change only the padded position
        mask = np.zeros((1, 1, 1, 4), dtype=bool)
        mask[..., 3] = True
        out1 = attn(Tensor(x1), mask).data
        out2 = attn(Tensor(x2), mask).data
        # Positions 0-2 attend only to unmasked keys, so they match.
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-4)

    def test_gradients_flow_to_all_params(self):
        attn = nn.MultiHeadAttention(8, 2, np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(2, 3, 8)).astype(np.float32), requires_grad=True)
        attn(x).sum().backward()
        for name, p in attn.named_parameters():
            assert p.grad is not None, name
        assert x.grad is not None


class TestTransformerAndBert:
    def _config(self, **kw):
        defaults = dict(vocab_size=50, max_seq_len=16, hidden=16, num_layers=2, num_heads=2)
        defaults.update(kw)
        return nn.TransformerConfig(**defaults)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            nn.TransformerConfig(hidden=10, num_heads=3)

    def test_config_ffn_default(self):
        cfg = self._config()
        assert cfg.ffn_hidden == 4 * cfg.hidden

    def test_bert_large_dims(self):
        cfg = nn.TransformerConfig.bert_large()
        assert (cfg.num_layers, cfg.hidden, cfg.num_heads) == (24, 1024, 16)

    def test_encoder_forward_shape(self):
        cfg = self._config()
        enc = nn.TransformerEncoder(cfg, np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(2, 8, 16)).astype(np.float32))
        assert enc(x).shape == (2, 8, 16)

    def test_encoder_layer_hooks_called_in_order(self):
        cfg = self._config()
        enc = nn.TransformerEncoder(cfg, np.random.default_rng(0))
        calls = []
        enc.layer_hooks[0] = lambda t: (calls.append(0), t)[1]
        enc.layer_hooks[1] = lambda t: (calls.append(1), t)[1]
        enc(Tensor(RNG.normal(size=(1, 4, 16)).astype(np.float32)))
        assert calls == [0, 1]

    def test_bert_classifier_forward_and_loss(self):
        cfg = self._config(num_classes=3)
        model = nn.BertForSequenceClassification(cfg)
        ids = RNG.integers(0, 50, size=(4, 8))
        logits = model(ids)
        assert logits.shape == (4, 3)
        loss = model.loss(ids, np.array([0, 1, 2, 0]))
        assert loss.size == 1 and np.isfinite(loss.data)

    def test_bert_regression_head(self):
        cfg = self._config()
        model = nn.BertForSequenceClassification(cfg, regression=True)
        ids = RNG.integers(0, 50, size=(4, 8))
        preds = model.predict(ids)
        assert preds.shape == (4,)
        loss = model.loss(ids, RNG.normal(size=4))
        assert np.isfinite(loss.data)

    def test_bert_seq_len_guard(self):
        cfg = self._config()
        model = nn.BertModel(cfg)
        with pytest.raises(ValueError):
            model(RNG.integers(0, 50, size=(1, 32)))

    def test_bert_pretraining_mlm_loss(self):
        cfg = self._config()
        model = nn.BertForPreTraining(cfg)
        ids = RNG.integers(0, 50, size=(2, 8))
        labels = np.full((2, 8), model.IGNORE_INDEX)
        labels[0, 2] = 7
        labels[1, 5] = 3
        loss = model.loss(ids, labels)
        assert np.isfinite(loss.data)
        loss.backward()
        assert model.bert.token_embedding.weight.grad is not None

    def test_attention_mask_plumbs_through_bert(self):
        cfg = self._config()
        model = nn.BertModel(cfg)
        ids = RNG.integers(0, 50, size=(2, 8))
        am = np.ones((2, 8), dtype=np.int64)
        am[:, 6:] = 0
        out = model(ids, am)
        assert out.shape == (2, 8, 16)

    def test_deterministic_given_seed(self):
        cfg = self._config(seed=7)
        ids = RNG.integers(0, 50, size=(2, 8))
        m1 = nn.BertForSequenceClassification(cfg)
        m2 = nn.BertForSequenceClassification(cfg)
        np.testing.assert_array_equal(m1(ids).data, m2(ids).data)
