"""Finite-difference gradient checks for every autograd op.

Every backward rule in :mod:`repro.tensor` is validated against central
finite differences on small random inputs in float64-ish precision
(float32 arrays, 1e-3 step, loose tolerance).
"""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F
from repro.tensor.tensor import concatenate, split

RNG = np.random.default_rng(0)


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central finite-difference gradient of scalar-valued ``fn`` at ``x``."""
    g = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        orig = x[i]
        x[i] = orig + eps
        hi = fn(x)
        x[i] = orig - eps
        lo = fn(x)
        x[i] = orig
        g[i] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


def check_unary(op, shape=(3, 4), positive=False, atol=2e-2):
    x_data = RNG.normal(size=shape).astype(np.float32)
    if positive:
        x_data = np.abs(x_data) + 0.5

    def scalar_fn(arr):
        t = Tensor(arr.astype(np.float32))
        return float(op(t).sum().data)

    x = Tensor(x_data.copy(), requires_grad=True)
    out = op(x).sum()
    out.backward()
    num = numeric_grad(scalar_fn, x_data.astype(np.float64))
    np.testing.assert_allclose(x.grad, num, rtol=5e-2, atol=atol)


class TestElementwise:
    def test_add(self):
        check_unary(lambda t: t + 2.0)

    def test_sub(self):
        check_unary(lambda t: t - 1.5)

    def test_rsub(self):
        check_unary(lambda t: 1.5 - t)

    def test_mul(self):
        check_unary(lambda t: t * 3.0)

    def test_div(self):
        check_unary(lambda t: t / 2.0, positive=True)

    def test_rdiv(self):
        check_unary(lambda t: 2.0 / t, positive=True)

    def test_neg(self):
        check_unary(lambda t: -t)

    def test_pow(self):
        check_unary(lambda t: t**3)

    def test_exp(self):
        check_unary(lambda t: t.exp())

    def test_log(self):
        check_unary(lambda t: t.log(), positive=True)

    def test_tanh(self):
        check_unary(lambda t: t.tanh())

    def test_sqrt(self):
        check_unary(lambda t: t.sqrt(), positive=True)

    def test_abs(self):
        check_unary(lambda t: t.abs())

    def test_two_tensor_mul_broadcast(self):
        a_data = RNG.normal(size=(3, 4)).astype(np.float32)
        b_data = RNG.normal(size=(4,)).astype(np.float32)
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a * b).sum().backward()
        num_a = numeric_grad(
            lambda arr: float((Tensor(arr.astype(np.float32)) * Tensor(b_data)).sum().data),
            a_data.astype(np.float64),
        )
        num_b = numeric_grad(
            lambda arr: float((Tensor(a_data) * Tensor(arr.astype(np.float32))).sum().data),
            b_data.astype(np.float64),
        )
        np.testing.assert_allclose(a.grad, num_a, rtol=5e-2, atol=2e-2)
        np.testing.assert_allclose(b.grad, num_b, rtol=5e-2, atol=2e-2)


class TestMatmul:
    def test_2d(self):
        a_data = RNG.normal(size=(3, 4)).astype(np.float32)
        b_data = RNG.normal(size=(4, 5)).astype(np.float32)
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b_data.T, rtol=1e-5)
        np.testing.assert_allclose(b.grad, a_data.T @ np.ones((3, 5)), rtol=1e-5)

    def test_batched_times_2d(self):
        a_data = RNG.normal(size=(2, 3, 4)).astype(np.float32)
        w_data = RNG.normal(size=(4, 5)).astype(np.float32)
        a = Tensor(a_data.copy(), requires_grad=True)
        w = Tensor(w_data.copy(), requires_grad=True)
        (a @ w).sum().backward()
        expected_w = a_data.reshape(-1, 4).T @ np.ones((6, 5))
        np.testing.assert_allclose(w.grad, expected_w, rtol=1e-4)
        np.testing.assert_allclose(a.grad, np.ones((2, 3, 5)) @ w_data.T, rtol=1e-4)

    def test_batched_both(self):
        a = Tensor(RNG.normal(size=(2, 3, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 4, 5)).astype(np.float32), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)) @ Tensor(np.ones((3, 2)))


class TestReductionsAndShapes:
    def test_sum_axis(self):
        x = Tensor(RNG.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        x.sum(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_sum_keepdims(self):
        x = Tensor(RNG.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        (x.sum(axis=1, keepdims=True) * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * np.ones((3, 4)))

    def test_mean(self):
        x = Tensor(RNG.normal(size=(4,)).astype(np.float32), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full(4, 0.25))

    def test_max(self):
        data = np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]], dtype=np.float32)
        x = Tensor(data, requires_grad=True)
        x.max(axis=1).sum().backward()
        expected = np.zeros_like(data)
        expected[0, 1] = 1
        expected[1, 0] = 1
        np.testing.assert_allclose(x.grad, expected)

    def test_reshape(self):
        x = Tensor(RNG.normal(size=(2, 6)).astype(np.float32), requires_grad=True)
        (x.reshape(3, 4) * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * np.ones((2, 6)))

    def test_transpose(self):
        x = Tensor(RNG.normal(size=(2, 3, 4)).astype(np.float32), requires_grad=True)
        y = x.transpose(1, 0, 2)
        assert y.shape == (3, 2, 4)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_swapaxes(self):
        x = Tensor(RNG.normal(size=(2, 3)).astype(np.float32), requires_grad=True)
        x.swapaxes(0, 1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_getitem(self):
        x = Tensor(RNG.normal(size=(4, 3)).astype(np.float32), requires_grad=True)
        x[1:3].sum().backward()
        expected = np.zeros((4, 3))
        expected[1:3] = 1
        np.testing.assert_allclose(x.grad, expected)

    def test_concatenate(self):
        a = Tensor(RNG.normal(size=(2, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 3)).astype(np.float32), requires_grad=True)
        (concatenate([a, b], axis=0) * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, 3 * np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, 3 * np.ones((2, 3)))

    def test_split_roundtrip(self):
        x = Tensor(RNG.normal(size=(2, 6)).astype(np.float32), requires_grad=True)
        parts = split(x, 3, axis=1)
        assert [p.shape for p in parts] == [(2, 2)] * 3
        (parts[0].sum() + parts[2].sum()).backward()
        expected = np.ones((2, 6))
        expected[:, 2:4] = 0
        np.testing.assert_allclose(x.grad, expected)

    def test_split_indivisible(self):
        with pytest.raises(ValueError):
            split(Tensor(np.zeros((2, 5))), 3, axis=1)


class TestFunctional:
    def test_relu(self):
        check_unary(F.relu)

    def test_gelu(self):
        check_unary(F.gelu)

    def test_softmax(self):
        x_data = RNG.normal(size=(3, 5)).astype(np.float32)

        def scalar_fn(arr):
            return float((F.softmax(Tensor(arr.astype(np.float32))) * Tensor(w)).sum().data)

        w = RNG.normal(size=(3, 5)).astype(np.float32)
        x = Tensor(x_data.copy(), requires_grad=True)
        (F.softmax(x) * Tensor(w)).sum().backward()
        num = numeric_grad(scalar_fn, x_data.astype(np.float64))
        np.testing.assert_allclose(x.grad, num, rtol=5e-2, atol=2e-2)

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(4, 7)).astype(np.float32) * 20)
        s = F.softmax(x).data
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(RNG.normal(size=(4, 7)).astype(np.float32))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), rtol=1e-4, atol=1e-5
        )

    def test_cross_entropy_grad(self):
        logits_data = RNG.normal(size=(4, 3)).astype(np.float32)
        targets = np.array([0, 2, 1, 1])

        def scalar_fn(arr):
            return float(F.cross_entropy(Tensor(arr.astype(np.float32)), targets).data)

        x = Tensor(logits_data.copy(), requires_grad=True)
        F.cross_entropy(x, targets).backward()
        num = numeric_grad(scalar_fn, logits_data.astype(np.float64))
        np.testing.assert_allclose(x.grad, num, rtol=5e-2, atol=2e-2)

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(RNG.normal(size=(2, 3, 5)).astype(np.float32), requires_grad=True)
        targets = np.array([[1, -100, 2], [-100, -100, 0]])
        loss = F.cross_entropy(logits, targets, ignore_index=-100)
        loss.backward()
        # Ignored positions get zero gradient.
        assert np.allclose(logits.grad[0, 1], 0)
        assert np.allclose(logits.grad[1, 0], 0)
        assert not np.allclose(logits.grad[0, 0], 0)

    def test_cross_entropy_uniform_logits_value(self):
        logits = Tensor(np.zeros((2, 4), dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 3]))
        np.testing.assert_allclose(loss.data, np.log(4), rtol=1e-5)

    def test_mse_loss(self):
        pred_data = RNG.normal(size=(5,)).astype(np.float32)
        target = RNG.normal(size=(5,)).astype(np.float32)
        x = Tensor(pred_data.copy(), requires_grad=True)
        F.mse_loss(x, target).backward()
        np.testing.assert_allclose(x.grad, 2 * (pred_data - target) / 5, rtol=1e-4)

    def test_layer_norm_grad(self):
        x_data = RNG.normal(size=(2, 3, 6)).astype(np.float32)
        w = Tensor(np.ones(6, dtype=np.float32), requires_grad=True)
        b = Tensor(np.zeros(6, dtype=np.float32), requires_grad=True)

        def scalar_fn(arr):
            wt = Tensor(w.data)
            bt = Tensor(b.data)
            return float((F.layer_norm(Tensor(arr.astype(np.float32)), wt, bt) ** 1).sum().data)

        x = Tensor(x_data.copy(), requires_grad=True)
        F.layer_norm(x, w, b).sum().backward()
        num = numeric_grad(scalar_fn, x_data.astype(np.float64))
        np.testing.assert_allclose(x.grad, num, rtol=8e-2, atol=3e-2)
        # bias grad is just the sum of upstream ones
        np.testing.assert_allclose(b.grad, np.full(6, 6.0), rtol=1e-4)

    def test_layer_norm_output_stats(self):
        x = Tensor(RNG.normal(size=(4, 8)).astype(np.float32) * 3 + 1)
        w = Tensor(np.ones(8, dtype=np.float32))
        b = Tensor(np.zeros(8, dtype=np.float32))
        out = F.layer_norm(x, w, b).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_embedding_grad_accumulates_repeats(self):
        table = Tensor(RNG.normal(size=(10, 4)).astype(np.float32), requires_grad=True)
        ids = np.array([[1, 1, 3]])
        F.embedding(table, ids).sum().backward()
        np.testing.assert_allclose(table.grad[1], 2 * np.ones(4))
        np.testing.assert_allclose(table.grad[3], np.ones(4))
        np.testing.assert_allclose(table.grad[0], np.zeros(4))

    def test_dropout_train_and_eval(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones((100, 100), dtype=np.float32), requires_grad=True)
        out = F.dropout(x, 0.5, rng, training=True)
        kept = out.data != 0
        assert 0.35 < kept.mean() < 0.65
        np.testing.assert_allclose(out.data[kept], 2.0)  # inverted scaling
        out_eval = F.dropout(x, 0.5, rng, training=False)
        assert out_eval is x

    def test_masked_fill(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        out = F.masked_fill(x, mask, -1e9)
        assert out.data[0, 0] == -1e9 and out.data[0, 1] == 1.0
        out.sum().backward()
        np.testing.assert_allclose(x.grad, ~mask * 1.0)


class TestGraphMechanics:
    def test_grad_accumulation_diamond(self):
        # y = x*x + x*x should give dy/dx = 4x via two paths
        x = Tensor(np.array([3.0], dtype=np.float32), requires_grad=True)
        y = x * x
        (y + y).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_no_grad_blocks_graph(self):
        from repro.tensor import no_grad

        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_backward_non_scalar_requires_grad_arg(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_detach(self):
        x = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data

    def test_zero_grad(self):
        x = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_repeated_backward_accumulates_into_leaf(self):
        x = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 4.0])
