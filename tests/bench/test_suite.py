"""The pinned suite: full scheme × layout coverage, stable ids."""

from repro.bench.suite import (
    BACKEND_SCHEMES,
    GRID_CELLS,
    LAYOUTS,
    SCHEMES,
    BenchCase,
    default_suite,
    scheme_slug,
    topology_slug,
)


class TestDefaultSuite:
    def test_covers_all_schemes_and_layouts(self):
        suite = default_suite()
        for kind in ("mp_step", "sim"):
            cells = {(c.scheme, c.tp, c.pp) for c in suite if c.kind == kind}
            assert cells == {(s, tp, pp) for s in SCHEMES for tp, pp in LAYOUTS}

    def test_includes_finetune_case(self):
        kinds = [c.kind for c in default_suite()]
        assert kinds.count("finetune") == 1

    def test_ids_unique_and_slugged(self):
        suite = default_suite()
        ids = [c.id for c in suite]
        assert len(ids) == len(set(ids)) == len(suite)
        assert all("/w/o" not in i for i in ids)  # "w/o" slugs to "wo"

    def test_scheme_slug(self):
        assert scheme_slug("w/o") == "wo"
        assert scheme_slug("T2") == "T2"

    def test_case_params(self):
        case = BenchCase(id="x", kind="sim", scheme="Q2", tp=2, pp=2)
        assert case.params() == {"scheme": "Q2", "tp": 2, "pp": 2,
                                 "dp": 1, "sp": 1,
                                 "backend": "inproc", "schedule": "gpipe",
                                 "microbatches": 1}

    def test_backend_step_covers_both_backends(self):
        suite = default_suite()
        cells = {(c.backend, c.scheme, c.dp, c.tp, c.pp, c.sp)
                 for c in suite if c.kind == "backend_step"}
        expected = {(b, s, 1, tp, pp, 1)
                    for b in ("inproc", "mp")
                    for s in BACKEND_SCHEMES
                    for tp, pp in LAYOUTS}
        expected |= {(b, s, dp, tp, pp, sp)
                     for b in ("inproc", "mp")
                     for s in BACKEND_SCHEMES
                     for dp, tp, pp, sp in GRID_CELLS}
        assert cells == expected
        mp_cases = [c for c in suite
                    if c.kind == "backend_step" and c.backend == "mp"]
        assert len(mp_cases) >= 6  # acceptance floor for --quick coverage

    def test_grid_cell_ids_are_stable(self):
        assert topology_slug(2, 1, 1, 1) == "dp2tp1pp1"
        assert topology_slug(1, 1, 2, 2) == "tp1pp2sp2"
        assert topology_slug(1, 2, 2, 1) == "tp2pp2"  # pre-grid ids intact
        ids = {c.id for c in default_suite()}
        assert "backend_step/mp/dp2tp1pp1/T2" in ids
        assert "backend_step/inproc/tp1pp2sp2/wo" in ids
