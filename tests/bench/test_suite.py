"""The pinned suite: full scheme × layout coverage, stable ids."""

from repro.bench.suite import (
    BACKEND_SCHEMES,
    LAYOUTS,
    SCHEMES,
    BenchCase,
    default_suite,
    scheme_slug,
)


class TestDefaultSuite:
    def test_covers_all_schemes_and_layouts(self):
        suite = default_suite()
        for kind in ("mp_step", "sim"):
            cells = {(c.scheme, c.tp, c.pp) for c in suite if c.kind == kind}
            assert cells == {(s, tp, pp) for s in SCHEMES for tp, pp in LAYOUTS}

    def test_includes_finetune_case(self):
        kinds = [c.kind for c in default_suite()]
        assert kinds.count("finetune") == 1

    def test_ids_unique_and_slugged(self):
        suite = default_suite()
        ids = [c.id for c in suite]
        assert len(ids) == len(set(ids)) == len(suite)
        assert all("/w/o" not in i for i in ids)  # "w/o" slugs to "wo"

    def test_scheme_slug(self):
        assert scheme_slug("w/o") == "wo"
        assert scheme_slug("T2") == "T2"

    def test_case_params(self):
        case = BenchCase(id="x", kind="sim", scheme="Q2", tp=2, pp=2)
        assert case.params() == {"scheme": "Q2", "tp": 2, "pp": 2,
                                 "backend": "inproc", "schedule": "gpipe",
                                 "microbatches": 1}

    def test_backend_step_covers_both_backends(self):
        suite = default_suite()
        cells = {(c.backend, c.scheme, c.tp, c.pp)
                 for c in suite if c.kind == "backend_step"}
        assert cells == {(b, s, tp, pp)
                         for b in ("inproc", "mp")
                         for s in BACKEND_SCHEMES
                         for tp, pp in LAYOUTS}
        mp_cases = [c for c in suite
                    if c.kind == "backend_step" and c.backend == "mp"]
        assert len(mp_cases) >= 6  # acceptance floor for --quick coverage
