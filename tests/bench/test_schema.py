"""BENCH_<sha>.json schema validation (hand-rolled, no jsonschema dep)."""

import copy

import pytest

from repro.bench.schema import SCHEMA_VERSION, BenchSchemaError, validate_bench


def good_doc():
    return {
        "schema_version": SCHEMA_VERSION,
        "git_sha": "abc1234",
        "created_unix": 1_700_000_000.0,
        "quick": True,
        "suite": "default",
        "machine_calibration_ms": 3.5,
        "cases": [
            {
                "id": "mp_step/tp2pp1/T2",
                "kind": "mp_step",
                "params": {"scheme": "T2", "tp": 2, "pp": 1},
                "wall_ms": {"median": 45.0, "iqr": 1.0, "rounds": 3,
                            "times": [44.0, 45.0, 46.0]},
                "deterministic": {
                    "flops": 1.0e8,
                    "op_calls": 1000,
                    "comm_bytes": {"tp/forward/topk": 1024},
                },
            },
        ],
    }


class TestValidate:
    def test_accepts_well_formed(self):
        doc = good_doc()
        assert validate_bench(doc) is doc

    @pytest.mark.parametrize("missing", [
        "schema_version", "git_sha", "quick", "machine_calibration_ms",
        "suite", "cases",
    ])
    def test_rejects_missing_top_level_field(self, missing):
        doc = good_doc()
        del doc[missing]
        with pytest.raises(BenchSchemaError, match=missing):
            validate_bench(doc)

    @pytest.mark.parametrize("missing", ["id", "kind", "params", "wall_ms",
                                         "deterministic"])
    def test_rejects_missing_case_field(self, missing):
        doc = good_doc()
        del doc["cases"][0][missing]
        with pytest.raises(BenchSchemaError):
            validate_bench(doc)

    def test_rejects_wrong_types(self):
        doc = good_doc()
        doc["cases"][0]["wall_ms"]["median"] = "fast"
        with pytest.raises(BenchSchemaError):
            validate_bench(doc)

    def test_rejects_bad_kind(self):
        doc = good_doc()
        doc["cases"][0]["kind"] = "gpu_step"
        with pytest.raises(BenchSchemaError):
            validate_bench(doc)

    def test_rejects_negative_rounds(self):
        doc = good_doc()
        doc["cases"][0]["wall_ms"]["rounds"] = 0
        with pytest.raises(BenchSchemaError):
            validate_bench(doc)

    def test_rejects_duplicate_case_ids(self):
        doc = good_doc()
        doc["cases"].append(copy.deepcopy(doc["cases"][0]))
        with pytest.raises(BenchSchemaError, match="duplicate"):
            validate_bench(doc)

    def test_rejects_unknown_top_level_key(self):
        doc = good_doc()
        doc["vibes"] = "good"
        with pytest.raises(BenchSchemaError):
            validate_bench(doc)
