"""timed(): median/IQR over warmup+rounds with an injectable clock."""

import pytest

from repro.bench.timing import TimingResult, machine_calibration_ms, timed


class SteppingClock:
    """Returns scripted durations: each call advances by the next delta."""

    def __init__(self, deltas_ms):
        self._deltas = iter(deltas_ms)
        self.t = 0.0

    def __call__(self) -> float:
        self.t += next(self._deltas, 1.0) * 1e-3
        return self.t


class TestTimed:
    def test_median_and_iqr(self):
        # 3 rounds -> 6 clock reads; per-round durations 10, 20, 40 ms.
        clock = SteppingClock([0, 10, 0, 20, 0, 40])
        timing = timed(lambda: "out", warmup=0, rounds=3, clock=clock)
        assert timing.result == "out"
        assert timing.rounds == 3
        assert timing.median_ms == pytest.approx(20.0)
        assert timing.iqr_ms == pytest.approx(15.0)  # p75=30, p25=15

    def test_warmup_rounds_not_timed(self):
        calls = []
        clock = SteppingClock([0, 7, 0, 7])
        timing = timed(lambda: calls.append(1), warmup=2, rounds=2, clock=clock)
        assert len(calls) == 4  # warmup executes fn but records nothing
        assert timing.rounds == 2

    def test_args_passed_through(self):
        timing = timed(lambda a, b=0: a + b, 2, b=3, warmup=0, rounds=1)
        assert timing.result == 5

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            timed(lambda: None, rounds=0)
        with pytest.raises(ValueError):
            timed(lambda: None, warmup=-1)

    def test_as_dict_round_trips(self):
        timing = TimingResult(times_ms=[1.0, 2.0, 3.0], result=None)
        d = timing.as_dict()
        assert d["median"] == 2.0 and d["rounds"] == 3
        assert d["times"] == [1.0, 2.0, 3.0]


class TestMachineCalibration:
    def test_positive_and_repeatable_order_of_magnitude(self):
        a = machine_calibration_ms(rounds=2)
        b = machine_calibration_ms(rounds=2)
        assert a > 0 and b > 0
        assert 0.2 < a / b < 5  # same machine: same ballpark
