"""The regression gate: normalized wall times, pinned deterministic metrics."""

import copy

import pytest

from repro.bench.compare import compare_docs


def doc(wall=40.0, cal=4.0, flops=1.0e8, comm=1024, extra_case=None,
        drop_case=False):
    cases = [
        {
            "id": "mp_step/tp2pp1/T2",
            "kind": "mp_step",
            "params": {"scheme": "T2", "tp": 2, "pp": 1},
            "wall_ms": {"median": wall, "iqr": 1.0, "rounds": 3},
            "deterministic": {"flops": flops,
                              "comm_bytes": {"tp/forward/topk": comm}},
        },
        {
            "id": "sim/tp2pp1/T2",
            "kind": "sim",
            "params": {"scheme": "T2", "tp": 2, "pp": 1},
            "wall_ms": {"median": 0.1, "iqr": 0.0, "rounds": 3},
            "deterministic": {"total_ms": 123.456},
        },
    ]
    if drop_case:
        cases = cases[:1]
    if extra_case:
        cases.append(extra_case)
    return {
        "schema_version": 1, "git_sha": "abc", "quick": True,
        "suite": "default", "machine_calibration_ms": cal, "cases": cases,
    }


class TestWallGate:
    def test_identical_docs_pass(self):
        result = compare_docs(doc(), doc())
        assert result.ok
        assert not result.regressions

    def test_injected_2x_regression_fails(self):
        """Acceptance criterion: a 2x wall-time regression must trip."""
        result = compare_docs(doc(wall=80.0), doc(wall=40.0))
        assert not result.ok
        (reg,) = [c for c in result.regressions if c.metric == "wall_ms"]
        assert reg.ratio == pytest.approx(2.0)

    def test_machine_speed_cancels(self):
        # Candidate machine is 2x slower across the board (calibration and
        # workload both doubled): normalized ratio is 1, no regression.
        result = compare_docs(doc(wall=80.0, cal=8.0), doc(wall=40.0, cal=4.0))
        assert result.ok

    def test_sub_floor_cases_are_skipped_not_gated(self):
        result = compare_docs(doc(), doc())
        sim_checks = [c for c in result.checks
                      if c.case_id == "sim/tp2pp1/T2" and c.metric == "wall_ms"]
        assert [c.status for c in sim_checks] == ["skipped"]

    def test_wall_tol_must_exceed_one(self):
        with pytest.raises(ValueError):
            compare_docs(doc(), doc(), wall_tol=0.9)

    def test_nonpositive_calibration_rejected(self):
        with pytest.raises(ValueError):
            compare_docs(doc(cal=0.0), doc())


class TestDeterministicGate:
    def test_flop_drift_is_a_regression(self):
        result = compare_docs(doc(flops=1.01e8), doc(flops=1.0e8))
        assert not result.ok
        (reg,) = [c for c in result.regressions if c.metric == "flops"]
        assert "baseline" in reg.note

    def test_comm_bytes_drift_is_a_regression(self):
        result = compare_docs(doc(comm=2048), doc(comm=1024))
        assert any(c.metric == "comm_bytes.tp/forward/topk"
                   for c in result.regressions)

    def test_tiny_float_noise_tolerated(self):
        result = compare_docs(doc(flops=1.0e8 * (1 + 1e-12)), doc(flops=1.0e8))
        assert result.ok


class TestCaseSetChanges:
    def test_dropped_case_fails_gate(self):
        result = compare_docs(doc(drop_case=True), doc())
        assert not result.ok
        assert any(c.status == "missing" for c in result.regressions)

    def test_new_case_passes_but_is_reported(self):
        extra = {
            "id": "mp_step/tp4pp1/T2", "kind": "mp_step",
            "params": {"scheme": "T2", "tp": 4, "pp": 1},
            "wall_ms": {"median": 10.0, "iqr": 0.0, "rounds": 3},
            "deterministic": {},
        }
        result = compare_docs(doc(extra_case=extra), doc())
        assert result.ok
        assert any(c.status == "new" for c in result.checks)

    def test_as_rows_shape(self):
        rows = compare_docs(doc(), doc()).as_rows()
        assert rows and set(rows[0]) == {"case", "metric", "baseline",
                                         "candidate", "ratio", "status"}
