"""run_suite end-to-end, report rendering and the m repro.bench CLI."""

import copy
import json

import pytest

from repro.bench.cli import main
from repro.bench.report import render_csv, render_markdown
from repro.bench.run import bench_filename, git_sha, run_suite
from repro.bench.schema import validate_bench
from repro.bench.suite import LAYOUTS, SCHEMES, BenchCase, default_suite


@pytest.fixture(scope="module")
def quick_run(tmp_path_factory):
    """One full --quick suite run, shared by every test in this module."""
    out_dir = tmp_path_factory.mktemp("bench")
    doc, bench_path, trace_path = run_suite(
        quick=True, out_dir=str(out_dir), write_trace_artifact=False)
    return doc, bench_path, out_dir


class TestRunSuite:
    def test_document_is_schema_valid(self, quick_run):
        doc, _, _ = quick_run
        assert validate_bench(doc) is doc

    def test_covers_all_schemes_and_layouts(self, quick_run):
        """Acceptance: --quick covers all 5 schemes x 3 layouts."""
        doc, _, _ = quick_run
        for kind in ("mp_step", "sim"):
            cells = {(c["params"]["scheme"], c["params"]["tp"], c["params"]["pp"])
                     for c in doc["cases"] if c["kind"] == kind}
            assert cells == {(s, tp, pp) for s in SCHEMES for tp, pp in LAYOUTS}

    def test_written_file_round_trips(self, quick_run):
        doc, bench_path, _ = quick_run
        with open(bench_path) as fh:
            loaded = json.load(fh)
        assert validate_bench(loaded)["git_sha"] == doc["git_sha"]

    def test_mp_step_cases_carry_profiler_rollups(self, quick_run):
        doc, _, _ = quick_run
        for case in doc["cases"]:
            if case["kind"] != "mp_step":
                continue
            det = case["deterministic"]
            assert det["flops"] > 0 and det["op_calls"] > 0
            assert det["peak_alloc_bytes"] > 0
            if case["params"]["tp"] > 1 or case["params"]["pp"] > 1:
                assert det["comm_events"] > 0
                assert sum(det["comm_bytes"].values()) > 0

    def test_compressed_schemes_move_fewer_tp_forward_bytes(self, quick_run):
        doc, _, _ = quick_run
        by_id = {c["id"]: c for c in doc["cases"]}
        dense = by_id["mp_step/tp2pp1/wo"]["deterministic"]["comm_bytes"]
        topk = by_id["mp_step/tp2pp1/T2"]["deterministic"]["comm_bytes"]
        dense_fwd = sum(v for k, v in dense.items() if "/forward/" in k)
        topk_fwd = sum(v for k, v in topk.items() if "/forward/" in k)
        assert topk_fwd < dense_fwd

    def test_deterministic_metrics_stable_across_runs(self, tmp_path):
        suite = [BenchCase(id="mp_step/tp2pp1/T2", kind="mp_step",
                           scheme="T2", tp=2, pp=1)]
        docs = [run_suite(quick=True, suite=suite, out_dir=str(tmp_path / d),
                          write_trace_artifact=False)[0]
                for d in ("a", "b")]
        det0 = docs[0]["cases"][0]["deterministic"]
        det1 = docs[1]["cases"][0]["deterministic"]
        assert det0 == det1

    def test_git_sha_and_filename(self):
        sha = git_sha()
        assert sha and "\n" not in sha
        assert bench_filename("abc") == "BENCH_abc.json"


class TestTraceArtifact:
    def test_merged_trace_written_for_flagship_case(self, tmp_path):
        suite = [c for c in default_suite() if c.id == "mp_step/tp2pp2/A2"]
        doc, _, trace_path = run_suite(quick=True, suite=suite,
                                       out_dir=str(tmp_path),
                                       write_trace_artifact=True)
        assert trace_path is not None
        with open(trace_path) as fh:
            trace = json.load(fh)
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {1, 2, 3}  # profiled + simulated + mp worker timelines
        cats = {e.get("cat", "") for e in trace["traceEvents"]}
        assert any(c.startswith("prof.") for c in cats)
        assert "forward_compute" in cats  # simulated half intact
        # The worker-timeline member must carry at least one in-flight
        # (async b/e) comm window — the bench smoke's CI assertion.
        begins = [e for e in trace["traceEvents"] if e.get("ph") == "b"]
        assert begins and all(e["cat"] == "mp.async" for e in begins)


class TestReportRendering:
    def test_markdown_has_header_and_rows(self, quick_run):
        doc, _, _ = quick_run
        md = render_markdown(doc)
        assert f"`{doc['git_sha']}`" in md
        assert "mp_step/tp2pp2/A2" in md

    def test_csv_rows_match_cases(self, quick_run):
        doc, _, _ = quick_run
        lines = [l for l in render_csv(doc).splitlines() if l]
        assert len(lines) == 1 + len(doc["cases"])


class TestCli:
    def test_compare_self_passes(self, quick_run, capsys):
        _, bench_path, _ = quick_run
        assert main(["compare", bench_path, "--baseline", bench_path]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_injected_regression_fails(self, quick_run, tmp_path, capsys):
        """Acceptance: 2x wall regression vs a baseline copy exits nonzero."""
        doc, bench_path, _ = quick_run
        slowed = copy.deepcopy(doc)
        for case in slowed["cases"]:
            if case["id"] == "mp_step/tp2pp2/A2":
                case["wall_ms"]["median"] *= 2.0
        slow_path = str(tmp_path / "BENCH_slow.json")
        with open(slow_path, "w") as fh:
            json.dump(slowed, fh)
        assert main(["compare", slow_path, "--baseline", bench_path]) == 1
        err = capsys.readouterr().err
        assert "FAIL" in err
        # The verdict names every offender with both values: the summary
        # table is filtered, so the FAIL message itself must be actionable.
        assert "mp_step/tp2pp2/A2 :: wall_ms:" in err
        assert "baseline=" in err and "candidate=" in err

    def test_compare_missing_candidate_exits_2(self, tmp_path, capsys):
        assert main(["compare", "--dir", str(tmp_path)]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_compare_invalid_doc_exits_2(self, quick_run, tmp_path, capsys):
        _, bench_path, _ = quick_run
        bad = str(tmp_path / "BENCH_bad.json")
        with open(bad, "w") as fh:
            json.dump({"schema_version": 1}, fh)
        assert main(["compare", bad, "--baseline", bench_path]) == 2
        assert "error" in capsys.readouterr().err

    def test_report_defaults_to_newest_in_dir(self, quick_run, capsys):
        doc, _, out_dir = quick_run
        assert main(["report", "--dir", str(out_dir)]) == 0
        assert doc["git_sha"] in capsys.readouterr().out

    def test_report_csv_to_file(self, quick_run, tmp_path, capsys):
        _, bench_path, _ = quick_run
        out = str(tmp_path / "bench.csv")
        assert main(["report", bench_path, "--format", "csv", "--out", out]) == 0
        with open(out) as fh:
            assert fh.readline().startswith("case,")
