"""Tests for the experiment harness: structure, determinism, formatting."""

import numpy as np
import pytest

from repro.experiments import (
    fig4b_location,
    figure1_comm_overhead,
    figure2_lowrank,
    figure5_fit,
    format_table,
    table2_finetune_nvlink,
    table3_nvlink_ablation,
    table4_breakdown_finetune,
    table6_pretrain,
    table7_breakdown_pretrain,
    table9_stage_comm,
    table10_weak_scaling,
    tables11_14_hparam_sweep,
)
from repro.experiments.accuracy import (
    pretrain_backbone,
    table5_glue_accuracy,
    table8_pretrain_accuracy,
)
from repro.experiments.timing import FINETUNE_SCHEMES


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 1234.5678}, {"a": 22, "b": 3.1}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1,234.57" in text
        assert len({len(l) for l in lines[1:]}) <= 2  # header/sep/body aligned

    def test_format_empty(self):
        assert "(empty)" in format_table([], title="x")

    def test_column_subset(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestTimingHarness:
    def test_table2_structure(self):
        rows = table2_finetune_nvlink(["w/o", "A1"])
        assert [r["setting"] for r in rows] == ["TP=1, PP=4", "TP=2, PP=2", "TP=4, PP=1"]
        assert all({"w/o", "A1"} <= set(r) for r in rows)

    def test_table2_deterministic(self):
        a = table2_finetune_nvlink(["w/o"])
        b = table2_finetune_nvlink(["w/o"])
        assert a == b

    def test_default_scheme_columns_match_paper(self):
        assert FINETUNE_SCHEMES[0] == "w/o"
        assert set(FINETUNE_SCHEMES) >= {"A1", "A2", "T1", "T4", "R1", "R4", "Q1", "Q2"}

    def test_table3_has_both_machines(self):
        rows = table3_nvlink_ablation()
        machines = {r["machine"] for r in rows}
        assert machines == {"With NVLink", "Without NVLink"}
        assert len(rows) == 6

    def test_table4_breakdown_columns(self):
        rows = table4_breakdown_finetune(["w/o", "A1"])
        expected = {"scheme", "forward", "backward", "optimizer", "wait_pipeline",
                    "total", "tensor_enc", "tensor_dec", "tensor_comm"}
        assert set(rows[0]) == expected
        for r in rows:
            assert r["total"] == pytest.approx(
                r["forward"] + r["backward"] + r["optimizer"] + r["wait_pipeline"]
            )

    def test_table6_grid(self):
        rows = table6_pretrain(["w/o"])
        assert [r["setting"] for r in rows] == ["TP=2, PP=8", "TP=4, PP=4", "TP=8, PP=2"]

    def test_table7_subset(self):
        rows = table7_breakdown_pretrain(["w/o", "A2"])
        assert len(rows) == 2

    def test_table9_three_boundaries(self):
        rows = table9_stage_comm()
        assert len(rows) == 3

    def test_tables11_14_keys(self):
        out = tables11_14_hparam_sweep(["w/o", "Q3"])
        assert set(out) == {"table11_nvlink_b32", "table12_nvlink_b8",
                            "table13_pcie_b32", "table14_pcie_b8"}

    def test_fig1_fractions_valid(self):
        for r in figure1_comm_overhead():
            assert 0 < r["comm_fraction"] < 1


class TestAnalysisHarness:
    def test_fig2_report_keys(self):
        r = figure2_lowrank()
        assert {"gradient", "activation", "gradient_is_lower_rank"} <= set(r)

    def test_fig5_prediction_arrays_aligned(self):
        r = figure5_fit()
        n = len(r["measured"]["hiddens"])
        assert len(r["predicted"]["speedup"]) == n

    def test_table10_rows(self):
        rows = table10_weak_scaling()
        assert len(rows) == 7
        assert rows[0]["hidden"] == 6144


class TestAccuracyHarness:
    """Tiny-budget runs exercising the full accuracy pipeline."""

    def test_backbone_cache_hit(self):
        a = pretrain_backbone("w/o", steps=5, seed=99)
        b = pretrain_backbone("w/o", steps=5, seed=99)
        assert a is b

    def test_table5_structure_tiny(self):
        rows = table5_glue_accuracy(tasks=["SST-2"], schemes=["w/o", "A2"],
                                    seed=0, pretrain_steps=5)
        assert [r["scheme"] for r in rows] == ["w/o", "A2"]
        assert all("SST-2" in r and "Avg." in r for r in rows)

    def test_table5_mnli_two_columns_tiny(self):
        rows = table5_glue_accuracy(tasks=["MNLI"], schemes=["w/o"],
                                    seed=0, pretrain_steps=5)
        assert {"MNLI-m", "MNLI-mm"} <= set(rows[0])

    def test_table8_finetunes_without_compression_tiny(self):
        rows = table8_pretrain_accuracy(tasks=["SST-2"], schemes=["w/o", "A2"],
                                        seed=0, pretrain_steps=5)
        assert len(rows) == 2
        assert all(np.isfinite(r["Avg."]) for r in rows)
