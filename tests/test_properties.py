"""Property-based tests (hypothesis) on core invariants.

Covers the compressors' message contracts, byte accounting, autograd
linearity, metric ranges, and partition/policy algebra.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression import (
    AutoencoderCompressor,
    CompressionPolicy,
    QuantizationCompressor,
    RandomKCompressor,
    TopKCompressor,
)
from repro.data.metrics import f1_binary, matthews_corrcoef, spearman_corr
from repro.parallel.pipeline import PipelinePartition
from repro.tensor import Tensor

finite_arrays = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=24),
    elements=st.floats(-100, 100, width=32),
)

fractions = st.floats(0.01, 1.0)


class TestCompressorProperties:
    @given(x=finite_arrays, fraction=fractions)
    @settings(max_examples=40, deadline=None)
    def test_topk_roundtrip_supported_on_input(self, x, fraction):
        """Reconstruction is zero or an exact copy of the input entrywise."""
        c = TopKCompressor(fraction)
        out = c.roundtrip(x)
        assert out.shape == x.shape
        mask = out != 0
        np.testing.assert_array_equal(out[mask], x[mask])

    @given(x=finite_arrays, fraction=fractions)
    @settings(max_examples=40, deadline=None)
    def test_topk_keeps_largest_mass(self, x, fraction):
        """No dropped entry exceeds a kept entry in magnitude."""
        c = TopKCompressor(fraction)
        out = c.roundtrip(x)
        kept = np.abs(x[out != 0])
        dropped = np.abs(x[out == 0])
        if kept.size and dropped.size:
            assert dropped.max() <= kept.min() + 1e-6

    @given(x=finite_arrays, fraction=fractions, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_randomk_wire_bytes_match_analytic(self, x, fraction, seed):
        c = RandomKCompressor(fraction, seed=seed)
        msg = c.compress(x)
        assert msg.wire_bytes == c.compressed_bytes(x.shape)
        assert msg.ratio >= 1.0 / 3.0  # 6 bytes per kept vs 2 per dense

    @given(x=finite_arrays, bits=st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_quant_error_bounded_by_group_range(self, x, bits):
        c = QuantizationCompressor(bits, group_size=64)
        out = c.roundtrip(x)
        span = float(x.max() - x.min()) if x.size else 0.0
        step = span / (2**bits - 1)
        assert np.abs(out - x).max() <= step / 2 + 1e-4

    @given(x=finite_arrays, bits=st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_quant_wire_bytes_positive_and_exact(self, x, bits):
        c = QuantizationCompressor(bits)
        msg = c.compress(x)
        assert msg.wire_bytes == c.compressed_bytes(x.shape) > 0

    @given(
        batch=st.integers(1, 4),
        seq=st.integers(1, 8),
        hidden=st.sampled_from([8, 16, 32]),
        code=st.integers(2, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_ae_linearity(self, batch, seq, hidden, code):
        """dec(enc(x+y)) == dec(enc(x)) + dec(enc(y)) — the property that
        makes AE all-reduce compatible."""
        code = min(code, hidden - 1)
        ae = AutoencoderCompressor(hidden, code, seed=0)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(batch, seq, hidden)).astype(np.float32)
        y = rng.normal(size=(batch, seq, hidden)).astype(np.float32)
        np.testing.assert_allclose(
            ae.roundtrip(x + y), ae.roundtrip(x) + ae.roundtrip(y),
            rtol=1e-3, atol=1e-4,
        )

    @given(x=finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_backward_bytes_never_exceed_dense(self, x):
        if x.size < 64:
            return  # per-message floors dominate tiny tensors
        dense = x.size * 2
        for comp in (TopKCompressor(0.1), QuantizationCompressor(4),
                     RandomKCompressor(0.1)):
            assert comp.backward_bytes(x.shape) <= dense * 1.2


class TestAutogradProperties:
    @given(
        a=hnp.arrays(np.float32, (3, 4), elements=st.floats(-10, 10, width=32)),
        b=hnp.arrays(np.float32, (3, 4), elements=st.floats(-10, 10, width=32)),
    )
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, a, b):
        x = Tensor(a, requires_grad=True)
        y = Tensor(b, requires_grad=True)
        (x + y).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(a))
        np.testing.assert_allclose(y.grad, np.ones_like(b))

    @given(
        a=hnp.arrays(np.float32, (2, 3), elements=st.floats(-5, 5, width=32)),
        k=st.floats(-3, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_backward_linear_in_upstream(self, a, k):
        """grad(k·f) == k·grad(f) for f = sum(x²)."""
        x1 = Tensor(a.copy(), requires_grad=True)
        (x1 * x1).sum().backward()
        x2 = Tensor(a.copy(), requires_grad=True)
        ((x2 * x2).sum() * float(k)).backward()
        np.testing.assert_allclose(x2.grad, np.float32(k) * x1.grad, rtol=1e-3, atol=1e-4)


class TestMetricProperties:
    labels = hnp.arrays(np.int64, st.integers(4, 60), elements=st.integers(0, 1))

    @given(
        data=st.integers(4, 60).flatmap(
            lambda n: st.tuples(
                hnp.arrays(np.int64, n, elements=st.integers(0, 1)),
                hnp.arrays(np.int64, n, elements=st.integers(0, 1)),
            )
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matthews_in_range(self, data):
        labels, preds = data
        m = matthews_corrcoef(preds, labels)
        assert -1.0 <= m <= 1.0

    @given(labels=labels)
    @settings(max_examples=30, deadline=None)
    def test_f1_perfect_prediction(self, labels):
        expected = 1.0 if (labels == 1).any() else 0.0
        assert f1_binary(labels, labels) == expected

    @given(
        x=hnp.arrays(np.int64, st.integers(3, 40),
                     elements=st.integers(-1000, 1000)).map(
            lambda a: a.astype(np.float64) * 0.1
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_spearman_invariant_to_monotone_transform(self, x):
        y = 2.0 * x + 1.0
        s = spearman_corr(x, y)
        assert abs(s - 1.0) < 1e-9 or s == 0.0  # 0 when x is constant


class TestPartitionPolicyProperties:
    @given(layers=st.integers(1, 48), pp=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_partition_covers_all_layers_once(self, layers, pp):
        if pp > layers:
            return
        p = PipelinePartition.balanced(layers, pp)
        seen = [l for stage in p.stages for l in stage]
        assert seen == list(range(layers))
        sizes = [len(s) for s in p.stages]
        assert max(sizes) - min(sizes) <= 1

    @given(layers=st.integers(1, 48), k=st.integers(0, 60))
    @settings(max_examples=60, deadline=None)
    def test_last_k_policy_size(self, layers, k):
        p = CompressionPolicy.last_k(layers, k)
        assert p.num_compressed == min(k, layers)
        if p.layers:
            assert max(p.layers) == layers - 1

    @given(layers=st.integers(2, 48), pp=st.integers(2, 8))
    @settings(max_examples=60, deadline=None)
    def test_boundary_count_matches_pp(self, layers, pp):
        if pp > layers:
            return
        p = PipelinePartition.balanced(layers, pp)
        assert len(p.boundaries()) == pp - 1
        for b in p.boundaries():
            assert p.stage_of(b) + 1 == p.stage_of(b + 1)
