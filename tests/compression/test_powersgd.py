"""Tests for the PowerSGD baseline — the scheme the paper excludes."""

import numpy as np
import pytest

from repro.analysis import collect_gradient_and_activation
from repro.compression import PowerSGDCompressor
from repro.compression.powersgd import orthonormalize
from repro.tensor import Tensor

RNG = np.random.default_rng(0)


class TestOrthonormalize:
    def test_columns_orthonormal(self):
        m = orthonormalize(RNG.normal(size=(20, 5)).astype(np.float32))
        gram = m.T @ m
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-4)

    def test_handles_degenerate_columns(self):
        mat = np.ones((10, 3), dtype=np.float32)  # rank 1
        out = orthonormalize(mat)
        assert np.isfinite(out).all()


class TestPowerSGD:
    def test_exact_on_lowrank_matrix(self):
        """Rank-r input is reconstructed (near-)exactly at rank r."""
        u = RNG.normal(size=(40, 3)).astype(np.float32)
        v = RNG.normal(size=(32, 3)).astype(np.float32)
        m = u @ v.T
        c = PowerSGDCompressor(rank=3, warm_start=False)
        # a couple of power iterations refine the subspace
        for _ in range(3):
            out = c.roundtrip(m)
        c2 = PowerSGDCompressor(rank=3, warm_start=True)
        for _ in range(3):
            out = c2.roundtrip(m)
        err = np.linalg.norm(out - m) / np.linalg.norm(m)
        assert err < 0.05

    def test_poor_on_fullrank_matrix(self):
        m = RNG.normal(size=(64, 64)).astype(np.float32)
        c = PowerSGDCompressor(rank=4)
        assert c.reconstruction_error(m) > 0.6

    def test_wire_bytes(self):
        c = PowerSGDCompressor(rank=4)
        x = RNG.normal(size=(8, 16, 32)).astype(np.float32)
        msg = c.compress(x)
        assert msg.wire_bytes == (8 * 16 * 4 + 32 * 4) * 2
        assert msg.wire_bytes == c.compressed_bytes(x.shape)

    def test_roundtrip_shape(self):
        c = PowerSGDCompressor(rank=2)
        x = RNG.normal(size=(4, 6, 8)).astype(np.float32)
        assert c.roundtrip(x).shape == x.shape

    def test_warm_start_improves_over_iterations(self):
        u = RNG.normal(size=(40, 2)).astype(np.float32)
        v = RNG.normal(size=(24, 2)).astype(np.float32)
        m = u @ v.T
        c = PowerSGDCompressor(rank=2, warm_start=True)
        first = np.linalg.norm(c.roundtrip(m) - m)
        for _ in range(4):
            last = np.linalg.norm(c.roundtrip(m) - m)
        assert last <= first

    def test_apply_straight_through(self):
        c = PowerSGDCompressor(rank=2)
        x = Tensor(RNG.normal(size=(4, 8)).astype(np.float32), requires_grad=True)
        c.apply(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((4, 8)))

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            PowerSGDCompressor(0)

    def test_rank_clamped_to_matrix(self):
        c = PowerSGDCompressor(rank=100)
        x = RNG.normal(size=(6, 4)).astype(np.float32)
        msg = c.compress(x)
        assert msg.meta["rank"] <= 4


class TestPaperExclusionClaim:
    def test_gradients_compress_well_activations_dont(self):
        """The §3.1 claim, quantified: at equal rank, PowerSGD reconstructs a
        weight gradient far better than an activation matrix."""
        grad, act = collect_gradient_and_activation(batch=8, seq=16, seed=0)
        c = PowerSGDCompressor(rank=4, warm_start=False, seed=0)
        grad_err = min(
            np.linalg.norm(c.roundtrip(grad) - grad) / np.linalg.norm(grad)
            for _ in range(3)
        )
        c2 = PowerSGDCompressor(rank=4, warm_start=False, seed=0)
        act_err = min(
            np.linalg.norm(c2.roundtrip(act) - act) / np.linalg.norm(act)
            for _ in range(3)
        )
        assert grad_err < 0.45
        assert act_err > grad_err + 0.25
