"""Unit tests for every compressor: message face, graph face, byte accounting."""

import numpy as np
import pytest

from repro.compression import (
    AutoencoderCompressor,
    CompressedMessage,
    ErrorFeedbackCompressor,
    NoCompressor,
    QuantizationCompressor,
    RandomKCompressor,
    TopKCompressor,
    available_compressors,
    make_compressor,
)
from repro.compression.quantization import pack_bits, unpack_bits
from repro.compression.topk import topk_mask
from repro.tensor import Tensor

RNG = np.random.default_rng(0)


class TestRegistry:
    def test_all_families_registered(self):
        names = available_compressors()
        for expected in ["none", "topk", "randomk", "quantization", "autoencoder"]:
            assert expected in names

    def test_make_by_name(self):
        c = make_compressor("topk", fraction=0.1)
        assert isinstance(c, TopKCompressor)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_compressor("nope")


class TestNoCompressor:
    def test_identity_roundtrip(self):
        x = RNG.normal(size=(3, 4)).astype(np.float32)
        c = NoCompressor()
        np.testing.assert_array_equal(c.roundtrip(x), x)
        assert c.compress(x).wire_bytes == x.size * 2
        assert c.ratio(x.shape) == 1.0
        assert c.reconstruction_error(x) == 0.0

    def test_apply_is_passthrough(self):
        c = NoCompressor()
        t = Tensor(np.ones(3))
        assert c.apply(t) is t


class TestTopK:
    def test_keeps_largest(self):
        x = np.array([[1.0, -9.0, 2.0], [0.1, 5.0, -0.5]], dtype=np.float32)
        c = TopKCompressor(fraction=2 / 6)
        out = c.roundtrip(x)
        expected = np.zeros_like(x)
        expected[0, 1] = -9.0
        expected[1, 1] = 5.0
        np.testing.assert_array_equal(out, expected)

    def test_mask_count(self):
        x = RNG.normal(size=(10, 10)).astype(np.float32)
        mask = topk_mask(x, 7)
        assert mask.sum() == 7

    def test_wire_bytes(self):
        c = TopKCompressor(fraction=0.1)
        msg = c.compress(RNG.normal(size=(100,)).astype(np.float32))
        assert msg.wire_bytes == 10 * (2 + 4)
        assert c.compressed_bytes((100,)) == msg.wire_bytes

    def test_ratio_below_keep_reciprocal(self):
        # 6 bytes/kept element vs 2 bytes/element dense: ratio = 1/(3f)
        c = TopKCompressor(fraction=0.1)
        assert c.ratio((1000,)) == pytest.approx(1 / 0.3, rel=1e-3)

    def test_apply_gradient_masked(self):
        x = Tensor(np.array([3.0, -1.0, 0.5, 2.0], dtype=np.float32).reshape(1, 4),
                   requires_grad=True)
        c = TopKCompressor(fraction=0.5)
        c.apply(x).sum().backward()
        np.testing.assert_array_equal(x.grad, [[1.0, 0.0, 0.0, 1.0]])

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            TopKCompressor(0.0)
        with pytest.raises(ValueError):
            TopKCompressor(1.5)

    def test_full_fraction_identity(self):
        x = RNG.normal(size=(4, 4)).astype(np.float32)
        np.testing.assert_array_equal(TopKCompressor(1.0).roundtrip(x), x)


class TestRandomK:
    def test_keeps_k_entries(self):
        x = RNG.normal(size=(20, 5)).astype(np.float32)
        c = RandomKCompressor(fraction=0.2, seed=1)
        out = c.roundtrip(x)
        assert (out != 0).sum() <= 20  # k = 20 of 100 (some x could be 0)
        kept = out != 0
        np.testing.assert_array_equal(out[kept], x[kept])

    def test_unbiased_rescale_roundtrip(self):
        x = np.ones((10, 10), dtype=np.float32)
        c = RandomKCompressor(fraction=0.5, seed=0, unbiased=True)
        msg = c.compress(x)
        np.testing.assert_allclose(msg.payloads["values"], 2.0)
        out = c.decompress(msg)
        np.testing.assert_allclose(out[out != 0], 1.0)

    def test_unbiased_in_expectation(self):
        x = RNG.normal(size=(50,)).astype(np.float32)
        total = np.zeros_like(x)
        n = 1200
        c = RandomKCompressor(fraction=0.25, seed=3, unbiased=True)
        for _ in range(n):
            t = c.apply(Tensor(x))
            total += t.data
        # std of the mean is sqrt(3)|x|/sqrt(n); 5 sigma on |x|<=3 is ~0.45
        np.testing.assert_allclose(total / n, x, atol=0.45)

    def test_selection_varies_between_calls(self):
        c = RandomKCompressor(fraction=0.1, seed=0)
        a = c.compress(np.ones(100, dtype=np.float32)).payloads["indices"]
        b = c.compress(np.ones(100, dtype=np.float32)).payloads["indices"]
        assert not np.array_equal(a, b)

    def test_wire_bytes_match_topk(self):
        assert RandomKCompressor(0.1).compressed_bytes((100,)) == TopKCompressor(
            0.1
        ).compressed_bytes((100,))


class TestQuantization:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_roundtrip_error_bounded(self, bits):
        x = RNG.normal(size=(16, 64)).astype(np.float32)
        c = QuantizationCompressor(bits, group_size=64)
        err = np.abs(c.roundtrip(x) - x)
        # Max error is half a quantization step per group.
        grouped = x.reshape(-1, 64)
        step = (grouped.max(1) - grouped.min(1)) / (2**bits - 1)
        assert (err.reshape(-1, 64).max(1) <= step / 2 + 1e-6).all()

    def test_more_bits_less_error(self):
        x = RNG.normal(size=(8, 256)).astype(np.float32)
        errs = [QuantizationCompressor(b).reconstruction_error(x) for b in (2, 4, 8)]
        assert errs[0] > errs[1] > errs[2]

    def test_wire_bytes_packed(self):
        c = QuantizationCompressor(4, group_size=128)
        msg = c.compress(RNG.normal(size=(256,)).astype(np.float32))
        # 256 codes at 4 bits = 128 bytes + 2 groups × 2 params × 2 bytes
        assert msg.wire_bytes == 128 + 8
        assert c.compressed_bytes((256,)) == msg.wire_bytes

    def test_constant_group_handled(self):
        x = np.full((256,), 3.14, dtype=np.float32)
        c = QuantizationCompressor(2)
        np.testing.assert_allclose(c.roundtrip(x), x, rtol=1e-5)

    def test_pack_unpack_roundtrip(self):
        for bits in (2, 4, 8):
            codes = RNG.integers(0, 2**bits, size=37).astype(np.uint8)
            packed = pack_bits(codes, bits)
            np.testing.assert_array_equal(unpack_bits(packed, bits, 37), codes)

    def test_pack_rejects_odd_bits(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros(4, dtype=np.uint8), 3)

    def test_apply_straight_through(self):
        x = Tensor(RNG.normal(size=(4, 256)).astype(np.float32), requires_grad=True)
        c = QuantizationCompressor(4)
        c.apply(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((4, 256)))

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            QuantizationCompressor(3)
        with pytest.raises(ValueError):
            QuantizationCompressor(4, group_size=0)

    def test_nonmultiple_size_padding(self):
        x = RNG.normal(size=(100,)).astype(np.float32)  # not a multiple of 256
        c = QuantizationCompressor(8)
        out = c.roundtrip(x)
        assert out.shape == x.shape
        assert np.abs(out - x).max() < 0.05


class TestAutoencoder:
    def test_message_is_code(self):
        ae = AutoencoderCompressor(hidden=32, code_dim=8, seed=0)
        x = RNG.normal(size=(2, 5, 32)).astype(np.float32)
        msg = ae.compress(x)
        assert msg.payloads["code"].shape == (2, 5, 8)
        assert msg.wire_bytes == 2 * 5 * 8 * 2
        assert ae.decompress(msg).shape == x.shape

    def test_ratio_is_h_over_c(self):
        ae = AutoencoderCompressor(hidden=64, code_dim=8)
        assert ae.ratio((3, 7, 64)) == pytest.approx(8.0)

    def test_allreduce_compatible_flag(self):
        assert AutoencoderCompressor(16, 4).allreduce_compatible
        assert not TopKCompressor(0.1).allreduce_compatible
        assert not QuantizationCompressor(4).allreduce_compatible

    def test_orthonormal_init_roundtrip_projects(self):
        """Initial enc/dec behave as an orthogonal projection (Px = PPx)."""
        ae = AutoencoderCompressor(hidden=32, code_dim=8, seed=1)
        x = RNG.normal(size=(4, 32)).astype(np.float32)
        once = ae.roundtrip(x)
        twice = ae.roundtrip(once)
        np.testing.assert_allclose(once, twice, atol=1e-4)

    def test_learnable_params_receive_grads(self):
        ae = AutoencoderCompressor(hidden=16, code_dim=4, seed=0)
        x = Tensor(RNG.normal(size=(2, 3, 16)).astype(np.float32), requires_grad=True)
        ae.apply(x).sum().backward()
        assert ae.encoder.grad is not None
        assert ae.decoder.grad is not None
        assert x.grad is not None

    def test_training_reduces_reconstruction_error(self):
        """The AE learns to reconstruct structured activations."""
        from repro.optim import Adam

        rng = np.random.default_rng(0)
        basis = rng.normal(size=(6, 32)).astype(np.float32)
        ae = AutoencoderCompressor(hidden=32, code_dim=8, seed=0)
        opt = Adam(ae.parameters(), lr=1e-2)

        def batch():
            coef = rng.normal(size=(64, 6)).astype(np.float32)
            return coef @ basis  # rank-6 signal in R^32

        x0 = batch()
        err_before = ae.reconstruction_error(x0)
        for _ in range(200):
            x = Tensor(batch())
            opt.zero_grad()
            recon = ae.apply(x)
            loss = ((recon - x) ** 2).mean()
            loss.backward()
            opt.step()
        err_after = ae.reconstruction_error(x0)
        assert err_after < err_before * 0.5
        assert err_after < 0.15

    def test_code_dim_validation(self):
        with pytest.raises(ValueError):
            AutoencoderCompressor(hidden=8, code_dim=8)

    def test_shape_validation(self):
        ae = AutoencoderCompressor(hidden=8, code_dim=2)
        with pytest.raises(ValueError):
            ae.compress(RNG.normal(size=(3, 7)).astype(np.float32))
        with pytest.raises(ValueError):
            ae.compressed_bytes((3, 7))


class TestErrorFeedback:
    def test_residual_tracks_error(self):
        inner = TopKCompressor(0.25)
        ef = ErrorFeedbackCompressor(inner)
        x = RNG.normal(size=(4, 4)).astype(np.float32)
        msg = ef.compress(x)
        resid = ef.residual()
        np.testing.assert_allclose(resid, x - inner.decompress(msg), atol=1e-6)

    def test_feedback_improves_average_reconstruction(self):
        """With a constant input, EF makes the running average exact-ish."""
        inner = TopKCompressor(0.25)
        ef = ErrorFeedbackCompressor(inner)
        x = RNG.normal(size=(8, 8)).astype(np.float32)
        total = np.zeros_like(x)
        n = 16
        for _ in range(n):
            total += ef.decompress(ef.compress(x))
        err_ef = np.linalg.norm(total / n - x) / np.linalg.norm(x)
        err_plain = inner.reconstruction_error(x)
        assert err_ef < err_plain * 0.5

    def test_per_site_state_isolated(self):
        ef = ErrorFeedbackCompressor(TopKCompressor(0.5))
        a = RNG.normal(size=(4,)).astype(np.float32)
        b = RNG.normal(size=(6,)).astype(np.float32)
        ef.compress(a, site="s1")
        ef.compress(b, site="s2")
        assert ef.residual("s1").shape == (4,)
        assert ef.residual("s2").shape == (6,)

    def test_reset(self):
        ef = ErrorFeedbackCompressor(TopKCompressor(0.5))
        ef.compress(RNG.normal(size=(4,)).astype(np.float32))
        ef.reset()
        assert ef.residual() is None

    def test_decay_validation(self):
        with pytest.raises(ValueError):
            ErrorFeedbackCompressor(TopKCompressor(0.5), decay=1.5)

    def test_apply_graph_face(self):
        ef = ErrorFeedbackCompressor(TopKCompressor(0.5))
        x = Tensor(RNG.normal(size=(2, 4)).astype(np.float32), requires_grad=True)
        ef.apply(x).sum().backward()
        assert x.grad is not None
        # second application uses the stored residual
        y = Tensor(RNG.normal(size=(2, 4)).astype(np.float32), requires_grad=True)
        ef.apply(y).sum().backward()
        assert ef.residual() is not None
