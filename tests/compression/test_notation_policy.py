"""Tests for the notation table (Table 1) and compression policy (§4.5)."""

import numpy as np
import pytest

from repro.compression import (
    AutoencoderCompressor,
    CompressionPolicy,
    NoCompressor,
    QuantizationCompressor,
    RandomKCompressor,
    SCHEME_LABELS,
    TopKCompressor,
    build_compressor,
    scheme_spec,
)

H = 1024  # BERT-Large hidden size, the notation table's reference


class TestNotation:
    def test_all_paper_labels_present(self):
        expected = {"w/o", "A1", "A2", "T1", "T2", "T3", "T4", "R1", "R2", "R3", "R4",
                    "Q1", "Q2", "Q3"}
        assert set(SCHEME_LABELS) == expected

    def test_unknown_label(self):
        with pytest.raises(KeyError):
            scheme_spec("Z9")

    def test_ae_code_dims_at_bert_large(self):
        a1 = build_compressor("A1", H)
        a2 = build_compressor("A2", H)
        assert isinstance(a1, AutoencoderCompressor) and a1.code_dim == 50
        assert isinstance(a2, AutoencoderCompressor) and a2.code_dim == 100

    def test_comm_cost_matching_t1_a1(self):
        """T1 must put the same bytes on the wire as A1 (paper definition)."""
        shape = (32, 512, H)
        a1 = build_compressor("A1", H)
        t1 = build_compressor("T1", H)
        ratio = t1.compressed_bytes(shape) / a1.compressed_bytes(shape)
        assert ratio == pytest.approx(1.0, rel=0.02)

    def test_comm_cost_matching_t2_a2(self):
        shape = (8, 128, H)
        a2 = build_compressor("A2", H)
        t2 = build_compressor("T2", H)
        assert t2.compressed_bytes(shape) == pytest.approx(a2.compressed_bytes(shape), rel=0.02)

    def test_ratio_matching_t3_keeps_same_elements_as_a1_code(self):
        """T3 keeps n·c/h elements — the paper's 'same compression ratio'."""
        t3 = scheme_spec("T3")
        assert t3.fraction == pytest.approx(50 / 1024)
        t4 = scheme_spec("T4")
        assert t4.fraction == pytest.approx(100 / 1024)

    def test_t3_heavier_than_t1(self):
        """Ratio-matched Top-K transmits 3x the bytes of cost-matched Top-K."""
        shape = (4, 16, H)
        t1 = build_compressor("T1", H)
        t3 = build_compressor("T3", H)
        assert t3.compressed_bytes(shape) == pytest.approx(3 * t1.compressed_bytes(shape), rel=0.05)

    def test_random_variants_mirror_topk(self):
        for t, r in [("T1", "R1"), ("T2", "R2"), ("T3", "R3"), ("T4", "R4")]:
            assert scheme_spec(t).fraction == scheme_spec(r).fraction
            assert isinstance(build_compressor(r, H), RandomKCompressor)

    def test_quant_bits(self):
        for label, bits in [("Q1", 2), ("Q2", 4), ("Q3", 8)]:
            c = build_compressor(label, H)
            assert isinstance(c, QuantizationCompressor) and c.bits == bits

    def test_wo_is_identity(self):
        assert isinstance(build_compressor("w/o", H), NoCompressor)

    def test_scaled_down_hidden_preserves_fractions(self):
        """For small accuracy models, code fraction (not absolute dim) is kept."""
        ae = build_compressor("A2", 64)
        assert isinstance(ae, AutoencoderCompressor)
        assert ae.code_dim == pytest.approx(round(64 * 100 / 1024))

    def test_code_dim_floor(self):
        ae = build_compressor("A1", 16)
        assert ae.code_dim >= 2


class TestPolicy:
    def test_default_is_last_half(self):
        p = CompressionPolicy.default(24)
        assert p.layers == frozenset(range(12, 24))
        assert p.num_compressed == 12

    def test_last_k(self):
        p = CompressionPolicy.last_k(24, 8)
        assert min(p.layers) == 16 and max(p.layers) == 23

    def test_first_k(self):
        p = CompressionPolicy.first_k(24, 4)
        assert p.layers == frozenset(range(4))

    def test_window(self):
        p = CompressionPolicy.window(24, 6, 8)
        assert p.layers == frozenset(range(6, 14))

    def test_window_clipped_at_end(self):
        p = CompressionPolicy.window(24, 20, 8)
        assert max(p.layers) == 23

    def test_none_and_all(self):
        assert CompressionPolicy.none(10).num_compressed == 0
        assert CompressionPolicy.all(10).num_compressed == 10

    def test_applies(self):
        p = CompressionPolicy.last_k(24, 12)
        assert not p.applies(11)
        assert p.applies(12)

    def test_boundary_semantics_table9(self):
        """PP=4 on 24 layers: boundaries after layers 5, 11, 17.

        With last-12 policy, stage0→1 (after layer 5) is NOT compressed but
        1→2 and 2→3 are — exactly the Table 9 pattern.
        """
        p = CompressionPolicy.last_k(24, 12)
        assert not p.boundary_compressed(5)
        assert p.boundary_compressed(11)
        assert p.boundary_compressed(17)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CompressionPolicy(4, frozenset({5}))

    def test_nonpositive_layers_rejected(self):
        with pytest.raises(ValueError):
            CompressionPolicy(0)

    def test_fraction(self):
        assert CompressionPolicy.last_k(24, 12).fraction() == 0.5

    def test_immutability(self):
        p = CompressionPolicy.default(24)
        with pytest.raises(Exception):
            p.num_layers = 10
