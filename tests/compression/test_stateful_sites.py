"""Per-site state regressions: EF residual aliasing, quant group padding."""

import numpy as np
import pytest

from repro.compression import QuantizationCompressor, TopKCompressor
from repro.compression.error_feedback import ErrorFeedbackCompressor
from repro.tensor import Tensor

RNG = np.random.default_rng(11)


class TestErrorFeedbackSiteIsolation:
    """An EF wrapper shared across sites (TP ranks, PP boundaries) must keep
    one residual per site; a single shared slot silently feeds rank 0's
    compression error into rank 1's next message."""

    def test_compress_keeps_residuals_apart(self):
        ef = ErrorFeedbackCompressor(TopKCompressor(0.5))
        a = RNG.normal(size=(4, 8)).astype(np.float32)
        b = RNG.normal(size=(4, 8)).astype(np.float32)
        ef.compress(a, site="rank0")
        ef.compress(b, site="rank1")
        ra, rb = ef.residual("rank0"), ef.residual("rank1")
        assert ra is not None and rb is not None
        # rank0's residual is exactly a - D(C(a)): untouched by rank1's call.
        expected_a = a - ef.inner.decompress(ef.inner.compress(a))
        np.testing.assert_allclose(ra, expected_a, rtol=1e-6)
        assert not np.allclose(ra, rb)

    def test_apply_keeps_residuals_apart(self):
        ef = ErrorFeedbackCompressor(TopKCompressor(0.5))
        a = Tensor(RNG.normal(size=(4, 8)).astype(np.float32))
        b = Tensor(RNG.normal(size=(4, 8)).astype(np.float32))
        out_a = ef.apply(a, site="s0")
        ef.apply(b, site="s1")
        np.testing.assert_allclose(ef.residual("s0"), a.data - out_a.data, rtol=1e-6)

    def test_second_step_uses_own_sites_residual(self):
        """Feeding the same input twice at one site must incorporate that
        site's residual — and only that site's."""
        ef = ErrorFeedbackCompressor(TopKCompressor(0.5))
        x = RNG.normal(size=(4, 8)).astype(np.float32)
        noise = RNG.normal(size=(4, 8)).astype(np.float32) * 100.0
        ef.compress(x, site="mine")
        r1 = ef.residual("mine").copy()
        ef.compress(noise, site="other")  # must not disturb "mine"
        msg = ef.compress(x, site="mine")
        # Second message at "mine" compresses x + r1, not x + residual(other).
        expected = ef.inner.decompress(ef.inner.compress(x + r1))
        np.testing.assert_allclose(ef.inner.decompress(msg), expected, rtol=1e-6)

    def test_reset_clears_all_sites(self):
        ef = ErrorFeedbackCompressor(TopKCompressor(0.5))
        ef.compress(RNG.normal(size=(2, 4)).astype(np.float32), site="a")
        ef.compress(RNG.normal(size=(2, 4)).astype(np.float32), site="b")
        ef.reset()
        assert ef.residual("a") is None and ef.residual("b") is None


class TestQuantPartialGroupPadding:
    """Zero-padding a partial group pulled its min/max toward 0, inflating the
    quantization step — edge-padding must keep the group's true range."""

    def test_partial_group_error_bounded_by_true_range(self):
        q = QuantizationCompressor(bits=2, group_size=4)
        x = np.array([1.0, 2.0], dtype=np.float32)  # one partial group
        err = np.abs(q.roundtrip(x) - x).max()
        step = (2.0 - 1.0) / (2**2 - 1)  # range of the *actual* values
        assert err <= step / 2 + 1e-6

    def test_padding_values_do_not_leak_into_range(self):
        q = QuantizationCompressor(bits=8, group_size=256)
        x = np.full(300, 5.0, dtype=np.float32)  # groups of 256 + 44
        np.testing.assert_allclose(q.roundtrip(x), x, atol=1e-5)

    @pytest.mark.parametrize("n", [1, 3, 255, 257])
    def test_error_bound_across_partial_sizes(self, n):
        q = QuantizationCompressor(bits=4, group_size=256)
        x = (RNG.normal(size=n).astype(np.float32) + 10.0)  # offset from 0
        err = np.abs(q.roundtrip(x) - x).max()
        span = float(x.max() - x.min())
        assert err <= span / (2**4 - 1) / 2 + 1e-5
