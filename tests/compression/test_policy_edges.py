"""CompressionPolicy edge cases and ModelParallelConfig validation."""

import numpy as np
import pytest

from repro.compression import CompressionPolicy
from repro.nn.transformer import TransformerConfig
from repro.parallel import ModelParallelBertClassifier, ModelParallelConfig


def small_config(**kw):
    defaults = dict(vocab_size=60, max_seq_len=16, hidden=32, num_layers=4,
                    num_heads=4, dropout=0.0)
    defaults.update(kw)
    return TransformerConfig(**defaults)


class TestCompressionPolicyEdges:
    def test_empty_layer_set(self):
        p = CompressionPolicy.none(8)
        assert p.num_compressed == 0
        assert p.fraction() == 0.0
        assert not any(p.applies(i) for i in range(8))
        assert not any(p.boundary_compressed(i) for i in range(8))

    def test_all_layers(self):
        p = CompressionPolicy.all(6)
        assert p.fraction() == 1.0
        assert all(p.applies(i) for i in range(6))

    def test_last_boundary_never_compressed(self):
        """The 'boundary' after the final layer does not exist, regardless of
        the policy covering that layer."""
        p = CompressionPolicy.all(4)
        assert p.boundary_compressed(2)  # feeds layer 3, in policy
        assert not p.boundary_compressed(3)  # no layer 4 to feed

    def test_last_k_and_first_k_clamp(self):
        assert CompressionPolicy.last_k(4, 99).num_compressed == 4
        assert CompressionPolicy.last_k(4, 0).num_compressed == 0
        assert CompressionPolicy.first_k(4, -3).num_compressed == 0

    def test_window_clamps_to_model(self):
        p = CompressionPolicy.window(4, start=3, count=10)
        assert sorted(p.layers) == [3]

    def test_out_of_range_layers_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CompressionPolicy(4, frozenset({4}))
        with pytest.raises(ValueError, match="out of range"):
            CompressionPolicy(4, frozenset({-1}))

    def test_non_integer_layers_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            CompressionPolicy(4, frozenset({2.5}))

    def test_numpy_integer_layers_accepted(self):
        p = CompressionPolicy(4, frozenset(np.arange(2, 4)))
        assert sorted(p.layers) == [2, 3]

    def test_nonpositive_num_layers_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            CompressionPolicy(0)


class TestModelParallelConfigValidation:
    def test_pp_equal_num_layers_is_one_layer_per_stage(self):
        cfg = ModelParallelConfig(small_config(), tp=1, pp=4, scheme="A2")
        model = ModelParallelBertClassifier(cfg)
        assert model.backbone.partition.pp == 4
        assert all(len(s) == 1 for s in model.backbone.partition.stages)
        ids = np.random.default_rng(0).integers(0, 60, size=(2, 8))
        model(ids)
        # pp boundaries: 3 cut points, each logged once in forward.
        assert model.tracker.count(group="pp", phase="forward") == 3

    def test_boundary_compression_last_stage(self):
        """Default last-half policy, pp == num_layers: the boundary feeding
        the final (compressed) layer is compressed; earlier ones per policy."""
        cfg = ModelParallelConfig(small_config(), tp=1, pp=4, scheme="A2")
        model = ModelParallelBertClassifier(cfg)
        ids = np.random.default_rng(0).integers(0, 60, size=(2, 8))
        model(ids)
        schemes = [e.scheme for e in
                   model.tracker.filtered(group="pp", phase="forward")]
        # policy = last_k(4, 2) = layers {2, 3}: boundary0 feeds layer 1
        # (uncompressed), boundary1 feeds layer 2, boundary2 feeds layer 3.
        assert schemes == ["none", "autoencoder", "autoencoder"]

    def test_pp_exceeding_layers_rejected(self):
        with pytest.raises(ValueError, match="pp cannot exceed"):
            ModelParallelConfig(small_config(), pp=5)

    def test_heads_not_divisible_by_tp_rejected(self):
        with pytest.raises(ValueError, match="divisible by tp"):
            ModelParallelConfig(small_config(), tp=3)

    def test_policy_layer_mismatch_rejected(self):
        with pytest.raises(ValueError, match="policy num_layers"):
            ModelParallelConfig(small_config(), policy=CompressionPolicy.none(8))

    def test_default_policy_depends_on_scheme(self):
        without = ModelParallelConfig(small_config(), scheme="w/o")
        assert without.policy.num_compressed == 0
        compressed = ModelParallelConfig(small_config(), scheme="A2")
        assert sorted(compressed.policy.layers) == [2, 3]
