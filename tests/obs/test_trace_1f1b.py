"""1F1B trace export: validation against the breakdown + async spans.

The simulated 1F1B timeline interleaves forward and backward compute, so
:func:`validate_against_breakdown` re-derives the ``overlap_ms`` column
as the intersection of the two compute windows; the pin stays at 1e-6 ms
for every scheme × layout × microbatch count.  The mp worker-timeline
exporter renders ``mp.async`` spans (CommHandle issue→wait windows,
staged ring sends) as Chrome async ``b``/``e`` pairs.
"""

import pytest

from repro.parallel.topology import ClusterTopology, LinkType
from repro.simulator.iteration import IterationSimulator, SimSetting
from repro.obs.trace import (
    simulated_iteration_trace,
    validate_against_breakdown,
    worker_timelines_trace,
)

SCHEMES = ("w/o", "T2", "R2", "Q2", "A2")


def setting(scheme, tp, pp, m, schedule="1f1b"):
    topo = ClusterTopology(1, tp * pp, LinkType.PCIE)
    return SimSetting(topo, tp, pp, 32, 512, num_microbatches=m,
                      scheme=scheme, schedule=schedule)


class Test1F1BTraceValidation:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_2x2_1f1b_trace_matches_breakdown(self, scheme):
        sim = IterationSimulator(setting(scheme, 2, 2, 4))
        diffs = validate_against_breakdown(simulated_iteration_trace(sim),
                                           sim.breakdown())
        assert max(diffs.values()) < 1e-6, diffs

    @pytest.mark.parametrize("tp,pp,m", [(1, 2, 1), (1, 2, 8), (1, 4, 2),
                                         (2, 2, 2), (1, 4, 8)])
    def test_other_layouts_match_too(self, tp, pp, m):
        sim = IterationSimulator(setting("A2", tp, pp, m))
        diffs = validate_against_breakdown(simulated_iteration_trace(sim),
                                           sim.breakdown())
        assert max(diffs.values()) < 1e-6, diffs

    def test_overlap_column_nonzero_only_under_1f1b(self):
        for schedule, expect_overlap in (("gpipe", False), ("1f1b", True)):
            sim = IterationSimulator(setting("w/o", 1, 2, 4, schedule))
            b = sim.breakdown()
            assert (b.overlap_ms > 0) is expect_overlap
            diffs = validate_against_breakdown(simulated_iteration_trace(sim),
                                               b)
            assert diffs["overlap_ms"] < 1e-6

    def test_validator_catches_schedule_mismatch(self):
        """A GPipe trace must not validate against a 1F1B breakdown: the
        overlap column (and the compute makespans) differ."""
        gpipe = IterationSimulator(setting("w/o", 1, 2, 4, "gpipe"))
        onefb = IterationSimulator(setting("w/o", 1, 2, 4, "1f1b"))
        diffs = validate_against_breakdown(simulated_iteration_trace(gpipe),
                                           onefb.breakdown())
        assert diffs["overlap_ms"] > 1e-6


class TestAsyncSpanExport:
    TIMELINES = {
        0: [{"name": "F0", "cat": "mp.phase", "ts_ms": 0.0, "dur_ms": 2.0},
            {"name": "allreduce L0 attn", "cat": "mp.async",
             "ts_ms": 0.5, "dur_ms": 1.0}],
        1: [{"name": "pp grad send mb0", "cat": "mp.async",
             "ts_ms": 1.0, "dur_ms": 0.25},
            {"name": "recv wait", "cat": "mp.wait",
             "ts_ms": 2.0, "dur_ms": 0.5}],
    }

    def test_async_spans_become_b_e_pairs(self):
        trace = worker_timelines_trace(self.TIMELINES, {"run_id": "t"})
        begins = [e for e in trace["traceEvents"] if e.get("ph") == "b"]
        ends = [e for e in trace["traceEvents"] if e.get("ph") == "e"]
        assert len(begins) == len(ends) == 2
        by_id = {e["id"]: e for e in ends}
        for b in begins:
            assert b["cat"] == "mp.async"
            e = by_id[b["id"]]
            assert e["name"] == b["name"] and e["ts"] > b["ts"]

    def test_sync_spans_stay_x_slices(self):
        trace = worker_timelines_trace(self.TIMELINES, {"run_id": "t"})
        x_cats = [e["cat"] for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert sorted(x_cats) == ["mp.phase", "mp.wait"]

    def test_async_spans_do_not_perturb_validation(self):
        """Merged real+simulated traces stay valid: ``b``/``e`` events are
        invisible to the slice-summing validator."""
        from repro.obs.trace import merge_traces

        sim = IterationSimulator(setting("A2", 2, 2, 4))
        merged = merge_traces(simulated_iteration_trace(sim),
                              worker_timelines_trace(self.TIMELINES, {}))
        diffs = validate_against_breakdown(merged, sim.breakdown())
        assert max(diffs.values()) < 1e-6, diffs


class TestTrackLabels:
    TIMELINES = {
        r: [{"name": "F0", "cat": "mp.phase", "ts_ms": 0.0, "dur_ms": 1.0}]
        for r in range(4)
    }

    @staticmethod
    def thread_names(trace):
        return {e["args"]["name"] for e in trace["traceEvents"]
                if e.get("ph") == "M" and e.get("name") == "thread_name"}

    def test_layout_meta_labels_tracks_with_tp_pp_coordinates(self):
        trace = worker_timelines_trace(
            self.TIMELINES, {"run_id": "t", "tp": 2, "pp": 2})
        assert self.thread_names(trace) == {
            "rank 0 · tp0/pp0", "rank 1 · tp1/pp0",
            "rank 2 · tp0/pp1", "rank 3 · tp1/pp1",
        }

    def test_process_name_metadata_is_emitted(self):
        trace = worker_timelines_trace(self.TIMELINES, {"run_id": "mytest",
                                                        "tp": 2, "pp": 2})
        procs = [e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "M" and e.get("name") == "process_name"]
        assert procs == ["mp workers: mytest"]

    def test_without_layout_meta_tracks_degrade_to_plain_rank(self):
        trace = worker_timelines_trace(self.TIMELINES, {"run_id": "t"})
        assert self.thread_names(trace) == {"rank0", "rank1", "rank2", "rank3"}
