"""python -m repro.obs: report, smoke and sim-trace subcommands."""

import json

from repro.obs.cli import main
from repro.obs.metrics import RunRecorder


def make_jsonl(tmp_path):
    rec = RunRecorder(run_id="cli-test", meta={"scheme": "T2"})
    for loss in (2.0, 1.0):
        with rec.step():
            rec.gauge("loss", loss)
            with rec.timer("forward"):
                pass
    return rec.to_jsonl(str(tmp_path / "run.jsonl"))


class TestReport:
    def test_prints_summary(self, tmp_path, capsys):
        assert main(["report", make_jsonl(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out
        assert "loss" in out and "forward" in out

    def test_trace_export_flag(self, tmp_path, capsys):
        trace_path = str(tmp_path / "run.trace.json")
        assert main(["report", make_jsonl(tmp_path), "--trace", trace_path]) == 0
        with open(trace_path) as fh:
            trace = json.load(fh)
        assert trace["traceEvents"]

    def test_missing_file_fails_gracefully(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["report", missing]) == 1
        err = capsys.readouterr().err
        assert "not found" in err and "nope.jsonl" in err

    def test_empty_jsonl_fails_gracefully(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 1
        err = capsys.readouterr().err
        assert "no step records" in err

    def test_meta_only_jsonl_fails_gracefully(self, tmp_path, capsys):
        # A header line but zero step records — e.g. a crashed run.
        header_only = tmp_path / "header.jsonl"
        header_only.write_text('{"type": "meta", "run_id": "crashed"}\n')
        assert main(["report", str(header_only)]) == 1
        assert "no step records" in capsys.readouterr().err

    def test_unparseable_file_fails_gracefully(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("this is not json\n")
        assert main(["report", str(garbage)]) == 1
        assert "error" in capsys.readouterr().err

    def test_reports_fidelity_sidecar(self, tmp_path, capsys):
        run = make_jsonl(tmp_path)
        sidecar = str(tmp_path / "run.fidelity.json")
        with open(sidecar, "w") as fh:
            json.dump({"records": 2, "per_site": {
                "layer2.mlp.rank0": {"scheme": "topk", "group": "tp", "count": 2,
                                     "rel_l2_error_mean": 0.5, "rel_l2_error_max": 0.6,
                                     "ratio_mean": 8.0, "residual_norm_last": None},
            }}, fh)
        assert main(["report", run]) == 0
        out = capsys.readouterr().out
        assert "layer2.mlp.rank0" in out


class TestSimTrace:
    def test_writes_valid_trace(self, tmp_path, capsys):
        out_path = str(tmp_path / "sim.json")
        assert main(["sim-trace", "--out", out_path, "--scheme", "T2"]) == 0
        with open(out_path) as fh:
            trace = json.load(fh)
        assert trace["displayTimeUnit"] == "ms"
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])


class TestSmoke:
    def test_single_scheme_smoke_produces_artifacts(self, tmp_path, capsys):
        assert main(["smoke", "--outdir", str(tmp_path), "--schemes", "T2",
                     "--epochs", "1", "--batch-size", "64"]) == 0
        jsonl = tmp_path / "smoke-T2.jsonl"
        csv_path = tmp_path / "smoke-T2.csv"
        trace = tmp_path / "smoke-T2.trace.json"
        fidelity = tmp_path / "smoke-T2.fidelity.json"
        for path in (jsonl, csv_path, trace, fidelity):
            assert path.exists(), path
        with open(fidelity) as fh:
            fid = json.load(fh)
        assert fid["per_site"], "smoke run must yield per-site fidelity metrics"
        # The run report works on what smoke wrote (incl. the sidecar).
        assert main(["report", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "Compression fidelity" in out


class TestTelemetryVerbs:
    """The mp-only guards and the registry-backed diff/html verbs."""

    def test_mp_trace_refuses_inproc_backend_flag(self, capsys):
        assert main(["mp-trace", "--backend", "inproc"]) == 1
        err = capsys.readouterr().err
        assert "inproc" in err and "--backend mp" in err

    def test_top_refuses_inproc_backend_flag(self, capsys):
        assert main(["top", "--backend", "inproc"]) == 1
        assert "repro.obs top" in capsys.readouterr().err

    def test_top_refuses_repro_backend_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "inproc")
        assert main(["top"]) == 1
        assert "REPRO_BACKEND" in capsys.readouterr().err

    def test_backend_flag_overrides_env(self, capsys, monkeypatch):
        # --backend mp beats REPRO_BACKEND=inproc; the guard passes and the
        # run proceeds (not exercised here — just assert the guard alone).
        from repro.obs.cli import _require_mp_backend
        import argparse

        monkeypatch.setenv("REPRO_BACKEND", "inproc")
        args = argparse.Namespace(backend="mp")
        assert _require_mp_backend(args, "top") == "mp"

    def test_diff_renders_registry_runs(self, tmp_path, capsys):
        from repro.obs.telemetry import (
            Collector, HealthMonitor, build_summary, save_run,
        )

        registry = str(tmp_path / "runs")
        for run_id, wall in (("run-a", 10.0), ("run-b", 20.0)):
            coll = Collector()
            coll.ingest({"type": "meta", "rank": 0, "t": 0.0, "world": 1,
                         "sample_every": 1})
            coll.ingest({"type": "step", "rank": 0, "t": 0.0, "step": 0,
                         "wall_ms": wall, "comm_wait_ms": 1.0,
                         "busy_ms": wall - 1.0, "fault_ms": 0.0,
                         "ring_occupancy": 0, "retries": 0, "drops": 0,
                         "delays": 0, "peak_rss_kb": 100.0})
            save_run(registry, build_summary(run_id, coll, HealthMonitor(coll)))
        assert main(["diff", "run-a", "run-b", "--registry", registry]) == 0
        out = capsys.readouterr().out
        assert "run-a vs run-b" in out and "pooled/wall_ms/p50" in out

    def test_diff_missing_run_exits_1(self, tmp_path, capsys):
        assert main(["diff", "a", "b", "--registry", str(tmp_path)]) == 1
        assert "not found" in capsys.readouterr().err

    def test_html_missing_run_exits_1(self, tmp_path, capsys):
        assert main(["html", "nope", "--registry", str(tmp_path)]) == 1
        assert "not found" in capsys.readouterr().err
