"""TelemetryAgent event shapes, SlidingWindow statistics, Collector ingestion."""

import math
import queue

import numpy as np
import pytest

from repro.obs.telemetry import Collector, ListSink, SlidingWindow, TelemetryAgent
from repro.obs.telemetry.agent import maybe_agent_from_env


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``tick``."""

    def __init__(self, tick=0.010):
        self.t = 0.0
        self.tick = tick

    def __call__(self):
        self.t += self.tick
        return self.t


class FullSink:
    """Sink that is always full: every put raises ``queue.Full``."""

    def put_nowait(self, batch):
        raise queue.Full


class FakeTransport:
    def __init__(self, occupancy):
        self._occupancy = occupancy

    def ring_occupancy(self):
        return dict(self._occupancy)


class FakePlan:
    """Stands in for a FaultPlan: only ``injected`` counters are read."""

    def __init__(self, **injected):
        self.injected = injected


class FakeTracker:
    probe = None


def agent(**kw):
    sink = ListSink()
    return TelemetryAgent(0, 4, sink, clock=FakeClock(), **kw), sink


class TestAgentEvents:
    def test_meta_event_emitted_at_construction(self):
        ag, sink = agent(sample_every=2)
        assert ag.publish() == 1
        (meta,) = sink.events()
        assert meta["type"] == "meta"
        assert meta["rank"] == 0
        assert meta["world"] == 4
        assert meta["sample_every"] == 2

    def test_publish_batches_and_clears_buffer(self):
        ag, sink = agent()
        ag.emit("fault", kind="kill", step=3)
        assert ag.publish() == 2  # meta + fault
        assert ag.publish() == 0  # buffer now empty
        kinds = [e["type"] for e in sink.events()]
        assert kinds == ["meta", "fault"]

    def test_full_sink_drops_instead_of_raising(self):
        ag = TelemetryAgent(0, 4, FullSink(), clock=FakeClock())
        ag.emit("step", step=0)
        assert ag.publish() == 0
        assert ag.dropped == 2  # meta + step

    def test_record_step_shape_and_derived_fields(self):
        ag, sink = agent()
        timeline = [
            {"cat": "mp.phase", "name": "forward", "dur_ms": 5.0},
            {"cat": "mp.wait", "name": "recv", "dur_ms": 3.0},
            {"cat": "mp.wait", "name": "barrier", "dur_ms": 2.0},
            {"cat": "mp.fault", "name": "retry", "dur_ms": 1.5},
        ]
        event = ag.record_step(
            7, t_start=0.0, loss=1.25, timeline=timeline,
            transport=FakeTransport({("fwd", 0, 2): 3, ("bwd", 2, 0): 1}),
            plan=FakePlan(drop=2, corrupt=1, delay=1),
        )
        assert event["type"] == "step" and event["step"] == 7
        assert event["comm_wait_ms"] == pytest.approx(5.0)
        assert event["fault_ms"] == pytest.approx(1.5)
        assert event["busy_ms"] == pytest.approx(event["wall_ms"] - 5.0)
        assert event["ring_occupancy"] == 3  # max over mailboxes
        assert event["retries"] == 3 and event["drops"] == 2
        assert event["delays"] == 1
        assert event["loss"] == 1.25
        assert event["peak_rss_kb"] >= 0.0

    def test_fault_deltas_are_per_step_not_cumulative(self):
        ag, _ = agent()
        plan = FakePlan(drop=2)
        first = ag.record_step(0, t_start=0.0, plan=plan)
        second = ag.record_step(1, t_start=0.0, plan=plan)  # counters unchanged
        assert first["drops"] == 2
        assert second["drops"] == 0

    def test_fidelity_block_from_probe_and_probe_reset(self):
        ag, _ = agent()
        x = np.ones(8)
        ag.probe.observe(site="layer2.mlp", scheme="T2", group="tp",
                        original=x, reconstructed=x * 0.9,
                        wire_bytes=16, dense_bytes=64, residual=x * 0.1)
        event = ag.record_step(0, t_start=0.0)
        fid = event["fidelity"]["layer2.mlp"]
        assert fid["rel_l2"] == pytest.approx(0.1)
        assert fid["ratio"] == pytest.approx(4.0)
        assert fid["residual_norm"] == pytest.approx(np.linalg.norm(x * 0.1))
        assert not ag.probe.records  # consumed by the step event
        assert "fidelity" not in ag.record_step(1, t_start=0.0)

    def test_begin_step_samples_probe_attachment(self):
        ag, _ = agent(sample_every=2)
        tracker = FakeTracker()
        ag.watch(tracker)
        ag.begin_step(0)
        assert tracker.probe is ag.probe
        ag.begin_step(1)
        assert tracker.probe is None
        ag.begin_step(2)
        assert tracker.probe is ag.probe

    def test_begin_step_never_steals_a_foreign_probe(self):
        ag, _ = agent(sample_every=2)
        tracker = FakeTracker()
        tracker.probe = sentinel = object()
        ag.watch(tracker)
        ag.begin_step(1)  # unsampled step must not detach someone else's probe
        assert tracker.probe is sentinel


class TestEnvGate:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert maybe_agent_from_env(0, 4, ListSink()) is None

    def test_zero_counts_as_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert maybe_agent_from_env(0, 4, ListSink()) is None

    def test_no_sink_means_no_agent(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert maybe_agent_from_env(0, 4, None) is None

    def test_enabled_with_sample_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_SAMPLE", "4")
        ag = maybe_agent_from_env(1, 4, ListSink())
        assert ag is not None and ag.rank == 1 and ag.sample_every == 4

    def test_garbage_sample_env_degrades_to_every_step(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_SAMPLE", "often")
        assert maybe_agent_from_env(0, 4, ListSink()).sample_every == 1


class TestSlidingWindow:
    def test_ring_evicts_but_count_is_lifetime(self):
        win = SlidingWindow(3)
        for v in (1, 2, 3, 4, 5):
            win.push(v)
        assert win.values() == [3.0, 4.0, 5.0]
        assert len(win) == 3 and win.count == 5

    def test_exact_statistics(self):
        win = SlidingWindow(8)
        for v in (1, 2, 3, 4, 5):
            win.push(v)
        assert win.mean() == pytest.approx(3.0)
        assert win.std() == pytest.approx(math.sqrt(2.0))
        assert win.min() == 1.0 and win.max() == 5.0
        assert win.last == 5.0
        assert win.p50() == pytest.approx(3.0)
        assert win.p99() == pytest.approx(4.96)  # interpolated, exact

    def test_ewma(self):
        win = SlidingWindow(8, ewma_alpha=0.5)
        win.push(10.0)
        win.push(20.0)
        assert win.ewma == pytest.approx(15.0)

    def test_empty_window_stats_are_none_or_nan(self):
        win = SlidingWindow(4)
        stats = win.stats()
        assert stats["count"] == 0 and stats["window"] == 0
        assert stats["last"] is None and stats["mean"] is None
        assert math.isnan(win.mean()) and math.isnan(win.p50())

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)
        with pytest.raises(ValueError):
            SlidingWindow(4, ewma_alpha=0.0)


def step_event(rank, step, **fields):
    base = {"type": "step", "rank": rank, "t": 0.0, "step": step,
            "wall_ms": 10.0, "comm_wait_ms": 4.0, "busy_ms": 6.0,
            "fault_ms": 0.0, "ring_occupancy": 1, "retries": 0, "drops": 0,
            "delays": 0, "peak_rss_kb": 1000.0}
    base.update(fields)
    return base


class TestCollector:
    def test_meta_registers_rank_and_world(self):
        coll = Collector()
        coll.ingest({"type": "meta", "rank": 2, "t": 0.0, "world": 4,
                     "sample_every": 1})
        assert coll.ranks() == [2]
        assert coll.world == 4
        assert coll.meta[2]["sample_every"] == 1

    def test_step_feeds_per_rank_and_pooled_series(self):
        coll = Collector()
        coll.ingest(step_event(0, 0, wall_ms=10.0))
        coll.ingest(step_event(1, 0, wall_ms=30.0))
        assert coll.series(0, "wall_ms").values() == [10.0]
        assert coll.series(None, "wall_ms").values() == [10.0, 30.0]
        assert coll.last_step(1) == 0

    def test_fidelity_pools_per_site(self):
        coll = Collector()
        coll.ingest(step_event(0, 0, fidelity={
            "boundary0": {"rel_l2": 0.1, "ratio": 4.0, "residual_norm": None},
        }))
        assert coll.sites() == ["boundary0"]
        assert coll.series(None, "fidelity/boundary0/rel_l2").values() == [0.1]
        # None residual never becomes a sample
        assert len(coll.series(None, "fidelity/boundary0/residual_norm")) == 0

    def test_unknown_events_are_counted_but_ignored(self):
        coll = Collector()
        coll.ingest({"type": "fault", "rank": 0, "t": 0.0, "kind": "kill"})
        assert coll.events_seen == 1
        assert coll.ranks() == []

    def test_drain_queue(self):
        coll = Collector()
        q = queue.Queue()
        q.put_nowait([step_event(0, 0), step_event(1, 0)])
        q.put_nowait([step_event(0, 1)])
        assert coll.drain_queue(q) == 3
        assert coll.last_step(0) == 1

    def test_drain_backend_poll(self):
        class FakeBackend:
            def __init__(self):
                self.batches = [[step_event(0, 0)], []]

            def poll_telemetry(self):
                return self.batches.pop(0) if self.batches else []

        coll = Collector()
        assert coll.drain(FakeBackend()) == 1
        assert coll.ranks() == [0]

    def test_snapshot_shape(self):
        coll = Collector()
        coll.ingest({"type": "meta", "rank": 0, "t": 0.0, "world": 2,
                     "sample_every": 1})
        coll.ingest(step_event(0, 3, loss=1.5, fidelity={
            "boundary0": {"rel_l2": 0.1, "ratio": 4.0, "residual_norm": 2.0},
        }))
        snap = coll.snapshot()
        assert snap["world"] == 2 and snap["ranks"] == [0]
        assert snap["last_step"] == {"0": 3}
        assert snap["per_rank"]["0"]["wall_ms"]["window"] == 1
        assert snap["pooled"]["loss"]["last"] == 1.5
        assert snap["fidelity"]["boundary0"]["rel_l2"]["mean"] == 0.1
