"""HealthMonitor rules: firing boundaries, alert payloads, deduplication."""

import math

import pytest

from repro.obs.telemetry import (
    Alert,
    Collector,
    CommStallRule,
    FidelityDriftRule,
    HealthMonitor,
    LossRule,
    RetryStormRule,
    StragglerRule,
)


def collector_with_busy(busy_by_rank, samples=2):
    """Collector whose per-rank busy_ms windows hold flat values."""
    coll = Collector()
    for rank, busy in busy_by_rank.items():
        for _ in range(samples):
            coll.observe(rank, "busy_ms", busy)
    coll._ranks.update(busy_by_rank)  # normally set by step ingestion
    return coll


class TestStragglerRule:
    def test_fires_on_clear_straggler_naming_the_rank(self):
        coll = collector_with_busy({0: 10.0, 1: 60.0, 2: 10.0, 3: 10.0})
        (alert,) = StragglerRule().evaluate(coll, step=5)
        assert alert.rule == "straggler" and alert.rank == 1
        assert alert.step == 5 and alert.window == 2
        assert "rank 1" in alert.message

    def test_gap_at_min_gap_boundary_does_not_fire(self):
        # Peer spread is zero so sigma hits the 1 ms floor and z = gap;
        # gap == min_gap must NOT fire (strict inequality), epsilon above must.
        rule = StragglerRule(zscore=3.0, min_gap_ms=10.0, std_floor_ms=1.0)
        at = collector_with_busy({0: 5.0, 1: 5.0, 2: 5.0, 3: 15.0})
        assert rule.evaluate(at, step=0) == []
        above = collector_with_busy({0: 5.0, 1: 5.0, 2: 5.0, 3: 15.01})
        assert len(rule.evaluate(above, step=0)) == 1

    def test_zscore_boundary(self):
        # Wide peer spread keeps z below threshold even with a large gap.
        rule = StragglerRule(zscore=3.0, min_gap_ms=1.0, std_floor_ms=1.0)
        coll = collector_with_busy({0: 10.0, 1: 40.0, 2: 70.0, 3: 90.0})
        assert rule.evaluate(coll, step=0) == []

    def test_leave_one_out_beats_population_z_ceiling(self):
        # With n=4 a plain population z-score is bounded by sqrt(3) < 3, so
        # this rule could never fire without leave-one-out scoring.
        coll = collector_with_busy({0: 10.0, 1: 10.0, 2: 10.0, 3: 100.0})
        (alert,) = StragglerRule(zscore=3.0).evaluate(coll, step=0)
        assert alert.rank == 3
        assert alert.value > math.sqrt(3)

    def test_needs_three_ranks_and_min_samples(self):
        rule = StragglerRule()
        two = collector_with_busy({0: 10.0, 1: 100.0})
        assert rule.evaluate(two, step=0) == []
        thin = collector_with_busy({0: 10.0, 1: 10.0, 2: 100.0}, samples=1)
        assert rule.evaluate(thin, step=0) == []


class TestCommStallRule:
    def make(self, wait, busy):
        coll = Collector()
        for _ in range(2):
            coll.observe(0, "comm_wait_ms", wait)
            coll.observe(0, "busy_ms", busy)
        coll._ranks.add(0)
        return coll

    def test_fires_above_ratio(self):
        (alert,) = CommStallRule(ratio=3.0).evaluate(self.make(31.0, 10.0), step=1)
        assert alert.rule == "comm-stall" and alert.rank == 0
        assert alert.value == pytest.approx(3.1)

    def test_ratio_at_threshold_does_not_fire(self):
        assert CommStallRule(ratio=3.0).evaluate(self.make(30.0, 10.0), step=1) == []

    def test_small_absolute_wait_is_ignored(self):
        # Ratio is huge but the wait is microscopic: min_wait_ms gates it.
        assert CommStallRule(ratio=3.0, min_wait_ms=5.0).evaluate(
            self.make(4.0, 0.1), step=1) == []


class TestRetryStormRule:
    def make(self, retries, drops=0):
        coll = Collector()
        coll.observe(0, "retries", retries)
        coll.observe(0, "drops", drops)
        coll._ranks.add(0)
        return coll

    def test_fires_critical_above_limit(self):
        (alert,) = RetryStormRule(max_events=8).evaluate(self.make(6, 3), step=2)
        assert alert.severity == "critical"
        assert alert.value == 9.0

    def test_at_limit_does_not_fire(self):
        assert RetryStormRule(max_events=8).evaluate(self.make(8), step=2) == []


class TestFidelityDriftRule:
    def make(self, values):
        coll = Collector()
        for v in values:
            coll.observe(None, "fidelity/boundary0/rel_l2", v)
        return coll

    def test_fires_when_newer_half_drifts(self):
        coll = self.make([1e-3, 1e-3, 1e-3, 3e-3, 3e-3, 3e-3])
        (alert,) = FidelityDriftRule(factor=2.0, min_samples=6).evaluate(coll, step=9)
        assert alert.rule == "fidelity-drift" and alert.site == "boundary0"
        assert alert.value == pytest.approx(3.0)

    def test_factor_at_threshold_does_not_fire(self):
        coll = self.make([1e-3] * 3 + [2e-3] * 3)
        assert FidelityDriftRule(factor=2.0, min_samples=6).evaluate(coll, 9) == []

    def test_flat_series_is_healthy(self):
        coll = self.make([1e-3] * 8)
        assert FidelityDriftRule().evaluate(coll, step=9) == []

    def test_too_few_samples_never_fires(self):
        coll = self.make([1e-3, 1e-2])
        assert FidelityDriftRule(min_samples=6).evaluate(coll, step=9) == []


class TestLossRule:
    def make(self, losses):
        coll = Collector()
        for v in losses:
            coll.observe(None, "loss", v)
        return coll

    def test_nan_is_critical_regardless_of_history(self):
        (alert,) = LossRule().evaluate(self.make([float("nan")]), step=0)
        assert alert.severity == "critical"
        assert "non-finite" in alert.message

    def test_divergence_from_window_minimum(self):
        coll = self.make([1.0, 0.9, 0.8, 2.0])
        (alert,) = LossRule(divergence_factor=2.0).evaluate(coll, step=3)
        assert alert.severity == "warning"
        assert alert.value == 2.0

    def test_factor_at_threshold_does_not_fire(self):
        assert LossRule(divergence_factor=2.0).evaluate(
            self.make([1.0, 1.0, 1.0, 2.0]), step=3) == []

    def test_descending_loss_is_healthy(self):
        assert LossRule().evaluate(self.make([2.0, 1.5, 1.0, 0.8]), step=3) == []


class TestHealthMonitorDedup:
    def test_persistent_condition_alerts_once(self):
        coll = Collector()
        monitor = HealthMonitor(coll, rules=[LossRule()])
        coll.observe(None, "loss", float("nan"))
        assert len(monitor.check(step=0)) == 1
        # Condition still tripped on the next checks: no re-fire.
        assert monitor.check(step=1) == []
        assert monitor.check(step=2) == []
        assert len(monitor.alerts) == 1

    def test_refires_after_clearing(self):
        coll = Collector()
        monitor = HealthMonitor(coll, rules=[LossRule()])
        coll.observe(None, "loss", float("nan"))
        assert len(monitor.check(step=0)) == 1
        coll.observe(None, "loss", 1.0)  # healthy again
        assert monitor.check(step=1) == []
        coll.observe(None, "loss", float("inf"))
        assert len(monitor.check(step=2)) == 1
        assert len(monitor.alerts) == 2

    def test_summary_counts_by_rule(self):
        coll = collector_with_busy({0: 10.0, 1: 60.0, 2: 10.0, 3: 10.0})
        monitor = HealthMonitor(coll)  # default battery
        monitor.check(step=0)
        summary = monitor.summary()
        assert summary["total"] == len(summary["alerts"]) >= 1
        assert summary["by_rule"]["straggler"] == 1
        assert summary["alerts"][0]["rule"]

    def test_alert_json_drops_none_fields(self):
        alert = Alert(rule="x", severity="warning", message="m", rank=1)
        payload = alert.to_json()
        assert payload == {"rule": "x", "severity": "warning",
                           "message": "m", "rank": 1}
