"""FidelityProbe: direct observation math and wiring into the collectives."""

import numpy as np
import pytest

from repro.compression import (
    AutoencoderCompressor,
    QuantizationCompressor,
    RandomKCompressor,
    TopKCompressor,
)
from repro.compression.error_feedback import ErrorFeedbackCompressor
from repro.obs.fidelity import FidelityProbe
from repro.parallel.collectives import CommTracker, pipeline_transfer, tp_all_reduce
from repro.tensor import Tensor

RNG = np.random.default_rng(7)


def parts(world=2, shape=(2, 5, 32)):
    return [Tensor(RNG.normal(size=shape).astype(np.float32)) for _ in range(world)]


class TestProbeMath:
    def test_perfect_reconstruction_has_zero_error(self):
        probe = FidelityProbe()
        x = RNG.normal(size=(4, 4)).astype(np.float32)
        r = probe.observe(site="s", scheme="none", group="tp", original=x,
                          reconstructed=x, wire_bytes=32, dense_bytes=32)
        assert r.rel_l2_error == 0.0
        assert r.ratio == 1.0

    def test_zero_input_yields_zero_error(self):
        probe = FidelityProbe()
        z = np.zeros((3, 3), dtype=np.float32)
        r = probe.observe(site="s", scheme="topk", group="tp", original=z,
                          reconstructed=z, wire_bytes=8, dense_bytes=18)
        assert r.rel_l2_error == 0.0

    def test_known_error(self):
        probe = FidelityProbe()
        x = np.array([3.0, 4.0], dtype=np.float32)
        r = probe.observe(site="s", scheme="q", group="pp", original=x,
                          reconstructed=np.zeros(2, dtype=np.float32),
                          wire_bytes=1, dense_bytes=4)
        assert r.rel_l2_error == pytest.approx(1.0)
        assert r.ratio == 4.0

    def test_per_site_aggregates_and_reset(self):
        probe = FidelityProbe()
        x = np.ones(4, dtype=np.float32)
        for err in (0.0, 1.0):
            probe.observe(site="a", scheme="topk", group="tp", original=x,
                          reconstructed=x * (1 - err), wire_bytes=4, dense_bytes=8)
        agg = probe.per_site()["a"]
        assert agg["count"] == 2
        assert agg["rel_l2_error_mean"] == pytest.approx(0.5)
        assert agg["rel_l2_error_max"] == pytest.approx(1.0)
        assert agg["ratio_mean"] == pytest.approx(2.0)
        probe.reset()
        assert probe.records == [] and probe.sites() == []


class TestCollectivesWiring:
    @pytest.mark.parametrize("compressor", [
        TopKCompressor(0.25),
        RandomKCompressor(0.25, seed=0),
        QuantizationCompressor(4),
    ])
    def test_allgather_path_observes_each_rank(self, compressor):
        probe = FidelityProbe()
        tracker = CommTracker(probe=probe)
        tp_all_reduce(parts(world=2), compressor, tracker, layer=1, site="mlp")
        assert len(probe.records) == 2
        assert probe.sites() == ["layer1.mlp.rank0", "layer1.mlp.rank1"]
        for r in probe.records:
            assert r.group == "tp"
            assert r.scheme == compressor.name
            assert 0.0 < r.rel_l2_error < 1.5
            assert r.dense_bytes == 2 * 5 * 32 * 2
            assert r.wire_bytes == compressor.compressed_bytes((2, 5, 32))

    def test_ae_path_observes_the_reduced_sum(self):
        probe = FidelityProbe()
        tracker = CommTracker(probe=probe)
        ae = AutoencoderCompressor(hidden=32, code_dim=8, seed=0)
        ps = parts(world=2)
        out = tp_all_reduce(ps, ae, tracker, layer=3, site="attn")
        (r,) = probe.records
        assert r.site == "layer3.attn"
        assert r.scheme == "autoencoder"
        dense = ps[0].data + ps[1].data
        expected = float(np.linalg.norm(dense - out.data) / np.linalg.norm(dense))
        assert r.rel_l2_error == pytest.approx(expected, rel=1e-5)
        assert r.wire_bytes == 2 * 5 * 8 * 2  # code bytes

    def test_pipeline_transfer_observes_boundary(self):
        probe = FidelityProbe()
        tracker = CommTracker(probe=probe)
        x = Tensor(RNG.normal(size=(2, 4, 32)).astype(np.float32))
        pipeline_transfer(x, TopKCompressor(0.25), tracker, boundary=1)
        (r,) = probe.records
        assert r.site == "boundary1" and r.group == "pp"
        assert r.residual_norm is None  # stateless scheme

    def test_error_feedback_residual_norm_recorded(self):
        probe = FidelityProbe()
        tracker = CommTracker(probe=probe)
        ef = ErrorFeedbackCompressor(TopKCompressor(0.25))
        x = Tensor(RNG.normal(size=(2, 4, 32)).astype(np.float32))
        pipeline_transfer(x, ef, tracker, boundary=0)
        (r,) = probe.records
        assert r.scheme == "ef(topk)"
        assert r.residual_norm is not None and r.residual_norm > 0.0

    def test_no_probe_costs_nothing(self):
        tracker = CommTracker()
        assert tracker.probe is None
        tp_all_reduce(parts(), TopKCompressor(0.25), tracker)

    def test_identity_paths_do_not_observe(self):
        from repro.compression import NoCompressor

        probe = FidelityProbe()
        tracker = CommTracker(probe=probe)
        tp_all_reduce(parts(), NoCompressor(), tracker)
        pipeline_transfer(Tensor(np.ones((2, 2), dtype=np.float32)),
                          NoCompressor(), tracker, boundary=0)
        assert probe.records == []


class TestFidelityThroughFineTune:
    """Acceptance: a recorded smoke fine-tune yields per-site fidelity
    metrics for at least one scheme from each compressor family."""

    @pytest.mark.parametrize("scheme,family", [
        ("T2", "topk"), ("R2", "randomk"), ("Q2", "quant"), ("A2", "autoencoder"),
    ])
    def test_each_family_produces_site_metrics(self, scheme, family):
        from repro.obs.metrics import RunRecorder
        from repro.training.finetune import finetune_on_task
        from repro.training.trainer import TrainConfig

        recorder = RunRecorder(run_id=f"smoke-{scheme}")
        probe = FidelityProbe()
        finetune_on_task(
            "RTE", scheme=scheme, tp=2, pp=2,
            train_config=TrainConfig(epochs=1, lr=1e-3, seed=0, batch_size=64),
            seed=0, recorder=recorder, probe=probe,
        )
        assert recorder.records, "run telemetry must be captured"
        per_site = probe.per_site()
        assert per_site, "fidelity metrics must be captured"
        tp_sites = [s for s, agg in per_site.items() if agg["group"] == "tp"]
        pp_sites = [s for s, agg in per_site.items() if agg["group"] == "pp"]
        assert tp_sites and pp_sites
        for agg in per_site.values():
            assert family in agg["scheme"]
            assert np.isfinite(agg["rel_l2_error_mean"])
            assert agg["ratio_mean"] > 1.0  # the wire message actually shrank
