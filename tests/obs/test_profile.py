"""OpProfiler: hook seam, deterministic rollups, spans, comm links, traces."""

import numpy as np
import pytest

from repro.obs.profile import OpProfiler, op_bytes, op_flops
from repro.obs.trace import (
    merge_traces,
    profiler_trace,
    simulated_iteration_trace,
    validate_against_breakdown,
)
from repro.parallel import ModelParallelBertClassifier, ModelParallelConfig
from repro.parallel.topology import ClusterTopology, LinkType
from repro.simulator.iteration import IterationSimulator, SimSetting
from repro.tensor import Tensor, op_hook, register_op_hook, unregister_op_hook
from repro.training.finetune import default_accuracy_model


class FakeClock:
    """Deterministic monotonic clock: +1 ms per reading."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1e-3
        return self.t


def small_model(tp=2, pp=1, scheme="w/o"):
    cfg = ModelParallelConfig(
        default_accuracy_model(num_classes=2, seed=0),
        tp=tp, pp=pp, scheme=scheme, seed=0,
    )
    return ModelParallelBertClassifier(cfg)


def tiny_batch(model, n=4, seq=8, seed=0):
    rng = np.random.default_rng(seed)
    input_ids = rng.integers(0, model.config.model.vocab_size, size=(n, seq))
    labels = rng.integers(0, 2, size=n)
    return input_ids, labels, np.ones((n, seq), dtype=np.int64)


class TestHookSeam:
    def test_hook_sees_forward_and_backward_ops(self):
        seen = []
        with op_hook(lambda op, data, shapes, phase: seen.append((phase, op))):
            a = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
            b = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True)
            (a @ b).sum().backward()
        fwd = [op for phase, op in seen if phase == "forward"]
        bwd = [op for phase, op in seen if phase == "backward"]
        assert "__matmul__" in fwd and "sum" in fwd
        assert bwd, "backward closures must fire the hook too"

    def test_unregister_stops_delivery(self):
        seen = []
        hook = lambda *args: seen.append(args)  # noqa: E731
        register_op_hook(hook)
        Tensor(np.ones(2, dtype=np.float32)) + Tensor(np.ones(2, dtype=np.float32))
        n = len(seen)
        assert n > 0
        unregister_op_hook(hook)
        Tensor(np.ones(2, dtype=np.float32)) + Tensor(np.ones(2, dtype=np.float32))
        assert len(seen) == n

    def test_multiple_hooks_all_fire(self):
        first, second = [], []
        with op_hook(lambda *a: first.append(a)):
            with op_hook(lambda *a: second.append(a)):
                Tensor(np.ones(2, dtype=np.float32)) + Tensor(
                    np.ones(2, dtype=np.float32))
        assert len(first) == len(second) == 1


class TestOpCosts:
    def test_matmul_flops(self):
        # (2,3) @ (3,4) -> out (2,4): 2*N*K = 2*8*3
        assert op_flops("__matmul__", (2, 4), ((2, 3), (3, 4))) == 2 * 8 * 3

    def test_elementwise_flops(self):
        assert op_flops("__add__", (5, 7), ((5, 7), (5, 7))) == 35

    def test_shape_ops_cost_no_flops(self):
        assert op_flops("reshape", (10,), ((2, 5),)) == 0.0

    def test_bytes_counts_reads_and_write(self):
        # two (2,2) fp32 reads + 16-byte output
        assert op_bytes("__add__", 16, ((2, 2), (2, 2))) == 2 * 16 + 16


class TestRollups:
    def workload(self):
        a = Tensor(np.ones((4, 8), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((8, 2), dtype=np.float32), requires_grad=True)
        ((a @ b).tanh().sum()).backward()

    def test_deterministic_counts_across_runs(self):
        summaries = []
        for _ in range(2):
            prof = OpProfiler(clock=FakeClock(), record_events=False)
            with prof:
                self.workload()
            s = prof.summary()
            summaries.append((s["op_calls"], s["flops"], s["alloc_bytes"],
                              s["bytes_moved"], s["ops"]))
        assert summaries[0] == summaries[1]

    def test_fake_clock_wall_times_are_deterministic(self):
        walls = []
        for _ in range(2):
            prof = OpProfiler(clock=FakeClock(), record_events=False)
            with prof:
                self.workload()
            walls.append(prof.total_wall_ms())
        assert walls[0] == walls[1] > 0

    def test_forward_and_backward_phases_split(self):
        prof = OpProfiler(clock=FakeClock())
        with prof:
            self.workload()
        phases = {phase for phase, _ in prof.ops}
        assert phases == {"forward", "backward"}
        assert prof.ops[("forward", "__matmul__")].flops == 2 * (4 * 2) * 8

    def test_predicted_ms_positive_and_deterministic(self):
        vals = []
        for _ in range(2):
            prof = OpProfiler(clock=FakeClock(), record_events=False)
            with prof:
                self.workload()
            vals.append(prof.predicted_ms())
        assert vals[0] == vals[1] > 0

    def test_summary_key_order_is_stable(self):
        prof = OpProfiler(clock=FakeClock())
        with prof:
            self.workload()
        s = prof.summary()
        assert list(s["ops"]) == sorted(s["ops"])
        assert list(s["comm_bytes"]) == sorted(s["comm_bytes"])


class TestSpans:
    def test_nested_paths_and_rank_inheritance(self):
        prof = OpProfiler(clock=FakeClock())
        with prof:
            with prof.span("step", cat="step", rank=3):
                with prof.span("forward"):
                    Tensor(np.ones(4, dtype=np.float32)) + Tensor(
                        np.ones(4, dtype=np.float32))
        by_name = {s.name: s for s in prof.spans}
        assert by_name["forward"].path == "step/forward"
        assert by_name["forward"].rank == 3  # inherited from "step"
        assert by_name["forward"].op_calls == 1
        assert by_name["forward"].alloc_bytes == 16

    def test_peak_alloc_high_water_mark(self):
        prof = OpProfiler(clock=FakeClock())
        ones = lambda n: Tensor(np.ones(n, dtype=np.float32))  # noqa: E731
        with prof:
            with prof.span("big", rank=0):
                ones(256) + ones(256)  # 1024 B output
            with prof.span("small", rank=0):
                ones(4) + ones(4)
            with prof.span("other", rank=1):
                ones(16) + ones(16)
        assert prof.peak_alloc_by_rank[0] == 1024
        assert prof.peak_alloc_by_rank[1] == 64
        assert prof.peak_span_alloc == 1024

    def test_span_durations_use_clock(self):
        prof = OpProfiler(clock=FakeClock())
        with prof:
            with prof.span("outer"):
                pass
        (span,) = prof.spans
        assert span.dur_ms > 0


class TestCommLinks:
    def test_events_cross_linked_to_spans(self):
        model = small_model(tp=2, scheme="T2")
        prof = OpProfiler(record_events=False)
        prof.watch(model.tracker)
        input_ids, labels, mask = tiny_batch(model)
        with prof:
            with prof.span("step", cat="step", rank=0):
                with prof.span("forward"):
                    loss = model.loss(input_ids, labels, mask)
                with prof.span("backward"):
                    loss.backward()
        assert prof.comm_links, "TP=2 step must record collectives"
        assert len(prof.comm_links) == len(model.tracker.events)
        for link in prof.comm_links:
            event = model.tracker.events[link.event_index]
            assert (event.op, event.wire_bytes) == (link.op, link.wire_bytes)
            assert link.span_path.startswith("step")
            assert link.rank == 0
        fwd = [l for l in prof.comm_links if "forward" in l.span_path]
        bwd = [l for l in prof.comm_links if "backward" in l.span_path]
        assert fwd and bwd

    def test_comm_bytes_match_tracker_summary(self):
        model = small_model(tp=2, scheme="Q2")
        prof = OpProfiler(record_events=False)
        prof.watch(model.tracker)
        input_ids, labels, mask = tiny_batch(model)
        with prof:
            model.loss(input_ids, labels, mask).backward()
        expected = {"/".join(k): v for k, v in model.tracker.summary().items()}
        assert prof.comm_bytes() == expected

    def test_disabled_tracker_records_no_links(self):
        model = small_model(tp=2)
        model.tracker.enabled = False
        prof = OpProfiler(record_events=False)
        prof.watch(model.tracker)
        input_ids, labels, mask = tiny_batch(model)
        with prof:
            model.loss(input_ids, labels, mask)
        assert prof.comm_links == []

    def test_uninstall_restores_tracker_record(self):
        model = small_model(tp=2)
        prof = OpProfiler(record_events=False)
        prof.watch(model.tracker)
        assert "record" in vars(model.tracker)  # instance-level wrapper
        prof.uninstall()
        assert "record" not in vars(model.tracker)  # class method again


class TestSideChannel:
    """DESIGN decision #7: profiling observes numerics, never changes them."""

    def test_profiled_step_is_bitwise_identical(self):
        def run(profiled):
            model = small_model(tp=2, pp=2, scheme="A2")
            input_ids, labels, mask = tiny_batch(model)
            if profiled:
                prof = OpProfiler()
                prof.watch(model.tracker)
                with prof:
                    with prof.span("step", rank=0):
                        loss = model.loss(input_ids, labels, mask)
                        loss.backward()
            else:
                loss = model.loss(input_ids, labels, mask)
                loss.backward()
            grads = [p.grad.copy() for p in model.parameters() if p.grad is not None]
            return loss.item(), grads

        loss_plain, grads_plain = run(profiled=False)
        loss_prof, grads_prof = run(profiled=True)
        assert loss_plain == loss_prof
        assert len(grads_plain) == len(grads_prof)
        for g0, g1 in zip(grads_plain, grads_prof):
            np.testing.assert_array_equal(g0, g1)


class TestTraces:
    def setting(self):
        return SimSetting(ClusterTopology(1, 4, LinkType.PCIE), 2, 2, 32, 512,
                          num_microbatches=4, scheme="A2")

    def profiled(self):
        model = small_model(tp=2, scheme="A2")
        prof = OpProfiler()
        prof.watch(model.tracker)
        input_ids, labels, mask = tiny_batch(model)
        with prof:
            with prof.span("step", cat="step", rank=0):
                model.loss(input_ids, labels, mask).backward()
        return prof

    def test_profiler_trace_categories_are_prefixed(self):
        trace = profiler_trace(self.profiled())
        cats = {e["cat"] for e in trace["traceEvents"] if "cat" in e}
        assert cats and all(c.startswith("prof.") for c in cats)
        assert any(e["ph"] == "i" for e in trace["traceEvents"]), "comm instants"

    def test_merged_trace_still_validates_breakdown(self):
        """Acceptance: merged real+simulated trace ≤ 1e-6 ms per column."""
        setting = self.setting()
        sim_trace = simulated_iteration_trace(setting)
        merged = merge_traces(profiler_trace(self.profiled()), sim_trace,
                              meta={"purpose": "side-by-side"})
        breakdown = IterationSimulator(setting).breakdown()
        for column, diff in validate_against_breakdown(merged, breakdown).items():
            assert diff <= 1e-6, (column, diff)

    def test_merge_rehomes_pids(self):
        t1 = profiler_trace(self.profiled())
        t2 = simulated_iteration_trace(self.setting())
        merged = merge_traces(t1, t2)
        assert {e["pid"] for e in merged["traceEvents"]} == {1, 2}
        assert len(merged["traceEvents"]) == len(t1["traceEvents"]) + len(t2["traceEvents"])


class TestOverhead:
    def test_no_hook_fast_path_overhead_is_tiny(self):
        """With no profiler installed the per-op cost is one list check."""
        import timeit

        a = Tensor(np.ones((8, 8), dtype=np.float32))
        b = Tensor(np.ones((8, 8), dtype=np.float32))
        n = 2000
        baseline = min(timeit.repeat(lambda: a + b, number=n, repeat=5))
        again = min(timeit.repeat(lambda: a + b, number=n, repeat=5))
        # Same code path twice: the spread bounds measurement noise, the
        # guard itself is unmeasurable. This asserts the hook seam did not
        # install anything by default.
        from repro.tensor.tensor import _OP_HOOKS

        assert _OP_HOOKS == []
        assert again < baseline * 3  # sanity: no pathological slowdown
