"""Chrome-trace export: validity and exact agreement with the breakdown."""

import json

import pytest

from repro.obs.metrics import RunRecorder
from repro.obs.trace import (
    simulated_iteration_trace,
    trace_from_run,
    validate_against_breakdown,
    write_trace,
)
from repro.parallel.topology import ClusterTopology
from repro.simulator.iteration import IterationSimulator, SimSetting


def setting(scheme="A2", tp=2, pp=2, m=4, **kw):
    return SimSetting(ClusterTopology.p3_8xlarge(), tp, pp, 16, 512,
                      num_microbatches=m, scheme=scheme, **kw)


def x_events(trace):
    return [e for e in trace["traceEvents"] if e.get("ph") == "X"]


class TestTraceValidity:
    def test_json_serializable_with_required_keys(self):
        trace = simulated_iteration_trace(setting())
        again = json.loads(json.dumps(trace))
        assert again["displayTimeUnit"] == "ms"
        assert isinstance(again["traceEvents"], list) and again["traceEvents"]

    def test_complete_events_are_well_formed(self):
        trace = simulated_iteration_trace(setting())
        for e in x_events(trace):
            assert e["ts"] >= 0 and e["dur"] > 0  # µs
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            assert e["name"] and e["cat"]

    def test_tracks_are_named(self):
        trace = simulated_iteration_trace(setting(pp=2))
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert "stage 0" in names and "stage 1" in names
        assert any(n.startswith("boundary") for n in names)

    def test_one_compute_track_per_stage(self):
        trace = simulated_iteration_trace(setting(tp=1, pp=4, m=2))
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert {f"stage {i}" for i in range(4)} <= names

    def test_forward_boxes_one_per_stage_microbatch(self):
        trace = simulated_iteration_trace(setting(m=4, pp=2))
        fwd = [e for e in x_events(trace) if e["cat"] == "forward_compute"]
        bwd = [e for e in x_events(trace) if e["cat"] == "backward_compute"]
        assert len(fwd) == 2 * 4 and len(bwd) == 2 * 4

    def test_write_trace_round_trips(self, tmp_path):
        path = write_trace(simulated_iteration_trace(setting()),
                           str(tmp_path / "out" / "sim.json"))
        with open(path) as fh:
            again = json.load(fh)
        assert again["traceEvents"]


class TestBreakdownAgreement:
    """Acceptance: per-track slice sums match IterationBreakdown within 1e-6 ms."""

    @pytest.mark.parametrize("scheme", ["w/o", "A2", "T2", "R2", "Q2"])
    def test_2x2_gpipe_trace_matches_breakdown(self, scheme):
        sim = IterationSimulator(setting(scheme=scheme, tp=2, pp=2, m=4))
        diffs = validate_against_breakdown(
            simulated_iteration_trace(sim), sim.breakdown()
        )
        assert max(diffs.values()) < 1e-6, diffs

    @pytest.mark.parametrize("tp,pp,m", [(4, 1, 1), (1, 4, 2), (2, 2, 1), (2, 2, 8)])
    def test_other_layouts_match_too(self, tp, pp, m):
        sim = IterationSimulator(setting(scheme="A2", tp=tp, pp=pp, m=m))
        diffs = validate_against_breakdown(
            simulated_iteration_trace(sim), sim.breakdown()
        )
        assert max(diffs.values()) < 1e-6, diffs

    def test_validator_catches_a_doctored_trace(self):
        sim = IterationSimulator(setting())
        trace = simulated_iteration_trace(sim)
        for e in x_events(trace):
            if e["cat"] == "tensor_comm":
                e["dur"] *= 2
                break
        diffs = validate_against_breakdown(trace, sim.breakdown())
        assert diffs["tensor_comm_ms"] > 1e-6
        assert diffs["forward_ms"] > 1e-6


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 0.005
        return self.t


class TestRunTrace:
    def make_run(self):
        rec = RunRecorder(run_id="r", meta={"scheme": "T2"}, clock=FakeClock())
        for loss in (2.0, 1.0):
            with rec.step():
                rec.gauge("loss", loss)
                with rec.timer("forward"):
                    pass
                with rec.timer("backward"):
                    pass
        return rec

    def test_step_slices_and_phase_slices(self):
        rec = self.make_run()
        trace = trace_from_run(rec.records, {"run_id": rec.run_id})
        steps = [e for e in x_events(trace) if e["cat"] == "step"]
        assert len(steps) == 2
        for step_event, record in zip(steps, rec.records):
            assert step_event["dur"] == pytest.approx(record["wall_ms"] * 1000)
            assert step_event["ts"] == pytest.approx(record["t_start_ms"] * 1000)
        phases = [e for e in x_events(trace) if e["cat"] in ("forward", "backward")]
        assert len(phases) == 4

    def test_gauges_become_counter_events(self):
        trace = trace_from_run(self.make_run().records)
        counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
        assert [c["args"]["loss"] for c in counters] == [2.0, 1.0]

    def test_phase_slices_laid_head_to_tail(self):
        trace = trace_from_run(self.make_run().records)
        fwd, bwd = [e for e in x_events(trace)
                    if e["cat"] in ("forward", "backward")][:2]
        assert bwd["ts"] == pytest.approx(fwd["ts"] + fwd["dur"])
